"""Packaging for repro-vliw.

Kept as a plain ``setup.py`` (no build-isolation requirements) so that
``pip install -e .`` works in minimal environments whose setuptools
cannot do PEP-660 editable installs.
"""

import pathlib

from setuptools import find_packages, setup


def _readme() -> str:
    path = pathlib.Path(__file__).parent / "README.md"
    try:
        return path.read_text()
    except OSError:  # pragma: no cover - sdist without README
        return ""


setup(
    name="repro-vliw",
    version="1.0.0",
    description=("Reproduction of 'Partitioned Schedules for Clustered "
                 "VLIW Architectures' (Fernandes, Llosa & Topham, "
                 "IPPS/SPDP 1998): software pipelining for queue "
                 "register files, with a parallel cached sweep runner"),
    long_description=_readme(),
    long_description_content_type="text/markdown",
    author="repro-vliw contributors",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    install_requires=[
        "networkx>=2.6",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark", "hypothesis"],
    },
    entry_points={
        "console_scripts": [
            "repro-vliw=repro.cli:main",
            "repro-lint=repro.analysis.lint.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Typing :: Typed",
        "Topic :: Software Development :: Compilers",
    ],
)

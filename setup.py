"""Shim for environments whose setuptools cannot do PEP-660 editable
installs (no `wheel` package).  `pip install -e . --no-build-isolation`
falls back to `setup.py develop` through this file; all real metadata lives
in pyproject.toml."""

from setuptools import setup

setup()

"""Tests for the repro-vliw command-line interface."""

import pytest

from repro.cli import build_parser, main


def run_cli(capsys, *argv):
    code = main(list(argv))
    out = capsys.readouterr()
    return code, out.out, out.err


def test_corpus_command(capsys):
    code, out, _ = run_cli(capsys, "--sample", "20", "corpus")
    assert code == 0
    assert "loops" in out


def test_schedule_command(capsys):
    code, out, _ = run_cli(capsys, "schedule", "daxpy")
    assert code == 0
    assert "II=" in out
    assert "simulated" in out


def test_schedule_clustered(capsys):
    code, out, _ = run_cli(capsys, "schedule", "dot", "--clusters", "4",
                           "--unroll", "2")
    assert code == 0
    assert "private" in out


def test_schedule_unknown_kernel(capsys):
    code, _, err = run_cli(capsys, "schedule", "nope")
    assert code == 2
    assert "unknown kernel" in err


def test_schedule_list_enumerates_kernels(capsys):
    code, out, _ = run_cli(capsys, "schedule", "--list")
    assert code == 0
    assert "daxpy" in out and "ops" in out


def test_schedule_missing_kernel_hints_at_list(capsys):
    code, _, err = run_cli(capsys, "schedule")
    assert code == 2
    assert "--list" in err


def test_schedule_with_sms_scheduler(capsys):
    code, out, _ = run_cli(capsys, "schedule", "daxpy",
                           "--scheduler", "sms")
    assert code == 0
    assert "II=" in out
    assert "simulated" in out


def test_experiment_fig3(capsys):
    code, out, _ = run_cli(capsys, "--sample", "8", "experiment", "fig3")
    assert code == 0
    assert "Fig. 3" in out


def test_experiment_unknown(capsys):
    code, _, err = run_cli(capsys, "--sample", "8", "experiment", "nope")
    assert code == 2
    assert "unknown experiment" in err


def test_experiment_list_enumerates_experiments(capsys):
    code, out, _ = run_cli(capsys, "experiment", "--list")
    assert code == 0
    for exp_id in ("fig3", "fig9", "e6b", "sc", "pc"):
        assert exp_id in out


def test_experiment_missing_id_hints_at_list(capsys):
    code, _, err = run_cli(capsys, "experiment")
    assert code == 2
    assert "--list" in err


def test_experiment_with_sms_scheduler(capsys):
    code, out, _ = run_cli(capsys, "--sample", "8", "--no-cache",
                           "experiment", "fig3", "--scheduler", "sms")
    assert code == 0
    assert "Fig. 3" in out


def test_experiment_scheduler_compare(capsys):
    code, out, _ = run_cli(capsys, "--sample", "8", "--no-cache",
                           "experiment", "sc")
    assert code == 0
    assert "scheduler comparison" in out
    assert "ims" in out and "sms" in out


def test_schedulers_subcommand(capsys):
    code, out, _ = run_cli(capsys, "schedulers")
    assert code == 0
    assert "ims" in out and "sms" in out
    assert "(default)" in out


def test_partitioners_subcommand(capsys):
    code, out, _ = run_cli(capsys, "partitioners")
    assert code == 0
    for name in ("affinity", "agglomerative", "balance", "first",
                 "random"):
        assert name in out
    assert "(default)" in out


def test_schedule_clustered_with_partitioner(capsys):
    code, out, _ = run_cli(capsys, "schedule", "dot", "--clusters", "4",
                           "--unroll", "2",
                           "--partitioner", "agglomerative")
    assert code == 0
    assert "II=" in out and "simulated" in out


def test_unknown_partitioner_rejected_before_compiling(capsys):
    """A typo'd engine name must die in argument parsing, listing the
    registered names, instead of surfacing as an error mid-sweep."""
    with pytest.raises(SystemExit):
        main(["schedule", "dot", "--clusters", "4",
              "--partitioner", "bogus"])
    err = capsys.readouterr().err
    assert "bogus" in err
    assert "affinity" in err and "agglomerative" in err


def test_unknown_scheduler_rejected_before_compiling(capsys):
    with pytest.raises(SystemExit):
        main(["schedule", "daxpy", "--scheduler", "bogus"])
    err = capsys.readouterr().err
    assert "ims" in err and "sms" in err


def test_experiment_partitioner_compare(capsys):
    code, out, _ = run_cli(capsys, "--sample", "6", "--no-cache",
                           "experiment", "pc")
    assert code == 0
    assert "partitioner comparison" in out
    assert "affinity" in out and "agglomerative" in out


def test_experiment_fig6_with_partitioner(capsys):
    code, out, _ = run_cli(capsys, "--sample", "6", "--no-cache",
                           "experiment", "fig6",
                           "--partitioner", "agglomerative")
    assert code == 0
    assert "Fig. 6" in out


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_experiment_s1(capsys):
    code, out, _ = run_cli(capsys, "--sample", "6", "experiment", "s1")
    assert code == 0
    assert "register pressure" in out


def test_experiment_e6b(capsys):
    code, out, _ = run_cli(capsys, "--sample", "6", "experiment", "e6b")
    assert code == 0
    assert "spill" in out


def test_schedule_asm_listing(capsys):
    code, out, _ = run_cli(capsys, "schedule", "daxpy", "--asm")
    assert code == 0
    assert "; kernel II=" in out


def test_experiment_parallel_output_identical(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    code, serial, _ = run_cli(capsys, "--sample", "8", "--cache-dir", cache,
                              "experiment", "fig3")
    assert code == 0
    code, parallel, _ = run_cli(capsys, "--sample", "8", "--jobs", "2",
                                "--cache-dir", cache, "experiment", "fig3")
    assert code == 0
    assert parallel == serial
    code, uncached, _ = run_cli(capsys, "--sample", "8", "--no-cache",
                                "experiment", "fig3")
    assert code == 0
    assert uncached == serial


def test_cache_subcommand_reports_and_clears(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    run_cli(capsys, "--sample", "6", "--cache-dir", cache,
            "experiment", "fig3")
    code, out, _ = run_cli(capsys, "--cache-dir", cache, "cache")
    assert code == 0
    assert "results" in out
    code, out, _ = run_cli(capsys, "--cache-dir", cache, "cache", "--clear")
    assert code == 0
    assert "cleared" in out
    code, out, _ = run_cli(capsys, "--cache-dir", cache, "cache")
    assert "0 results" in out


def test_cache_stats_gc_and_migrate_actions(capsys, tmp_path):
    cache = str(tmp_path / "cache")
    run_cli(capsys, "--sample", "6", "--cache-dir", cache,
            "experiment", "fig3")
    code, out, _ = run_cli(capsys, "--cache-dir", cache, "cache", "stats")
    assert code == 0
    assert "[sharded]" in out
    assert "shard occupancy" in out
    code, out, _ = run_cli(capsys, "--cache-dir", cache,
                           "cache", "gc", "--max-bytes", "1")
    assert code == 0
    assert "evicted" in out
    code, out, _ = run_cli(capsys, "--cache-dir", cache, "cache", "stats")
    assert "0 results" in out


def test_cache_gc_on_legacy_layout(capsys, tmp_path):
    from repro.runner import ResultCache, execute_job
    from repro.runner.job import CompileJob
    from repro.machine.presets import qrf_machine
    from repro.workloads.kernels import kernel

    cache_dir = tmp_path / "cache"
    legacy = ResultCache(cache_dir)
    result = execute_job(CompileJob(kernel("daxpy"), qrf_machine(4)))
    legacy.put(result)
    legacy.put(result)  # duplicate line the gc can fold away
    code, out, _ = run_cli(capsys, "--cache-dir", str(cache_dir),
                           "cache", "stats")
    assert code == 0 and "[legacy]" in out
    code, out, _ = run_cli(capsys, "--cache-dir", str(cache_dir),
                           "cache", "gc")
    assert code == 0 and "evicted" in out
    code, out, _ = run_cli(capsys, "--cache-dir", str(cache_dir),
                           "cache", "migrate")
    assert code == 0 and "migrated" in out
    code, out, _ = run_cli(capsys, "--cache-dir", str(cache_dir),
                           "cache", "stats")
    assert "[sharded]" in out and "1 results" in out


def test_submit_against_thread_server(capsys, tmp_path):
    from repro.runner import ShardedResultCache
    from repro.service import SweepService, start_in_thread

    handle = start_in_thread(
        SweepService(ShardedResultCache(tmp_path / "cache"), n_workers=1))
    try:
        port = str(handle.port)
        code, out, _ = run_cli(capsys, "submit", "daxpy", "dot",
                               "--port", port)
        assert code == 0
        assert "compiled" in out and "II=" in out
        metrics_file = tmp_path / "metrics.json"
        code, out, _ = run_cli(capsys, "submit", "daxpy", "dot",
                               "--port", port, "--expect-cached",
                               "--metrics-out", str(metrics_file))
        assert code == 0
        assert "cached" in out
        import json
        metrics = json.loads(metrics_file.read_text())
        assert metrics["service"]["served_from_cache"] >= 2
    finally:
        handle.stop()


# ---------------------------------------------------------------------------
# II search flag
# ---------------------------------------------------------------------------

def test_schedule_ii_search_modes_agree(capsys):
    code, adaptive, _ = run_cli(capsys, "schedule", "fir4")
    assert code == 0
    code, linear, _ = run_cli(capsys, "schedule", "fir4",
                              "--ii-search", "linear")
    assert code == 0
    assert linear == adaptive

def test_experiment_accepts_ii_search(capsys):
    code, adaptive, _ = run_cli(capsys, "--sample", "6", "--no-cache",
                                "experiment", "fig3")
    assert code == 0
    code, linear, _ = run_cli(capsys, "--sample", "6", "--no-cache",
                              "experiment", "fig3",
                              "--ii-search", "linear")
    assert code == 0
    assert linear == adaptive

def test_unknown_ii_search_rejected(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["schedule", "daxpy",
                                   "--ii-search", "bogus"])


# ---------------------------------------------------------------------------
# bench subcommand
# ---------------------------------------------------------------------------

REPO_ROOT = __import__("pathlib").Path(__file__).resolve().parents[1]


def test_bench_list(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    code, out, _ = run_cli(capsys, "bench", "--list")
    assert code == 0
    assert "fig6_partition" in out
    assert "scheduler_compare" in out

def test_bench_unknown_name(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    code, _, err = run_cli(capsys, "bench", "nope")
    assert code == 2
    assert "unknown benchmark" in err

def test_bench_requires_name(capsys, monkeypatch):
    monkeypatch.chdir(REPO_ROOT)
    code, _, err = run_cli(capsys, "bench")
    assert code == 2
    assert "name required" in err

def test_bench_gates_against_baseline(capsys, monkeypatch, tmp_path):
    """A stubbed benchmark run: the gate passes within tolerance and
    fails beyond it, with the records written where telemetry looks."""
    import json

    from repro import cli as cli_mod

    monkeypatch.chdir(REPO_ROOT)
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))

    def fake_run(bench_file, wall):
        def _run(path):
            assert str(path).endswith("bench_fig6_partition.py")
            record = {"schema": 1, "name": "fig6_partition",
                      "wall_s": wall, "corpus_size": 1,
                      "timestamp": "now", "metrics": {}}
            (tmp_path / "BENCH_fig6_partition.json").write_text(
                json.dumps(record))
            return 0
        return _run

    baseline = json.loads(
        (REPO_ROOT / "benchmarks" / "baseline.json").read_text())
    base_wall = baseline["benches"]["fig6_partition"]["wall_s"]

    monkeypatch.setattr(cli_mod, "_run_benchmark",
                        fake_run("fig6_partition", base_wall * 0.5))
    code, out, _ = run_cli(capsys, "bench", "fig6_partition")
    assert code == 0
    assert "within budget" in out

    monkeypatch.setattr(cli_mod, "_run_benchmark",
                        fake_run("fig6_partition", base_wall * 10))
    code, out, err = run_cli(capsys, "bench", "fig6_partition")
    assert code == 1
    assert "REGRESSION" in out
    assert "regression" in err

def test_bench_without_baseline_entry_reports_not_gated(capsys,
                                                        monkeypatch,
                                                        tmp_path):
    import json

    from repro import cli as cli_mod

    monkeypatch.chdir(REPO_ROOT)
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))

    def fake_run(path):
        record = {"schema": 1, "name": "fig3_queues", "wall_s": 1.0,
                  "corpus_size": 1, "timestamp": "now", "metrics": {}}
        (tmp_path / "BENCH_fig3_queues.json").write_text(
            json.dumps(record))
        return 0

    monkeypatch.setattr(cli_mod, "_run_benchmark", fake_run)
    code, out, _ = run_cli(capsys, "bench", "fig3_queues")
    assert code == 0
    assert "NOT GATED" in out
    assert "within budget" not in out

def test_bench_failing_run_propagates(capsys, monkeypatch):
    from repro import cli as cli_mod

    monkeypatch.chdir(REPO_ROOT)
    monkeypatch.setattr(cli_mod, "_run_benchmark", lambda path: 3)
    code, _, err = run_cli(capsys, "bench", "fig6_partition")
    assert code == 3
    assert "failed" in err


# ---------------------------------------------------------------------------
# observatory: report + trace subcommands
# ---------------------------------------------------------------------------

@pytest.fixture()
def untraced():
    """Restore the tracing default after a command that enables it
    in-process (`trace`, `schedule --trace`)."""
    from repro.obs import trace as tr
    was_enabled = tr.tracing_enabled()
    yield
    tr.reset_tracing()
    if not was_enabled:
        tr.disable_tracing()


def _bench_record(tmp_path, name, wall):
    import json

    (tmp_path / f"BENCH_{name}.json").write_text(json.dumps(
        {"schema": 2, "name": name, "wall_s": wall, "corpus_size": 1,
         "timestamp": "2026-01-01T00:00:00", "metrics": {},
         "provenance": {"git_sha": "fresh01", "host": "0" * 12,
                        "python": "3.11.0"}}))


def _seed_history(path, name, values):
    import json

    with path.open("w") as fh:
        for i, v in enumerate(values):
            fh.write(json.dumps(
                {"bench": name, "metric": "wall_s", "value": v,
                 "git_sha": f"old{i:04d}",
                 "timestamp": f"2025-12-01T00:00:{i:02d}"}) + "\n")


def test_report_renders_observatory_and_dashboard(capsys, tmp_path):
    _bench_record(tmp_path, "demo", 1.0)
    history = tmp_path / "history.jsonl"
    _seed_history(history, "demo", [1.0, 1.05, 0.95, 1.0, 1.02])
    html_out = tmp_path / "out" / "dashboard.html"
    code, out, _ = run_cli(capsys, "report",
                           "--records", str(tmp_path),
                           "--history", str(history),
                           "--html", str(html_out))
    assert code == 0
    assert "demo" in out and "wall_s" in out
    assert "no regressions flagged" in out
    page = html_out.read_text()
    assert page.startswith("<!DOCTYPE html>") and "<svg" in page


def test_report_check_flags_seeded_regression(capsys, tmp_path):
    _bench_record(tmp_path, "demo", 2.0)          # 2x the history
    history = tmp_path / "history.jsonl"
    _seed_history(history, "demo",
                  [1.0, 1.02, 0.98, 1.01, 0.99, 1.03, 1.0, 0.97])
    code, out, _ = run_cli(capsys, "report", "--check",
                           "--records", str(tmp_path),
                           "--history", str(history), "--html", "")
    assert code == 1
    assert "REGRESSION" in out
    # the same history without --check still reports, exit 0
    code, _, _ = run_cli(capsys, "report",
                         "--records", str(tmp_path),
                         "--history", str(history), "--html", "")
    assert code == 0


def test_report_append_grows_history_once(capsys, tmp_path):
    _bench_record(tmp_path, "demo", 1.0)
    history = tmp_path / "history.jsonl"
    code, out, _ = run_cli(capsys, "report", "--append",
                           "--records", str(tmp_path),
                           "--history", str(history), "--html", "")
    assert code == 0
    assert "1 new row(s)" in out
    code, out, _ = run_cli(capsys, "report", "--append",
                           "--records", str(tmp_path),
                           "--history", str(history), "--html", "")
    assert "0 new row(s)" in out               # identity-deduped


def test_report_experiments_keeps_old_bundle(capsys):
    code, out, _ = run_cli(capsys, "--sample", "6", "--no-cache",
                           "report", "--experiments")
    assert code == 0
    assert "Fig. 3" in out


def _coverage_pct(out):
    import re

    m = re.search(r"\((\d+(?:\.\d+)?)% covered\)", out)
    assert m, out
    return float(m.group(1))


def test_trace_command_breakdown_covers_wall(capsys, untraced):
    code, out, _ = run_cli(capsys, "trace", "fir4")
    assert code == 0
    assert "pipeline.schedule" in out
    assert "sched.ii_accepted" in out
    assert _coverage_pct(out) >= 90.0          # stage sum within 10%


def test_trace_clustered_counts_partition_rounds(capsys, untraced):
    code, out, _ = run_cli(capsys, "trace", "dot", "--clusters", "2")
    assert code == 0
    assert "partition.placements" in out


def test_schedule_trace_flag_appends_breakdown(capsys, untraced):
    code, out, _ = run_cli(capsys, "schedule", "daxpy", "--trace")
    assert code == 0
    assert "simulated" in out                  # normal dump still there
    assert "pipeline.schedule" in out
    assert _coverage_pct(out) >= 90.0


def test_trace_unknown_kernel(capsys):
    code, _, err = run_cli(capsys, "trace", "nope")
    assert code == 2
    assert "unknown kernel" in err


def test_faults_flag_arms_the_global_plan(capsys):
    from repro import faults

    try:
        code, out, _ = run_cli(capsys, "--faults",
                               "seed=7;cache.put=torn:0.5", "schedulers")
        assert code == 0
        plan = faults.active_plan()
        assert plan is not None and plan.seed == 7
    finally:
        faults.disable_faults()


def test_bad_faults_spec_is_a_usage_error(capsys):
    from repro import faults

    code, _, err = run_cli(capsys, "--faults", "bogus.site=raise:1",
                           "schedulers")
    assert code == 2
    assert "bad --faults spec" in err
    assert not faults.faults_enabled()


def test_supervision_flags_reach_the_runner_config():
    from repro.cli import _runner

    args = build_parser().parse_args(
        ["--jobs", "2", "--no-cache", "--job-deadline", "0",
         "--retries", "3", "corpus"])
    config = _runner(args)
    assert config.job_deadline_s is None          # 0 disables
    assert config.max_retries == 3
    args = build_parser().parse_args(["--no-cache", "corpus"])
    config = _runner(args)
    assert config.job_deadline_s == 120.0
    assert config.max_retries == 1

"""Integration test for the bundled report (what the CLI's `report`
command and EXPERIMENTS.md lean on)."""

from repro.analysis.report import full_report
from repro.workloads.corpus import paper_corpus
from repro.workloads.kernels import all_kernels


def test_full_report_bundles_all_sections():
    loops = paper_corpus()[:10] + all_kernels()[:6]
    text = full_report(loops)
    for marker in ("Fig. 3", "copy-operation impact", "Fig. 4",
                   "Fig. 6", "queue requirements"):
        assert marker in text, marker
    # sections separated for readability
    assert text.count("=" * 72) >= 4


def test_full_report_sweep_optional():
    loops = paper_corpus()[:6]
    with_sweep = full_report(loops, include_sweep=True)
    assert "IPC" in with_sweep

"""Unit tests for metrics and aggregates."""

import pytest

from repro.analysis.metrics import (LoopOutcome, cumulative_within,
                                    fraction, mean, mean_static_ipc,
                                    percentile, weighted_dynamic_ipc)


def outcome(ii=2, n_body=10, sc=3, trip=100, unroll=1, failed=False):
    return LoopOutcome(
        loop="l", machine="m", n_source_ops=n_body // unroll,
        n_body_ops=n_body, unroll_factor=unroll, n_copies=0,
        ii=ii, mii=ii, res_mii=ii, rec_mii=1, stage_count=sc,
        trip_count=trip, failed=failed)


class TestLoopOutcome:
    def test_static_ipc(self):
        assert outcome(ii=2, n_body=10).static_ipc == 5.0

    def test_kernel_iterations_ceil(self):
        assert outcome(trip=10, unroll=4).kernel_iterations == 3

    def test_total_cycles(self):
        o = outcome(ii=2, sc=3, trip=10)
        assert o.total_cycles == (10 + 2) * 2

    def test_dynamic_below_static(self):
        o = outcome()
        assert o.dynamic_ipc < o.static_ipc

    def test_ii_per_iteration(self):
        assert outcome(ii=3, unroll=2).ii_per_iteration == 1.5

    def test_achieved_mii(self):
        assert outcome().achieved_mii


class TestAggregates:
    def test_fraction(self):
        assert fraction([True, False, True, True]) == 0.75
        assert fraction([]) == 0.0

    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_percentile(self):
        vals = list(range(1, 101))
        assert percentile(vals, 0) == 1
        assert percentile(vals, 100) == 100
        assert 49 <= percentile(vals, 50) <= 51
        assert percentile([], 50) == 0.0

    def test_cumulative_within(self):
        out = cumulative_within([1, 5, 9, 33], (4, 8, 16, 32))
        assert out[4] == 0.25
        assert out[8] == 0.5
        assert out[16] == 0.75
        assert out[32] == 0.75

    def test_mean_static_ipc_skips_failed(self):
        outs = [outcome(ii=2, n_body=10),
                outcome(ii=1, n_body=10, failed=True)]
        assert mean_static_ipc(outs) == 5.0

    def test_weighted_dynamic_ipc_weighting(self):
        # one tiny loop and one huge loop: the huge one dominates
        small = outcome(ii=10, n_body=10, trip=10)     # poor ipc 1.0
        huge = outcome(ii=1, n_body=10, trip=100_000)  # great ipc ~10
        ipc = weighted_dynamic_ipc([small, huge])
        assert ipc > 8.0

    def test_weighted_dynamic_ipc_empty(self):
        assert weighted_dynamic_ipc([]) == 0.0

"""The project lint framework: rules fire on the idioms they police,
stay silent on the disciplined variants, and the baseline diff admits
exactly the debt it recorded (DESIGN §5.9)."""

import subprocess
import sys
import textwrap
from repro.analysis.lint import (ALL_RULES, Finding, load_baseline,
                                 new_findings, run_lint, write_baseline)
from repro.analysis.lint.cli import main as lint_main
from repro.analysis.lint.rules import (BareExceptRule, HotLoopAllocRule,
                                       NondeterminismRule, ShardLockRule,
                                       TracerDisciplineRule, UntypedDefRule)


def _lint_source(tmp_path, source, *, rule, rel="src/repro/x.py"):
    """Run one rule over one synthetic file laid out under a fake repo."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(textwrap.dedent(source))
    return run_lint(tmp_path, rules=[rule], paths=[rel])


# ------------------------------------------------------------------ rules

class TestHotLoopAlloc:
    def test_fires_on_comprehension_in_placement_loop(self, tmp_path):
        found = _lint_source(tmp_path, """
            def try_at_ii(ops):
                for op in ops:
                    xs = [o for o in ops]
                return xs
        """, rule=HotLoopAllocRule())
        assert [f.rule for f in found] == ["R001-hot-loop-alloc"]

    def test_silent_outside_hot_functions(self, tmp_path):
        found = _lint_source(tmp_path, """
            def anything_else(ops):
                for op in ops:
                    xs = [o for o in ops]
                return xs
        """, rule=HotLoopAllocRule())
        assert found == []

    def test_silent_on_hoisted_allocation(self, tmp_path):
        found = _lint_source(tmp_path, """
            def first_free(ops):
                xs = []
                for op in ops:
                    xs.append(op)
                return xs
        """, rule=HotLoopAllocRule())
        assert found == []


class TestNondeterminism:
    def test_wall_clock_on_fingerprinted_path(self, tmp_path):
        found = _lint_source(tmp_path, """
            import time
            def stamp():
                return time.time()
        """, rule=NondeterminismRule(), rel="src/repro/sched/x.py")
        assert [f.rule for f in found] == ["R002-nondeterminism"]

    def test_unseeded_and_module_level_random(self, tmp_path):
        found = _lint_source(tmp_path, """
            import random
            def draw():
                return random.Random(), random.randint(0, 9)
        """, rule=NondeterminismRule(), rel="src/repro/ir/x.py")
        assert len(found) == 2

    def test_seeded_rng_and_perf_counter_are_fine(self, tmp_path):
        found = _lint_source(tmp_path, """
            import random, time
            def draw(seed):
                t0 = time.perf_counter()
                return random.Random(seed).random(), t0
        """, rule=NondeterminismRule(), rel="src/repro/sched/x.py")
        assert found == []

    def test_out_of_scope_path_is_ignored(self, tmp_path):
        found = _lint_source(tmp_path, """
            import time
            def stamp():
                return time.time()
        """, rule=NondeterminismRule(), rel="src/repro/obs/x.py")
        assert found == []


class TestShardLock:
    REL = "src/repro/runner/cache.py"

    def test_unlocked_shard_write_fires(self, tmp_path):
        found = _lint_source(tmp_path, """
            class ShardedResultCache:
                def write(self, path, line):
                    with open(path, "a") as fh:
                        fh.write(line)
        """, rule=ShardLockRule(), rel=self.REL)
        assert [f.rule for f in found] == ["R003-shard-lock"]

    def test_locked_write_is_fine_even_nested(self, tmp_path):
        found = _lint_source(tmp_path, """
            class ShardedResultCache:
                def write(self, shard, line):
                    with self._shard_lock(shard):
                        if line:
                            with open(shard, "a") as fh:
                                fh.write(line)
        """, rule=ShardLockRule(), rel=self.REL)
        assert found == []

    def test_reads_never_fire(self, tmp_path):
        found = _lint_source(tmp_path, """
            class ShardedResultCache:
                def read(self, path):
                    with open(path) as fh:
                        return fh.read()
        """, rule=ShardLockRule(), rel=self.REL)
        assert found == []


class TestBareExcept:
    def test_fires(self, tmp_path):
        found = _lint_source(tmp_path, """
            def f():
                try:
                    return 1
                except:
                    return 0
        """, rule=BareExceptRule())
        assert [f.rule for f in found] == ["R004-bare-except"]

    def test_typed_handler_is_fine(self, tmp_path):
        found = _lint_source(tmp_path, """
            def f():
                try:
                    return 1
                except ValueError:
                    return 0
        """, rule=BareExceptRule())
        assert found == []


class TestTracerDiscipline:
    def test_direct_singleton_access_fires(self, tmp_path):
        found = _lint_source(tmp_path, """
            from repro.obs import trace
            def f(x):
                trace._TRACER.record("stage", x)
        """, rule=TracerDisciplineRule())
        assert [f.rule for f in found] == ["R005-tracer-discipline"]

    def test_trace_module_itself_is_exempt(self, tmp_path):
        found = _lint_source(tmp_path, """
            _TRACER = object()
        """, rule=TracerDisciplineRule(), rel="src/repro/obs/trace.py")
        assert found == []


class TestUntypedDef:
    REL = "src/repro/runner/x.py"

    def test_unannotated_param_and_return(self, tmp_path):
        found = _lint_source(tmp_path, """
            def f(x):
                return x
            def g(y: int):
                return y
        """, rule=UntypedDefRule(), rel=self.REL)
        assert len(found) == 2
        assert "unannotated parameter(s) x" in found[0].message
        assert "missing return annotation" in found[1].message

    def test_mypy_conventions(self, tmp_path):
        found = _lint_source(tmp_path, """
            class C:
                def __init__(self, n: int):
                    self.n = n
                def m(self, k: int) -> int:
                    return self.n + k
        """, rule=UntypedDefRule(), rel=self.REL)
        assert found == []

    def test_untyped_packages_are_out_of_scope(self, tmp_path):
        found = _lint_source(tmp_path, """
            def f(x):
                return x
        """, rule=UntypedDefRule(), rel="src/repro/analysis/x.py")
        assert found == []


def test_parse_error_becomes_a_finding(tmp_path):
    found = _lint_source(tmp_path, "def broken(:\n",
                         rule=BareExceptRule())
    assert [f.rule for f in found] == ["parse-error"]


# --------------------------------------------------------------- baseline

def _finding(snippet, rule="R00X", path="src/repro/x.py", line=1):
    return Finding(rule=rule, path=path, line=line, message="m",
                   snippet=snippet)


class TestBaseline:
    def test_fingerprint_is_line_drift_stable(self):
        a = _finding("xs = [1]", line=10)
        b = _finding("xs = [1]", line=99)
        assert a.fingerprint == b.fingerprint
        assert a.fingerprint != _finding("ys = [1]").fingerprint

    def test_round_trip_and_diff(self, tmp_path):
        old = [_finding("a"), _finding("b")]
        path = tmp_path / "baseline.json"
        write_baseline(path, old)
        baseline = load_baseline(path)
        assert new_findings(old, baseline) == []
        fresh = new_findings([*old, _finding("c")], baseline)
        assert [f.snippet for f in fresh] == ["c"]

    def test_counts_admit_exactly_the_recorded_occurrences(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [_finding("dup"), _finding("dup")])
        baseline = load_baseline(path)
        assert new_findings([_finding("dup")] * 2, baseline) == []
        assert len(new_findings([_finding("dup")] * 3, baseline)) == 1

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == {}


# ------------------------------------------------------------------- gate

def _repo_root():
    import repro
    import pathlib
    return pathlib.Path(repro.__file__).resolve().parents[2]


def test_repo_is_clean_against_committed_baseline():
    """The gate CI enforces: the tree as committed has no new findings."""
    root = _repo_root()
    baseline = load_baseline(root / "tools" / "lint-baseline.json")
    fresh = new_findings(run_lint(root), baseline)
    assert fresh == [], "\n".join(f.describe() for f in fresh)


def test_cli_exit_codes(tmp_path):
    root = _repo_root()
    assert lint_main(["--root", str(root)]) == 0
    assert lint_main(["--list-rules"]) == 0
    # against an empty baseline the accepted debt counts as new
    assert lint_main(["--root", str(root), "--baseline", ""]) == 1
    assert lint_main(["--root", str(tmp_path)]) == 2  # no src/ tree

def test_rule_catalogue_is_well_formed():
    names = [r.name for r in ALL_RULES]
    assert len(names) == len(set(names))
    assert all(r.name and r.description for r in ALL_RULES)


def test_module_entry_point():
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis.lint", "--list-rules"],
        capture_output=True, text=True, cwd=_repo_root())
    assert proc.returncode == 0
    assert "R001-hot-loop-alloc" in proc.stdout

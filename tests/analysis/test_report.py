"""Unit tests for report rendering."""

from repro.analysis.report import (bar, bar_chart, percent_chart,
                                   series_table)


def test_bar_scaling():
    assert bar(5, scale=10, width=10) == "#####"
    assert bar(20, scale=10, width=10) == "#" * 10   # clamped
    assert bar(0, scale=10) == ""
    assert bar(1, scale=0) == ""


def test_bar_chart():
    text = bar_chart({"a": 1.0, "bb": 2.0})
    lines = text.splitlines()
    assert len(lines) == 2
    assert lines[0].startswith("a  |")
    assert "#" in lines[1]


def test_bar_chart_empty():
    assert bar_chart({}) == "(no data)"


def test_percent_chart():
    text = percent_chart({"x": 0.5})
    assert "50.0%" in text


def test_series_table():
    text = series_table("FUs", [4, 6],
                        {"static": {4: 1.5, 6: 2.5},
                         "dynamic": {4: 1.2}})
    assert "FUs" in text
    assert "1.50" in text
    lines = text.splitlines()
    assert len(lines) == 3  # header + 2 rows

"""Integration tests for the experiment drivers (tiny corpus subsets).

These assert the *shape* invariants the paper's figures rest on, on a
subset small enough for CI; the benchmarks run the full-size versions.
"""

import pytest

from repro.analysis.experiments import (ablation_copy_tree, ablation_moves,
                                        ablation_partition, compile_loop,
                                        fig3_queue_requirements,
                                        fig4_unroll_speedup,
                                        fig6_ii_variation, fig8_ipc,
                                        fig9_ipc_rc, sec2_copy_impact,
                                        sec4_cluster_queues)
from repro.machine.presets import clustered_machine, qrf_machine
from repro.workloads.corpus import paper_corpus
from repro.workloads.kernels import all_kernels


@pytest.fixture(scope="module")
def loops():
    return paper_corpus()[:30] + all_kernels()


class TestCompileLoop:
    def test_single_cluster(self, loops):
        c = compile_loop(loops[0], qrf_machine(4))
        assert not c.outcome.failed
        assert c.outcome.ii >= c.outcome.mii

    def test_clustered(self, loops):
        c = compile_loop(loops[0], clustered_machine(4))
        assert not c.outcome.failed

    def test_auto_unroll(self, loops):
        c = compile_loop(loops[0], qrf_machine(12), do_unroll=True)
        assert c.outcome.unroll_factor >= 1

    def test_explicit_factor_wins(self, loops):
        c = compile_loop(loops[0], qrf_machine(12), unroll_factor=3)
        assert c.outcome.unroll_factor == 3


class TestFig3(object):
    def test_monotone_buckets(self, loops):
        res = fig3_queue_requirements(loops, [qrf_machine(4)])
        row = res.by_machine["queu-4fu"]
        assert row[4] <= row[8] <= row[16] <= row[32]

    def test_32_queues_covers_most(self, loops):
        res = fig3_queue_requirements(loops)
        for row in res.by_machine.values():
            assert row[32] >= 0.9   # paper: ~all loops within 32 queues

    def test_render(self, loops):
        text = fig3_queue_requirements(loops, [qrf_machine(4)]).render()
        assert "Fig. 3" in text and "%" in text


class TestSec2:
    def test_majority_keep_ii(self, loops):
        res = sec2_copy_impact(loops, [qrf_machine(4)])
        assert res.same_ii["queu-4fu"] >= 0.7

    def test_render(self, loops):
        assert "copy" in sec2_copy_impact(
            loops, [qrf_machine(4)]).render()


class TestFig4:
    def test_speedups_at_least_one(self, loops):
        res = fig4_unroll_speedup(loops, [qrf_machine(12)])
        for spd in res.speedups["queu-12fu"]:
            assert spd >= 1.0 - 1e-9

    def test_wider_machines_gain_more(self, loops):
        res = fig4_unroll_speedup(loops, [qrf_machine(4),
                                          qrf_machine(12)])
        assert res.speedup_gt1["queu-12fu"] >= \
            res.speedup_gt1["queu-4fu"]


class TestFig6:
    def test_same_ii_fraction_decreases_with_clusters(self, loops):
        res = fig6_ii_variation(loops, cluster_counts=(4, 6))
        assert res.same_ii[4] >= res.same_ii[6]

    def test_fractions_in_range(self, loops):
        res = fig6_ii_variation(loops, cluster_counts=(4,))
        assert 0.5 <= res.same_ii[4] <= 1.0


class TestSec4:
    def test_budget_fits_most(self, loops):
        res = sec4_cluster_queues(loops, cluster_counts=(4,))
        # paper: the 8+8+8 budget suffices for all but "a small fraction
        # of loops"
        assert res.fits_budget[4] >= 0.8
        assert res.p95_private[4] <= 10
        assert res.p95_ring[4] <= 8


class TestIpcSweep:
    def test_ipc_grows_with_fus(self, loops):
        res = fig8_ipc(loops, fus=(4, 12), clustered_counts=())
        assert res.static_single[12] > res.static_single[4]

    def test_dynamic_below_static(self, loops):
        res = fig8_ipc(loops, fus=(6,), clustered_counts=())
        assert res.dynamic_single[6] <= res.static_single[6]

    def test_clustered_at_most_single(self, loops):
        res = fig8_ipc(loops, fus=(12,), clustered_counts=(4,))
        assert res.static_clustered[12] <= res.static_single[12] + 1e-9

    def test_rc_filter_higher_ipc(self, loops):
        all_res = fig8_ipc(loops, fus=(12,), clustered_counts=())
        rc_res = fig9_ipc_rc(loops, fus=(12,), clustered_counts=())
        # resource-constrained loops use the machine at least as well
        assert rc_res.static_single[12] >= all_res.static_single[12] - 1e-9

    def test_render(self, loops):
        text = fig8_ipc(loops, fus=(4,), clustered_counts=()).render()
        assert "static" in text


class TestAblations:
    def test_copy_tree(self, loops):
        res = ablation_copy_tree(loops[:15], qrf_machine(6),
                                 strategies=("chain", "slack"))
        assert set(res.same_ii) == {"chain", "slack"}
        assert res.same_ii["slack"] >= res.same_ii["chain"] - 0.15

    def test_partition(self, loops):
        res = ablation_partition(loops[:12], n_clusters=4,
                                 strategies=("affinity", "first"))
        assert 0.0 <= res.same_ii["first"] <= 1.0

    def test_moves_recover(self, loops):
        res = ablation_moves(loops[:12], cluster_counts=(6,))
        assert res.with_moves[6] >= res.without_moves[6] - 1e-9


class TestSchedulerCompare:
    def test_all_registered_engines_over_presets(self, loops):
        from repro.analysis.experiments import exp_scheduler_compare

        res = exp_scheduler_compare(loops)
        assert set(res.schedulers) == {"ims", "sms"}
        # the default engine is pinned first: it is the mii_match baseline
        assert res.schedulers[0] == "ims"
        assert len(res.machines) >= 3       # the paper's 4/6/12-FU presets
        for m in res.machines:
            for s in res.schedulers:
                assert res.n_ok[(m, s)] > 0
                assert 0.0 <= res.mii_rate[(m, s)] <= 1.0
                assert res.mean_ii_excess[(m, s)] >= 0.0
            # the baseline trivially matches itself
            assert res.mii_match[(m, res.schedulers[0])] == 1.0
            # acceptance: SMS hits MII on >= 80% of the loops IMS does
            assert res.mii_match[(m, "sms")] >= 0.8
            # SMS never evicts; IMS's count is >= 0 by construction
            assert res.mean_evictions[(m, "sms")] == 0.0

    def test_engine_subset_and_render(self, loops):
        from repro.analysis.experiments import exp_scheduler_compare

        res = exp_scheduler_compare(loops[:10], [qrf_machine(4)],
                                    schedulers=("sms",))
        text = res.render()
        assert "scheduler comparison" in text
        assert "sms" in text

    def test_sms_compiles_corpus_via_pipeline_options(self, loops):
        """PipelineOptions(scheduler="sms") end to end: failures allowed,
        crashes not."""
        from repro.runner import CompileJob, PipelineOptions, run_jobs

        opts = PipelineOptions(scheduler="sms")
        results = run_jobs(
            [CompileJob(ddg, qrf_machine(6), opts) for ddg in loops])
        assert len(results) == len(loops)
        assert any(not r.outcome.failed for r in results)

"""Tests for the supplementary experiments (S1, E6b, A4)."""

import pytest

from repro.analysis.experiments import (register_pressure,
                                        ring_latency_sensitivity,
                                        spill_budget)
from repro.machine.presets import qrf_machine
from repro.workloads.corpus import paper_corpus


@pytest.fixture(scope="module")
def loops():
    return paper_corpus()[:16]


class TestRegisterPressure:
    def test_bounds_ordering(self, loops):
        res = register_pressure(loops, [qrf_machine(6)])
        name = "queu-6fu"
        assert res.mean_max_live[name] <= res.mean_rotating[name]
        assert res.mean_mve_unroll[name] >= 1.0
        assert res.p95_queues[name] >= 1

    def test_render(self, loops):
        text = register_pressure(loops, [qrf_machine(6)]).render()
        assert "MaxLive" in text and "MVE" in text


class TestSpillBudget:
    def test_monotone_in_budget(self, loops):
        res = spill_budget(loops, budgets=((2, 4), (8, 8), (64, 32)))
        assert res.no_spill_fraction[(2, 4)] <= \
            res.no_spill_fraction[(8, 8)] <= \
            res.no_spill_fraction[(64, 32)]
        assert res.no_spill_fraction[(64, 32)] == 1.0
        assert res.mean_spills[(64, 32)] == 0.0

    def test_render(self, loops):
        assert "spill" in spill_budget(
            loops, budgets=((8, 8),)).render()


class TestRingLatency:
    def test_latency_never_helps(self, loops):
        res = ring_latency_sensitivity(loops, latencies=(0, 2),
                                       cluster_counts=(4,))
        assert res.same_ii[0][4] >= res.same_ii[2][4] - 1e-9

    def test_render(self, loops):
        text = ring_latency_sensitivity(loops, latencies=(0,),
                                        cluster_counts=(4,)).render()
        assert "xlat" in text

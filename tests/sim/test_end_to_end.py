"""End-to-end integration: the full pipeline on every workload family.

Each case runs unroll -> copy insertion -> (partitioned) scheduling ->
queue allocation -> token simulation and checks every operand delivery
against the DDG's reference semantics.
"""

import pytest

from repro.machine.cluster import make_clustered
from repro.machine.presets import (clustered_machine, qrf_machine)
from repro.sim.checker import run_pipeline
from repro.workloads.kernels import KERNELS, kernel


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_every_kernel_single_cluster(name):
    res = run_pipeline(kernel(name), qrf_machine(4), iterations=10)
    assert res.sim.reads_checked > 0
    assert res.schedule.ii >= 1


@pytest.mark.parametrize("name", ["daxpy", "dot", "cmul", "wide8",
                                  "tridiag", "redtree"])
@pytest.mark.parametrize("n_clusters", [2, 4, 6])
def test_kernels_clustered(name, n_clusters):
    res = run_pipeline(kernel(name), clustered_machine(n_clusters),
                       iterations=8)
    res.schedule.validate(
        clustered_machine(n_clusters).cluster.fus.as_dict(),
        adjacency=clustered_machine(n_clusters))


@pytest.mark.parametrize("factor", [2, 3, 4])
def test_unrolled_pipeline(factor):
    res = run_pipeline(kernel("daxpy"), qrf_machine(6),
                       unroll_factor=factor, iterations=12)
    assert res.unroll_factor == factor
    assert res.ddg.n_ops >= factor * 5


@pytest.mark.parametrize("strategy", ["chain", "balanced", "slack"])
def test_copy_strategies_end_to_end(strategy):
    # norm2: x * x gives the load a fan-out of 2 -> one copy op
    res = run_pipeline(kernel("norm2"), qrf_machine(6),
                       copy_strategy=strategy, iterations=8)
    assert res.n_copies > 0


def test_synth_sample_single_cluster(synth_small):
    for ddg in synth_small:
        res = run_pipeline(ddg, qrf_machine(6), iterations=6)
        assert res.sim.ops_executed == 6 * res.schedule.n_ops


def test_synth_sample_clustered(synth_small):
    cm = make_clustered(4)
    for ddg in synth_small[:8]:
        res = run_pipeline(ddg, cm, iterations=6)
        res.schedule.validate(cm.cluster.fus.as_dict(), adjacency=cm)


def test_unrolled_clustered_synth(synth_small):
    cm = make_clustered(5)
    for ddg in synth_small[:4]:
        res = run_pipeline(ddg, cm, unroll_factor=2, iterations=8)
        assert res.sim.reads_checked > 0


def test_pipeline_result_fields(daxpy_ddg):
    res = run_pipeline(daxpy_ddg, qrf_machine(4), iterations=8)
    assert res.ii == res.schedule.ii
    assert res.total_queues == res.usage.total_queues
    assert res.n_copies == 0   # daxpy has no fan-out

"""Unit tests for the token reference semantics."""

from repro.sim.reference import (carried_in_tokens, carried_out_count,
                                 enumerate_expected, expected_operand,
                                 value_token)
from repro.workloads.kernels import daxpy, dot_product, long_recurrence


class TestTokens:
    def test_value_token_identity(self):
        assert value_token(3, 5) == ("v", 3, 5)
        assert value_token(3, 5) == value_token(3, 5)
        assert value_token(3, 5) != value_token(3, 6)

    def test_expected_operand_intra_iteration(self):
        ddg = daxpy()
        e = next(ddg.data_edges())
        assert expected_operand(e, 7) == value_token(e.src, 7)

    def test_expected_operand_carried(self):
        ddg = dot_product()
        carried = next(e for e in ddg.data_edges() if e.distance == 1)
        assert expected_operand(carried, 3) == value_token(carried.src, 2)
        assert expected_operand(carried, 0) == value_token(carried.src, -1)


class TestEnumeration:
    def test_counts(self):
        ddg = daxpy()
        n_edges = sum(1 for _ in ddg.data_edges())
        checks = enumerate_expected(ddg, 5)
        assert len(checks) == 5 * n_edges

    def test_order_by_iteration(self):
        checks = enumerate_expected(daxpy(), 3)
        iters = [c.iteration for c in checks]
        assert iters == sorted(iters)


class TestCarried:
    def test_carried_in_matches_distance_sum(self):
        ddg = long_recurrence()   # distance-3 recurrence
        tokens = carried_in_tokens(ddg)
        assert len(tokens) == 3
        assert carried_out_count(ddg) == 3
        negs = sorted(t[2] for _e, t in tokens)
        assert negs == [-3, -2, -1]

    def test_acyclic_has_none(self):
        assert carried_in_tokens(daxpy()) == []
        assert carried_out_count(daxpy()) == 0

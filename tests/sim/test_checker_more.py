"""Extra coverage of the end-to-end pipeline checker."""

import pytest

from repro.machine.cluster import make_clustered
from repro.machine.presets import crf_machine, qrf_machine
from repro.sched.ims import ImsConfig
from repro.sched.partition import PartitionConfig
from repro.sim.checker import run_pipeline
from repro.workloads.kernels import daxpy, dot_product, norm2


def test_custom_ims_config():
    res = run_pipeline(daxpy(), qrf_machine(4),
                       sched_config=ImsConfig(budget_ratio=3),
                       iterations=8)
    assert res.ii == 2


def test_custom_partition_config():
    cm = make_clustered(4)
    res = run_pipeline(daxpy(), cm,
                       sched_config=PartitionConfig(strategy="balance"),
                       iterations=8)
    res.schedule.validate(cm.cluster.fus.as_dict(), adjacency=cm)


def test_custom_sms_config_selects_sms_engine():
    from repro.sched.strategies import SmsConfig

    res = run_pipeline(daxpy(), qrf_machine(4),
                       sched_config=SmsConfig(), iterations=8)
    assert res.ii == 2


def test_mismatched_sched_config_rejected():
    with pytest.raises(TypeError, match="sched_config"):
        run_pipeline(daxpy(), qrf_machine(4),
                     sched_config=PartitionConfig())


def test_conventional_machine_reports_registers():
    res = run_pipeline(norm2(), crf_machine(4), iterations=8)
    assert res.n_copies == 0
    assert res.usage is None and res.sim is None
    assert res.registers is not None
    assert res.registers.max_live >= 0
    with pytest.raises(ValueError):
        _ = res.total_queues


def test_iterations_default_covers_pipeline():
    res = run_pipeline(dot_product(), qrf_machine(6))
    assert res.sim.iterations >= res.schedule.stage_count


def test_sim_ipc_matches_outcome_model():
    """The simulator's measured dynamic IPC must equal the analytical
    model in metrics (same cycle formula)."""
    res = run_pipeline(daxpy(), qrf_machine(4), iterations=40)
    model_cycles = res.schedule.cycles_for(40)
    assert res.sim.cycles == model_cycles
    assert res.sim.dynamic_ipc == pytest.approx(
        res.schedule.n_ops * 40 / model_cycles)


def test_unroll_factor_recorded():
    res = run_pipeline(daxpy(), qrf_machine(12), unroll_factor=4,
                       iterations=12)
    assert res.unroll_factor == 4
    assert res.ddg.n_ops == res.schedule.n_ops

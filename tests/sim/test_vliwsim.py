"""Unit tests for the token simulator, including negative tests: the
simulator must *detect* corrupted schedules and allocations."""

import pytest

from repro.ir.copyins import insert_copies
from repro.machine.presets import qrf_machine
from repro.regalloc.lifetimes import Location, LocationKind
from repro.regalloc.queues import (QueueAllocation, ScheduleQueueUsage,
                                   allocate_for_schedule)
from repro.sched.ims import modulo_schedule
from repro.sim.vliwsim import SimulationError, VliwSimulator, simulate
from repro.workloads.kernels import daxpy, dot_product, long_recurrence


def compiled(ddg, n_fus=4):
    m = qrf_machine(n_fus)
    s = modulo_schedule(insert_copies(ddg).ddg, m)
    usage = allocate_for_schedule(s)
    return s, usage, m


class TestHappyPath:
    def test_daxpy_runs(self):
        s, usage, m = compiled(daxpy())
        rep = simulate(s, usage, iterations=10,
                       capacities=m.fus.as_dict())
        assert rep.iterations == 10
        assert rep.ops_executed == 10 * s.n_ops
        assert rep.reads_checked > 0
        assert rep.cycles == s.cycles_for(10)
        assert 0 < rep.dynamic_ipc <= s.static_ipc()

    def test_carried_preload_and_drain(self):
        s, usage, m = compiled(long_recurrence())
        rep = simulate(s, usage, iterations=9)
        assert rep.peak_queue_occupancy >= 1

    def test_default_iterations(self):
        s, usage, _ = compiled(daxpy())
        rep = VliwSimulator(s, usage).run()
        assert rep.iterations >= s.stage_count

    def test_bad_iterations(self):
        s, usage, _ = compiled(daxpy())
        with pytest.raises(ValueError):
            simulate(s, usage, iterations=0)


class TestDetection:
    def test_corrupted_sigma_detected(self):
        """Moving a consumer before its producer's value is ready must be
        caught (wrong token, underflow, or port conflict)."""
        from repro.sim.qrf import QueuePortError, QueueUnderflowError
        s, usage, _ = compiled(daxpy())
        edge = max(s.ddg.data_edges(), key=lambda e: s.edge_slack(e))
        s.sigma[edge.dst] = s.sigma[edge.src] - 1
        with pytest.raises((SimulationError, QueueUnderflowError,
                            QueuePortError)):
            simulate(s, usage, iterations=8)

    def test_fanout_without_copies_rejected(self):
        m = qrf_machine(4)
        s = modulo_schedule(daxpy(), m)   # no copy insertion
        # daxpy has no fanout>1, so force one: use a loop with fanout
        from repro.workloads.kernels import norm2
        s2 = modulo_schedule(norm2(), m)
        usage = allocate_for_schedule(s2)
        with pytest.raises(SimulationError, match="write"):
            VliwSimulator(s2, usage)

    def test_bad_queue_sharing_detected(self):
        """Force two incompatible lifetimes into one queue: the simulator
        must catch the FIFO-order break."""
        from repro.regalloc.lifetimes import extract_lifetimes
        from repro.regalloc.queues import q_compatible
        s, usage, _ = compiled(daxpy())
        lts = extract_lifetimes(s)
        bad_pair = None
        for i, a in enumerate(lts):
            for b in lts[i + 1:]:
                if not q_compatible(a, b, s.ii):
                    bad_pair = (a, b)
                    break
            if bad_pair:
                break
        if bad_pair is None:
            pytest.skip("no incompatible pair in this schedule")
        rest = [l for l in lts if l not in bad_pair]
        loc = Location(LocationKind.PRIVATE, 0)
        bad_alloc = QueueAllocation(
            ii=s.ii, location=loc,
            queues=[list(bad_pair)] + [[l] for l in rest])
        bad_usage = ScheduleQueueUsage(ii=s.ii,
                                       by_location={loc: bad_alloc})
        from repro.sim.qrf import QueuePortError, QueueUnderflowError
        with pytest.raises((SimulationError, QueuePortError,
                            QueueUnderflowError)):
            simulate(s, bad_usage, iterations=10)

    def test_missing_queue_detected(self):
        s, usage, _ = compiled(daxpy())
        loc = Location(LocationKind.PRIVATE, 0)
        empty = ScheduleQueueUsage(
            ii=s.ii,
            by_location={loc: QueueAllocation(ii=s.ii, location=loc)})
        with pytest.raises(SimulationError, match="no queue"):
            VliwSimulator(s, empty)

    def test_fu_oversubscription_detected(self):
        from repro.ir.operations import FuType
        s, usage, m = compiled(daxpy())
        # lie about capacities: claim only 1 L/S unit
        caps = dict(m.fus.as_dict())
        caps[FuType.LS] = 1
        with pytest.raises(SimulationError, match="issues"):
            simulate(s, usage, iterations=6, capacities=caps)


class TestOccupancyPrediction:
    def test_sim_never_exceeds_predicted_depth(self):
        for ddg in (daxpy(), dot_product(), long_recurrence()):
            s, usage, m = compiled(ddg, 6)
            rep = simulate(s, usage, iterations=12,
                           capacities=m.fus.as_dict())
            for name, occ in rep.max_occupancy.items():
                assert occ <= rep.predicted_depth[name]

    def test_prediction_tight_in_steady_state(self):
        """For long runs the observed peak should *equal* the predicted
        positions (the analysis is exact, not just an upper bound)."""
        s, usage, m = compiled(daxpy())
        rep = simulate(s, usage, iterations=50,
                       capacities=m.fus.as_dict())
        for name, occ in rep.max_occupancy.items():
            assert occ == rep.predicted_depth[name], name

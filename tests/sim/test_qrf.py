"""Unit tests for the FIFO queue hardware model."""

import pytest

from repro.sim.qrf import FifoQueue, QueuePortError, QueueUnderflowError


class TestFifoOrder:
    def test_fifo(self):
        q = FifoQueue()
        q.push("a", 0)
        q.push("b", 1)
        assert q.pop(2) == "a"
        assert q.pop(3) == "b"

    def test_occupancy_tracking(self):
        q = FifoQueue()
        q.push("a", 0)
        q.push("b", 1)
        assert q.occupancy == 2
        assert q.max_occupancy == 2
        q.pop(2)
        assert q.occupancy == 1
        assert q.max_occupancy == 2


class TestPorts:
    def test_double_write_same_cycle(self):
        q = FifoQueue()
        q.push("a", 5)
        with pytest.raises(QueuePortError):
            q.push("b", 5)

    def test_double_read_same_cycle(self):
        q = FifoQueue()
        q.push("a", 0)
        q.push("b", 1)
        q.pop(2)
        with pytest.raises(QueuePortError):
            q.pop(2)

    def test_write_then_read_same_cycle_ok(self):
        q = FifoQueue()
        q.push("a", 3)
        assert q.pop(3) == "a"   # bypass

    def test_underflow(self):
        q = FifoQueue()
        with pytest.raises(QueueUnderflowError):
            q.pop(0)

    def test_capacity_enforced(self):
        q = FifoQueue(capacity=1)
        q.push("a", 0)
        with pytest.raises(QueuePortError, match="capacity"):
            q.push("b", 1)


class TestPreloadAndDrain:
    def test_preload_no_port_accounting(self):
        q = FifoQueue()
        q.preload("init")
        q.preload("init2")       # two preloads allowed (before time)
        assert q.occupancy == 2
        assert q.pop(0) == "init"

    def test_drain(self):
        q = FifoQueue()
        q.push("a", 0)
        q.push("b", 1)
        assert q.drain() == ["a", "b"]
        assert q.occupancy == 0

    def test_counters(self):
        q = FifoQueue()
        q.push("a", 0)
        q.pop(1)
        assert q.n_writes == 1
        assert q.n_reads == 1

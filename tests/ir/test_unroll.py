"""Unit tests for loop unrolling."""

import pytest

from repro.ir.builder import LoopBuilder, chain
from repro.ir.operations import FuType
from repro.ir.unroll import (ii_speedup, resource_fraction,
                             select_unroll_factor, unroll)
from repro.ir.validate import validate_ddg
from repro.workloads.kernels import daxpy, dot_product

FUS_4 = {FuType.LS: 2, FuType.ADD: 1, FuType.MUL: 1}


class TestUnrollTransform:
    def test_factor_one_is_copy(self):
        ddg = daxpy()
        u = unroll(ddg, 1)
        assert u.n_ops == ddg.n_ops
        assert u is not ddg

    def test_ops_replicate(self):
        ddg = daxpy()
        u = unroll(ddg, 3)
        assert u.n_ops == 3 * ddg.n_ops
        assert u.n_edges == 3 * ddg.n_edges
        validate_ddg(u)

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            unroll(daxpy(), 0)

    def test_names_get_suffix(self):
        u = unroll(daxpy(), 2)
        names = {op.name for op in u.operations}
        assert "x" in names and "x.u1" in names

    def test_unroll_index_and_origin(self):
        ddg = daxpy()
        u = unroll(ddg, 2)
        by_origin = {}
        for op in u.operations:
            by_origin.setdefault(op.origin, []).append(op.unroll_index)
        assert all(sorted(v) == [0, 1] for v in by_origin.values())

    def test_intra_iteration_edges_stay_in_copy(self):
        u = unroll(daxpy(), 4)
        for e in u.data_edges():
            assert u.op(e.src).unroll_index == u.op(e.dst).unroll_index
            assert e.distance == 0

    def test_distance_1_becomes_rotation(self):
        # acc -> acc with d=1, unrolled x3: copy0->copy1 d0, copy1->copy2
        # d0, copy2->copy0 d1
        ddg = dot_product()
        u = unroll(ddg, 3)
        carried = [e for e in u.data_edges()
                   if u.op(e.src).origin == u.op(e.dst).origin
                   and u.op(e.src).opcode.mnemonic == "add"]
        dists = sorted((u.op(e.src).unroll_index,
                        u.op(e.dst).unroll_index, e.distance)
                       for e in carried)
        assert dists == [(0, 1, 0), (1, 2, 0), (2, 0, 1)]

    def test_distance_larger_than_factor(self):
        b = LoopBuilder("far")
        a = b.add("a")
        b.carry(a, a, distance=5)
        u = unroll(b.build(), 2)
        # d=5, U=2: copy0 -> copy1 dist 2, copy1 -> copy0 dist 3
        pairs = sorted((u.op(e.src).unroll_index,
                        u.op(e.dst).unroll_index, e.distance)
                       for e in u.data_edges())
        assert pairs == [(0, 1, 2), (1, 0, 3)]

    def test_trip_count_preserved(self):
        assert unroll(daxpy(trip_count=123), 4).trip_count == 123


class TestResourceFraction:
    def test_daxpy_on_4fu(self):
        # daxpy: 3 L/S ops on 2 units -> 1.5 binding
        assert resource_fraction(daxpy(), FUS_4) == pytest.approx(1.5)

    def test_missing_fu_class(self):
        with pytest.raises(ValueError, match="no"):
            resource_fraction(daxpy(), {FuType.ADD: 1, FuType.MUL: 1})


class TestSelectUnrollFactor:
    def test_daxpy_benefits(self):
        choice = select_unroll_factor(daxpy(), FUS_4)
        # res_frac 1.5 -> U=2 achieves exactly 3/2 per iteration
        assert choice.factor == 2
        assert choice.estimated_ii_per_iteration == pytest.approx(1.5)

    def test_recurrence_bound_loop_stays(self):
        ddg = chain("r", ["load", "mul", "add"], carry_distance=1)
        choice = select_unroll_factor(ddg, {FuType.LS: 4, FuType.ADD: 4,
                                            FuType.MUL: 4})
        assert choice.factor == 1  # RecMII dominates; unrolling useless

    def test_max_ops_cap(self):
        big = daxpy()
        choice = select_unroll_factor(big, FUS_4, max_ops=5)
        assert choice.factor == 1

    def test_bad_max_factor(self):
        with pytest.raises(ValueError):
            select_unroll_factor(daxpy(), FUS_4, max_factor=0)

    def test_gain_estimate(self):
        choice = select_unroll_factor(daxpy(), FUS_4)
        assert choice.expected_gain == pytest.approx(2 / 1.5)


class TestIiSpeedup:
    def test_paper_equation(self):
        # II 2 original; unrolled x2 achieves II 3 -> 2 / (3/2) = 1.33
        assert ii_speedup(2, 3, 2) == pytest.approx(4 / 3)

    def test_no_gain(self):
        assert ii_speedup(2, 4, 2) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            ii_speedup(0, 1, 1)

"""Unit tests for DDG validation."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.copyins import insert_copies
from repro.ir.ddg import Ddg, DepKind
from repro.ir.operations import Opcode
from repro.ir.validate import DdgValidationError, is_valid, validate_ddg


def test_valid_loop_passes():
    b = LoopBuilder("ok")
    x = b.load("x")
    b.store("st", x)
    validate_ddg(b.build(validate=False))


def test_zero_distance_self_edge():
    ddg = Ddg("bad")
    a = ddg.add_operation(Opcode.ADD, name="a")
    # bypass builder checks by adding the raw edge
    ddg._g.add_edge(a.op_id, a.op_id, latency=1, distance=0,
                    kind=DepKind.DATA)
    ddg._bump()
    with pytest.raises(DdgValidationError):
        validate_ddg(ddg)


def test_zero_distance_cycle():
    ddg = Ddg("cyc")
    a = ddg.add_operation(Opcode.ADD, name="a")
    b = ddg.add_operation(Opcode.ADD, name="b")
    ddg.add_dependence(a, b, distance=0)
    ddg._g.add_edge(b.op_id, a.op_id, latency=1, distance=0,
                    kind=DepKind.DATA)
    ddg._bump()
    with pytest.raises(DdgValidationError, match="cycle"):
        validate_ddg(ddg)


def test_data_latency_mismatch():
    ddg = Ddg("lat")
    a = ddg.add_operation(Opcode.LOAD, name="a")   # latency 2
    b = ddg.add_operation(Opcode.STORE, name="b")
    ddg._g.add_edge(a.op_id, b.op_id, latency=1, distance=0,
                    kind=DepKind.DATA)
    ddg._bump()
    with pytest.raises(DdgValidationError, match="latency"):
        validate_ddg(ddg)


def test_copy_with_too_many_consumers():
    ddg = Ddg("cp")
    src = ddg.add_operation(Opcode.LOAD, name="src")
    cp = ddg.add_operation(Opcode.COPY, name="cp")
    ddg.add_dependence(src, cp)
    for i in range(3):
        c = ddg.add_operation(Opcode.ADD, name=f"c{i}")
        ddg.add_dependence(cp, c)
    with pytest.raises(DdgValidationError, match="write"):
        validate_ddg(ddg)


def test_copy_without_producer():
    ddg = Ddg("cp2")
    cp = ddg.add_operation(Opcode.COPY, name="cp")
    c = ddg.add_operation(Opcode.ADD, name="c")
    ddg.add_dependence(cp, c)
    with pytest.raises(DdgValidationError, match="reads"):
        validate_ddg(ddg)


def test_dead_copy():
    ddg = Ddg("cp3")
    src = ddg.add_operation(Opcode.LOAD, name="src")
    cp = ddg.add_operation(Opcode.COPY, name="cp")
    ddg.add_dependence(src, cp)
    with pytest.raises(DdgValidationError, match="dead"):
        validate_ddg(ddg)


def test_move_arity():
    ddg = Ddg("mv")
    src = ddg.add_operation(Opcode.LOAD, name="src")
    mv = ddg.add_operation(Opcode.MOVE, name="mv")
    ddg.add_dependence(src, mv)
    with pytest.raises(DdgValidationError, match="move"):
        validate_ddg(ddg)  # no consumer


def test_is_valid_bool(daxpy_ddg):
    assert is_valid(daxpy_ddg)


def test_insert_copies_output_always_validates(synth_sample):
    for ddg in synth_sample:
        out = insert_copies(ddg).ddg
        validate_ddg(out)  # must not raise

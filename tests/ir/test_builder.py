"""Unit tests for the LoopBuilder DSL."""

import pytest

from repro.ir.builder import LoopBuilder, chain
from repro.ir.ddg import DepKind
from repro.ir.operations import Opcode


class TestBuilder:
    def test_daxpy_shape(self):
        b = LoopBuilder("daxpy")
        x = b.load("x")
        y = b.load("y")
        ax = b.mul("ax", x)
        s = b.add("s", ax, y)
        b.store("st", s)
        ddg = b.build()
        assert ddg.n_ops == 5
        assert ddg.n_edges == 4
        assert ddg.fanout(x.op_id) == 1

    def test_operands_by_name(self):
        b = LoopBuilder("n")
        b.load("x")
        b.add("a", "x")
        ddg = b.build()
        assert len(ddg.producers(1)) == 1

    def test_unknown_operand_name(self):
        b = LoopBuilder("n")
        with pytest.raises(KeyError):
            b.add("a", "nope")

    def test_duplicate_name_rejected(self):
        b = LoopBuilder("n")
        b.load("x")
        with pytest.raises(ValueError, match="duplicate"):
            b.load("x")

    def test_carry_needs_positive_distance(self):
        b = LoopBuilder("n")
        a = b.add("a")
        with pytest.raises(ValueError):
            b.carry(a, a, distance=0)

    def test_carry_creates_loop_carried_edge(self):
        b = LoopBuilder("n")
        a = b.add("a")
        b.carry(a, a, distance=2)
        ddg = b.build()
        (e,) = ddg.data_edges()
        assert e.distance == 2

    def test_mem_order_edge(self):
        b = LoopBuilder("n")
        v = b.load("v")
        st = b.store("st", v)
        b.mem_order(st, v, distance=1)
        ddg = b.build()
        mems = list(ddg.edges(DepKind.MEM))
        assert len(mems) == 1
        assert mems[0].distance == 1

    def test_seq_edge_custom_latency(self):
        b = LoopBuilder("n")
        a = b.add("a")
        c = b.add("c")
        b.seq(a, c, latency=4)
        ddg = b.build()
        (e,) = ddg.edges(DepKind.SEQ)
        assert e.latency == 4

    def test_custom_latency_op(self):
        b = LoopBuilder("n")
        ld = b.load("ld", latency=9)
        st = b.store("st", ld)
        ddg = b.build()
        (e,) = ddg.producers(st.op_id)
        assert e.latency == 9

    def test_generic_op_by_mnemonic(self):
        b = LoopBuilder("n")
        op = b.op("fmul", "f")
        assert op.opcode is Opcode.FMUL

    def test_get(self):
        b = LoopBuilder("n")
        a = b.add("a")
        assert b.get("a") is a


class TestChain:
    def test_straight_chain(self):
        ddg = chain("c", ["load", "mul", "add", "store"])
        assert ddg.n_ops == 4
        assert ddg.n_edges == 3
        assert ddg.recurrence_ops() == set()

    def test_chain_with_recurrence(self):
        ddg = chain("c", ["load", "mul", "add", "store"], carry_distance=1)
        # the carried edge closes on the last *producer* (add), back to load
        assert ddg.recurrence_ops() != set()
        carried = [e for e in ddg.data_edges() if e.distance == 1]
        assert len(carried) == 1
        assert ddg.op(carried[0].src).opcode is Opcode.ADD

    def test_chain_trip_count(self):
        assert chain("c", ["add"], trip_count=77).trip_count == 77

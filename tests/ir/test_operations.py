"""Unit tests for the operation model."""

import pytest

from repro.ir.operations import (DEFAULT_LATENCIES, SOURCE_OPCODES,
                                 UNIT_LATENCIES, FuType, LatencyModel,
                                 Opcode, Operation)


class TestOpcode:
    def test_every_opcode_has_fu_and_latency(self):
        for op in Opcode:
            assert isinstance(op.fu_type, FuType)
            assert op.default_latency >= 1 or not op.produces_value

    def test_from_mnemonic_roundtrip(self):
        for op in Opcode:
            assert Opcode.from_mnemonic(op.mnemonic) is op

    def test_from_mnemonic_unknown(self):
        with pytest.raises(KeyError):
            Opcode.from_mnemonic("frobnicate")

    def test_store_is_sink(self):
        assert not Opcode.STORE.produces_value
        assert Opcode.LOAD.produces_value

    def test_source_opcodes_exclude_compiler_ops(self):
        assert Opcode.COPY not in SOURCE_OPCODES
        assert Opcode.MOVE not in SOURCE_OPCODES
        assert Opcode.ADD in SOURCE_OPCODES

    def test_fu_classes(self):
        assert Opcode.LOAD.fu_type is FuType.LS
        assert Opcode.STORE.fu_type is FuType.LS
        assert Opcode.ADD.fu_type is FuType.ADD
        assert Opcode.MUL.fu_type is FuType.MUL
        assert Opcode.DIV.fu_type is FuType.MUL
        assert Opcode.COPY.fu_type is FuType.COPY


class TestOperation:
    def test_defaults(self):
        op = Operation(op_id=3, opcode=Opcode.MUL)
        assert op.latency == Opcode.MUL.default_latency
        assert op.name == "mul3"
        assert op.fu_type is FuType.MUL
        assert op.produces_value

    def test_explicit_latency(self):
        op = Operation(op_id=0, opcode=Opcode.ADD, latency=5)
        assert op.latency == 5

    def test_zero_latency_producer_rejected(self):
        with pytest.raises(ValueError, match="latency"):
            Operation(op_id=0, opcode=Opcode.ADD, latency=0)

    def test_store_may_have_low_latency(self):
        op = Operation(op_id=0, opcode=Opcode.STORE, latency=1)
        assert op.latency == 1

    def test_with_id_records_origin(self):
        op = Operation(op_id=5, opcode=Opcode.ADD, name="a")
        clone = op.with_id(9)
        assert clone.op_id == 9
        assert clone.origin == 5
        assert clone.name == "a"

    def test_with_id_unroll_index(self):
        op = Operation(op_id=1, opcode=Opcode.LOAD)
        clone = op.with_id(7, unroll_index=3)
        assert clone.unroll_index == 3

    def test_renamed(self):
        op = Operation(op_id=1, opcode=Opcode.LOAD)
        assert op.renamed("zz").name == "zz"

    def test_predicates(self):
        assert Operation(op_id=0, opcode=Opcode.COPY).is_copy
        assert Operation(op_id=0, opcode=Opcode.MOVE).is_move
        assert Operation(op_id=0, opcode=Opcode.LOAD).is_memory
        assert not Operation(op_id=0, opcode=Opcode.ADD).is_memory

    def test_frozen(self):
        op = Operation(op_id=0, opcode=Opcode.ADD)
        with pytest.raises(AttributeError):
            op.latency = 3  # type: ignore[misc]


class TestLatencyModel:
    def test_default_passthrough(self):
        assert DEFAULT_LATENCIES.latency_of(Opcode.MUL) == \
            Opcode.MUL.default_latency

    def test_override(self):
        model = LatencyModel({Opcode.MUL: 7})
        assert model.latency_of(Opcode.MUL) == 7
        assert model.latency_of(Opcode.ADD) == Opcode.ADD.default_latency

    def test_retime_changes_only_overridden(self):
        model = LatencyModel({Opcode.MUL: 7})
        mul = Operation(op_id=0, opcode=Opcode.MUL)
        add = Operation(op_id=1, opcode=Opcode.ADD)
        assert model.retime(mul).latency == 7
        assert model.retime(add) is add

    def test_unit_latencies(self):
        for op in Opcode:
            assert UNIT_LATENCIES.latency_of(op) == 1

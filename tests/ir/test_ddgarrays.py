"""DdgArrays must agree edge-for-edge with the object-graph API."""

import networkx as nx
import pytest

from repro.ir.ddg import DepKind
from repro.ir.copyins import insert_copies
from repro.ir.unroll import unroll
from repro.machine.resources import POOL_ID_FOR
from repro.workloads.kernels import KERNELS, kernel
from repro.workloads.synth import SynthConfig, generate_corpus


def _graphs():
    for name in sorted(KERNELS):
        yield kernel(name)
        yield insert_copies(kernel(name)).ddg
    yield insert_copies(unroll(kernel("dot"), 3)).ddg
    for ddg in generate_corpus(SynthConfig(n_loops=6, seed=7)):
        yield ddg


@pytest.mark.parametrize("ddg", list(_graphs()), ids=lambda d: d.name)
def test_csr_matches_edge_objects(ddg):
    arr = ddg.arrays()
    assert arr.ids == ddg.op_ids
    assert arr.n == ddg.n_ops
    for i, o in enumerate(arr.ids):
        op = ddg.op(o)
        assert arr.index[o] == i
        assert arr.latency[i] == op.latency
        assert arr.pool[i] == POOL_ID_FOR[op.fu_type]
        ins = ddg.in_edges(o)
        got_in = [(arr.ids[arr.in_src[j]], arr.in_lat[j], arr.in_dist[j],
                   bool(arr.in_data[j]))
                  for j in range(arr.in_ptr[i], arr.in_ptr[i + 1])]
        assert got_in == [(e.src, e.latency, e.distance,
                           e.kind is DepKind.DATA) for e in ins]
        outs = ddg.out_edges(o)
        got_out = [(arr.ids[arr.out_dst[j]], arr.out_lat[j],
                    arr.out_dist[j], bool(arr.out_data[j]))
                   for j in range(arr.out_ptr[i], arr.out_ptr[i + 1])]
        assert got_out == [(e.dst, e.latency, e.distance,
                            e.kind is DepKind.DATA) for e in outs]
        nbrs = {arr.ids[arr.nbr[j]]
                for j in range(arr.nbr_ptr[i], arr.nbr_ptr[i + 1])}
        assert nbrs == ddg.neighbors_data(o)


@pytest.mark.parametrize("ddg", list(_graphs()), ids=lambda d: d.name)
def test_scc_and_cycle_edges_match_networkx(ddg):
    arr = ddg.arrays()
    g = nx.DiGraph()
    g.add_nodes_from(range(arr.n))
    g.add_edges_from(zip(arr.e_src, arr.e_dst))
    expected = list(nx.strongly_connected_components(g))
    # same partition of nodes into components
    got: dict[int, set] = {}
    for i, c in enumerate(arr.scc_id):
        got.setdefault(c, set()).add(i)
    assert sorted(map(sorted, got.values())) \
        == sorted(map(sorted, expected))
    # cycle-restricted edges: exactly the edges inside a cyclic SCC
    cyclic_nodes = set()
    for comp in expected:
        if len(comp) > 1 or any(g.has_edge(v, v) for v in comp):
            cyclic_nodes |= comp
    n_expected = sum(1 for s, d in zip(arr.e_src, arr.e_dst)
                     if s in cyclic_nodes and d in cyclic_nodes
                     and arr.scc_id[s] == arr.scc_id[d])
    assert len(arr.cyc_edges) == n_expected
    assert arr.cyc_n == len(cyclic_nodes)
    # the compacted subgraph preserves every cycle's latency/distance sums
    for s, d, lat, dist in arr.cyc_edges:
        assert 0 <= s < arr.cyc_n and 0 <= d < arr.cyc_n
        assert lat >= 0 and dist >= 0


def test_arrays_cache_invalidates_on_mutation():
    ddg = kernel("daxpy")
    a1 = ddg.arrays()
    assert ddg.arrays() is a1
    from repro.ir.operations import Opcode
    ddg.add_operation(Opcode.ADD)
    a2 = ddg.arrays()
    assert a2 is not a1
    assert a2.n == a1.n + 1

"""Unit tests for the DDG container."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.ddg import Ddg, DepKind, merge_ddgs
from repro.ir.operations import (FuType, LatencyModel, Opcode)


def simple_ddg() -> Ddg:
    ddg = Ddg("t", trip_count=10)
    a = ddg.add_operation(Opcode.LOAD, name="a")
    b = ddg.add_operation(Opcode.ADD, name="b")
    c = ddg.add_operation(Opcode.STORE, name="c")
    ddg.add_dependence(a, b)
    ddg.add_dependence(b, c)
    return ddg


class TestConstruction:
    def test_ids_are_dense(self):
        ddg = simple_ddg()
        assert ddg.op_ids == [0, 1, 2]
        assert ddg.n_ops == 3

    def test_bad_trip_count(self):
        with pytest.raises(ValueError):
            Ddg("x", trip_count=0)

    def test_insert_duplicate_id_rejected(self):
        ddg = simple_ddg()
        with pytest.raises(ValueError):
            ddg.insert_operation(ddg.op(0))

    def test_data_edge_from_store_rejected(self):
        ddg = simple_ddg()
        with pytest.raises(ValueError, match="non-producer"):
            ddg.add_dependence(2, 0, kind=DepKind.DATA)

    def test_mem_edge_from_store_allowed(self):
        ddg = simple_ddg()
        e = ddg.add_dependence(2, 0, distance=1, kind=DepKind.MEM)
        assert e.kind is DepKind.MEM
        assert e.latency == 1

    def test_data_edge_latency_defaults_to_producer(self):
        ddg = simple_ddg()
        (e,) = ddg.producers(1)
        assert e.latency == Opcode.LOAD.default_latency

    def test_edge_to_missing_op(self):
        ddg = simple_ddg()
        with pytest.raises(KeyError):
            ddg.add_dependence(0, 99)

    def test_parallel_edges_get_distinct_keys(self):
        ddg = Ddg("p")
        x = ddg.add_operation(Opcode.LOAD, name="x")
        sq = ddg.add_operation(Opcode.MUL, name="sq")
        e1 = ddg.add_dependence(x, sq)
        e2 = ddg.add_dependence(x, sq)
        assert (e1.key, e2.key) == (0, 1)
        assert len(ddg.producers(sq.op_id)) == 2


class TestQueries:
    def test_fanout(self):
        ddg = Ddg("f")
        x = ddg.add_operation(Opcode.LOAD, name="x")
        for i in range(3):
            c = ddg.add_operation(Opcode.ADD, name=f"c{i}")
            ddg.add_dependence(x, c)
        assert ddg.fanout(x.op_id) == 3
        assert ddg.max_fanout() == 3

    def test_fu_demand(self):
        demand = simple_ddg().fu_demand()
        assert demand[FuType.LS] == 2
        assert demand[FuType.ADD] == 1

    def test_neighbors_data(self):
        ddg = simple_ddg()
        assert ddg.neighbors_data(1) == {0, 2}
        assert ddg.neighbors_data(0) == {1}

    def test_live_in_ops(self):
        ddg = simple_ddg()
        assert ddg.live_in_ops() == [0]

    def test_recurrence_ops_empty_for_dag(self):
        assert simple_ddg().recurrence_ops() == set()

    def test_recurrence_ops_self_loop(self):
        ddg = simple_ddg()
        ddg.add_dependence(1, 1, distance=1)
        assert ddg.recurrence_ops() == {1}

    def test_recurrence_ops_cycle(self):
        ddg = simple_ddg()
        ddg.add_dependence(1, 0, distance=2)  # b -> a next iterations
        assert ddg.recurrence_ops() == {0, 1}

    def test_zero_distance_cycle_detection(self):
        ddg = Ddg("c")
        a = ddg.add_operation(Opcode.ADD, name="a")
        b = ddg.add_operation(Opcode.ADD, name="b")
        ddg.add_dependence(a, b, distance=0)
        assert not ddg.has_zero_distance_cycle()
        ddg.add_dependence(b, a, distance=0)
        assert ddg.has_zero_distance_cycle()

    def test_sum_latency(self):
        assert simple_ddg().sum_latency() == 2 + 1 + 1


class TestMutation:
    def test_remove_operation_drops_edges(self):
        ddg = simple_ddg()
        ddg.remove_operation(1)
        assert ddg.n_ops == 2
        assert ddg.n_edges == 0

    def test_edge_cache_invalidation(self):
        ddg = simple_ddg()
        assert len(ddg.producers(1)) == 1   # populate cache
        x = ddg.add_operation(Opcode.LOAD, name="x2")
        ddg.add_dependence(x, 1)
        assert len(ddg.producers(1)) == 2   # cache refreshed

    def test_remove_edge(self):
        ddg = simple_ddg()
        (e,) = ddg.producers(1)
        ddg.remove_edge(e)
        assert ddg.producers(1) == []

    def test_replace_operation(self):
        ddg = simple_ddg()
        ddg.replace_operation(ddg.op(1).renamed("bb"))
        assert ddg.op(1).name == "bb"


class TestCopyAndRetime:
    def test_copy_is_deep_for_edges(self):
        ddg = simple_ddg()
        clone = ddg.copy()
        clone.add_dependence(0, 2)
        assert clone.n_edges == ddg.n_edges + 1

    def test_copy_preserves_everything(self):
        ddg = simple_ddg()
        clone = ddg.copy("other")
        assert clone.name == "other"
        assert clone.trip_count == ddg.trip_count
        assert [o.name for o in clone.operations] == \
            [o.name for o in ddg.operations]

    def test_retimed_updates_data_edge_latency(self):
        ddg = simple_ddg()
        fast = ddg.retimed(LatencyModel({Opcode.LOAD: 5}))
        (e,) = fast.producers(1)
        assert e.latency == 5
        # original untouched
        (e0,) = ddg.producers(1)
        assert e0.latency == 2

    def test_retimed_preserves_mem_latency(self):
        ddg = simple_ddg()
        ddg.add_dependence(2, 0, distance=1, kind=DepKind.MEM, latency=3)
        fast = ddg.retimed(LatencyModel({Opcode.STORE: 1}))
        mems = list(fast.edges(DepKind.MEM))
        assert mems[0].latency == 3


class TestMerge:
    def test_merge_disjoint_union(self):
        b1 = LoopBuilder("one")
        x = b1.load("x")
        b1.store("s", x)
        b2 = LoopBuilder("two")
        y = b2.load("y")
        b2.store("t", y)
        merged = merge_ddgs("m", [b1.build(), b2.build()])
        assert merged.n_ops == 4
        assert merged.n_edges == 2
        assert merged.name == "m"

    def test_merge_remaps_distances(self):
        b = LoopBuilder("r")
        a = b.add("a")
        b.carry(a, a, distance=2)
        merged = merge_ddgs("m", [b.build(), b.build()])
        carried = [e for e in merged.data_edges() if e.distance == 2]
        assert len(carried) == 2

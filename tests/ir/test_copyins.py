"""Unit tests for copy-operation insertion."""

import pytest

from repro.ir.builder import LoopBuilder
from repro.ir.copyins import (count_required_copies, insert_copies,
                              logical_dataflow, strip_copies)
from repro.ir.validate import validate_ddg
from repro.workloads.kernels import daxpy, norm2, prefix_sum


def fanout_loop(n_consumers: int):
    b = LoopBuilder(f"fan{n_consumers}")
    v = b.load("v")
    outs = []
    for i in range(n_consumers):
        outs.append(b.add(f"a{i}", v))
    for i, o in enumerate(outs):
        b.store(f"s{i}", o)
    return b.build()


class TestBasics:
    def test_no_fanout_no_copies(self):
        res = insert_copies(daxpy())
        assert res.n_copies == 0
        assert res.ddg.n_ops == daxpy().n_ops

    def test_copy_count_formula(self):
        for n in (2, 3, 5, 8):
            ddg = fanout_loop(n)
            assert count_required_copies(ddg) == n - 1
            res = insert_copies(ddg)
            assert res.n_copies == n - 1

    def test_fanout_after_insertion(self):
        res = insert_copies(fanout_loop(6))
        out = res.ddg
        for oid in out.op_ids:
            limit = 2 if out.op(oid).is_copy else 1
            assert out.fanout(oid) <= limit
        validate_ddg(out)

    def test_strategies_all_valid(self):
        for strat in ("chain", "balanced", "slack"):
            res = insert_copies(fanout_loop(7), strategy=strat)
            validate_ddg(res.ddg)
            assert res.n_copies == 6

    def test_unknown_strategy(self):
        with pytest.raises(ValueError):
            insert_copies(daxpy(), strategy="bogus")  # type: ignore[arg-type]

    def test_input_unmodified(self):
        ddg = fanout_loop(4)
        before = ddg.n_ops
        insert_copies(ddg)
        assert ddg.n_ops == before


class TestTreeShape:
    def test_chain_depths(self):
        res = insert_copies(fanout_loop(5), strategy="chain")
        # edges from the fan-out producer (op 0); store edges are depth 0
        depths = sorted(d for (src, _dst, _k), d in
                        res.depth_by_edge.items() if src == 0)
        # chain: consumer i at depth i (1..n-1), last two share the tail
        assert depths == [1, 2, 3, 4, 4]

    def test_balanced_depth_logarithmic(self):
        res = insert_copies(fanout_loop(8), strategy="balanced")
        assert res.max_depth == 3  # ceil(log2(8))

    def test_chain_depth_linear(self):
        res = insert_copies(fanout_loop(8), strategy="chain")
        assert res.max_depth == 7

    def test_slack_no_deeper_than_chain(self):
        for n in (3, 5, 9):
            chain_d = insert_copies(fanout_loop(n),
                                    strategy="chain").max_depth
            slack_d = insert_copies(fanout_loop(n),
                                    strategy="slack").max_depth
            assert slack_d <= chain_d

    def test_recurrence_edge_gets_shallowest_position(self):
        # accumulator also feeding a store: the carried edge must sit at
        # depth 1 (any deeper raises RecMII further)
        ddg = prefix_sum()  # s consumed by store and by itself (d=1)
        res = insert_copies(ddg, strategy="slack")
        carried = [(k, d) for k, d in res.depth_by_edge.items()
                   if k[0] == k[1]]  # self edge src == dst
        assert carried and all(d == 1 for _k, d in carried)


class TestSemanticPreservation:
    def test_logical_dataflow_preserved(self):
        for ddg in (daxpy(), norm2(), prefix_sum(), fanout_loop(6)):
            before = logical_dataflow(ddg)
            after = logical_dataflow(insert_copies(ddg).ddg)
            assert before == after

    def test_strip_copies_roundtrip_op_count(self):
        ddg = fanout_loop(5)
        res = insert_copies(ddg)
        stripped = strip_copies(res.ddg)
        assert stripped.n_ops == ddg.n_ops
        assert {o.name for o in stripped.operations} == \
            {o.name for o in ddg.operations}

    def test_distance_preserved_through_tree(self):
        b = LoopBuilder("d")
        v = b.add("v")
        c1 = b.add("c1", v)
        b.store("s", v)
        b.carry(v, v, distance=3)   # fanout 3 on v: c1, store, itself
        ddg = b.build()
        res = insert_copies(ddg)
        flows = logical_dataflow(res.ddg)
        assert (v.op_id, v.op_id, 3) in flows
        assert (v.op_id, c1.op_id, 0) in flows


class TestCopyLatency:
    def test_custom_copy_latency(self):
        res = insert_copies(fanout_loop(3), copy_latency=2)
        copies = [res.ddg.op(c) for c in res.ddg.copy_ops()]
        assert copies and all(c.latency == 2 for c in copies)

    def test_copy_names_carry_producer(self):
        res = insert_copies(fanout_loop(3))
        names = [res.ddg.op(c).name for c in res.ddg.copy_ops()]
        assert all(n.startswith("v.cp") for n in names)

"""Property-based tests (hypothesis) for the IR transforms.

Random loop DDGs are generated structurally (not via the corpus generator,
so the two generators cross-check each other); unrolling and copy insertion
must preserve the logical dataflow and their structural contracts on every
input.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.ir.copyins import (count_required_copies, insert_copies,
                              logical_dataflow)
from repro.ir.ddg import Ddg, DepKind
from repro.ir.operations import SOURCE_OPCODES, Opcode
from repro.ir.unroll import unroll
from repro.ir.validate import validate_ddg
from repro.sched.mii import max_cycle_ratio, rec_mii

# --------------------------------------------------------------------------
# strategy: random schedulable loop DDGs
# --------------------------------------------------------------------------


@st.composite
def loop_ddgs(draw, max_ops: int = 14, max_extra_edges: int = 8):
    n = draw(st.integers(min_value=2, max_value=max_ops))
    ddg = Ddg("hyp", trip_count=8)
    opcodes = draw(st.lists(st.sampled_from(SOURCE_OPCODES), min_size=n,
                            max_size=n))
    for i, opc in enumerate(opcodes):
        ddg.add_operation(opc, name=f"o{i}")
    producers = [o for o in ddg.op_ids if ddg.op(o).produces_value]
    if not producers:
        ddg.add_operation(Opcode.ADD, name="p")
        producers = [ddg.n_ops - 1]
    # forward (acyclic) data edges
    n_edges = draw(st.integers(min_value=1, max_value=max_extra_edges))
    for _ in range(n_edges):
        src = draw(st.sampled_from(producers))
        later = [o for o in ddg.op_ids if o > src]
        if not later:
            continue
        dst = draw(st.sampled_from(later))
        ddg.add_dependence(src, dst, distance=0, kind=DepKind.DATA)
    # a few loop-carried edges (any direction, distance >= 1)
    n_carried = draw(st.integers(min_value=0, max_value=3))
    for _ in range(n_carried):
        src = draw(st.sampled_from(producers))
        dst = draw(st.sampled_from(ddg.op_ids))
        dist = draw(st.integers(min_value=1, max_value=3))
        ddg.add_dependence(src, dst, distance=dist, kind=DepKind.DATA)
    validate_ddg(ddg)
    return ddg


# --------------------------------------------------------------------------
# copy insertion properties
# --------------------------------------------------------------------------


@given(loop_ddgs(), st.sampled_from(["chain", "balanced", "slack"]))
@settings(max_examples=60, deadline=None)
def test_copyins_structural_contract(ddg, strategy):
    res = insert_copies(ddg, strategy=strategy)
    out = res.ddg
    validate_ddg(out)
    # exact copy count
    assert res.n_copies == count_required_copies(ddg)
    # every non-copy producer has fan-out <= 1, copies <= 2
    for oid in out.op_ids:
        limit = 2 if out.op(oid).is_copy else 1
        assert out.fanout(oid) <= limit


@given(loop_ddgs(), st.sampled_from(["chain", "balanced", "slack"]))
@settings(max_examples=60, deadline=None)
def test_copyins_preserves_logical_dataflow(ddg, strategy):
    before = logical_dataflow(ddg)
    after = logical_dataflow(insert_copies(ddg, strategy=strategy).ddg)
    assert before == after


@given(loop_ddgs())
@settings(max_examples=40, deadline=None)
def test_copyins_recmii_never_better_than_original(ddg):
    # copies can only lengthen recurrence circuits
    assert rec_mii(insert_copies(ddg).ddg) >= rec_mii(ddg)


# --------------------------------------------------------------------------
# unrolling properties
# --------------------------------------------------------------------------


@given(loop_ddgs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_unroll_counts(ddg, factor):
    u = unroll(ddg, factor)
    validate_ddg(u)
    assert u.n_ops == factor * ddg.n_ops
    assert u.n_edges == factor * ddg.n_edges


@given(loop_ddgs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=60, deadline=None)
def test_unroll_preserves_per_iteration_dataflow(ddg, factor):
    """Every original dependence (p -> c, d) must appear in the unrolled
    graph as (p_u -> c_{(u+d)%U}, (u+d)//U) for each copy u."""
    u = unroll(ddg, factor)
    origin = {op.op_id: (op.origin if op.origin is not None else op.op_id)
              for op in u.operations}
    uidx = {op.op_id: op.unroll_index for op in u.operations}
    got = {(origin[e.src], uidx[e.src], origin[e.dst], uidx[e.dst],
            e.distance)
           for e in u.edges()}
    want = set()
    for e in ddg.edges():
        for k in range(factor):
            want.add((e.src, k, e.dst, (k + e.distance) % factor,
                      (k + e.distance) // factor))
    assert got == want


@given(loop_ddgs(), st.integers(min_value=1, max_value=4))
@settings(max_examples=30, deadline=None)
def test_unroll_scales_recurrence_ratio(ddg, factor):
    """The per-original-iteration recurrence bound is invariant: the
    unrolled graph's max cycle ratio is (close to) factor * original."""
    r1 = max_cycle_ratio(ddg)
    ru = max_cycle_ratio(unroll(ddg, factor))
    assert ru >= factor * r1 - 1e-3

"""Smoke tests: every example script must run to completion.

Examples are user-facing documentation; a broken one is a broken README.
Each is executed in-process (runpy) with argv pinned.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script, capsys, monkeypatch):
    argv = [str(script)]
    if script.stem == "reproduce_paper":
        argv += ["--sample", "6"]
    monkeypatch.setattr(sys, "argv", argv)
    runpy.run_path(str(script), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), script.name


def test_examples_exist():
    names = {p.stem for p in EXAMPLES}
    assert {"quickstart", "copy_operations", "unrolling_study",
            "clustered_partitioning", "reproduce_paper"} <= names

"""Tracing layer: spans, counters, job capture, cross-process merge."""

import pytest

from repro.obs import trace as tr


@pytest.fixture()
def traced():
    """Enable tracing on a clean aggregate; restore the disabled
    default afterwards (the whole suite assumes tracing is off)."""
    was_enabled = tr.tracing_enabled()
    tr.enable_tracing()
    tr.reset_tracing()
    yield
    tr.reset_tracing()
    if not was_enabled:
        tr.disable_tracing()


def test_disabled_span_is_shared_noop():
    assert not tr.tracing_enabled()
    assert tr.span("x") is tr.span("y") is tr._NULL_SPAN
    with tr.span("pipeline.anything"):
        pass
    tr.trace_count("nothing")
    snap = tr.trace_snapshot()
    assert snap == {"stages": {}, "counters": {}}


def test_enabled_span_records_aggregate(traced):
    for _ in range(3):
        with tr.span("stage.a"):
            pass
    with tr.span("stage.b"):
        pass
    snap = tr.trace_snapshot()
    a = snap["stages"]["stage.a"]
    assert a["count"] == 3
    assert a["total_s"] >= a["max_s"] >= a["min_s"] >= 0.0
    assert sum(a["buckets"]) == 3
    assert snap["stages"]["stage.b"]["count"] == 1


def test_spans_nest_without_corrupting_parents(traced):
    with tr.span("outer"):
        with tr.span("inner"):
            pass
        with tr.span("inner"):
            pass
    snap = tr.trace_snapshot()
    assert snap["stages"]["outer"]["count"] == 1
    assert snap["stages"]["inner"]["count"] == 2
    # outer's time includes the inner spans
    assert snap["stages"]["outer"]["total_s"] >= \
        snap["stages"]["inner"]["total_s"]


def test_counters_accumulate(traced):
    tr.trace_count("ev")
    tr.trace_count("ev", 4)
    assert tr.trace_snapshot()["counters"]["ev"] == 5


def test_job_capture_reports_only_the_delta(traced):
    with tr.span("stage.pre"):
        pass
    tr.trace_count("pre", 7)
    with tr.job_capture() as cap:
        with tr.span("stage.job"):
            pass
        with tr.span("stage.pre"):
            pass
        tr.trace_count("pre", 2)
    summary = cap.summary
    assert summary["stages"]["stage.job"]["count"] == 1
    assert summary["stages"]["stage.pre"]["count"] == 1
    assert summary["counters"] == {"pre": 2}


def test_merge_job_trace_folds_foreign_summary(traced):
    with tr.span("stage.local"):
        pass
    foreign = {"stages": {"stage.local": {
        "count": 2, "total_s": 0.5, "min_s": 0.1, "max_s": 0.4,
        "buckets": [0] * (len(tr.BUCKETS) + 1)}},
        "counters": {"worker.events": 3}}
    tr.merge_job_trace(foreign)
    snap = tr.trace_snapshot()
    assert snap["stages"]["stage.local"]["count"] == 3
    assert snap["stages"]["stage.local"]["max_s"] >= 0.4
    assert snap["counters"]["worker.events"] == 3
    tr.merge_job_trace(None)  # harmless


def test_histogram_buckets_are_log_spaced_and_cumulative_ready(traced):
    tr._TRACER.record("s", 0.00005)   # below the first edge
    tr._TRACER.record("s", 0.05)      # mid
    tr._TRACER.record("s", 99.0)      # beyond the last edge -> +Inf
    b = tr.trace_snapshot()["stages"]["s"]["buckets"]
    assert len(b) == len(tr.BUCKETS) + 1
    assert b[0] == 1 and b[-1] == 1 and sum(b) == 3


def test_stage_breakdown_renders_coverage(traced):
    tr._TRACER.record("pipeline.schedule", 0.06)
    tr._TRACER.record("pipeline.allocate", 0.03)
    tr._TRACER.record("sched.ii_attempt", 0.05)  # nested: not covered
    tr.trace_count("sched.ii_accepted", 2)
    out = tr.stage_breakdown(tr.trace_snapshot(), wall_s=0.1)
    assert "pipeline.schedule" in out
    assert "sched.ii_accepted" in out
    # only pipeline.* spans count toward coverage: 0.09 of 0.1 wall
    assert "stage sum 0.0900s over wall 0.1000s (90.0% covered)" in out


def test_pipeline_emits_stage_spans(traced):
    from repro.machine.presets import qrf_machine
    from repro.sim.checker import run_pipeline
    from repro.workloads.kernels import kernel

    run_pipeline(kernel("daxpy"), qrf_machine(4))
    snap = tr.trace_snapshot()
    for stage in ("pipeline.unroll", "pipeline.copy_insert",
                  "pipeline.schedule", "pipeline.allocate",
                  "pipeline.verify", "pipeline.simulate"):
        assert snap["stages"][stage]["count"] >= 1, stage
    assert snap["counters"]["sched.ii_accepted"] >= 1
    assert "sched.ii_attempt" in snap["stages"]


def test_run_jobs_merges_worker_traces(traced):
    from repro.machine.presets import qrf_machine
    from repro.runner import RunnerConfig, run_jobs
    from repro.runner import pool as pool_mod
    from repro.runner.job import CompileJob
    from repro.workloads.kernels import kernel

    # workers inherit the tracing flag when they fork: force a fresh
    # pool now (tracing on), and retire it after so no traced worker
    # leaks extras into later parallel tests
    pool_mod.close_all_sessions()
    try:
        jobs = [CompileJob(ddg=kernel(k), machine=qrf_machine(4))
                for k in ("daxpy", "dot", "saxpy2", "vadd")]
        results = run_jobs(jobs, RunnerConfig(n_workers=2))
    finally:
        pool_mod.close_all_sessions()
    assert all(not r.outcome.failed for r in results)
    # every job shipped a per-job summary home on extras...
    assert all(r.extras.get("trace") for r in results)
    # ...and the parent aggregate saw all four schedules
    snap = tr.trace_snapshot()
    assert snap["stages"]["pipeline.schedule"]["count"] >= len(jobs)

"""Bench history + the statistical regression gate (obs.history)."""

import json

import pytest

from repro.obs.history import (BenchHistory, detect_regressions,
                               evaluate_metric, robust_stats,
                               rows_from_record, trend_stats)


def _record(name="demo", wall=1.0, sha="abc1234", ts="2026-01-01T00:00:00",
            metrics=None, schema=2):
    rec = {"schema": schema, "name": name, "wall_s": wall,
           "timestamp": ts, "metrics": metrics or {}}
    if schema >= 2:
        rec["provenance"] = {"git_sha": sha, "host": "0" * 12,
                             "python": "3.11.0"}
    return rec


def _seed(history, name, values, sha_prefix="old"):
    rows = []
    for i, v in enumerate(values):
        rows.append({"bench": name, "metric": "wall_s", "value": v,
                     "git_sha": f"{sha_prefix}{i:04d}",
                     "timestamp": f"2025-12-{(i % 28) + 1:02d}T00:00:00"})
    history.append(rows)


# ---------------------------------------------------------------------------
# ingest
# ---------------------------------------------------------------------------

def test_rows_from_schema2_record_flatten_nested_metrics():
    rec = _record(wall=2.5, metrics={"ipc": 3.1,
                                     "arena": {"hits": 7, "allocs": 2},
                                     "label": "text-skipped",
                                     "flag": True})
    rows = rows_from_record(rec)
    by_metric = {r["metric"]: r for r in rows}
    assert by_metric["wall_s"]["value"] == 2.5
    assert by_metric["arena.hits"]["value"] == 7.0
    assert "label" not in by_metric and "flag" not in by_metric
    assert all(r["git_sha"] == "abc1234" for r in rows)


def test_rows_from_schema1_record_still_readable():
    rec = _record(schema=1)
    rows = rows_from_record(rec)
    assert rows and all(r["git_sha"] == "unknown" for r in rows)


def test_append_dedups_on_identity(tmp_path):
    history = BenchHistory(tmp_path / "h.jsonl")
    rows = rows_from_record(_record())
    assert history.append(rows) == len(rows)
    assert history.append(rows) == 0          # exact duplicates skipped
    # same metric from a different commit is new
    assert history.append(rows_from_record(_record(sha="def5678"))) \
        == len(rows)


def test_load_tolerates_corrupt_lines(tmp_path):
    path = tmp_path / "h.jsonl"
    good = {"bench": "b", "metric": "wall_s", "value": 1.0,
            "git_sha": "x", "timestamp": "t"}
    path.write_text(json.dumps(good) + "\n"
                    "this is not json\n"
                    '{"not": "a row"}\n'
                    "\n"
                    + json.dumps(dict(good, git_sha="y")) + "\n")
    assert len(BenchHistory(path).load()) == 2


# ---------------------------------------------------------------------------
# the gate's edge cases
# ---------------------------------------------------------------------------

def test_short_history_uses_ratio_fallback(tmp_path):
    history = BenchHistory(tmp_path / "h.jsonl")
    _seed(history, "demo", [1.0, 1.1])          # < MIN_HISTORY points
    ok = trend_stats(history, [_record(wall=1.2)])
    assert [s.test for s in ok] == ["ratio"]
    assert not any(s.regressed for s in ok)
    bad = trend_stats(history, [_record(wall=2.0)])   # > 1.3x median
    assert bad[0].regressed


def test_zero_variance_series_falls_back_to_ratio():
    stat = evaluate_metric([1.0] * 8, 1.2, bench="b", metric="wall_s")
    assert stat.test == "ratio" and not stat.regressed
    stat = evaluate_metric([1.0] * 8, 1.5, bench="b", metric="wall_s")
    assert stat.test == "ratio" and stat.regressed


def test_missing_gated_metric_in_newest_record_is_flagged(tmp_path):
    history = BenchHistory(tmp_path / "h.jsonl")
    _seed(history, "demo", [1.0, 1.0, 1.1, 1.0, 0.9])
    rec = _record()
    del rec["wall_s"]                       # telemetry break
    flagged = detect_regressions(history, [rec])
    assert [s.verdict for s in flagged] == ["missing"]
    assert "MISSING" in flagged[0].describe()


def test_seeded_2x_regression_must_flag(tmp_path):
    """The acceptance fixture: healthy history, then a 2x slowdown."""
    history = BenchHistory(tmp_path / "h.jsonl")
    healthy = [1.00, 1.02, 0.98, 1.01, 0.99, 1.03, 1.00, 0.97]
    _seed(history, "fig6_partition", healthy)
    clean = trend_stats(history, [_record("fig6_partition", wall=1.01)])
    assert not any(s.regressed for s in clean)
    assert clean[0].test == "mad-z"
    flagged = detect_regressions(
        history, [_record("fig6_partition", wall=2.0)])
    assert len(flagged) == 1
    assert flagged[0].regressed and flagged[0].z > 3.5


def test_no_history_never_fails(tmp_path):
    history = BenchHistory(tmp_path / "empty.jsonl")
    stats = trend_stats(history, [_record("brand_new", wall=99.0)])
    assert [s.verdict for s in stats] == ["no-history"]
    assert not detect_regressions(history, [_record("brand_new",
                                                    wall=99.0)])


def test_newest_rows_never_vouch_for_themselves(tmp_path):
    """Appending before gating must not shift the comparison window."""
    history = BenchHistory(tmp_path / "h.jsonl")
    _seed(history, "demo", [1.0] * 6)
    rec = _record(wall=2.0, sha="fresh01")
    history.append(rows_from_record(rec))    # already appended
    flagged = detect_regressions(history, [rec])
    assert len(flagged) == 1                 # still gated against priors


def test_tiny_drift_below_slowdown_floor_passes():
    # statistically significant (MAD is microscopic) but < 5% slower
    stat = evaluate_metric([1.0, 1.0001, 0.9999, 1.0002, 1.0, 1.0001],
                           1.03, bench="b", metric="wall_s")
    assert stat.test == "mad-z" and not stat.regressed


def test_robust_stats():
    med, mad = robust_stats([1.0, 2.0, 3.0, 4.0, 100.0])
    assert med == 3.0 and mad == 1.0

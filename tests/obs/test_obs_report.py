"""Observatory rendering: trend table, dashboard HTML, Prometheus text."""

import re

from repro.obs.history import BenchHistory, trend_stats
from repro.obs.report import (prometheus_text, render_dashboard,
                              sparkline, trend_table)
from repro.obs.trace import BUCKETS


def _history(tmp_path, name="demo", values=(1.0, 1.1, 0.9, 1.0, 1.05)):
    history = BenchHistory(tmp_path / "h.jsonl")
    history.append([
        {"bench": name, "metric": "wall_s", "value": v,
         "git_sha": f"old{i:04d}", "timestamp": f"2025-12-01T00:00:{i:02d}"}
        for i, v in enumerate(values)])
    return history


def _record(name="demo", wall=1.0):
    return {"schema": 2, "name": name, "wall_s": wall,
            "timestamp": "2026-01-01T00:00:00", "metrics": {},
            "provenance": {"git_sha": "fresh01", "host": "0" * 12,
                           "python": "3.11.0"}}


def test_sparkline_scales_to_glyph_range():
    assert sparkline([]) == ""
    assert sparkline([1.0, 1.0]) == "▁▁"
    line = sparkline([0.0, 0.5, 1.0])
    assert line[0] == "▁" and line[-1] == "█"


def test_trend_table_lists_metrics_and_flags(tmp_path):
    history = _history(tmp_path)
    ok = trend_table(trend_stats(history, [_record(wall=1.0)]))
    assert "demo" in ok and "wall_s" in ok
    assert "no regressions flagged" in ok
    bad = trend_table(trend_stats(history, [_record(wall=5.0)]))
    assert "REGRESSION" in bad and "flagged" in bad
    assert trend_table([]) == "no benchmark records to report on"


def test_dashboard_html_is_self_contained(tmp_path):
    history = _history(tmp_path)
    stats = trend_stats(history, [_record(wall=1.0)])
    page = render_dashboard(history, stats)
    assert page.startswith("<!DOCTYPE html>")
    assert "<svg" in page and "<polyline" in page
    assert "<title>" in page                 # native point tooltips
    assert "prefers-color-scheme: dark" in page
    assert "<table>" in page                 # accessible table view
    assert "no regressions flagged" in page
    assert "http" not in page.lower().replace("html", "")  # no ext assets


def test_dashboard_flags_regressions_with_glyph_not_color_alone(tmp_path):
    history = _history(tmp_path)
    stats = trend_stats(history, [_record(wall=5.0)])
    page = render_dashboard(history, stats)
    assert "&#9650;" in page                 # ▲ marker next to the color
    assert "pt-last-bad" in page             # newest point emphasised
    assert "1 flagged" in page


def test_prometheus_text_is_valid_exposition():
    snapshot = {
        "uptime_s": 12.5,
        "service": {"requests": 3, "jobs": 5, "dedup_inflight": 1,
                    "served_from_cache": 2, "compiled": 3, "batches": 2,
                    "batch_jobs": 3, "inflight": 0, "queue_depth": 0,
                    "submit_s": 0.25, "n_workers": 2},
        "cache": {"backend": "sharded", "hits": 2, "misses": 3,
                  "stores": 3, "evictions": 0, "compactions": 1,
                  "entries": 3, "bytes": 4096},
        "pool": {2: {"spawns": 1, "reuses": 4}},
        "arena": {"hits": 10, "allocs": 2, "resets": 12,
                  "pooled_mrts": 2, "generation": 12},
        "trace": {"stages": {"pipeline.schedule": {
            "count": 3, "total_s": 0.5, "min_s": 0.1, "max_s": 0.3,
            "buckets": [0, 0, 0, 0, 0, 1, 2] + [0] * 5}},
            "counters": {"sched.ii_accepted": 3}},
    }
    text = prometheus_text(snapshot)
    lines = text.splitlines()
    assert text.endswith("\n")

    # every sample line belongs to a family with HELP and TYPE
    families = {m.group(1) for line in lines
                if (m := re.match(r"# TYPE (\S+) ", line))}
    helped = {m.group(1) for line in lines
              if (m := re.match(r"# HELP (\S+) ", line))}
    assert families == helped
    sample = re.compile(r"^([a-zA-Z_][a-zA-Z0-9_]*)(\{[^}]*\})? \S+$")
    for line in lines:
        if line.startswith("#"):
            continue
        m = sample.match(line)
        assert m, line
        name = m.group(1)
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        assert name in families or base in families, line

    # counters carry the _total suffix
    assert "repro_service_jobs_total 5" in text
    assert "repro_cache_hits_total 2" in text
    assert "repro_arena_hits_total 10" in text
    assert "repro_trace_sched_ii_accepted_total 3" in text
    assert 'repro_pool_spawns_total{workers="2"} 1' in text

    # histogram: cumulative buckets ending at +Inf == count
    buckets = [line for line in lines
               if line.startswith("repro_stage_seconds_bucket")]
    counts = [int(line.rsplit(" ", 1)[1]) for line in buckets]
    assert counts == sorted(counts)          # cumulative
    assert len(buckets) == len(BUCKETS) + 1  # every edge + +Inf
    assert buckets[-1].startswith(
        'repro_stage_seconds_bucket{stage="pipeline_schedule",le="+Inf"}')
    assert counts[-1] == 3
    assert 'repro_stage_seconds_count{stage="pipeline_schedule"} 3' in text


def test_prometheus_text_minimal_snapshot():
    text = prometheus_text({"uptime_s": 0.0, "service": {},
                            "cache": None, "pool": {}, "arena": {},
                            "trace": {}})
    assert "repro_uptime_seconds 0" in text
    assert "repro_cache_info" not in text

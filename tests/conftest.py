"""Shared fixtures: machines, kernels, and corpus samples."""

from __future__ import annotations

import os
import random

import pytest

from repro import kernels as _kernel_registry
from repro.machine.cluster import make_clustered
from repro.machine.presets import (clustered_machine, crf_machine,
                                   narrow_test_machine, qrf_machine)
from repro.workloads.kernels import all_kernels, daxpy, dot_product
from repro.workloads.synth import SynthConfig, generate_loop

#: One param per registered kernel backend; unavailable ones (NumPy
#: missing) show up as skips, not silent absences.
KERNEL_BACKEND_PARAMS = [
    pytest.param(name, marks=pytest.mark.skipif(
        not cls.available(),
        reason=f"kernel backend {name!r} not importable here"))
    for name, cls in _kernel_registry.BACKENDS.items()]


@pytest.fixture(params=KERNEL_BACKEND_PARAMS)
def each_kernel_backend(request, monkeypatch):
    """Run the test once per kernel backend, restoring the process-wide
    selection (and ``REPRO_KERNELS``) afterwards."""
    name = request.param
    monkeypatch.setenv(_kernel_registry.ENV_VAR, name)
    monkeypatch.setattr(_kernel_registry, "_active",
                        _kernel_registry.BACKENDS[name]())
    monkeypatch.setattr(_kernel_registry, "_requested", name)
    return name


@pytest.fixture(scope="session", autouse=True)
def _isolated_result_cache(tmp_path_factory):
    """Point the sweep-runner cache at a per-session temp dir so tests
    never read or pollute the user's ~/.cache/repro-vliw store."""
    from repro.runner import CACHE_DIR_ENV

    previous = os.environ.get(CACHE_DIR_ENV)
    os.environ[CACHE_DIR_ENV] = str(tmp_path_factory.mktemp("repro-cache"))
    yield
    if previous is None:
        os.environ.pop(CACHE_DIR_ENV, None)
    else:
        os.environ[CACHE_DIR_ENV] = previous


@pytest.fixture
def tiny_machine():
    return narrow_test_machine()


@pytest.fixture
def qrf4():
    return qrf_machine(4)


@pytest.fixture
def qrf6():
    return qrf_machine(6)


@pytest.fixture
def qrf12():
    return qrf_machine(12)


@pytest.fixture
def crf4():
    return crf_machine(4)


@pytest.fixture
def ring4():
    return clustered_machine(4)


@pytest.fixture
def ring6():
    return clustered_machine(6)


@pytest.fixture
def daxpy_ddg():
    return daxpy()


@pytest.fixture
def dot_ddg():
    return dot_product()


@pytest.fixture(scope="session")
def kernel_suite():
    return all_kernels()


@pytest.fixture(scope="session")
def synth_sample():
    """40 deterministic synthetic loops (fast enough for most suites)."""
    cfg = SynthConfig(n_loops=40)
    rng = random.Random(cfg.seed)
    return [generate_loop(rng, cfg, i) for i in range(cfg.n_loops)]


@pytest.fixture(scope="session")
def synth_small():
    """A dozen small loops for the slowest (simulation-heavy) tests."""
    cfg = SynthConfig(n_loops=60, max_ops=20)
    rng = random.Random(7)
    loops = [generate_loop(rng, cfg, i) for i in range(cfg.n_loops)]
    return loops[:12]

"""Unit tests for FU resources."""

import pytest

from repro.ir.operations import FuType
from repro.machine.resources import (COMPUTE_POOLS, PAPER_CLUSTER_FUS,
                                     FuSet, pool_for)


class TestPoolFor:
    def test_identity_for_hardware(self):
        for t in (FuType.LS, FuType.ADD, FuType.MUL, FuType.COPY):
            assert pool_for(t) is t

    def test_move_served_by_copy(self):
        assert pool_for(FuType.MOVE) is FuType.COPY


class TestFuSet:
    def test_capacity_and_totals(self):
        fus = FuSet({FuType.LS: 2, FuType.ADD: 3, FuType.MUL: 1,
                     FuType.COPY: 2})
        assert fus.capacity(FuType.LS) == 2
        assert fus.capacity(FuType.MOVE) == 2   # via COPY pool
        assert fus.n_compute == 6
        assert fus.n_total == 8

    def test_missing_pool_is_zero(self):
        fus = FuSet({FuType.ADD: 1})
        assert fus.capacity(FuType.MUL) == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            FuSet({FuType.ADD: -1})

    def test_move_not_a_hardware_pool(self):
        with pytest.raises(ValueError):
            FuSet({FuType.MOVE: 1})

    def test_merged(self):
        a = FuSet({FuType.LS: 1})
        b = FuSet({FuType.LS: 2, FuType.MUL: 1})
        m = a.merged(b)
        assert m.capacity(FuType.LS) == 3
        assert m.capacity(FuType.MUL) == 1

    def test_scaled(self):
        s = PAPER_CLUSTER_FUS.scaled(4)
        assert s.n_compute == 12
        assert s.capacity(FuType.COPY) == 4

    def test_scaled_negative(self):
        with pytest.raises(ValueError):
            PAPER_CLUSTER_FUS.scaled(-1)

    def test_describe_deterministic(self):
        assert PAPER_CLUSTER_FUS.describe() == \
            "1xADD+1xCOPY+1xL/S+1xMUL"

    def test_paper_cluster_shape(self):
        assert PAPER_CLUSTER_FUS.n_compute == 3
        for t in COMPUTE_POOLS:
            assert PAPER_CLUSTER_FUS.capacity(t) == 1

    def test_as_dict_copy(self):
        d = PAPER_CLUSTER_FUS.as_dict()
        d[FuType.LS] = 99
        assert PAPER_CLUSTER_FUS.capacity(FuType.LS) == 1

"""Tests for the register-file complexity model."""

import pytest

from repro.machine.cost import (RfCost, clustered_qrf_cost, cost_comparison,
                                monolithic_rf_cost, qrf_cost)
from repro.machine.presets import clustered_machine, crf_machine


class TestMonolithic:
    def test_paper_36_ports(self):
        cost = monolithic_rf_cost(crf_machine(12), registers=64)
        assert cost.ports == 36
        assert cost.area == 64 * 36 ** 2

    def test_area_quadratic_in_ports(self):
        small = monolithic_rf_cost(crf_machine(6), registers=64)
        big = monolithic_rf_cost(crf_machine(12), registers=64)
        assert big.area / small.area == pytest.approx(
            (big.ports / small.ports) ** 2)

    def test_delay_grows_with_ports(self):
        small = monolithic_rf_cost(crf_machine(6), registers=64)
        big = monolithic_rf_cost(crf_machine(12), registers=64)
        assert big.relative_delay > small.relative_delay


class TestQrf:
    def test_two_ports_per_queue(self):
        cost = qrf_cost(8, 16)
        assert cost.ports == 16
        assert cost.storage_cells == 128

    def test_delay_independent_of_bank_size(self):
        assert qrf_cost(8, 16).relative_delay == \
            qrf_cost(64, 16).relative_delay

    def test_area_linear_in_queues(self):
        a8 = qrf_cost(8, 16).area
        a16 = qrf_cost(16, 16).area
        assert a16 == pytest.approx(2 * a8)

    def test_clustered_fig7_budget(self):
        cm = clustered_machine(4)
        cost = clustered_qrf_cost(cm)
        assert cost.storage_cells == 4 * 24 * 16  # 4 clusters x 24q x 16p


class TestComparison:
    def test_qrf_cheaper_and_faster_at_scale(self):
        """The paper's scalability argument: at 12 FUs the monolithic RF
        loses on both delay and (port-dominated) area per cell."""
        cm = clustered_machine(4)
        mono, flat, clustered = cost_comparison(
            crf_machine(12), cm, registers=96)
        assert clustered.relative_delay < mono.relative_delay
        assert flat.relative_delay < mono.relative_delay
        # area per storage cell: queues win by the port-squared factor
        assert clustered.area / clustered.storage_cells < \
            mono.area / mono.storage_cells

    def test_render(self):
        cost = qrf_cost(8, 16)
        assert "ports" in cost.render()
        assert isinstance(cost, RfCost)

"""Unit tests for the paper's machine presets."""

from repro.ir.operations import FuType
from repro.machine.presets import (IPC_SWEEP_FUS, PAPER_CLUSTER_COUNTS,
                                   PAPER_FU_SIZES, clustered_machine,
                                   crf_machine, ipc_clustered_points,
                                   ipc_sweep_machines, narrow_test_machine,
                                   paper_clustered_machines,
                                   paper_qrf_machines, qrf_machine,
                                   single_cluster_equivalent)


def test_paper_fu_sizes():
    assert PAPER_FU_SIZES == (4, 6, 12)
    machines = paper_qrf_machines()
    assert [m.n_fus for m in machines] == [4, 6, 12]
    assert all(m.has_queues for m in machines)


def test_paper_cluster_counts():
    assert PAPER_CLUSTER_COUNTS == (4, 5, 6)
    machines = paper_clustered_machines()
    assert [cm.n_clusters for cm in machines] == [4, 5, 6]
    assert [cm.n_fus for cm in machines] == [12, 15, 18]


def test_cluster_composition_matches_fig5a():
    cm = clustered_machine(4)
    for t in (FuType.LS, FuType.ADD, FuType.MUL, FuType.COPY):
        assert cm.cluster_capacity(t) == 1


def test_ipc_sweep_is_4_to_18():
    assert IPC_SWEEP_FUS == tuple(range(4, 19))
    assert [m.n_fus for m in ipc_sweep_machines()] == list(range(4, 19))


def test_ipc_clustered_points():
    points = ipc_clustered_points()
    assert sorted(points) == [12, 15, 18]
    assert points[15].n_clusters == 5


def test_single_cluster_equivalent_same_resources():
    cm = clustered_machine(5)
    flat = single_cluster_equivalent(cm)
    for t in (FuType.LS, FuType.ADD, FuType.MUL, FuType.COPY):
        assert flat.capacity(t) == cm.capacity(t)


def test_crf_machine_has_no_copy_units():
    assert crf_machine(6).capacity(FuType.COPY) == 0


def test_narrow_test_machine():
    m = narrow_test_machine()
    assert m.n_fus == 3
    assert m.capacity(FuType.COPY) == 1


def test_qrf_machine_names_distinct():
    names = {qrf_machine(n).name for n in (4, 6, 12)}
    assert len(names) == 3

"""Unit tests for clustered machines and the ring topology."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.operations import FuType
from repro.machine.cluster import ClusteredMachine, make_clustered
from repro.machine.machine import RfKind, make_machine


class TestRingTopology:
    def test_distance_symmetry(self):
        cm = make_clustered(6)
        for a in range(6):
            for b in range(6):
                assert cm.ring_distance(a, b) == cm.ring_distance(b, a)

    def test_distance_examples(self):
        cm = make_clustered(6)
        assert cm.ring_distance(0, 0) == 0
        assert cm.ring_distance(0, 1) == 1
        assert cm.ring_distance(0, 5) == 1  # wraps
        assert cm.ring_distance(0, 3) == 3
        assert cm.ring_distance(1, 4) == 3

    def test_adjacency(self):
        cm = make_clustered(4)
        assert cm.are_adjacent(0, 0)
        assert cm.are_adjacent(0, 1)
        assert cm.are_adjacent(0, 3)
        assert not cm.are_adjacent(0, 2)

    def test_neighbours(self):
        cm = make_clustered(5)
        assert cm.neighbours(0) == [1, 4]
        assert cm.neighbours(2) == [1, 3]

    def test_neighbours_small_rings(self):
        assert make_clustered(1).neighbours(0) == []
        assert make_clustered(2).neighbours(0) == [1]
        assert make_clustered(3).neighbours(0) == [1, 2]

    def test_reachable_includes_self(self):
        cm = make_clustered(4)
        assert cm.reachable(1) == [0, 1, 2]

    def test_out_of_range(self):
        cm = make_clustered(3)
        with pytest.raises(IndexError):
            cm.ring_distance(0, 3)

    def test_hop_path_endpoints(self):
        cm = make_clustered(6)
        assert cm.hop_path(1, 1) == [1]
        assert cm.hop_path(0, 2) == [0, 1, 2]
        assert cm.hop_path(0, 4) == [0, 5, 4]   # shorter ccw

    @given(st.integers(min_value=2, max_value=9),
           st.data())
    @settings(max_examples=50, deadline=None)
    def test_hop_path_length_matches_distance(self, n, data):
        cm = make_clustered(n)
        a = data.draw(st.integers(min_value=0, max_value=n - 1))
        b = data.draw(st.integers(min_value=0, max_value=n - 1))
        path = cm.hop_path(a, b)
        assert len(path) == cm.ring_distance(a, b) + 1
        assert path[0] == a and path[-1] == b
        # consecutive hops are adjacent
        for x, y in zip(path, path[1:]):
            assert cm.ring_distance(x, y) == 1


class TestCapacity:
    def test_machine_wide_capacity(self):
        cm = make_clustered(5)
        assert cm.n_fus == 15
        assert cm.capacity(FuType.LS) == 5
        assert cm.cluster_capacity(FuType.LS) == 1
        assert cm.capacity(FuType.MOVE) == 5  # copy units serve moves

    def test_flattened_equivalent(self):
        cm = make_clustered(4)
        flat = cm.flattened()
        assert flat.n_fus == cm.n_fus
        assert flat.capacity(FuType.COPY) == 4
        assert flat.has_queues

    def test_needs_copies(self):
        assert make_clustered(2).needs_copies


class TestConstruction:
    def test_at_least_one_cluster(self):
        with pytest.raises(ValueError):
            make_clustered(0)

    def test_requires_queue_clusters(self):
        crf = make_machine(3, rf_kind=RfKind.CONVENTIONAL)
        with pytest.raises(ValueError, match="QRF"):
            ClusteredMachine(name="x", cluster=crf, n_clusters=2)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            make_clustered(3, inter_cluster_latency=-1)

    def test_with_moves(self):
        cm = make_clustered(3)
        assert not cm.allow_moves
        assert cm.with_moves().allow_moves

    def test_describe(self):
        assert "4 clusters" in make_clustered(4).describe()

"""Unit tests for single-cluster machine descriptions."""

import pytest

from repro.ir.operations import FuType, LatencyModel, Opcode
from repro.machine.machine import (Machine, QueueBudget, RfKind,
                                   balanced_fu_mix, copy_units_for,
                                   make_machine)
from repro.machine.resources import FuSet
from repro.workloads.kernels import daxpy


class TestBalancedMix:
    def test_multiples_of_three_are_even(self):
        for n in (3, 6, 12, 18):
            mix = balanced_fu_mix(n)
            assert set(mix.values()) == {n // 3}

    def test_remainder_order_ls_first(self):
        assert balanced_fu_mix(4) == {FuType.LS: 2, FuType.ADD: 1,
                                      FuType.MUL: 1}
        assert balanced_fu_mix(5) == {FuType.LS: 2, FuType.ADD: 2,
                                      FuType.MUL: 1}

    def test_tiny(self):
        assert balanced_fu_mix(1)[FuType.LS] == 1

    def test_invalid(self):
        with pytest.raises(ValueError):
            balanced_fu_mix(0)


class TestCopyUnits:
    def test_one_per_three(self):
        assert copy_units_for(3) == 1
        assert copy_units_for(4) == 2
        assert copy_units_for(12) == 4
        assert copy_units_for(1) == 1


class TestMachine:
    def test_make_machine_qrf(self):
        m = make_machine(12)
        assert m.n_fus == 12
        assert m.has_queues
        assert m.needs_copies
        assert m.capacity(FuType.COPY) == 4

    def test_make_machine_crf(self):
        m = make_machine(6, rf_kind=RfKind.CONVENTIONAL)
        assert not m.has_queues
        assert not m.needs_copies
        assert m.capacity(FuType.COPY) == 0

    def test_qrf_requires_copy_unit(self):
        with pytest.raises(ValueError, match="copy unit"):
            Machine(name="bad", fus=FuSet({FuType.LS: 1, FuType.ADD: 1,
                                           FuType.MUL: 1}),
                    rf_kind=RfKind.QUEUE)

    def test_needs_compute_fu(self):
        with pytest.raises(ValueError, match="compute"):
            Machine(name="bad", fus=FuSet({FuType.COPY: 1}),
                    rf_kind=RfKind.CONVENTIONAL)

    def test_can_execute(self):
        m = make_machine(4)
        assert m.can_execute(daxpy())

    def test_retime(self):
        m = make_machine(4, latencies=LatencyModel({Opcode.LOAD: 9}))
        fast = m.retime(daxpy())
        loads = [op for op in fast.operations
                 if op.opcode is Opcode.LOAD]
        assert all(op.latency == 9 for op in loads)

    def test_retime_noop_without_overrides(self):
        m = make_machine(4)
        ddg = daxpy()
        assert m.retime(ddg) is ddg

    def test_describe_and_rename(self):
        m = make_machine(4)
        assert "queue" in m.describe()
        assert m.renamed("zz").name == "zz"

    def test_compute_mix(self):
        mix = make_machine(5).compute_mix()
        assert sum(mix.values()) == 5


class TestQueueBudget:
    def test_defaults_match_paper_fig7(self):
        qb = QueueBudget()
        assert qb.private == 8
        assert qb.ring_out_cw == 8
        assert qb.ring_out_ccw == 8

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            QueueBudget(private=-1)

"""Backend parity: the NumPy kernels must match the reference exactly.

The batching floors normally route tiny inputs to the pure-Python
reference, so real workloads only exercise the vectorised paths on big
graphs.  Here the floors are forced to zero on a private
:class:`NumpyBackend` instance, driving every input -- including the
tiny ones -- through the batched implementations, and every result is
compared bit-for-bit against :class:`PythonBackend`.  Seeded random
structures cover the edge cases the workloads cannot (negative slack,
unplaced predecessors, zero-capacity pools, full rows, II at the uint64
rotation limit).
"""

import random

import pytest

from repro.ir.copyins import insert_copies
from repro.ir.operations import FuType
from repro.ir.unroll import unroll
from repro.kernels import NumpyBackend, PythonBackend
from repro.machine.presets import qrf_machine
from repro.machine.resources import POOL_ID_FOR
from repro.sched.ims import modulo_schedule
from repro.sched.mrt import PackedMRT
from repro.sched.partitioners.base import PartitionState
from repro.workloads.kernels import kernel

pytestmark = pytest.mark.skipif(not NumpyBackend.available(),
                                reason="NumPy not importable here")

PY = PythonBackend()


@pytest.fixture(scope="module")
def np_forced():
    """A NumPy backend whose floors are zeroed: every call takes the
    vectorised path regardless of input size."""
    b = NumpyBackend()
    b.arrival_batch_min = 0
    b.probe_batch_min = 0
    b.reset_bulk_min = 0
    b.relax_batch_min = 0
    b.audit_batch_min = 0
    return b


def _arrays(name, factor=1):
    d = kernel(name)
    if factor > 1:
        d = unroll(d, factor)
    return insert_copies(d).ddg.arrays()


WORKLOADS = [("daxpy", 1), ("dot", 4), ("fir4", 2), ("hydro1", 1),
             ("tridiag", 2)]


# ---------------------------------------------------------- Bellman-Ford

@pytest.mark.parametrize("seed", range(4))
def test_cycle_tester_parity_random(np_forced, seed):
    rng = random.Random(seed)
    n = rng.randint(4, 24)
    edges = [(rng.randrange(n), rng.randrange(n),
              rng.randint(1, 4), rng.randint(0, 2))
             for _ in range(rng.randint(1, 6 * n))]
    py_test = PY.cycle_tester(n, edges)
    np_test = np_forced.cycle_tester(n, edges)
    for ii in (0.25, 0.5, 1.0, 1.5, 2.0, 3.0, 8.0):
        assert py_test(ii) == np_test(ii), (seed, ii)
        assert (PY.positive_cycle(n, edges, ii)
                == np_forced.positive_cycle(n, edges, ii))


@pytest.mark.parametrize("name,factor", WORKLOADS)
def test_relaxation_parity_workloads(np_forced, name, factor):
    arr = _arrays(name, factor)
    for ii in (1, 2, 3, 5):
        assert PY.heights(arr, ii) == np_forced.heights(arr, ii)
        assert (PY.earliest_starts(arr, ii)
                == np_forced.earliest_starts(arr, ii))
    assert PY.zero_heights(arr) == np_forced.zero_heights(arr)


def test_relaxation_divergence_parity(np_forced):
    """A recurrence too tight for the probed II must diverge (return
    ``None``) on both backends, never just on one."""
    arr = _arrays("dot", 4)
    # ii=0 makes every distance-carrying cycle positive
    for ii in (0, 1):
        assert (PY.heights(arr, ii) is None) \
            == (np_forced.heights(arr, ii) is None)
        assert (PY.earliest_starts(arr, ii) is None) \
            == (np_forced.earliest_starts(arr, ii) is None)


# --------------------------------------------------------------- audits

@pytest.mark.parametrize("name,factor", WORKLOADS[:3])
def test_audit_parity_on_real_schedules(np_forced, name, factor):
    d = kernel(name)
    if factor > 1:
        d = unroll(d, factor)
    work = insert_copies(d).ddg
    machine = qrf_machine(4)
    sched = modulo_schedule(work, machine)
    arr = sched.ddg.arrays()
    sig = [sched.sigma[o] for o in arr.ids]
    cl = [0] * arr.n
    caps = machine.fus.pool_caps
    ii = sched.ii
    assert PY.dependence_clean(arr, sig, ii)
    assert np_forced.dependence_clean(arr, sig, ii)
    assert PY.capacity_clean(arr.pool, sig, cl, ii, caps)
    assert np_forced.capacity_clean(arr.pool, sig, cl, ii, caps)
    # corrupt one placement at a time: verdicts must track exactly
    rng = random.Random(factor)
    for _ in range(12):
        i = rng.randrange(arr.n)
        old = sig[i]
        sig[i] = rng.randint(-1, 3 * ii)
        assert (PY.dependence_clean(arr, sig, ii)
                == np_forced.dependence_clean(arr, sig, ii)) \
            if sig[i] >= 0 else True
        assert (PY.capacity_clean(arr.pool, sig, cl, ii, caps)
                == np_forced.capacity_clean(arr.pool, sig, cl, ii, caps))
        sig[i] = old


@pytest.mark.parametrize("seed", range(4))
def test_capacity_parity_random(np_forced, seed):
    rng = random.Random(100 + seed)
    n = rng.randint(3, 80)
    ii = rng.randint(1, 9)
    caps = [rng.randint(0, 3) for _ in range(4)]
    pool = [rng.randrange(4) for _ in range(n)]
    sig = [rng.randint(-1, 4 * ii) for _ in range(n)]
    cl = [rng.randrange(3) for _ in range(n)]
    assert (PY.capacity_clean(pool, sig, cl, ii, caps)
            == np_forced.capacity_clean(pool, sig, cl, ii, caps))


# ------------------------------------------------------------- MRT bulk

def _random_mrt(rng, ii):
    caps = {FuType.LS: rng.randint(0, 2), FuType.ADD: rng.randint(1, 3),
            FuType.MUL: rng.randint(0, 2), FuType.COPY: rng.randint(1, 2)}
    mrt = PackedMRT(ii, caps)
    oid = 0
    for _ in range(rng.randint(0, 6 * ii)):
        fu = rng.choice((FuType.LS, FuType.ADD, FuType.MUL, FuType.COPY))
        pid = POOL_ID_FOR[fu]
        t = rng.randint(0, 3 * ii)
        if mrt.can_place(pid, t):
            mrt.place(oid, pid, t)
            oid += 1
    return mrt


@pytest.mark.parametrize("seed", range(4))
def test_zero_counts_parity(np_forced, seed):
    rng = random.Random(200 + seed)
    ii = rng.randint(1, 12)
    a = _random_mrt(rng, ii)
    b = PackedMRT(ii, list(a.caps))
    PY.zero_counts(a)
    np_forced.zero_counts(b)
    assert list(a._counts) == [0] * len(a._counts)
    assert list(b._counts) == [0] * len(b._counts)


@pytest.mark.parametrize("seed", range(4))
def test_can_place_batch_parity(np_forced, seed):
    rng = random.Random(300 + seed)
    ii = rng.randint(1, 12)
    mrt = _random_mrt(rng, ii)
    times = [rng.randint(0, 5 * ii) for _ in range(rng.randint(1, 40))]
    for pid in range(4):
        assert (PY.can_place_batch(mrt, pid, times)
                == np_forced.can_place_batch(mrt, pid, times))


@pytest.mark.parametrize("ii", [1, 2, 7, 63])
def test_first_free_batch_parity(np_forced, ii):
    """Batched uint64 probe vs the scalar mask rotation, including the
    ii == 63 rotation-limit row count and zero-capacity pools."""
    rng = random.Random(ii)
    mrts = [_random_mrt(rng, ii) for _ in range(20)]
    ests = [rng.randint(0, 4 * ii) for _ in mrts]
    for pid in range(4):
        expect = [m.first_free(pid, e) for m, e in zip(mrts, ests)]
        assert np_forced.first_free_batch(mrts, pid, ests) == expect
        assert PY.first_free_batch(mrts, pid, ests) == expect


def test_first_free_batch_wide_ii_falls_back(np_forced):
    """IIs beyond 63 rows cannot ride the uint64 lane; the backend must
    delegate, not truncate."""
    rng = random.Random(64)
    mrts = [_random_mrt(rng, 70) for _ in range(20)]
    ests = [rng.randint(0, 140) for _ in mrts]
    pid = POOL_ID_FOR[FuType.ADD]
    expect = [m.first_free(pid, e) for m, e in zip(mrts, ests)]
    assert np_forced.first_free_batch(mrts, pid, ests) == expect


# ----------------------------------------------------- slot-search round

def _arrival_decisions(res, xlat, n_clusters):
    """Collapse an arrivals result to its observable decision: the
    uniform flag/est plus ``estart_from`` on every candidate cluster
    (the only way consumers read the arrival terms)."""
    arrivals, uniform, est0 = res
    ests = tuple(PartitionState.estart_from(arrivals, c, xlat)
                 for c in range(n_clusters))
    return uniform, (est0 if uniform else None), ests


@pytest.mark.parametrize("seed", range(6))
def test_pred_arrivals_round_decision_parity(np_forced, seed):
    rng = random.Random(400 + seed)
    arr = _arrays("dot", 4)
    n_clusters = 4
    xlat = rng.choice((0, 1, 2))
    sig = [rng.choice((-1, rng.randint(0, 30))) for _ in range(arr.n)]
    cl = [rng.randrange(n_clusters) for _ in range(arr.n)]
    for i in range(arr.n):
        got_py = PY.pred_arrivals_round(arr, i, sig, cl, ii=2, xlat=xlat)
        got_np = np_forced.pred_arrivals_round(arr, i, sig, cl, ii=2,
                                               xlat=xlat)
        assert (_arrival_decisions(got_py, xlat, n_clusters)
                == _arrival_decisions(got_np, xlat, n_clusters)), (seed, i)


@pytest.mark.parametrize("seed", range(6))
def test_estart_parity(np_forced, seed):
    rng = random.Random(500 + seed)
    arr = _arrays("fir4", 2)
    ii = rng.randint(1, 5)
    sig = [rng.choice((-1, rng.randint(0, 40))) for _ in range(arr.n)]
    for i in range(arr.n):
        assert PY.estart(arr, i, sig, ii) \
            == np_forced.estart(arr, i, sig, ii), (seed, i, ii)

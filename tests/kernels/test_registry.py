"""Kernel-backend registry: selection, env wiring, CLI surface."""

import os

import pytest

from repro import kernels
from repro.cli import main as cli_main
from repro.kernels import (BACKENDS, CHOICES, DEFAULT_CHOICE, ENV_VAR,
                           NumpyBackend, PythonBackend, available_backends,
                           backend_info, check_kernels, numpy_available,
                           resolve, set_backend)


@pytest.fixture(autouse=True)
def _restore_selection(monkeypatch):
    """Every test runs against the process-wide selection; snapshot and
    restore it (and ``REPRO_KERNELS``) so no test leaks a backend."""
    monkeypatch.setattr(kernels, "_active", kernels._active)
    monkeypatch.setattr(kernels, "_requested", kernels._requested)
    if ENV_VAR in os.environ:
        monkeypatch.setenv(ENV_VAR, os.environ[ENV_VAR])
    else:
        # set-then-delete registers a cleanup that ends with the var
        # absent again, even if the test (via set_backend) re-creates it
        monkeypatch.setenv(ENV_VAR, "python")
        monkeypatch.delenv(ENV_VAR)


def test_python_backend_always_available():
    assert PythonBackend.available()
    assert "python" in available_backends()
    assert BACKENDS["python"] is PythonBackend


def test_resolve_explicit_and_auto():
    assert resolve("python") == "python"
    expected = "numpy" if numpy_available() else "python"
    assert resolve(DEFAULT_CHOICE) == expected


def test_resolve_unknown_selector_raises():
    with pytest.raises(ValueError, match="unknown kernel backend"):
        resolve("fortran")


def test_resolve_unavailable_backend_raises(monkeypatch):
    monkeypatch.setattr(NumpyBackend, "available",
                        classmethod(lambda cls: False))
    with pytest.raises(RuntimeError, match="not importable"):
        resolve("numpy")
    # auto falls back silently instead
    assert resolve(DEFAULT_CHOICE) == "python"


def test_set_backend_exports_env_and_activates():
    backend = set_backend("python")
    assert backend.name == "python"
    assert os.environ[ENV_VAR] == "python"
    assert kernels.active() is backend
    assert kernels.active_name() == "python"


def test_active_initialises_from_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "python")
    monkeypatch.setattr(kernels, "_active", None)
    monkeypatch.setattr(kernels, "_requested", None)
    assert kernels.active().name == "python"


def test_backend_info_shape():
    info = backend_info()
    assert set(info) >= {"active", "requested", "env", "auto_resolves_to",
                         "numpy_available", "backends"}
    assert info["active"] in BACKENDS
    assert info["auto_resolves_to"] in BACKENDS
    names = [row["name"] for row in info["backends"]]
    assert names == list(BACKENDS)
    for row in info["backends"]:
        assert set(row) >= {"name", "description", "available"}


def test_check_kernels_is_clean():
    assert check_kernels() == []


def test_choices_cover_backends_plus_auto():
    assert set(CHOICES) == set(BACKENDS) | {DEFAULT_CHOICE}


def test_cli_kernels_subcommand(capsys):
    assert cli_main(["kernels"]) == 0
    out = capsys.readouterr().out
    assert "python" in out
    assert "numpy" in out
    assert "auto resolves to:" in out
    assert "numpy importable:" in out


def test_cli_kernels_flag_selects_backend(capsys):
    assert cli_main(["--kernels", "python", "kernels"]) == 0
    out = capsys.readouterr().out
    active_line = [ln for ln in out.splitlines()
                   if ln.startswith("python")][0]
    assert "active" in active_line
    assert kernels.active_name() == "python"


def test_cli_rejects_unknown_backend():
    with pytest.raises(SystemExit) as exc:
        cli_main(["--kernels", "fortran", "kernels"])
    assert exc.value.code == 2


def test_cli_explicit_unavailable_backend_is_usage_error(monkeypatch,
                                                         capsys):
    monkeypatch.setattr(NumpyBackend, "available",
                        classmethod(lambda cls: False))
    assert cli_main(["--kernels", "numpy", "kernels"]) == 2
    assert "--kernels" in capsys.readouterr().err


def test_backend_never_enters_job_fingerprints():
    """The backend is observability state: the same job must hash to the
    same key under either selection (cache correctness)."""
    from repro.ir.copyins import insert_copies
    from repro.machine.presets import qrf_machine
    from repro.runner.fingerprint import job_key
    from repro.workloads.kernels import kernel

    machine = qrf_machine(4)
    keys = []
    for name, cls in BACKENDS.items():
        if not cls.available():
            continue
        set_backend(name)
        work = insert_copies(kernel("daxpy")).ddg
        keys.append(job_key(work, machine, {"scheduler": "ims"}))
    assert len(set(keys)) == 1

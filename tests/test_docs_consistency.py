"""Documentation consistency checks.

Docs promising modules, kernels, CLI commands or experiments that do not
exist is the most common way reproduction repos rot; these tests pin the
cross-references.
"""

import pathlib
import re

import repro
from repro.workloads.kernels import KERNELS

ROOT = pathlib.Path(__file__).parent.parent


def _read(name: str) -> str:
    return (ROOT / name).read_text()


def test_design_md_module_references_exist():
    text = _read("DESIGN.md")
    for mod in re.findall(r"`(?:repro/)?((?:ir|machine|sched|regalloc|"
                          r"codegen|sim|workloads|analysis)/\w+\.py)`",
                          text):
        assert (ROOT / "src" / "repro" / mod).exists(), mod


def test_design_md_bench_targets_exist():
    text = _read("DESIGN.md")
    for bench in re.findall(r"`benchmarks/(bench_\w+\.py)`", text):
        assert (ROOT / "benchmarks" / bench).exists(), bench


def test_experiments_md_quotes_real_benchmarks():
    text = _read("EXPERIMENTS.md")
    for bench in re.findall(r"`(bench_\w+\.py)`", text):
        assert (ROOT / "benchmarks" / bench).exists(), bench


def test_readme_examples_exist():
    text = _read("README.md")
    for example in re.findall(r"`(\w+\.py)` \|", text):
        assert (ROOT / "examples" / example).exists(), example


def test_readme_kernel_count_accurate():
    text = _read("README.md")
    m = re.search(r"(\d+) hand-written classic kernels", text)
    assert m, "README must state the kernel count"
    assert int(m.group(1)) == len(KERNELS)


def test_readme_quickstart_symbols_exist():
    for symbol in ("daxpy_example", "qrf_machine", "run_pipeline",
                   "LoopBuilder", "clustered_machine"):
        assert hasattr(repro, symbol), symbol


def test_every_public_module_has_docstring():
    import importlib
    import pkgutil

    packages = ["repro", "repro.ir", "repro.machine", "repro.sched",
                "repro.regalloc", "repro.codegen", "repro.sim",
                "repro.workloads", "repro.analysis", "repro.runner",
                "repro.service", "repro.obs"]
    for pkg_name in packages:
        pkg = importlib.import_module(pkg_name)
        assert pkg.__doc__, pkg_name
        if hasattr(pkg, "__path__"):
            for info in pkgutil.iter_modules(pkg.__path__):
                mod = importlib.import_module(f"{pkg_name}.{info.name}")
                assert mod.__doc__, mod.__name__

"""Property test: the closed-form Q-Compatibility test (Theorem 1.1) must
agree exactly with brute-force FIFO event simulation on random lifetimes.

This is the central correctness property of the queue allocator: any
discrepancy here would silently corrupt allocations.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.regalloc.lifetimes import Lifetime
from repro.regalloc.queues import (allocate_queues, fifo_order_consistent,
                                   q_compatible)


@st.composite
def lifetime_pairs(draw):
    ii = draw(st.integers(min_value=1, max_value=12))
    s_a = draw(st.integers(min_value=0, max_value=3 * ii))
    s_b = draw(st.integers(min_value=0, max_value=3 * ii))
    l_a = draw(st.integers(min_value=0, max_value=3 * ii))
    l_b = draw(st.integers(min_value=0, max_value=3 * ii))
    return (Lifetime(0, 1, 0, s_a, l_a),
            Lifetime(2, 3, 0, s_b, l_b), ii)


@given(lifetime_pairs())
@settings(max_examples=400, deadline=None)
def test_closed_form_matches_event_simulation(case):
    a, b, ii = case
    assert q_compatible(a, b, ii) == fifo_order_consistent(a, b, ii)


@given(lifetime_pairs())
@settings(max_examples=200, deadline=None)
def test_symmetry(case):
    a, b, ii = case
    assert q_compatible(a, b, ii) == q_compatible(b, a, ii)


@st.composite
def lifetime_sets(draw):
    ii = draw(st.integers(min_value=2, max_value=8))
    n = draw(st.integers(min_value=1, max_value=10))
    lts = []
    for i in range(n):
        s = draw(st.integers(min_value=0, max_value=2 * ii))
        l = draw(st.integers(min_value=0, max_value=2 * ii))
        lts.append(Lifetime(2 * i, 2 * i + 1, 0, s, l))
    return lts, ii


@given(lifetime_sets())
@settings(max_examples=150, deadline=None)
def test_allocation_is_pairwise_compatible(case):
    lts, ii = case
    alloc = allocate_queues(lts, ii)
    alloc.verify()   # raises on any incompatible pair
    # every lifetime allocated exactly once
    assert sum(len(q) for q in alloc.queues) == len(lts)


@given(lifetime_sets())
@settings(max_examples=100, deadline=None)
def test_allocation_pairwise_implies_global_fifo(case):
    """Pairwise compatibility within a queue implies a globally consistent
    FIFO order: validated by checking all pairs against the *event
    simulation* (not the closed form the allocator used)."""
    lts, ii = case
    alloc = allocate_queues(lts, ii)
    for q in alloc.queues:
        for i, a in enumerate(q):
            for b in q[i + 1:]:
                assert fifo_order_consistent(a, b, ii)


@given(lifetime_sets())
@settings(max_examples=100, deadline=None)
def test_allocation_deterministic(case):
    lts, ii = case
    a1 = allocate_queues(lts, ii)
    a2 = allocate_queues(list(reversed(lts)), ii)
    # input order must not matter (allocator sorts internally)
    assert [len(q) for q in a1.queues] == [len(q) for q in a2.queues]

"""Unit tests for queue allocation on real schedules."""

import pytest

from repro.ir.copyins import insert_copies
from repro.machine.cluster import make_clustered
from repro.machine.presets import qrf_machine
from repro.regalloc.lifetimes import Lifetime, Location, LocationKind
from repro.regalloc.queues import (QueueAllocation, allocate_for_schedule,
                                   allocate_queues, queue_depth)
from repro.sched.ims import modulo_schedule
from repro.sched.partition import partitioned_schedule
from repro.workloads.kernels import all_kernels, daxpy, dot_product


class TestAllocateQueues:
    def test_empty(self):
        alloc = allocate_queues([], 4)
        assert alloc.n_queues == 0
        assert alloc.max_depth == 0

    def test_single(self):
        alloc = allocate_queues([Lifetime(0, 1, 0, 0, 2)], 4)
        assert alloc.n_queues == 1
        assert alloc.depths == [1]

    def test_incompatible_split(self):
        # same write phase -> must use two queues
        a = Lifetime(0, 1, 0, 0, 2)
        b = Lifetime(2, 3, 0, 4, 3)
        alloc = allocate_queues([a, b], 4)
        assert alloc.n_queues == 2

    def test_compatible_share(self):
        a = Lifetime(0, 1, 0, 0, 2)
        b = Lifetime(2, 3, 0, 1, 2)
        alloc = allocate_queues([a, b], 4)
        assert alloc.n_queues == 1
        alloc.verify()

    def test_assignment_mapping(self):
        a = Lifetime(0, 1, 0, 0, 2)
        alloc = allocate_queues([a], 4)
        assert alloc.assignment() == {(0, 1, 0): 0}
        assert alloc.queue_of(a) == 0

    def test_queue_of_missing(self):
        alloc = allocate_queues([], 4)
        with pytest.raises(KeyError):
            alloc.queue_of(Lifetime(9, 9, 0, 0, 1))

    def test_verify_catches_corruption(self):
        a = Lifetime(0, 1, 0, 0, 2)
        b = Lifetime(2, 3, 0, 4, 3)   # incompatible with a
        alloc = QueueAllocation(ii=4,
                                location=Location(LocationKind.PRIVATE, 0),
                                queues=[[a, b]])
        with pytest.raises(AssertionError):
            alloc.verify()


class TestQueueDepth:
    def test_depth_counts_overlap(self):
        lts = [Lifetime(0, 1, 0, 0, 6)]
        assert queue_depth(lts, 4) == 2

    def test_preload_depth(self):
        # two pre-loop instances (negative virtual slots) coexist
        lts = [Lifetime(0, 0, 0, 2, 9, 2)]
        assert queue_depth(lts, 4) >= 2

    def test_injected_bypass_zero_depth(self):
        lts = [Lifetime(0, 0, 0, 8, 0, 2)]
        assert queue_depth(lts, 4) == 0


class TestScheduleAllocation:
    def test_daxpy_single_location(self):
        m = qrf_machine(4)
        work = insert_copies(daxpy()).ddg
        s = modulo_schedule(work, m)
        usage = allocate_for_schedule(s)
        assert list(usage.by_location) == \
            [Location(LocationKind.PRIVATE, 0)]
        assert usage.total_queues >= 1
        usage.verify()

    def test_every_kernel_allocates(self):
        m = qrf_machine(6)
        for ddg in all_kernels():
            work = insert_copies(ddg).ddg
            s = modulo_schedule(work, m)
            usage = allocate_for_schedule(s)
            usage.verify()
            # every DATA edge covered
            n_edges = sum(1 for _ in work.data_edges())
            assert sum(len(q) for a in usage.by_location.values()
                       for q in a.queues) == n_edges

    def test_clustered_ring_locations(self):
        cm = make_clustered(4)
        work = insert_copies(dot_product()).ddg
        from repro.ir.unroll import unroll
        work = insert_copies(unroll(dot_product(), 4)).ddg
        s = partitioned_schedule(work, cm)
        usage = allocate_for_schedule(s, cm)
        usage.verify()
        kinds = {loc.kind for loc in usage.by_location}
        assert LocationKind.PRIVATE in kinds

    def test_fits_budget(self):
        m = qrf_machine(4)
        work = insert_copies(daxpy()).ddg
        s = modulo_schedule(work, m)
        usage = allocate_for_schedule(s)
        assert usage.fits_budget(private=8, ring_each_direction=8)
        assert not usage.fits_budget(private=0, ring_each_direction=0)

    def test_accessors(self):
        m = qrf_machine(4)
        work = insert_copies(daxpy()).ddg
        s = modulo_schedule(work, m)
        usage = allocate_for_schedule(s)
        assert usage.private_queues(0) == usage.total_queues
        assert usage.ring_queues(0, LocationKind.RING_CW) == 0
        assert usage.max_queues_per_location == usage.total_queues

"""Tests for modulo variable expansion and rotating-RF bounds."""

import pytest

from repro.machine.presets import crf_machine
from repro.regalloc.conventional import register_requirement
from repro.regalloc.rotating import (MveReport, mve_register_requirement,
                                     mve_unroll_factor,
                                     rotating_register_requirement)
from repro.sched.ims import modulo_schedule
from repro.workloads.kernels import (daxpy, dot_product, long_recurrence,
                                     wide_independent)


class TestMveUnroll:
    def test_short_lifetimes_no_replication(self):
        # daxpy at II=2 on 4 FUs: all lifetimes <= II
        s = modulo_schedule(daxpy(), crf_machine(4))
        assert mve_unroll_factor(s) >= 1

    def test_long_lifetime_forces_replication(self):
        # hand-crafted: a value written at cycle 2 and read at cycle 8
        # with II=2 has ceil(6/2)=3 instances in flight
        from repro.ir.builder import LoopBuilder
        from repro.sched.schedule import ModuloSchedule
        b = LoopBuilder("gap")
        v = b.load("v")           # latency 2
        st = b.store("st", v)
        ddg = b.build()
        s = ModuloSchedule(ddg=ddg, ii=2,
                           sigma={v.op_id: 0, st.op_id: 8})
        assert mve_unroll_factor(s) == 3
        rep = mve_register_requirement(s)
        assert rep.registers == 3
        assert rep.max_live == 3

    def test_kmax_matches_max_lifetime(self):
        s = modulo_schedule(daxpy(), crf_machine(4))
        from repro.regalloc.lifetimes import merged_value_lifetimes
        expected = max(
            (-(-lt.length // s.ii) for lt in merged_value_lifetimes(s)
             if lt.length > 0), default=1)
        assert mve_unroll_factor(s) == expected


class TestRegisterBounds:
    def test_ordering_maxlive_lte_mve(self):
        """MaxLive <= MVE registers (MVE can't beat the live-value
        bound)."""
        for factory in (daxpy, dot_product, wide_independent,
                        long_recurrence):
            s = modulo_schedule(factory(), crf_machine(6))
            rep = mve_register_requirement(s)
            assert rep.max_live <= rep.registers or rep.registers == 0

    def test_rotating_is_maxlive_plus_one(self):
        s = modulo_schedule(wide_independent(), crf_machine(6))
        live = register_requirement(s).max_live
        assert rotating_register_requirement(s) == live + 1

    def test_rotating_zero_when_nothing_live(self):
        # force every lifetime to zero length: II=1 chains
        s = modulo_schedule(daxpy(), crf_machine(12))
        rot = rotating_register_requirement(s)
        live = register_requirement(s).max_live
        assert rot == (live + 1 if live else 0)

    def test_report_fields(self):
        s = modulo_schedule(daxpy(), crf_machine(4))
        rep = mve_register_requirement(s)
        assert isinstance(rep, MveReport)
        assert rep.code_growth == rep.kernel_unroll
        assert rep.kernel_unroll >= 1

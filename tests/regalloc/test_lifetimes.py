"""Unit tests for lifetime extraction and occupancy analysis."""

import pytest

from repro.ir.copyins import insert_copies
from repro.machine.cluster import make_clustered
from repro.machine.presets import qrf_machine
from repro.regalloc.lifetimes import (Lifetime, Location, LocationKind,
                                      extract_lifetimes, location_of_edge,
                                      max_live, merged_value_lifetimes,
                                      required_positions,
                                      steady_state_occupancy)
from repro.sched.ims import modulo_schedule
from repro.sched.partition import partitioned_schedule
from repro.workloads.kernels import daxpy, dot_product


def lt(start, length, distance=0):
    return Lifetime(0, 1, 0, start, length, distance)


class TestLifetimeBasics:
    def test_end(self):
        assert lt(3, 4).end == 7

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            lt(3, -1)

    def test_describe(self):
        assert "[3, 7)" in lt(3, 4).describe()


class TestExtraction:
    def test_daxpy_lifetimes(self):
        m = qrf_machine(4)
        s = modulo_schedule(daxpy(), m)
        lts = extract_lifetimes(s)
        assert len(lts) == 4  # one per DATA edge
        for l in lts:
            assert l.length >= 0
            assert l.location == Location(LocationKind.PRIVATE, 0)

    def test_carried_edge_has_distance(self):
        m = qrf_machine(4)
        s = modulo_schedule(dot_product(), m)
        carried = [l for l in extract_lifetimes(s) if l.distance > 0]
        assert len(carried) == 1
        assert carried[0].producer == carried[0].consumer

    def test_clustered_locations(self):
        cm = make_clustered(4)
        work = insert_copies(daxpy()).ddg
        s = partitioned_schedule(work, cm)
        lts = extract_lifetimes(s, cm)
        for l in lts:
            ca = s.cluster_of[l.producer]
            cb = s.cluster_of[l.consumer]
            if ca == cb:
                assert l.location.kind is LocationKind.PRIVATE
            else:
                assert l.location.kind in (LocationKind.RING_CW,
                                           LocationKind.RING_CCW)
                assert l.location.cluster == ca

    def test_clustered_edge_without_machine_raises(self):
        cm = make_clustered(4)
        work = insert_copies(daxpy()).ddg
        s = partitioned_schedule(work, cm)
        if len(set(s.cluster_of.values())) > 1:
            with pytest.raises(ValueError):
                extract_lifetimes(s, None)


class TestOccupancy:
    def test_single_short_lifetime(self):
        # [0, 2) at II 4: live at phases 0, 1
        occ = steady_state_occupancy([lt(0, 2)], 4)
        assert occ == [1, 1, 0, 0]

    def test_lifetime_longer_than_ii_overlaps_self(self):
        # length 6 at II 4: floor(6/4)=1 always, +1 for 2 phases
        occ = steady_state_occupancy([lt(0, 6)], 4)
        assert occ == [2, 2, 1, 1]

    def test_zero_length_never_occupies(self):
        assert steady_state_occupancy([lt(5, 0)], 3) == [0, 0, 0]

    def test_max_live(self):
        assert max_live([lt(0, 2), lt(1, 2)], 4) == 2

    def test_empty(self):
        assert steady_state_occupancy([], 3) == [0, 0, 0]
        assert max_live([], 3) == 0


class TestRequiredPositions:
    def test_matches_steady_state_without_carries(self):
        lts = [lt(0, 3), lt(1, 2)]
        assert required_positions(lts, 4) == max_live(lts, 4)

    def test_injected_bypass_needs_no_position(self):
        # zero-length carried lifetime: the initial value's virtual write
        # slot is >= 0, so the prologue injects it exactly when it is read
        # (combinational bypass) -- no queue position needed
        carried = lt(6, 0, distance=1)
        assert max_live([carried], 6) == 0
        assert required_positions([carried], 6) == 0

    def test_preloaded_value_needs_a_position(self):
        # virtual write slot of the k=-1 instance is 2 - 6 < 0: the value
        # exists before the loop starts and occupies a position until its
        # read at cycle end - ii = 1
        carried = lt(2, 5, distance=1)
        assert required_positions([carried], 6) >= 1

    def test_distance_two_needs_two_positions(self):
        # both pre-loop instances have negative slots (2-8, 2-4) and are
        # alive simultaneously at cycle -1
        carried = lt(2, 9, distance=2)
        assert required_positions([carried], 4) >= 2

    def test_bad_ii(self):
        with pytest.raises(ValueError):
            required_positions([lt(0, 1)], 0)


class TestMergedValueLifetimes:
    def test_multi_consumer_merges_to_last_read(self):
        from repro.ir.builder import LoopBuilder
        b = LoopBuilder("m")
        v = b.load("v")
        a = b.add("a", v)
        c = b.mul("c", v)
        b.store("s1", a)
        b.store("s2", c)
        m = qrf_machine(6)
        # schedule without copies: conventional-RF analysis
        s = modulo_schedule(b.build(), m)
        merged = merged_value_lifetimes(s)
        by_producer = {l.producer: l for l in merged}
        last_read = max(s.sigma[a.op_id], s.sigma[c.op_id])
        assert by_producer[v.op_id].end == last_read

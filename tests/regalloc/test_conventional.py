"""Unit tests for conventional-RF analysis."""

import pytest

from repro.machine.presets import crf_machine, qrf_machine
from repro.regalloc.conventional import (port_requirement,
                                         register_requirement)
from repro.sched.ims import modulo_schedule
from repro.workloads.kernels import daxpy, dot_product, wide_independent


class TestRegisterRequirement:
    def test_daxpy(self):
        s = modulo_schedule(daxpy(), crf_machine(4))
        rep = register_requirement(s)
        assert rep.n_values == 4          # x, y, ax, s (store sinks)
        assert rep.max_live >= 1
        assert len(rep.occupancy) == s.ii
        assert rep.mean_live <= rep.max_live

    def test_max_live_matches_bruteforce(self):
        """MaxLive equals a direct count of overlapping value instances
        deep in steady state."""
        from repro.regalloc.lifetimes import merged_value_lifetimes
        for machine in (crf_machine(4), crf_machine(12)):
            s = modulo_schedule(wide_independent(), machine)
            rep = register_requirement(s)
            lts = merged_value_lifetimes(s)
            base = (max(l.end for l in lts) // s.ii + 1) * s.ii
            brute = 0
            for t in range(base, base + s.ii):
                live = 0
                for l in lts:
                    for k in range(-4, base // s.ii + 4):
                        if l.length and \
                                l.start + k * s.ii <= t < l.end + k * s.ii:
                            live += 1
                brute = max(brute, live)
            assert rep.max_live == brute

    def test_lower_bound_sum_of_lengths(self):
        """MaxLive >= ceil(sum of lifetime lengths / II) (area bound)."""
        from repro.regalloc.lifetimes import merged_value_lifetimes
        s = modulo_schedule(wide_independent(), crf_machine(4))
        lts = merged_value_lifetimes(s)
        area = sum(l.length for l in lts)
        assert register_requirement(s).max_live >= -(-area // s.ii)

    def test_recurrence_keeps_value_live(self):
        # force a larger II so the carried accumulator value outlives the
        # cycle it is produced in
        s = modulo_schedule(dot_product(), crf_machine(6), start_ii=3)
        rep = register_requirement(s)
        assert rep.max_live >= 1

    def test_empty_occupancy_mean(self):
        from repro.regalloc.conventional import RegisterFileReport
        rep = RegisterFileReport(max_live=0, occupancy=(), n_values=0)
        assert rep.mean_live == 0.0


class TestPortRequirement:
    def test_paper_example_36_ports(self):
        # the paper: "a 12 FUs machine ... would demand a 36 port
        # register file" (2R + 1W per FU, compute units only on a CRF)
        assert port_requirement(crf_machine(12)) == 36

    def test_qrf_machine_counts_copy_units(self):
        m = qrf_machine(12)   # 12 compute + 4 copy
        assert port_requirement(m) == 48

    def test_custom_port_mix(self):
        assert port_requirement(crf_machine(6), reads_per_fu=3,
                                writes_per_fu=2) == 30

"""Hand-computed Q-Compatibility cases (paper Theorem 1.1)."""

from repro.regalloc.lifetimes import Lifetime
from repro.regalloc.queues import fifo_order_consistent, q_compatible


def lt(start, length, producer=0, consumer=1):
    return Lifetime(producer, consumer, 0, start, length)


class TestClosedForm:
    def test_identical_lifetime_object(self):
        a = lt(0, 2)
        assert q_compatible(a, a, ii=4)

    def test_same_phase_writes_collide(self):
        # delta == 0: two writes in the same cycle, one write port
        assert not q_compatible(lt(0, 2), lt(4, 3, producer=2), ii=4)

    def test_equal_lengths_different_phase(self):
        # production order == consumption order trivially
        assert q_compatible(lt(0, 2), lt(1, 2, producer=2), ii=4)

    def test_growing_length_within_bound(self):
        # delta = 1, L_b - L_a = 2 < II - delta = 3
        assert q_compatible(lt(0, 1), lt(1, 3, producer=2), ii=4)

    def test_boundary_reads_collide(self):
        # delta = 1, L_b - L_a = 3 == II - delta -> reads same cycle
        assert not q_compatible(lt(0, 1), lt(1, 4, producer=2), ii=4)

    def test_order_inversion_rejected(self):
        # a written first but read long after b's read of the next period
        assert not q_compatible(lt(0, 7), lt(1, 1, producer=2), ii=4)

    def test_argument_order_irrelevant(self):
        a, b = lt(0, 1), lt(1, 3, producer=2)
        assert q_compatible(a, b, 4) == q_compatible(b, a, 4)

    def test_long_lifetimes_multiple_periods(self):
        # both longer than II, same length: always order-preserving
        assert q_compatible(lt(0, 9), lt(2, 9, producer=2), ii=4)

    def test_paper_formula_strict_form(self):
        # L_b - L_a < (S_a - S_b) mod II, with L_a <= L_b
        a, b = lt(3, 2), lt(5, 3, producer=2)
        ii = 5
        delta = (b.start - a.start) % ii          # 2
        bound = ii - delta                        # 3
        assert (b.length - a.length < bound) == q_compatible(a, b, ii)


class TestReferenceSimulation:
    def test_agrees_on_hand_cases(self):
        cases = [
            (lt(0, 2), lt(4, 3, producer=2), 4),
            (lt(0, 2), lt(1, 2, producer=2), 4),
            (lt(0, 1), lt(1, 3, producer=2), 4),
            (lt(0, 1), lt(1, 4, producer=2), 4),
            (lt(0, 7), lt(1, 1, producer=2), 4),
            (lt(0, 9), lt(2, 9, producer=2), 4),
        ]
        for a, b, ii in cases:
            assert fifo_order_consistent(a, b, ii) == \
                q_compatible(a, b, ii), (a, b, ii)

    def test_zero_length_bypass(self):
        # a zero-length lifetime writes and reads in the same cycle
        a, b = lt(0, 0), lt(1, 1, producer=2)
        assert q_compatible(a, b, ii=3) == \
            fifo_order_consistent(a, b, ii=3)

"""Tests for budget-constrained allocation (spill analysis)."""

import pytest

from repro.ir.copyins import insert_copies
from repro.machine.presets import qrf_machine
from repro.regalloc.lifetimes import Lifetime, extract_lifetimes
from repro.regalloc.queues import allocate_queues
from repro.regalloc.spill import (allocate_with_budget, spill_cost_cycles,
                                  spill_summary)
from repro.sched.ims import modulo_schedule
from repro.workloads.kernels import daxpy, fir4, wide_independent


def lt(start, length, i=0):
    return Lifetime(2 * i, 2 * i + 1, 0, start, length)


class TestBudget:
    def test_generous_budget_spills_nothing(self):
        lts = [lt(i, 2, i) for i in range(5)]
        rep = allocate_with_budget(lts, 8, max_queues=8, max_positions=8)
        assert rep.fits
        assert sum(len(q) for q in rep.queues) == 5

    def test_zero_queues_spills_everything(self):
        lts = [lt(i, 2, i) for i in range(3)]
        rep = allocate_with_budget(lts, 8, max_queues=0, max_positions=8)
        assert rep.n_spilled == 3

    def test_queue_limit_forces_spills(self):
        # same-phase writes are mutually incompatible: need one queue each
        lts = [lt(8 * i, 2, i) for i in range(4)]   # all phase 0 at II=8
        unlimited = allocate_queues(lts, 8)
        assert unlimited.n_queues == 4
        rep = allocate_with_budget(lts, 8, max_queues=2, max_positions=8)
        assert rep.n_spilled == 2

    def test_position_limit_forces_spills(self):
        # one long lifetime occupies many positions
        long_lt = lt(0, 40, 0)
        rep = allocate_with_budget([long_lt], 4, max_queues=4,
                                   max_positions=2)
        assert rep.n_spilled == 1

    def test_bad_budget(self):
        with pytest.raises(ValueError):
            allocate_with_budget([], 4, max_queues=-1, max_positions=4)

    def test_pairwise_validity_under_budget(self):
        m = qrf_machine(4)
        s = modulo_schedule(insert_copies(fir4()).ddg, m)
        lts = extract_lifetimes(s)
        rep = allocate_with_budget(lts, s.ii, max_queues=4,
                                   max_positions=4)
        from repro.regalloc.queues import q_compatible
        for q in rep.queues:
            for i, a in enumerate(q):
                for b in q[i + 1:]:
                    assert q_compatible(a, b, s.ii)


class TestRealSchedules:
    def test_paper_budget_fits_daxpy(self):
        m = qrf_machine(4)
        s = modulo_schedule(insert_copies(daxpy()).ddg, m)
        rep = allocate_with_budget(extract_lifetimes(s), s.ii,
                                   max_queues=8, max_positions=16)
        assert rep.fits

    def test_tight_budget_on_wide_loop(self):
        m = qrf_machine(12)
        s = modulo_schedule(insert_copies(wide_independent()).ddg, m)
        lts = extract_lifetimes(s)
        roomy = allocate_with_budget(lts, s.ii, max_queues=32,
                                     max_positions=16)
        tight = allocate_with_budget(lts, s.ii, max_queues=4,
                                     max_positions=16)
        assert roomy.n_spilled <= tight.n_spilled
        assert tight.n_queues <= 4


class TestCosts:
    def test_cost_proportional_to_spills(self):
        lts = [lt(8 * i, 2, i) for i in range(4)]
        rep = allocate_with_budget(lts, 8, max_queues=1, max_positions=8)
        assert spill_cost_cycles(rep) == rep.n_spilled * 3  # store1+load2

    def test_summary(self):
        lts = [lt(8 * i, 2, i) for i in range(4)]
        r1 = allocate_with_budget(lts, 8, max_queues=2, max_positions=8)
        r2 = allocate_with_budget(lts, 8, max_queues=4, max_positions=8)
        spilled, queues = spill_summary([r1, r2])
        assert spilled == r1.n_spilled + r2.n_spilled
        assert queues == r1.n_queues + r2.n_queues

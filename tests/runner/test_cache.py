"""Content-addressed result cache: hits, misses, corruption recovery."""

import json

import pytest

from repro.machine.presets import qrf_machine
from repro.runner import (CompileJob, ResultCache, RunnerConfig,
                          default_cache_dir, execute_job, run_jobs)
from repro.runner.cache import CACHE_DIR_ENV
from repro.runner.fingerprint import SCHEMA_VERSION
from repro.workloads.kernels import kernel


@pytest.fixture
def cache(tmp_path):
    return ResultCache(tmp_path / "cache")


def _job(name="daxpy", n_fus=4):
    return CompileJob(kernel(name), qrf_machine(n_fus))


def test_miss_then_hit(cache):
    job = _job()
    assert cache.get(job.key) is None
    result = execute_job(job)
    cache.put(result)
    hit = cache.get(job.key)
    assert hit is not None
    assert hit.cached
    assert hit == result          # `cached` does not participate in ==
    assert cache.stats()["hits"] == 1
    assert cache.stats()["misses"] == 1


def test_persists_across_instances(cache, tmp_path):
    result = execute_job(_job())
    cache.put(result)
    reopened = ResultCache(tmp_path / "cache")
    assert reopened.get(result.key) == result


def test_extras_round_trip_json(cache):
    from repro.runner import PipelineOptions, spill_spec

    spec = spill_spec([(4, 8), (32, 16)])
    job = CompileJob(kernel("fir4"), qrf_machine(4),
                     PipelineOptions(allocate=False, extras=(spec,)))
    result = execute_job(job)
    cache.put(result)
    replayed = ResultCache(cache.directory).get(job.key)
    assert replayed.extras == result.extras
    assert replayed.extras[spec]["4x8"]["n_spilled"] >= 0


def test_corrupt_lines_are_skipped_not_fatal(cache):
    good = execute_job(_job())
    cache.put(good)
    with cache.path.open("a") as fh:
        fh.write("{not json at all\n")                      # truncated write
        fh.write(json.dumps({"v": SCHEMA_VERSION}) + "\n")  # missing fields
        fh.write(json.dumps({"v": SCHEMA_VERSION - 1, "key": "k",
                             "outcome": {}}) + "\n")        # old schema
    reopened = ResultCache(cache.directory)
    assert len(reopened) == 1
    assert reopened.n_corrupt == 3
    assert reopened.get(good.key) == good


def test_corrupt_entry_triggers_recompute(cache):
    job = _job()
    run_jobs([job], RunnerConfig(cache=cache))
    # clobber the stored record's outcome in place
    record = json.loads(cache.path.read_text())
    record["outcome"] = {"nonsense": True}
    cache.path.write_text(json.dumps(record) + "\n")
    fresh_cache = ResultCache(cache.directory)
    [result] = run_jobs([job], RunnerConfig(cache=fresh_cache))
    assert not result.cached            # recompiled, not replayed
    assert fresh_cache.n_corrupt == 1
    # and the recompute healed the store
    healed = ResultCache(cache.directory)
    assert healed.get(job.key) is not None


def test_last_duplicate_wins(cache):
    result = execute_job(_job())
    cache.put(result)
    cache.put(result)
    reopened = ResultCache(cache.directory)
    assert len(reopened) == 1


def test_clear(cache):
    cache.put(execute_job(_job()))
    assert len(cache) == 1
    cache.clear()
    assert len(cache) == 0
    assert not cache.path.exists()


def test_unwritable_location_degrades_to_memory(capsys):
    broken = ResultCache("/proc/definitely/not/writable")
    job = _job()
    [first] = run_jobs([job], RunnerConfig(cache=broken))
    assert not first.cached
    assert "not writable" in capsys.readouterr().err
    # the sweep's results are still served from the in-memory index
    [replay] = run_jobs([job], RunnerConfig(cache=broken))
    assert replay.cached


def test_default_dir_honours_env(monkeypatch, tmp_path):
    monkeypatch.setenv(CACHE_DIR_ENV, str(tmp_path / "elsewhere"))
    assert default_cache_dir() == tmp_path / "elsewhere"
    assert ResultCache().directory == tmp_path / "elsewhere"


def test_default_dir_fallback(monkeypatch):
    monkeypatch.delenv(CACHE_DIR_ENV, raising=False)
    assert default_cache_dir().name == "repro-vliw"


def test_crash_mid_append_recovers_and_heals(cache):
    """A writer killed mid-append leaves a torn final line with no
    newline.  The loader must skip exactly that line, and the next batch
    append must start on a fresh line instead of merging into the tear."""
    good = execute_job(_job())
    cache.put(good)
    # simulate the crash: a truncated record, no trailing newline
    with cache.path.open("a") as fh:
        fh.write('{"v": %d, "key": "deadbeef", "outco' % SCHEMA_VERSION)

    torn = ResultCache(cache.directory)
    assert torn.get(good.key) == good
    assert torn.n_corrupt == 1

    # appending through the torn tail must not corrupt the new record
    second = execute_job(_job("dot"))
    torn.put(second)
    healed = ResultCache(cache.directory)
    assert healed.get(good.key) == good
    assert healed.get(second.key) == second
    assert healed.n_corrupt == 1          # still just the torn line
    # the torn fragment sits isolated on its own line
    lines = cache.path.read_text().splitlines()
    assert sum(1 for ln in lines if ln.endswith('"outco')) == 1


def test_put_many_is_one_append_per_batch(cache, monkeypatch):
    """run_jobs stores the whole sweep with a single buffered write."""
    jobs = [_job(n) for n in ("daxpy", "dot", "fir4", "vadd")]
    results = [execute_job(j) for j in jobs]
    writes = []
    real_open = type(cache.path).open

    def counting_open(self, mode="r", *a, **kw):
        fh = real_open(self, mode, *a, **kw)
        if "a" in mode:
            real_write = fh.write
            def write(data):
                writes.append(data)
                return real_write(data)
            fh.write = write
        return fh

    monkeypatch.setattr(type(cache.path), "open", counting_open)
    cache.put_many(results)
    assert len(writes) == 1
    assert writes[0].count("\n") == len(results)
    reopened = ResultCache(cache.directory)
    assert len(reopened) == len(results)

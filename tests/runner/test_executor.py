"""Executor invariants: ordered results, parallel == serial, fallback."""

import pytest

from repro.machine.presets import clustered_machine, qrf_machine
from repro.runner import (CompileJob, PipelineOptions, ResultCache,
                          RunnerConfig, run_jobs, sweep)
from repro.runner import executor as executor_mod
from repro.workloads.corpus import paper_corpus
from repro.workloads.kernels import all_kernels, kernel


@pytest.fixture(scope="module")
def corpus_sample():
    """A stride through the paper corpus plus the hand-written kernels."""
    loops = paper_corpus()
    return loops[::60] + all_kernels()[:8]


def test_results_come_back_in_job_order():
    jobs = [CompileJob(kernel(n), qrf_machine(4))
            for n in ("daxpy", "dot", "fir4", "vadd")]
    results = run_jobs(jobs)
    assert [r.outcome.loop for r in results] == ["daxpy", "dot", "fir4",
                                                 "vadd"]
    assert [r.key for r in results] == [j.key for j in jobs]


def test_parallel_equals_serial_on_paper_corpus(corpus_sample):
    jobs = sweep(corpus_sample, [qrf_machine(4), clustered_machine(4)],
                 [dict(copies=True, allocate=False)])
    serial = run_jobs(jobs)
    parallel = run_jobs(jobs, RunnerConfig(n_workers=3))
    assert parallel == serial


def test_parallel_equals_serial_with_unrolling(corpus_sample):
    jobs = sweep(corpus_sample[:10], [qrf_machine(12)],
                 [dict(do_unroll=True, copies=True, allocate=True)])
    assert run_jobs(jobs, RunnerConfig(n_workers=2)) == run_jobs(jobs)


def test_cache_makes_second_sweep_incremental(tmp_path, corpus_sample):
    cache = ResultCache(tmp_path)
    jobs = sweep(corpus_sample[:6], [qrf_machine(4)])
    config = RunnerConfig(cache=cache)
    first = run_jobs(jobs, config)
    assert not any(r.cached for r in first)
    second = run_jobs(jobs, config)
    assert all(r.cached for r in second)
    assert second == first
    assert cache.stats()["stores"] == len(jobs)


def test_cache_is_shared_between_serial_and_parallel(tmp_path,
                                                     corpus_sample):
    cache = ResultCache(tmp_path)
    jobs = sweep(corpus_sample[:6], [qrf_machine(4)])
    serial = run_jobs(jobs, RunnerConfig(cache=cache))
    parallel = run_jobs(jobs, RunnerConfig(n_workers=2, cache=cache))
    assert all(r.cached for r in parallel)
    assert parallel == serial


def test_partial_cache_fills_only_the_gaps(tmp_path):
    cache = ResultCache(tmp_path)
    half = [CompileJob(kernel(n), qrf_machine(4))
            for n in ("daxpy", "dot")]
    full = half + [CompileJob(kernel(n), qrf_machine(4))
                   for n in ("fir4", "vadd")]
    run_jobs(half, RunnerConfig(cache=cache))
    results = run_jobs(full, RunnerConfig(cache=cache))
    assert [r.cached for r in results] == [True, True, False, False]


def test_progress_callback_ticks_every_job(tmp_path):
    cache = ResultCache(tmp_path)
    jobs = [CompileJob(kernel(n), qrf_machine(4))
            for n in ("daxpy", "dot", "fir4")]
    seen = []
    run_jobs(jobs, RunnerConfig(cache=cache,
                                progress=lambda d, t: seen.append((d, t))))
    assert seen == [(1, 3), (2, 3), (3, 3)]
    # cache hits tick too
    seen.clear()
    run_jobs(jobs, RunnerConfig(cache=cache,
                                progress=lambda d, t: seen.append((d, t))))
    assert seen == [(1, 3), (2, 3), (3, 3)]


def test_pool_failure_falls_back_to_serial(monkeypatch):
    def broken_context():
        raise OSError("no processes for you")

    monkeypatch.setattr(executor_mod, "_pool_context", broken_context)
    jobs = [CompileJob(kernel(n), qrf_machine(4))
            for n in ("daxpy", "dot", "fir4")]
    results = run_jobs(jobs, RunnerConfig(n_workers=4))
    assert results == run_jobs(jobs)


def test_empty_job_list():
    assert run_jobs([]) == []
    assert run_jobs([], RunnerConfig(n_workers=4)) == []


def test_failed_outcomes_survive_parallel_and_cache(tmp_path):
    from repro.machine.presets import narrow_test_machine
    from repro.workloads.synth import SynthConfig, generate_loop
    import random

    # wide loops on a 1-FU-per-class machine: some fail to schedule
    cfg = SynthConfig(n_loops=12)
    rng = random.Random(3)
    loops = [generate_loop(rng, cfg, i) for i in range(cfg.n_loops)]
    jobs = sweep(loops, [narrow_test_machine()],
                 [dict(copies=True, allocate=False)])
    cache = ResultCache(tmp_path)
    serial = run_jobs(jobs)
    parallel = run_jobs(jobs, RunnerConfig(n_workers=2, cache=cache))
    replayed = run_jobs(jobs, RunnerConfig(cache=cache))
    assert parallel == serial
    assert replayed == serial
    assert all(r.cached for r in replayed)


def test_raising_progress_callback_never_reruns_settled_jobs(tmp_path):
    """A flaky observer mid-fan-out costs the pool session, not the
    sweep: settled jobs are final (no job executes more than the retry
    bound allows) and the tick stream stays monotonic and complete."""
    from repro import faults
    from repro.runner import pool as pool_mod

    pool_mod.close_all_sessions()
    ledger = tmp_path / "attempts.ledger"
    faults.enable_faults(f"seed=0;ledger={ledger}")
    try:
        jobs = sweep(all_kernels()[:8], [qrf_machine(4)],
                     [dict(copies=True, allocate=False)])
        ticks = []

        def progress(done, total):
            ticks.append((done, total))
            if done == len(jobs) // 2:
                raise RuntimeError("flaky observer")

        results = run_jobs(jobs, RunnerConfig(n_workers=2,
                                              progress=progress))
    finally:
        faults.disable_faults()
        pool_mod.close_all_sessions()
    assert results == run_jobs(jobs)
    # monotonic and complete: one tick per job, no double-counting of
    # the jobs that settled before the callback blew up
    assert [d for d, _ in ticks] == list(range(1, len(jobs) + 1))
    assert all(t == len(jobs) for _, t in ticks)
    attempts = faults.read_ledger(str(ledger))
    assert set(attempts) == {j.key for j in jobs}
    # settled-then-lost in-flight work may legitimately re-run once on
    # the serial path; nothing runs beyond the 1 + retries bound
    assert max(attempts.values()) <= 2


class TestPersistentPool:
    def test_pool_survives_across_run_jobs_calls(self, corpus_sample):
        from repro.runner import pool as pool_mod

        pool_mod.close_all_sessions()
        jobs = sweep(corpus_sample[:8], [qrf_machine(4)],
                     [dict(copies=True, allocate=False)])
        first = run_jobs(jobs, RunnerConfig(n_workers=2))
        session = pool_mod._SESSIONS[2]
        assert session.spawns == 1
        # same loop/machine objects: the second sweep reuses the workers
        more = sweep(corpus_sample[:8], [qrf_machine(4)],
                     [dict(copies=True, allocate=True)])
        run_jobs(more, RunnerConfig(n_workers=2))
        assert session.spawns == 1
        assert session.reuses >= 1
        assert first == run_jobs(jobs)          # parity with serial
        pool_mod.close_all_sessions()

    def test_new_payload_objects_restart_workers(self, corpus_sample):
        from repro.runner import pool as pool_mod

        pool_mod.close_all_sessions()
        run_jobs(sweep(corpus_sample[:4], [qrf_machine(4)], None),
                 RunnerConfig(n_workers=2))
        session = pool_mod._SESSIONS[2]
        assert session.spawns == 1
        # a machine object the workers have never seen forces a respawn
        run_jobs(sweep(corpus_sample[:4], [qrf_machine(6)], None),
                 RunnerConfig(n_workers=2))
        assert session.spawns == 2
        pool_mod.close_all_sessions()

    def test_table_cap_recycles_the_session_mid_stream(self, monkeypatch,
                                                       corpus_sample):
        from repro.runner import pool as pool_mod

        pool_mod.close_all_sessions()
        monkeypatch.setattr(pool_mod, "MAX_TABLE_ENTRIES", 4)
        jobs_a = sweep(corpus_sample[:4], [qrf_machine(4)], None)
        jobs_b = sweep(corpus_sample[4:8], [qrf_machine(4)], None)
        first = run_jobs(jobs_a, RunnerConfig(n_workers=2))
        session = pool_mod._SESSIONS[2]
        assert session.spawns == 1
        assert session.counters()["ddgs"] == 4       # 4 + 1 > the cap
        second = run_jobs(jobs_b, RunnerConfig(n_workers=2))
        # the cap tripped mid-stream: the session recycled itself and
        # restarted the tables from only the second call's objects
        assert session.spawns == 2
        counters = session.counters()
        assert counters["ddgs"] == 4
        assert counters["machines"] == 1
        assert first == run_jobs(jobs_a)             # parity kept
        assert second == run_jobs(jobs_b)
        pool_mod.close_all_sessions()

    def test_cost_estimator_prefers_cache_history(self, tmp_path):
        from repro.runner import pool as pool_mod

        cache = ResultCache(tmp_path)
        job = CompileJob(kernel("daxpy"), qrf_machine(4))
        run_jobs([job], RunnerConfig(cache=cache))
        cost = pool_mod.cost_estimator(cache)
        recorded = cost(job)
        assert recorded > 0
        # an unseen (loop, machine) pair falls back to the op heuristic
        other = CompileJob(kernel("dot"), qrf_machine(6))
        assert cost(other) == pytest.approx(1e-4 * other.ddg.n_ops)

    def test_unordered_dispatch_returns_ordered_results(self,
                                                        corpus_sample):
        from repro.runner import pool as pool_mod

        pool_mod.close_all_sessions()
        jobs = sweep(corpus_sample, [qrf_machine(4)],
                     [dict(copies=True, allocate=False)])
        parallel = run_jobs(jobs, RunnerConfig(n_workers=3))
        assert [r.key for r in parallel] == [j.key for j in jobs]
        pool_mod.close_all_sessions()

"""Sharded result cache: concurrency, migration, eviction, layout."""

import hashlib
import json
import multiprocessing

import pytest

from repro.machine.presets import qrf_machine
from repro.runner import (CompileJob, ResultCache, ShardedResultCache,
                          execute_job, open_cache)
from repro.runner.cache import CACHE_FILE, SHARD_DIR
from repro.runner.fingerprint import SCHEMA_VERSION
from repro.runner.job import JobResult
from repro.workloads.kernels import kernel


@pytest.fixture
def cache(tmp_path):
    return ShardedResultCache(tmp_path / "cache")


def _job(name="daxpy", n_fus=4):
    return CompileJob(kernel(name), qrf_machine(n_fus))


def _fake_result(tag: str) -> JobResult:
    """A schema-valid record without the cost of a real compile."""
    from repro.analysis.metrics import LoopOutcome

    key = hashlib.sha256(tag.encode()).hexdigest()
    outcome = LoopOutcome(
        loop=f"loop-{tag}", machine="m", n_source_ops=4, n_body_ops=4,
        unroll_factor=1, n_copies=0, ii=2, mii=2, res_mii=2, rec_mii=1,
        stage_count=2, trip_count=100)
    return JobResult(key=key, outcome=outcome)


# ---------------------------------------------------------------------------
# basics
# ---------------------------------------------------------------------------

def test_miss_then_hit_and_persistence(cache, tmp_path):
    job = _job()
    assert cache.get(job.key) is None
    result = execute_job(job)
    cache.put(result)
    assert cache.get(job.key) == result
    assert cache.stats()["hits"] == 1
    reopened = ShardedResultCache(tmp_path / "cache")
    assert reopened.get(job.key) == result
    assert reopened.get(job.key).cached


def test_records_land_on_fingerprint_shards(cache):
    results = [_fake_result(f"r{i}") for i in range(32)]
    cache.put_many(results)
    for result in results:
        shard = int(result.key[:2], 16) % cache.n_shards
        raw = cache._shard_path(shard).read_text()
        assert result.key in raw
    occupancy = cache.shard_occupancy()
    assert sum(occupancy) == 32


def test_peek_does_not_count(cache):
    result = _fake_result("peek")
    cache.put(result)
    assert cache.peek(result.key) == result
    assert cache.peek("0" * 64) is None
    stats = cache.stats()
    assert stats["hits"] == 0 and stats["misses"] == 0


def test_torn_shard_tail_is_isolated_and_healed(cache):
    result = _fake_result("torn")
    cache.put(result)
    shard = cache._shard(result.key)
    with cache._shard_path(shard).open("a") as fh:
        fh.write('{"v": %d, "key": "dead' % SCHEMA_VERSION)
    reopened = ShardedResultCache(cache.directory)
    assert reopened.get(result.key) == result
    assert reopened.n_corrupt == 1
    second = _fake_result("torn2-xyz")
    # force it onto the torn shard so the append crosses the tear
    second = JobResult(key=result.key[:2] + second.key[2:],
                       outcome=second.outcome)
    reopened.put(second)
    healed = ShardedResultCache(cache.directory)
    assert healed.get(result.key) == result
    assert healed.get(second.key).outcome == second.outcome
    assert healed.n_corrupt == 1


def test_clear_drops_both_layouts(tmp_path):
    legacy = ResultCache(tmp_path / "cache")
    legacy.put(_fake_result("legacy"))
    sharded = ShardedResultCache(tmp_path / "cache")
    sharded.put(_fake_result("sharded"))
    assert len(sharded) == 2
    sharded.clear()
    assert len(ShardedResultCache(tmp_path / "cache")) == 0
    assert not (tmp_path / "cache" / CACHE_FILE).exists()


def test_bad_shard_count_rejected(tmp_path):
    with pytest.raises(ValueError):
        ShardedResultCache(tmp_path, n_shards=12)


# ---------------------------------------------------------------------------
# legacy migration
# ---------------------------------------------------------------------------

def test_legacy_records_read_through(tmp_path):
    legacy = ResultCache(tmp_path / "cache")
    result = execute_job(_job())
    legacy.put(result)
    sharded = ShardedResultCache(tmp_path / "cache")
    assert sharded.get(result.key) == result


def test_migrate_moves_and_removes_legacy(tmp_path):
    legacy = ResultCache(tmp_path / "cache")
    results = [_fake_result(f"m{i}") for i in range(10)]
    legacy.put_many(results)

    sharded = ShardedResultCache(tmp_path / "cache")
    assert sharded.migrate() == 10
    assert not (tmp_path / "cache" / CACHE_FILE).exists()
    reloaded = ShardedResultCache(tmp_path / "cache")
    for result in results:
        assert reloaded.get(result.key).outcome == result.outcome
    # shard-resident records are not re-migrated
    assert reloaded.migrate() == 0


def test_migrate_prefers_newer_shard_records(tmp_path):
    stale = _fake_result("dup")
    legacy = ResultCache(tmp_path / "cache")
    legacy.put(stale)
    sharded = ShardedResultCache(tmp_path / "cache")
    fresh = JobResult(key=stale.key, outcome=stale.outcome,
                      extras={"marker": 1})
    sharded.put(fresh)
    sharded.migrate()
    reloaded = ShardedResultCache(tmp_path / "cache")
    assert reloaded.get(stale.key).extras == {"marker": 1}


def test_open_cache_autodetects_layout(tmp_path):
    # brand-new directory -> sharded
    assert isinstance(open_cache(tmp_path / "new"), ShardedResultCache)
    # existing legacy store stays legacy
    legacy_dir = tmp_path / "old"
    ResultCache(legacy_dir).put(_fake_result("x"))
    assert isinstance(open_cache(legacy_dir), ResultCache)
    # ... until migrated, after which shards win
    sharded = ShardedResultCache(legacy_dir)
    sharded.migrate()
    assert isinstance(open_cache(legacy_dir), ShardedResultCache)
    # and the backend override forces either way
    assert isinstance(open_cache(legacy_dir, backend="legacy"),
                      ResultCache)
    with pytest.raises(ValueError):
        open_cache(legacy_dir, backend="nope")


# ---------------------------------------------------------------------------
# gc / eviction
# ---------------------------------------------------------------------------

def test_gc_compacts_superseded_records(cache):
    result = _fake_result("dup-gc")
    cache.put(result)
    cache.put(result)
    shard = cache._shard(result.key)
    raw = cache._shard_path(shard).read_text()
    assert raw.count(result.key) == 2
    report = cache.gc()
    assert report["after_bytes"] < report["before_bytes"]
    raw = cache._shard_path(shard).read_text()
    assert raw.count(result.key) == 1
    assert cache.get(result.key).outcome == result.outcome


def test_gc_evicts_oldest_to_budget(cache):
    results = [_fake_result(f"e{i}") for i in range(64)]
    cache.put_many(results)
    before = cache.total_bytes()
    report = cache.gc(max_bytes=before // 2)
    assert report["evicted"] > 0
    assert cache.total_bytes() <= before // 2 + before // 8
    assert cache.stats()["evictions"] == report["evicted"]
    # everything still present is readable; everything evicted misses
    reopened = ShardedResultCache(cache.directory)
    survivors = sum(1 for r in results if reopened.peek(r.key))
    assert survivors == 64 - report["evicted"]


def test_max_bytes_budget_evicts_during_put(tmp_path):
    cache = ShardedResultCache(tmp_path / "cache", n_shards=2,
                               max_bytes=2048)
    for i in range(64):
        cache.put(_fake_result(f"auto{i}"))
    assert cache.evictions > 0
    # the store is held near the budget (per-shard slack allowed)
    assert cache.total_bytes() <= 2048 + 1024


# ---------------------------------------------------------------------------
# concurrent writers
# ---------------------------------------------------------------------------

def _writer_process(directory, worker_id, n_records, n_batches):
    cache = ShardedResultCache(directory)
    per_batch = n_records // n_batches
    for b in range(n_batches):
        batch = [_fake_result(f"w{worker_id}-{b}-{i}")
                 for i in range(per_batch)]
        cache.put_many(batch)


def test_concurrent_multiprocess_writers_lose_nothing(tmp_path):
    """Several processes hammer the same sharded store; afterwards every
    record is readable -- no torn lines, no lost shards."""
    directory = tmp_path / "cache"
    n_workers, n_records, n_batches = 4, 48, 8
    ctx = multiprocessing.get_context()
    procs = [ctx.Process(target=_writer_process,
                         args=(str(directory), w, n_records, n_batches))
             for w in range(n_workers)]
    for p in procs:
        p.start()
    for p in procs:
        p.join(60)
        assert p.exitcode == 0

    cache = ShardedResultCache(directory)
    assert cache.n_corrupt == 0
    assert len(cache) == n_workers * n_records
    for w in range(n_workers):
        for b in range(n_batches):
            for i in range(n_records // n_batches):
                result = _fake_result(f"w{w}-{b}-{i}")
                assert cache.peek(result.key) is not None


def test_daemon_plus_cli_shape_sharing(tmp_path):
    """Two cache instances over one directory (the daemon + a CLI sweep)
    interleave writes without clobbering each other."""
    a = ShardedResultCache(tmp_path / "cache")
    b = ShardedResultCache(tmp_path / "cache")
    ra, rb = _fake_result("from-a"), _fake_result("from-b")
    a.put(ra)
    b.put(rb)                     # b's view predates a's write
    fresh = ShardedResultCache(tmp_path / "cache")
    assert fresh.peek(ra.key) is not None
    assert fresh.peek(rb.key) is not None
    assert fresh.n_corrupt == 0


def test_json_round_trip_matches_legacy_wire_format(cache, tmp_path):
    """Shard lines carry the same record schema as the legacy store, so
    cost estimation (and any external reader) works unchanged."""
    result = execute_job(_job("dot"))
    cache.put(result)
    legacy = ResultCache(tmp_path / "legacy")
    legacy.put(result)
    shard_line = json.loads(
        cache._shard_path(cache._shard(result.key)).read_text())
    legacy_line = json.loads(legacy.path.read_text())
    assert shard_line == legacy_line


def test_cost_estimator_reads_sharded_cache(cache):
    from repro.runner.pool import cost_estimator

    job = _job("fir4")
    result = execute_job(job)
    result.wall_s = 0.25
    cache.put(result)
    cost = cost_estimator(ShardedResultCache(cache.directory))
    assert cost(job) == pytest.approx(0.25)

"""Driver-level determinism: every refactored experiment driver renders
identical tables whether it runs serially, in parallel, or from cache --
the acceptance invariant behind ``repro-vliw report --jobs N``."""

import random

import pytest

from repro.analysis.experiments import (fig3_queue_requirements,
                                        fig6_ii_variation, register_pressure,
                                        sec2_copy_impact, sec4_cluster_queues,
                                        spill_budget)
from repro.runner import ResultCache, RunnerConfig
from repro.workloads.kernels import all_kernels
from repro.workloads.synth import SynthConfig, generate_loop


@pytest.fixture(scope="module")
def loops():
    cfg = SynthConfig(n_loops=10)
    rng = random.Random(cfg.seed)
    synth = [generate_loop(rng, cfg, i) for i in range(cfg.n_loops)]
    return synth + all_kernels()[:6]


@pytest.fixture
def parallel_cached(tmp_path):
    return RunnerConfig(n_workers=2, cache=ResultCache(tmp_path))


@pytest.mark.parametrize("driver", [
    fig3_queue_requirements,
    sec2_copy_impact,
    sec4_cluster_queues,
    register_pressure,
    spill_budget,
])
def test_driver_parallel_render_matches_serial(driver, loops,
                                               parallel_cached):
    serial = driver(loops).render()
    parallel = driver(loops, runner=parallel_cached).render()
    replayed = driver(loops, runner=parallel_cached).render()
    assert parallel == serial
    assert replayed == serial


def test_empty_loop_list_degrades_gracefully():
    empty = fig3_queue_requirements([])
    assert all(v == 0.0 for row in empty.by_machine.values()
               for v in row.values())
    assert sec4_cluster_queues([], cluster_counts=(4,)).fits_budget == {
        4: 0.0}


def test_fig6_two_wave_dependency_parity(loops, parallel_cached):
    serial = fig6_ii_variation(loops, cluster_counts=(4,))
    parallel = fig6_ii_variation(loops, cluster_counts=(4,),
                                 runner=parallel_cached)
    assert parallel == serial


@pytest.mark.parametrize("scheduler", ["ims", "sms"])
def test_scheduler_sweeps_parallel_parity(scheduler, loops,
                                          parallel_cached):
    """Byte-identical serial/parallel/replayed output for each engine."""
    serial = fig3_queue_requirements(loops, scheduler=scheduler).render()
    parallel = fig3_queue_requirements(
        loops, runner=parallel_cached, scheduler=scheduler).render()
    replayed = fig3_queue_requirements(
        loops, runner=parallel_cached, scheduler=scheduler).render()
    assert parallel == serial
    assert replayed == serial


def test_scheduler_compare_parallel_parity(loops, parallel_cached):
    from repro.analysis.experiments import exp_scheduler_compare

    serial = exp_scheduler_compare(loops).render()
    parallel = exp_scheduler_compare(loops,
                                     runner=parallel_cached).render()
    replayed = exp_scheduler_compare(loops,
                                     runner=parallel_cached).render()
    assert parallel == serial
    assert replayed == serial

"""Job-key stability and sensitivity.

The whole caching story rests on keys being (a) identical for identical
jobs -- across objects, interpreter runs and processes -- and (b)
different for any input change that could change the result.
"""

import multiprocessing

from repro.machine.presets import clustered_machine, qrf_machine
from repro.runner import (CompileJob, PipelineOptions, ddg_signature,
                          job_key, machine_signature)
from repro.workloads.kernels import kernel


def _key_of(name: str) -> str:
    """Top-level so a worker process can compute the same key."""
    return CompileJob(kernel(name), qrf_machine(4)).key


def test_key_is_deterministic_across_objects():
    assert _key_of("daxpy") == _key_of("daxpy")


def test_key_is_stable_across_processes():
    ctx = multiprocessing.get_context("fork")
    with ctx.Pool(2) as pool:
        child_keys = pool.map(_key_of, ["daxpy", "dot", "fir4"])
    assert child_keys == [_key_of("daxpy"), _key_of("dot"), _key_of("fir4")]


def test_key_is_hex_sha256():
    key = _key_of("daxpy")
    assert len(key) == 64
    assert int(key, 16) >= 0


def test_key_changes_with_loop():
    assert _key_of("daxpy") != _key_of("dot")


def test_key_changes_with_machine():
    ddg = kernel("daxpy")
    assert (CompileJob(ddg, qrf_machine(4)).key
            != CompileJob(ddg, qrf_machine(6)).key)
    assert (CompileJob(ddg, qrf_machine(12)).key
            != CompileJob(ddg, clustered_machine(4)).key)


def test_key_changes_with_options():
    ddg = kernel("daxpy")
    m = qrf_machine(4)
    base = CompileJob(ddg, m, PipelineOptions()).key
    assert CompileJob(ddg, m, PipelineOptions(do_unroll=True)).key != base
    assert CompileJob(ddg, m, PipelineOptions(allocate=False)).key != base
    assert (CompileJob(ddg, m, PipelineOptions(extras=("crf_registers",))).key
            != base)


def test_key_never_aliases_across_schedulers():
    """Same loop, machine and flags under a different engine is a
    different job: cached IMS results must never answer for SMS."""
    ddg = kernel("daxpy")
    m = qrf_machine(4)
    keys = {CompileJob(ddg, m, PipelineOptions(scheduler=s)).key
            for s in ("ims", "sms")}
    assert len(keys) == 2
    assert (CompileJob(ddg, m, PipelineOptions()).key
            == CompileJob(ddg, m, PipelineOptions(scheduler="ims")).key)


def test_key_never_aliases_across_partitioners():
    """Same loop, machine and flags under a different partitioning
    engine is a different job: cached affinity results must never answer
    for the agglomerative engine (SCHEMA_VERSION 3)."""
    from repro.sched.partitioners import available_partitioners

    ddg = kernel("daxpy")
    cm = clustered_machine(4)
    keys = {CompileJob(ddg, cm, PipelineOptions(partitioner=p)).key
            for p in available_partitioners()}
    assert len(keys) == len(available_partitioners())
    assert (CompileJob(ddg, cm, PipelineOptions()).key
            == CompileJob(ddg, cm,
                          PipelineOptions(partitioner="affinity")).key)


def test_schema_version_is_current():
    from repro.runner import SCHEMA_VERSION
    assert SCHEMA_VERSION == 5


def test_key_changes_with_trip_count():
    a, b = kernel("daxpy"), kernel("daxpy")
    b.trip_count += 1
    m = qrf_machine(4)
    assert CompileJob(a, m).key != CompileJob(b, m).key


def test_ddg_signature_ignores_bookkeeping_names():
    a, b = kernel("daxpy"), kernel("daxpy")
    sig_a, sig_b = ddg_signature(a), ddg_signature(b)
    assert sig_a == sig_b
    assert sig_a["ops"] and sig_a["edges"]


def test_machine_signature_covers_cluster_topology():
    sig = machine_signature(clustered_machine(5))
    assert sig["kind"] == "clustered"
    assert sig["n_clusters"] == 5
    assert sig["cluster"]["kind"] == "single"
    flat = machine_signature(clustered_machine(5).flattened())
    assert flat["kind"] == "single"
    assert sig != flat


def test_job_key_helper_matches_job_property():
    ddg = kernel("dot")
    m = qrf_machine(6)
    opts = PipelineOptions(copies=True, allocate=True)
    assert CompileJob(ddg, m, opts).key == job_key(ddg, m, opts.signature())

"""Sweep grid builder: ordering, variants, extras defaults."""

from repro.machine.presets import clustered_machine, qrf_machine
from repro.runner import PipelineOptions, as_options, sweep
from repro.workloads.kernels import kernel


def _loops():
    return [kernel("daxpy"), kernel("dot"), kernel("fir4")]


def test_grid_size_and_nesting_order():
    loops = _loops()
    machines = [qrf_machine(4), qrf_machine(6)]
    variants = [dict(copies=False), dict(copies=True)]
    jobs = sweep(loops, machines, variants)
    assert len(jobs) == len(loops) * len(machines) * len(variants)
    # machine-major, then variant, then loop
    assert [j.machine.name for j in jobs[:6]] == ["queu-4fu"] * 6
    assert [j.options.copies for j in jobs[:6]] == [False] * 3 + [True] * 3
    assert [j.ddg.name for j in jobs[:3]] == ["daxpy", "dot", "fir4"]


def test_default_variant_is_default_options():
    jobs = sweep(_loops(), [qrf_machine(4)])
    assert all(j.options == PipelineOptions() for j in jobs)


def test_sweep_is_deterministic():
    loops = _loops()
    machines = [qrf_machine(4), clustered_machine(4)]
    keys_a = [j.key for j in sweep(loops, machines, [dict(do_unroll=True)])]
    keys_b = [j.key for j in sweep(loops, machines, [dict(do_unroll=True)])]
    assert keys_a == keys_b
    assert len(set(keys_a)) == len(keys_a)   # no dup jobs in the grid


def test_extras_default_applies_to_dict_variants():
    jobs = sweep(_loops(), [qrf_machine(4)], [dict(allocate=False)],
                 extras=("crf_registers",))
    assert all(j.options.extras == ("crf_registers",) for j in jobs)


def test_dict_variant_may_override_extras():
    jobs = sweep(_loops(), [qrf_machine(4)],
                 [dict(allocate=False, extras=["queue_locations"])],
                 extras=("crf_registers",))
    assert all(j.options.extras == ("queue_locations",) for j in jobs)


def test_as_options_passthrough_and_coercion():
    opts = PipelineOptions(do_unroll=True)
    assert as_options(opts) is opts
    assert as_options(None) == PipelineOptions()
    coerced = as_options(dict(copy_strategy="chain"))
    assert coerced.copy_strategy == "chain"

"""Tests for corpus management utilities."""

import os

from repro.machine.presets import qrf_machine
from repro.sched.mii import mii_report
from repro.workloads.corpus import (FULL_CORPUS_ENV, bench_corpus, corpus,
                                    corpus_stats, paper_corpus,
                                    resource_constrained)
from repro.workloads.synth import SynthConfig


def test_paper_corpus_size_and_cache():
    a = paper_corpus()
    b = paper_corpus()
    assert len(a) == 1258
    # the cache hands out copies: same content, never the same objects
    assert a is not b
    assert a[0] is not b[0]
    assert a[0].name == b[0].name
    assert a[0].n_ops == b[0].n_ops


def test_corpus_mutation_cannot_poison_later_calls():
    """One sweep mutating its loops must not leak into the next sweep."""
    a = paper_corpus()
    victim = a[0]
    before_ops = victim.n_ops
    victim.add_operation(victim.op(victim.op_ids[0]).opcode, name="rogue")
    victim.trip_count += 7
    b = paper_corpus()
    assert b[0].n_ops == before_ops
    assert b[0].trip_count != victim.trip_count


def test_corpus_custom_config():
    loops = corpus(SynthConfig(n_loops=7))
    assert len(loops) == 7


def test_bench_corpus_subsample():
    loops = bench_corpus(sample=50)
    # 50 synthetic + the hand-written kernels
    assert 50 < len(loops) < 100
    names = [l.name for l in loops]
    assert "daxpy" in names


def test_bench_corpus_full_env(monkeypatch):
    monkeypatch.setenv(FULL_CORPUS_ENV, "1")
    assert len(bench_corpus(sample=10)) == 1258


def test_bench_corpus_large_sample_returns_all():
    assert len(bench_corpus(sample=5000)) == 1258


def test_resource_constrained_filter():
    loops = paper_corpus()[:60]
    m = qrf_machine(4)
    rc = resource_constrained(loops, m)
    assert 0 < len(rc) <= len(loops)
    for ddg in rc:
        assert mii_report(ddg, m).resource_constrained
    # narrower machines are resource-bound more often
    rc12 = resource_constrained(loops, qrf_machine(12))
    assert len(rc) >= len(rc12)


def test_stats_render():
    text = corpus_stats(paper_corpus()[:50]).render()
    assert "loops" in text and "recurrent" in text

"""Unit tests for the hand-written kernel catalogue."""

import pytest

from repro.ir.validate import validate_ddg
from repro.sched.mii import rec_mii
from repro.workloads.kernels import KERNELS, all_kernels, kernel


def test_catalogue_size():
    assert len(KERNELS) >= 18


@pytest.mark.parametrize("name", sorted(KERNELS))
def test_kernel_validates(name):
    ddg = kernel(name)
    validate_ddg(ddg)
    assert ddg.n_ops >= 2
    assert ddg.trip_count > 1


def test_unknown_kernel():
    with pytest.raises(KeyError, match="available"):
        kernel("nope")


def test_all_kernels_fresh_instances():
    a, b = all_kernels(), all_kernels()
    assert a[0] is not b[0]


def test_recurrent_kernels_have_cycles():
    for name in ("dot", "tridiag", "iir1", "scan", "rec3", "state2",
                 "norm2", "redtree", "matvec"):
        assert kernel(name).recurrence_ops(), name


def test_streaming_kernels_are_acyclic():
    for name in ("daxpy", "scale", "vadd", "fir4", "stencil3", "cmul",
                 "horner4", "hydro1", "wide8"):
        assert not kernel(name).recurrence_ops(), name


def test_memrec_recurrence_through_memory():
    ddg = kernel("memrec")
    assert rec_mii(ddg) > 1


def test_known_recmii_values():
    assert rec_mii(kernel("dot")) == 1
    assert rec_mii(kernel("tridiag")) == 3
    assert rec_mii(kernel("scan")) == 1


def test_fanout_kernels():
    # norm2 squares a value (x used twice); scan stores + carries
    assert kernel("norm2").max_fanout() == 2
    assert kernel("scan").max_fanout() == 2
    assert kernel("daxpy").max_fanout() == 1

"""Tests for the synthetic corpus generator: determinism, validity, and
calibration (the distributions DESIGN.md promises)."""

import random

import pytest

from repro.ir.validate import validate_ddg
from repro.workloads.corpus import corpus_stats
from repro.workloads.synth import (SynthConfig, generate_corpus,
                                   generate_loop)


@pytest.fixture(scope="module")
def midsize_corpus():
    return generate_corpus(SynthConfig(n_loops=300))


class TestDeterminism:
    def test_same_seed_same_corpus(self):
        a = generate_corpus(SynthConfig(n_loops=10))
        b = generate_corpus(SynthConfig(n_loops=10))
        for la, lb in zip(a, b):
            assert la.n_ops == lb.n_ops
            assert la.trip_count == lb.trip_count
            assert [(e.src, e.dst, e.distance) for e in la.edges()] == \
                [(e.src, e.dst, e.distance) for e in lb.edges()]

    def test_different_seed_differs(self):
        a = generate_corpus(SynthConfig(n_loops=10, seed=1))
        b = generate_corpus(SynthConfig(n_loops=10, seed=2))
        assert any(la.n_ops != lb.n_ops for la, lb in zip(a, b))


class TestValidity:
    def test_every_loop_validates(self, midsize_corpus):
        for ddg in midsize_corpus:
            validate_ddg(ddg)

    def test_sizes_within_bounds(self, midsize_corpus):
        cfg = SynthConfig()
        for ddg in midsize_corpus:
            # extra stores may exceed the op target slightly, never wildly
            assert cfg.min_ops <= ddg.n_ops <= cfg.max_ops * 1.5

    def test_trip_counts_within_bounds(self, midsize_corpus):
        cfg = SynthConfig()
        for ddg in midsize_corpus:
            assert cfg.min_trip <= ddg.trip_count <= cfg.max_trip

    def test_every_loop_has_memory_op(self, midsize_corpus):
        for ddg in midsize_corpus:
            assert any(op.is_memory for op in ddg.operations)

    def test_no_compiler_ops_in_source(self, midsize_corpus):
        for ddg in midsize_corpus:
            assert not any(op.is_copy or op.is_move
                           for op in ddg.operations)


class TestCalibration:
    """The distributions the reproduction hinges on (DESIGN.md §2)."""

    def test_memory_fraction(self, midsize_corpus):
        stats = corpus_stats(midsize_corpus)
        assert 0.25 <= stats.mem_fraction <= 0.45

    def test_recurrent_fraction(self, midsize_corpus):
        stats = corpus_stats(midsize_corpus)
        assert 0.30 <= stats.recurrent_fraction <= 0.50

    def test_mean_size(self, midsize_corpus):
        stats = corpus_stats(midsize_corpus)
        assert 8 <= stats.mean_ops <= 22

    def test_trip_count_heavy_tail(self, midsize_corpus):
        stats = corpus_stats(midsize_corpus)
        assert stats.max_trip > 10 * stats.median_trip

    def test_fanout_exists(self, midsize_corpus):
        stats = corpus_stats(midsize_corpus)
        assert stats.mean_fanout_gt1 > 0.5


class TestSingleLoop:
    def test_index_in_name(self):
        ddg = generate_loop(random.Random(0), SynthConfig(), 42)
        assert "0042" in ddg.name

    def test_custom_mix(self):
        from repro.ir.operations import Opcode
        cfg = SynthConfig(arith_mix=((Opcode.ADD, 1.0),))
        ddg = generate_loop(random.Random(0), cfg, 0)
        arith = [op for op in ddg.operations
                 if not op.is_memory]
        assert all(op.opcode is Opcode.ADD for op in arith)

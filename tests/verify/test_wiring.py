"""The verifier is wired through the pipeline and the CLI."""

import pytest

from repro.cli import main
from repro.machine.presets import clustered_machine, qrf_machine
from repro.runner.job import CompileJob, PipelineOptions
from repro.runner.pipeline import compile_loop, execute_job
from repro.workloads.kernels import kernel


def test_compile_loop_verify_flag_proves_the_schedule():
    compiled = compile_loop(kernel("cmul"), clustered_machine(4),
                            verify=True)
    assert not compiled.outcome.failed


def test_pipeline_options_thread_verify_through_jobs():
    opts = PipelineOptions(verify=True)
    assert opts.compile_kwargs()["verify"] is True
    result = execute_job(CompileJob(kernel("daxpy"), qrf_machine(8),
                                    opts))
    assert not result.outcome.failed


def test_verify_participates_in_the_job_key():
    ddg, m = kernel("daxpy"), qrf_machine(8)
    assert (CompileJob(ddg, m, PipelineOptions(verify=True)).key
            != CompileJob(ddg, m, PipelineOptions()).key)


def test_cli_verify_proves_one_kernel(capsys):
    assert main(["verify", "daxpy", "--mutations", "1"]) == 0
    out = capsys.readouterr().out
    assert "schedules proved" in out and "corruptions rejected" in out


def test_cli_verify_unknown_kernel_is_usage_error(capsys):
    assert main(["verify", "nope"]) == 2
    assert "unknown kernel" in capsys.readouterr().err


def test_cli_verify_json_output(capsys):
    import json

    assert main(["verify", "dot", "--json"]) == 0
    docs = json.loads(capsys.readouterr().out)
    assert docs and all(doc["ok"] for doc in docs)


@pytest.mark.parametrize("kwargs,match", [
    ({"scheduler": "bogus"}, "unknown scheduler 'bogus'"),
    ({"partitioner": "bogus"}, "unknown partitioner 'bogus'"),
])
def test_compile_loop_rejects_engine_typos_upfront(kwargs, match):
    with pytest.raises(KeyError, match=match):
        compile_loop(kernel("daxpy"), qrf_machine(4), **kwargs)


def test_compile_loop_rejects_ii_search_typos_upfront():
    with pytest.raises(ValueError, match="unknown II search mode"):
        compile_loop(kernel("daxpy"), qrf_machine(4), ii_search="bogus")

"""The static schedule verifier proves real schedules and names the
first violated inequality on corrupted ones (DESIGN §5.9)."""

import dataclasses

import pytest

from repro.ir.copyins import insert_copies
from repro.machine.presets import (clustered_machine, crf_machine,
                                   qrf_machine)
from repro.sched.partition import PartitionConfig, partitioned_schedule
from repro.sched.strategies import get_scheduler
from repro.verify import (INVARIANT_FAMILIES, VerificationError, Verdict,
                          ViolationKind, verify_schedule)
from repro.workloads.kernels import kernel


def _qrf_schedule(name="daxpy", scheduler="ims"):
    work = insert_copies(kernel(name)).ddg
    m = qrf_machine(12)
    return get_scheduler(scheduler).schedule(work, m).schedule, m


def _ring_schedule(name="cmul", partitioner="affinity", n=4):
    work = insert_copies(kernel(name)).ddg
    m = clustered_machine(n)
    s = partitioned_schedule(work, m,
                             config=PartitionConfig(partitioner=partitioner))
    return s, m


def test_proves_single_cluster_schedule():
    sched, m = _qrf_schedule()
    verdict = verify_schedule(sched, m)
    assert verdict.ok and verdict.first is None
    assert verdict.ii == sched.ii
    # adjacency has no meaning on one cluster, everything else is proved
    assert "topology" not in verdict.checked
    assert {"structure", "dependence", "resource",
            "queues"} <= set(verdict.checked)
    assert all(verdict.proved[f] > 0 for f in verdict.checked)


def test_proves_clustered_schedule_including_topology():
    sched, m = _ring_schedule()
    verdict = verify_schedule(sched, m)
    assert verdict.ok
    assert set(verdict.checked) == set(INVARIANT_FAMILIES)


def test_conventional_rf_schedule_skips_queue_family():
    work = kernel("daxpy")
    m = crf_machine(8)
    sched = get_scheduler("ims").schedule(work, m).schedule
    verdict = verify_schedule(sched, m)
    assert verdict.ok
    assert "queues" not in verdict.checked


def test_dependence_violation_carries_the_inequality():
    sched, m = _qrf_schedule()
    bad = dataclasses.replace(sched, sigma=dict(sched.sigma),
                              cluster_of=dict(sched.cluster_of))
    e = next(iter(bad.ddg.edges()))
    bad.sigma[e.dst] = bad.sigma[e.src] - 100  # far below any latency
    verdict = verify_schedule(bad, m)
    assert not verdict.ok
    kinds = verdict.kinds()
    assert (ViolationKind.DEPENDENCE in kinds
            or ViolationKind.NEGATIVE_TIME in kinds)
    broken = [v for v in verdict.violations
              if v.kind in (ViolationKind.DEPENDENCE,
                            ViolationKind.NEGATIVE_TIME)]
    assert broken and (broken[0].inequality or broken[0].message)


def test_unscheduled_op_is_the_first_violation():
    """Structure violations precede the knock-on dependence ones."""
    sched, m = _qrf_schedule()
    bad = dataclasses.replace(sched, sigma=dict(sched.sigma),
                              cluster_of=dict(sched.cluster_of))
    victim = next(iter(bad.sigma))
    del bad.sigma[victim]
    verdict = verify_schedule(bad, m)
    assert verdict.first.kind is ViolationKind.UNSCHEDULED
    assert victim in verdict.first.ops


def test_unknown_op_rejected():
    sched, m = _qrf_schedule()
    bad = dataclasses.replace(sched, sigma=dict(sched.sigma),
                              cluster_of=dict(sched.cluster_of))
    bad.sigma[10_000] = 0
    verdict = verify_schedule(bad, m)
    assert ViolationKind.UNKNOWN_OP in verdict.kinds()


def test_cluster_out_of_range_rejected():
    sched, m = _ring_schedule()
    bad = dataclasses.replace(sched, sigma=dict(sched.sigma),
                              cluster_of=dict(sched.cluster_of))
    some_op = next(iter(bad.cluster_of))
    bad.cluster_of[some_op] = m.n_clusters + 3
    verdict = verify_schedule(bad, m)
    assert ViolationKind.CLUSTER_RANGE in verdict.kinds()


def test_verdict_round_trips_to_json():
    sched, m = _ring_schedule("daxpy")
    doc = verify_schedule(sched, m).to_json()
    assert doc["ok"] is True
    assert doc["loop"] == "daxpy" and doc["ii"] == sched.ii
    assert set(doc["proved"]) == set(doc["checked"])
    assert doc["violations"] == []


def test_verification_error_keeps_the_verdict():
    from repro.verify import Violation

    verdict = Verdict(loop="l", machine="m", ii=2, n_ops=1,
                      violations=(Violation(
                          kind=ViolationKind.DEPENDENCE,
                          message="edge 0->1 scheduled too early",
                          inequality="1 + 0*2 - 0 - 3 = -2 >= 0",
                          ops=(0, 1)),))
    err = VerificationError(verdict)
    assert err.verdict is verdict
    assert isinstance(err, AssertionError)
    assert "dependence" in str(err)


def test_queue_count_budget_is_opt_in():
    """The paper *measures* queue demand (Fig. 3/7) rather than failing
    schedules that exceed the default budget; the count check is
    therefore opt-in, while per-queue depth is always enforced."""
    sched, m = _qrf_schedule("cmul", scheduler="ims")
    default = verify_schedule(sched, m)
    assert default.ok
    strict = verify_schedule(sched, m, enforce_queue_budget=True)
    # strict mode may or may not flag this kernel, but it must never
    # report anything except the queue-count family on a proved schedule
    assert strict.kinds() <= {ViolationKind.QUEUE_COUNT}


@pytest.mark.parametrize("scheduler", ["ims", "sms"])
def test_verifier_is_engine_agnostic(scheduler):
    sched, m = _qrf_schedule("fir4", scheduler=scheduler)
    assert verify_schedule(sched, m).ok

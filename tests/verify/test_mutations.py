"""The seeded corruption corpus: every mutation of a proved schedule
must be rejected with the violation kind the mutator promised.

This is the verifier's own acceptance test -- a checker that proves
golden schedules but also proves corrupted ones proves nothing (see
``src/repro/verify/mutate.py``).
"""

import pytest

from repro.ir.copyins import insert_copies
from repro.machine.presets import clustered_machine, qrf_machine
from repro.sched.partition import PartitionConfig, partitioned_schedule
from repro.sched.partitioners import available_partitioners
from repro.sched.strategies import available_schedulers, get_scheduler
from repro.verify import MUTATORS, mutation_corpus, verify_schedule
from repro.workloads.kernels import kernel

KERNELS_UNDER_TEST = ["daxpy", "cmul", "fir4", "tridiag"]


def _corpus_for(sched, machine, seed=0):
    muts = mutation_corpus(sched, machine, seed=seed)
    assert muts, "corpus must never be empty for a real schedule"
    return muts


@pytest.mark.parametrize("kernel_name", KERNELS_UNDER_TEST)
@pytest.mark.parametrize("scheduler", available_schedulers())
def test_single_cluster_corruptions_rejected(scheduler, kernel_name):
    work = insert_copies(kernel(kernel_name)).ddg
    machine = qrf_machine(12)
    sched = get_scheduler(scheduler).schedule(work, machine).schedule
    assert verify_schedule(sched, machine).ok
    for mut in _corpus_for(sched, machine):
        verdict = verify_schedule(mut.schedule, mut.machine)
        assert verdict.kinds() & mut.expected, \
            f"{mut.name} survived: {mut.description}"


@pytest.mark.parametrize("kernel_name", KERNELS_UNDER_TEST)
@pytest.mark.parametrize("partitioner", available_partitioners())
def test_clustered_corruptions_rejected(partitioner, kernel_name):
    work = insert_copies(kernel(kernel_name)).ddg
    machine = clustered_machine(4)
    sched = partitioned_schedule(
        work, machine, config=PartitionConfig(partitioner=partitioner))
    assert verify_schedule(sched, machine).ok
    names = set()
    for mut in _corpus_for(sched, machine):
        names.add(mut.name)
        verdict = verify_schedule(mut.schedule, mut.machine)
        assert verdict.kinds() & mut.expected, \
            f"{mut.name} survived: {mut.description}"
    # the ring machine shape admits the cluster-swap corruption too
    assert "swap-cluster" in names


def test_corpus_is_deterministic_in_seed():
    work = insert_copies(kernel("cmul")).ddg
    machine = clustered_machine(4)
    sched = partitioned_schedule(work, machine)
    a = mutation_corpus(sched, machine, seed=3)
    b = mutation_corpus(sched, machine, seed=3)
    assert [(m.name, m.description) for m in a] \
        == [(m.name, m.description) for m in b]
    assert [m.schedule.sigma for m in a] == [m.schedule.sigma for m in b]


def test_corpus_rounds_scale_linearly():
    work = insert_copies(kernel("daxpy")).ddg
    machine = qrf_machine(12)
    sched = get_scheduler("ims").schedule(work, machine).schedule
    one = mutation_corpus(sched, machine, seed=0, rounds=1)
    three = mutation_corpus(sched, machine, seed=0, rounds=3)
    assert len(three) == 3 * len(one)


def test_mutations_never_touch_the_original():
    work = insert_copies(kernel("cmul")).ddg
    machine = clustered_machine(4)
    sched = partitioned_schedule(work, machine)
    sigma_before = dict(sched.sigma)
    clusters_before = dict(sched.cluster_of)
    for mut in mutation_corpus(sched, machine, seed=1, rounds=2):
        verify_schedule(mut.schedule, mut.machine)
    assert sched.sigma == sigma_before
    assert sched.cluster_of == clusters_before


def test_every_registered_mutator_fires_somewhere():
    """Each catalogue entry applies to at least one golden shape."""
    fired = set()
    work = insert_copies(kernel("cmul")).ddg
    ring = clustered_machine(4)
    fired |= {m.name for m in mutation_corpus(
        partitioned_schedule(work, ring), ring)}
    single = qrf_machine(12)
    fired |= {m.name for m in mutation_corpus(
        get_scheduler("ims").schedule(work, single).schedule, single)}
    assert fired == {name for name, _ in MUTATORS}

"""Chaos-suite isolation: every test starts and ends fault-free.

The fault plan is process-global and the worker pools inherit it at
fork time, so each test gets pristine state on both sides: no armed
plan, no live pool whose workers captured a previous test's plan.
"""

import pytest

from repro import faults
from repro.runner import pool as pool_mod


@pytest.fixture(autouse=True)
def _fault_free():
    faults.disable_faults()
    pool_mod.close_all_sessions()
    yield
    faults.disable_faults()
    pool_mod.close_all_sessions()

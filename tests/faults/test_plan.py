"""Fault-plan unit tests: spec grammar, deterministic draws, helpers."""

import os
import subprocess
import sys

import pytest

from repro import faults
from repro.faults import (FaultError, FaultPlan, FaultSpec, fault_point,
                          torn_payload)

_SRC = os.path.join(os.path.dirname(faults.__file__), "..", "..")


# ---------------------------------------------------------------------------
# spec grammar
# ---------------------------------------------------------------------------

def test_spec_round_trips():
    text = "seed=7;pool.worker=crash:0.05,hang:0.02:2;ledger=/tmp/led"
    plan = FaultPlan.from_spec(text)
    assert plan.seed == 7
    assert plan.ledger == "/tmp/led"
    assert plan.sites["pool.worker"] == (FaultSpec("crash", 0.05),
                                         FaultSpec("hang", 0.02, 2.0))
    assert plan.spec() == text
    assert FaultPlan.from_spec(plan.spec()).spec() == plan.spec()


def test_empty_and_whitespace_clauses_are_ignored():
    plan = FaultPlan.from_spec(" seed=3 ;; cache.put=torn:1 ;")
    assert plan.seed == 3
    assert plan.sites["cache.put"] == (FaultSpec("torn", 1.0),)


@pytest.mark.parametrize("bad", [
    "nope.site=raise:1",          # unknown site
    "pool.worker=raise:1",        # kind the site does not understand
    "cache.put=torn:1.5",         # rate out of [0, 1]
    "cache.put=torn",             # missing rate
    "cache.put=torn:x",           # non-numeric rate
    "seed=eleven",                # non-int seed
    "just-a-word",                # clause without '='
])
def test_bad_specs_raise(bad):
    with pytest.raises(ValueError):
        FaultPlan.from_spec(bad)


# ---------------------------------------------------------------------------
# deterministic draws
# ---------------------------------------------------------------------------

def test_draws_are_pure_functions_of_seed_site_kind_token():
    a = FaultPlan.from_spec("seed=5;cache.put=torn:0.5")
    b = FaultPlan.from_spec("seed=5;cache.put=torn:0.5")
    tokens = [f"job-{i}" for i in range(200)]
    fired_a = [t for t in tokens if a.draw("cache.put", t)]
    fired_b = [t for t in tokens if b.draw("cache.put", t)]
    assert fired_a == fired_b                      # replayable
    assert 40 < len(fired_a) < 160                 # ~rate, not degenerate
    other = FaultPlan.from_spec("seed=6;cache.put=torn:0.5")
    assert [t for t in tokens if other.draw("cache.put", t)] != fired_a


def test_rate_one_always_fires_and_rate_zero_never():
    plan = FaultPlan.from_spec("seed=0;cache.put=torn:1;cache.get=raise:0")
    assert plan.draw("cache.put", "k") == FaultSpec("torn", 1.0)
    assert plan.draw("cache.get", "k") is None
    assert plan.draw("service.batch", "k") is None  # unarmed site
    assert plan.counters() == {"cache.put.torn": 1}


# ---------------------------------------------------------------------------
# the process-global plan and injection helpers
# ---------------------------------------------------------------------------

def test_enable_disable_mirror_the_environment():
    plan = faults.enable_faults("seed=2;daemon.request=raise:0.5")
    assert faults.faults_enabled()
    assert faults.active_plan() is plan
    assert os.environ[faults.FAULTS_ENV] == plan.spec()
    faults.disable_faults()
    assert not faults.faults_enabled()
    assert faults.FAULTS_ENV not in os.environ
    assert faults.fault_counters() == {}


def test_fault_point_raise_and_slow_and_disabled():
    assert fault_point("job.execute", "whatever") is None  # disabled
    faults.enable_faults("seed=1;job.execute=raise:1")
    with pytest.raises(FaultError) as err:
        fault_point("job.execute", "token-abc")
    assert err.value.site == "job.execute"
    assert faults.fault_counters() == {"job.execute.raise": 1}
    faults.enable_faults("seed=1;job.execute=slow:1:0.01")
    assert fault_point("job.execute", "token-abc") == "slow"


def test_torn_payload_cuts_inside_the_final_record():
    payload = '{"key": "aaaa"}\n{"key": "bbbb"}\n{"key": "cccc"}\n'
    assert torn_payload("cache.put", "k", payload) == payload  # disabled
    faults.enable_faults("seed=1;cache.put=torn:1")
    torn = torn_payload("cache.put", "k", payload)
    assert torn == payload[:2 * len(payload) // 3].rstrip("\n")
    assert not torn.endswith("\n")                # mid-write death
    assert payload.startswith(torn)
    # a non-torn draw leaves the payload alone
    faults.enable_faults("seed=1;cache.put=raise:0")
    assert torn_payload("cache.put", "k", payload) == payload


def test_ledger_records_and_reads_attempts(tmp_path):
    ledger = tmp_path / "attempts.ledger"
    faults.on_job_execute("before-plan")          # no plan: no-op
    faults.enable_faults(f"seed=0;ledger={ledger}")
    faults.on_job_execute("job-a")
    faults.on_job_execute("job-a")
    faults.on_job_execute("job-b")
    assert faults.read_ledger(str(ledger)) == {"job-a": 2, "job-b": 1}
    assert faults.read_ledger(str(tmp_path / "missing")) == {}


# ---------------------------------------------------------------------------
# process boundaries: env arming at import, crash exit status
# ---------------------------------------------------------------------------

def _run(code, spec):
    env = dict(os.environ, PYTHONPATH=_SRC)
    env[faults.FAULTS_ENV] = spec
    return subprocess.run([sys.executable, "-c", code], env=env,
                          capture_output=True, text=True, timeout=60)


def test_env_spec_arms_the_plan_at_import():
    done = _run("from repro import faults; "
                "plan = faults.active_plan(); "
                "print(plan.seed, plan.spec())",
                "seed=9;cache.put=torn:0.5")
    assert done.returncode == 0, done.stderr
    assert done.stdout.split() == ["9", "seed=9;cache.put=torn:0.5"]


def test_bad_env_spec_is_a_startup_error():
    done = _run("import repro.faults", "seed=9;bogus.site=raise:1")
    assert done.returncode != 0
    assert "bad REPRO_FAULTS spec" in done.stderr


def test_crash_kind_exits_with_the_distinctive_status():
    done = _run("from repro.faults import fault_point; "
                "fault_point('pool.worker', 'k'); "
                "print('survived')",
                "seed=0;pool.worker=crash:1")
    assert done.returncode == faults.CRASH_EXIT_STATUS
    assert "survived" not in done.stdout

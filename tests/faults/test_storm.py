"""Seeded fault storms against the sweep runner (the acceptance suite).

The contract under ISSUE 9: a storm of worker crashes, hangs and cache
faults injected into a 100+ job sweep still yields one result per job
in request order, byte-identical to a fault-free run; no job executes
more than ``1 + max_retries`` times; and the cache stays verifiably
uncorrupted (torn shard tails are isolated, never replayed).
"""

import pytest

from repro import faults
from repro.machine.presets import qrf_machine
from repro.runner import ResultCache, RunnerConfig, ShardedResultCache, \
    run_jobs, sweep
from repro.runner import pool as pool_mod
from repro.runner.job import CompileJob
from repro.workloads.kernels import all_kernels, kernel


def _grid():
    """The storm grid: every hand-written kernel x 2 machines x 2
    option sets -- 120 jobs, all on machines that can schedule them."""
    return sweep(all_kernels(), [qrf_machine(4), qrf_machine(8)],
                 [dict(copies=True, allocate=False),
                  dict(copies=True, allocate=True)])


def test_fault_storm_matches_the_fault_free_run(tmp_path):
    jobs = _grid()
    assert len(jobs) >= 100
    baseline = run_jobs(jobs)

    ledger = tmp_path / "attempts.ledger"
    faults.enable_faults(
        f"seed=11;pool.worker=crash:0.05,hang:0.03:0.75;"
        f"cache.put=torn:0.2;ledger={ledger}")
    cache = ShardedResultCache(tmp_path / "cache")
    storm = run_jobs(jobs, RunnerConfig(
        n_workers=2, cache=cache, job_deadline_s=0.5, max_retries=1))
    session = pool_mod._SESSIONS.get(2)
    counters = session.counters() if session is not None else {}
    faults.disable_faults()
    pool_mod.close_all_sessions()

    # one result per job, in request order, byte-identical: the
    # injected faults cost retries and respawns, never correctness
    assert [r.key for r in storm] == [j.key for j in jobs]
    assert storm == baseline
    assert not any(r.outcome.error for r in storm)

    # the supervision actually exercised its recovery paths (the seed
    # is fixed, so this is deterministic, not flaky)
    assert counters.get("respawns", 0) >= 1
    assert counters.get("quarantines", 0) >= 1

    # no job executed more than 1 + max_retries times, and every
    # ledger line names a job from this sweep
    attempts = faults.read_ledger(str(ledger))
    assert attempts
    assert set(attempts) <= {j.key for j in jobs}
    assert max(attempts.values()) <= 2

    # the cache is verifiably uncorrupted: a fresh process-view loads
    # only whole records, and replaying the sweep through it still
    # reproduces the fault-free results (torn jobs just recompile)
    fresh = ShardedResultCache(tmp_path / "cache")
    assert all(rec.get("key") for rec in fresh.iter_records())
    replay = run_jobs(jobs, RunnerConfig(cache=fresh))
    assert replay == baseline
    assert any(r.cached for r in replay)          # survivors replayed


def test_injected_job_errors_become_results_and_are_never_cached(tmp_path):
    jobs = [CompileJob(kernel(n), qrf_machine(4)) for n in ("daxpy", "dot")]
    cache = ResultCache(tmp_path / "cache")
    faults.enable_faults("seed=1;job.execute=raise:1")
    broken = run_jobs(jobs, RunnerConfig(cache=cache))
    assert [r.key for r in broken] == [j.key for j in jobs]
    assert all(r.outcome.failed for r in broken)
    assert all("FaultError" in r.outcome.error for r in broken)
    assert cache.stats()["stores"] == 0           # errors never cached

    faults.disable_faults()
    clean = run_jobs(jobs, RunnerConfig(cache=cache))
    assert not any(r.cached for r in clean)       # nothing was pinned
    assert not any(r.outcome.failed for r in clean)
    assert cache.stats()["stores"] == len(jobs)


def test_cache_get_faults_degrade_to_recompute(tmp_path):
    jobs = [CompileJob(kernel(n), qrf_machine(4)) for n in ("fir4", "vadd")]
    cache = ResultCache(tmp_path / "cache")
    warm = run_jobs(jobs, RunnerConfig(cache=cache))
    faults.enable_faults("seed=3;cache.get=raise:1")
    replay = run_jobs(jobs, RunnerConfig(cache=cache))
    # every lookup raised; the sweep recompiled and matched anyway
    assert replay == warm
    assert not any(r.cached for r in replay)


def test_cache_put_faults_do_not_lose_the_sweep(tmp_path):
    jobs = [CompileJob(kernel(n), qrf_machine(4)) for n in ("scale", "iir1")]
    faults.enable_faults("seed=4;cache.put=raise:1")
    cache = ResultCache(tmp_path / "cache")
    results = run_jobs(jobs, RunnerConfig(cache=cache))
    assert not any(r.outcome.failed for r in results)
    faults.disable_faults()
    # nothing durable was written: a fresh view replays nothing
    fresh = ResultCache(tmp_path / "cache")
    assert all(fresh.peek(j.key) is None for j in jobs)


def test_torn_writes_are_isolated_per_append(tmp_path):
    jobs = [CompileJob(kernel(n), qrf_machine(4))
            for n in ("daxpy", "dot", "fir4", "vadd", "scale", "iir1")]
    faults.enable_faults("seed=6;cache.put=torn:1")
    cache = ShardedResultCache(tmp_path / "cache")
    results = run_jobs(jobs, RunnerConfig(cache=cache))
    faults.disable_faults()

    fresh = ShardedResultCache(tmp_path / "cache")
    fresh._load()
    # every append was torn inside its final record: the loader counts
    # the partial lines and keeps whatever records stayed whole
    assert fresh.stats()["corrupt"] >= 1
    kept = {rec["key"] for rec in fresh.iter_records()}
    assert kept < {j.key for j in jobs}
    by_key = {r.key: r for r in results}
    for key in kept:
        assert fresh.peek(key) == by_key[key]

"""Service chaos: breaker, deadlines, load shedding -- engine and HTTP."""

import asyncio
import http.client
import json
import time

import pytest

from repro import faults
from repro.runner import ShardedResultCache
from repro.service import (DeadlineExceeded, ServiceOverloaded,
                           SweepService, parse_job, start_in_thread)
from repro.service import engine as engine_mod


def _spec(name="daxpy"):
    return {"loop": {"kernel": name},
            "machine": {"kind": "qrf", "n_fus": 4}}


def _request(handle, method, path, body=None):
    conn = http.client.HTTPConnection(handle.host, handle.port,
                                      timeout=120)
    try:
        conn.request(method, path,
                     json.dumps(body) if body is not None else None,
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        return (response.status, json.loads(response.read()),
                dict(response.getheaders()))
    finally:
        conn.close()


# ---------------------------------------------------------------------------
# engine level
# ---------------------------------------------------------------------------

def test_circuit_breaker_trips_half_opens_and_closes(tmp_path, monkeypatch):
    service = SweepService(ShardedResultCache(tmp_path / "cache"),
                           n_workers=1, batch_window_s=0.0,
                           breaker_threshold=2, breaker_cooldown_s=60.0)
    real_run_jobs = engine_mod.run_jobs

    def broken(jobs, config=None):
        raise OSError("injected batch failure")

    async def scenario():
        await service.start()
        monkeypatch.setattr(engine_mod, "run_jobs", broken)
        # two consecutive batch failures trip the breaker open
        for name in ("daxpy", "dot"):
            with pytest.raises(OSError):
                await service.submit([parse_job(_spec(name))])
        assert service.breaker_state() == "open"
        assert service.c_breaker_trips == 1
        # open: fail fast at the front door, with a retry hint
        with pytest.raises(ServiceOverloaded) as shed:
            await service.submit([parse_job(_spec("vadd"))])
        assert shed.value.retry_after_s > 0
        assert service.c_breaker_rejected == 1
        # cooldown over: half-open admits one probe; a failing probe
        # re-trips immediately (no need for another full streak)
        service._breaker_open_until = time.monotonic() - 1.0
        assert service.breaker_state() == "half-open"
        with pytest.raises(OSError):
            await service.submit([parse_job(_spec("scale"))])
        assert service.breaker_state() == "open"
        assert service.c_breaker_trips == 2
        # a succeeding probe closes the breaker and resets the streak
        monkeypatch.setattr(engine_mod, "run_jobs", real_run_jobs)
        service._breaker_open_until = time.monotonic() - 1.0
        results = await service.submit([parse_job(_spec("fir4"))])
        assert service.breaker_state() == "closed"
        assert not results[0].outcome.failed
        await service.stop()

    asyncio.run(scenario())
    assert service.c_batch_failures == 3
    assert service.metrics()["service"]["breaker_trips"] == 2


def test_request_deadline_returns_keys_and_work_completes(tmp_path,
                                                          monkeypatch):
    service = SweepService(ShardedResultCache(tmp_path / "cache"),
                           n_workers=1, batch_window_s=0.0,
                           request_deadline_s=0.05)
    real_run_jobs = engine_mod.run_jobs

    def slow(jobs, config=None):
        time.sleep(0.3)
        return real_run_jobs(jobs, config)

    monkeypatch.setattr(engine_mod, "run_jobs", slow)
    job = parse_job(_spec("tridiag"))

    async def scenario():
        await service.start()
        with pytest.raises(DeadlineExceeded) as err:
            await service.submit([job])
        assert err.value.keys == [job.key]
        # the compile was not cancelled: drain and replay from cache
        await service.stop()
        return service.status(job.key)

    state, record = asyncio.run(scenario())
    assert service.c_deadline_exceeded == 1
    assert state == "done"
    assert record["outcome"]["loop"] == "tridiag"


def test_full_queue_sheds_load(tmp_path):
    service = SweepService(ShardedResultCache(tmp_path / "cache"),
                           n_workers=1, max_queue_depth=0)

    async def scenario():
        await service.start()
        with pytest.raises(ServiceOverloaded) as err:
            await service.submit([parse_job(_spec())])
        assert err.value.retry_after_s == 1.0
        await service.stop()

    asyncio.run(scenario())
    assert service.c_shed == 1
    assert service.metrics()["service"]["shed"] == 1


def test_stop_without_drain_cancels_queued_futures(tmp_path, monkeypatch):
    """Satellite: stop(drain=False) fails queued work fast while the
    in-flight batch still completes and answers its waiters."""
    service = SweepService(ShardedResultCache(tmp_path / "cache"),
                           n_workers=1, batch_window_s=0.0, batch_max=1)
    real_run_jobs = engine_mod.run_jobs

    def slow(jobs, config=None):
        time.sleep(0.3)
        return real_run_jobs(jobs, config)

    monkeypatch.setattr(engine_mod, "run_jobs", slow)
    job_a, job_b = parse_job(_spec("daxpy")), parse_job(_spec("dot"))

    async def scenario():
        await service.start()
        fut_a = asyncio.ensure_future(service.submit([job_a]))
        await asyncio.sleep(0.1)      # dispatcher is mid-batch on A
        fut_b = asyncio.ensure_future(service.submit([job_b]))
        await asyncio.sleep(0.05)     # B is queued behind the batch
        await service.stop(drain=False)
        results_a = await fut_a
        with pytest.raises(asyncio.CancelledError):
            await fut_b
        return results_a

    results_a = asyncio.run(scenario())
    assert results_a[0].outcome.loop == "daxpy"
    assert not results_a[0].outcome.failed
    assert job_b.key not in service._inflight


# ---------------------------------------------------------------------------
# HTTP level
# ---------------------------------------------------------------------------

def test_http_503_when_breaker_is_open(tmp_path):
    service = SweepService(ShardedResultCache(tmp_path / "cache"),
                           n_workers=1, breaker_cooldown_s=60.0)
    handle = start_in_thread(service)
    try:
        service._consec_batch_failures = 5
        service._breaker_open_until = time.monotonic() + 60.0
        status, out, headers = _request(handle, "POST", "/jobs", _spec())
        assert status == 503
        assert "circuit breaker open" in out["error"]
        assert out["retry_after_s"] > 0
        assert int(headers["Retry-After"]) >= 1
        status, health, _ = _request(handle, "GET", "/healthz")
        assert health["breaker"] == "open"
        status, _, _ = _request(handle, "GET", "/metrics.json")
        assert status == 200
    finally:
        service._breaker_open_until = None
        assert handle.stop()


def test_http_504_on_request_deadline(tmp_path, monkeypatch):
    real_run_jobs = engine_mod.run_jobs

    def slow(jobs, config=None):
        time.sleep(0.3)
        return real_run_jobs(jobs, config)

    monkeypatch.setattr(engine_mod, "run_jobs", slow)
    service = SweepService(ShardedResultCache(tmp_path / "cache"),
                           n_workers=1, batch_window_s=0.0,
                           request_deadline_s=0.05)
    handle = start_in_thread(service)
    try:
        status, out, _ = _request(handle, "POST", "/jobs", _spec("iir1"))
        assert status == 504
        assert out["status"] == "pending"
        [key] = out["keys"]
        # the 504 told us where to poll; the work lands soon after
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            status, poll, _ = _request(handle, "GET", f"/jobs/{key}")
            if status == 200:
                break
            time.sleep(0.05)
        assert status == 200 and poll["status"] == "done"
        assert poll["result"]["outcome"]["loop"] == "iir1"
    finally:
        assert handle.stop()


def test_http_faulted_request_handling_is_a_500(tmp_path):
    service = SweepService(ShardedResultCache(tmp_path / "cache"),
                           n_workers=1)
    handle = start_in_thread(service)
    try:
        faults.enable_faults("seed=0;daemon.request=raise:1")
        status, out, _ = _request(handle, "POST", "/jobs", _spec())
        assert status == 500
        assert "injected fault at daemon.request" in out["error"]
        faults.disable_faults()
        status, out, _ = _request(handle, "POST", "/jobs", _spec())
        assert status == 200
        # the metrics exposition reports what was injected
        status, metrics, _ = _request(handle, "GET", "/metrics.json")
        assert metrics["faults"]["enabled"] is False
        conn = http.client.HTTPConnection(handle.host, handle.port,
                                          timeout=120)
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            text = response.read().decode("utf-8")
        finally:
            conn.close()
        assert response.status == 200
        assert "repro_faults_enabled 0" in text
    finally:
        assert handle.stop()

"""Sweep service: engine dedup/batching and the HTTP daemon end to end."""

import asyncio
import dataclasses
import json
import http.client
import threading

import pytest

from repro.runner import ShardedResultCache, compile_loop
from repro.runner.job import CompileJob
from repro.machine.presets import qrf_machine
from repro.service import SweepService, parse_job, start_in_thread
from repro.workloads.kernels import kernel


def _spec(name="daxpy", n_fus=4):
    return {"loop": {"kernel": name},
            "machine": {"kind": "qrf", "n_fus": n_fus}}


# ---------------------------------------------------------------------------
# engine level
# ---------------------------------------------------------------------------

def test_submit_compiles_then_serves_from_cache(tmp_path):
    cache = ShardedResultCache(tmp_path / "cache")
    service = SweepService(cache, n_workers=1)

    async def scenario():
        await service.start()
        jobs = [parse_job(_spec("daxpy")), parse_job(_spec("dot"))]
        first = await service.submit(jobs)
        second = await service.submit(jobs)
        await service.stop()
        return first, second

    first, second = asyncio.run(scenario())
    assert [r.outcome.loop for r in first] == ["daxpy", "dot"]
    assert not any(r.cached for r in first)
    assert all(r.cached for r in second)
    assert service.c_compiled == 2
    assert service.metrics()["service"]["served_from_cache"] == 2
    # results persisted: a fresh cache instance can replay them
    replay = ShardedResultCache(tmp_path / "cache")
    assert replay.peek(first[0].key) is not None


def test_concurrent_identical_submissions_compile_once(tmp_path):
    """The acceptance invariant: N identical concurrent requests, one
    compile, N answers, all byte-identical to the direct library call."""
    cache = ShardedResultCache(tmp_path / "cache")
    service = SweepService(cache, n_workers=1)
    job_spec = _spec("fir4")

    async def scenario():
        await service.start()
        a, b = await asyncio.gather(
            service.submit([parse_job(job_spec)]),
            service.submit([parse_job(job_spec)]))
        await service.stop()
        return a[0], b[0]

    a, b = asyncio.run(scenario())
    assert service.c_dedup_inflight == 1
    assert service.c_compiled == 1
    assert a == b
    direct = compile_loop(kernel("fir4"), qrf_machine(4))
    assert dataclasses.asdict(a.outcome) == \
        dataclasses.asdict(direct.outcome)


def test_micro_batching_coalesces_queued_jobs(tmp_path):
    service = SweepService(ShardedResultCache(tmp_path / "cache"),
                           n_workers=1, batch_window_s=0.25)

    async def scenario():
        await service.start()
        submissions = [service.submit([parse_job(_spec(name))])
                       for name in ("daxpy", "dot", "vadd", "scale")]
        await asyncio.gather(*submissions)
        await service.stop()

    asyncio.run(scenario())
    # four independent submissions, far fewer dispatcher batches
    assert service.c_batches < 4
    assert service.c_batch_jobs == 4


def test_stop_drains_inflight_work(tmp_path):
    service = SweepService(ShardedResultCache(tmp_path / "cache"),
                           n_workers=1, batch_window_s=0.0)

    async def scenario():
        await service.start()
        pending = asyncio.ensure_future(
            service.submit([parse_job(_spec("stencil3"))]))
        await asyncio.sleep(0)          # let it enqueue
        await service.stop(drain=True)
        return await pending

    [result] = asyncio.run(scenario())
    assert result.outcome.loop == "stencil3"
    assert not result.outcome.failed


# ---------------------------------------------------------------------------
# HTTP daemon
# ---------------------------------------------------------------------------

@pytest.fixture
def server(tmp_path):
    cache = ShardedResultCache(tmp_path / "svc-cache")
    handle = start_in_thread(SweepService(cache, n_workers=1))
    yield handle
    handle.stop()


def _request(handle, method, path, body=None):
    conn = http.client.HTTPConnection(handle.host, handle.port,
                                      timeout=120)
    try:
        conn.request(method, path,
                     json.dumps(body) if body is not None else None,
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


def _request_text(handle, method, path):
    conn = http.client.HTTPConnection(handle.host, handle.port,
                                      timeout=120)
    try:
        conn.request(method, path)
        response = conn.getresponse()
        return (response.status, response.getheader("Content-Type"),
                response.read().decode("utf-8"))
    finally:
        conn.close()


def test_http_end_to_end(server):
    import repro

    status, health = _request(server, "GET", "/healthz")
    assert status == 200 and health["status"] == "ok"
    assert health["version"] == repro.__version__
    assert health["n_workers"] == 1
    assert health["uptime_s"] >= 0.0

    status, out = _request(server, "POST", "/jobs", _spec("daxpy"))
    assert status == 200
    [result] = out["results"]
    assert not result["cached"]
    direct = compile_loop(kernel("daxpy"), qrf_machine(4))
    assert result["outcome"] == dataclasses.asdict(direct.outcome)

    # duplicate submission: served from the cache, byte-identical
    status, again = _request(server, "POST", "/jobs", _spec("daxpy"))
    assert again["results"][0]["cached"]
    assert again["results"][0]["outcome"] == result["outcome"]

    # poll the fingerprint
    status, poll = _request(server, "GET", f"/jobs/{result['key']}")
    assert status == 200 and poll["status"] == "done"
    assert poll["result"]["outcome"] == result["outcome"]
    status, poll = _request(server, "GET", "/jobs/" + "0" * 64)
    assert status == 404 and poll["status"] == "unknown"

    status, metrics = _request(server, "GET", "/metrics.json")
    assert status == 200
    assert metrics["service"]["served_from_cache"] == 1
    assert metrics["cache"]["backend"] == "sharded"
    assert metrics["cache"]["hits"] >= 1

    # /metrics itself speaks Prometheus text exposition
    status, content_type, text = _request_text(server, "GET", "/metrics")
    assert status == 200
    assert content_type.startswith("text/plain")
    assert "# TYPE repro_service_jobs_total counter" in text
    assert "repro_service_served_from_cache_total 1" in text
    assert 'repro_cache_info{backend="sharded"} 1' in text


def test_http_concurrent_identical_posts_dedup(server):
    spec = {"jobs": [_spec("tridiag")]}
    results = [None, None]

    def post(i):
        results[i] = _request(server, "POST", "/jobs", spec)

    threads = [threading.Thread(target=post, args=(i,)) for i in (0, 1)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(120)

    (sa, ra), (sb, rb) = results
    assert sa == sb == 200
    assert ra["results"][0]["outcome"] == rb["results"][0]["outcome"]
    _, metrics = _request(server, "GET", "/metrics.json")
    service = metrics["service"]
    # one of the two either coalesced in-flight or replayed the cache --
    # never a second compile
    assert service["compiled"] == 1
    assert service["dedup_inflight"] + service["served_from_cache"] == 1


def test_http_error_paths(server):
    status, out = _request(server, "POST", "/jobs",
                           {"loop": {"kernel": "nope"}})
    assert status == 400 and "unknown kernel" in out["error"]
    status, _ = _request(server, "GET", "/nothing-here")
    assert status == 404
    status, _ = _request(server, "DELETE", "/jobs")
    assert status == 405
    conn = http.client.HTTPConnection(server.host, server.port, timeout=30)
    try:
        conn.request("POST", "/jobs", "{not json",
                     {"Content-Type": "application/json"})
        assert conn.getresponse().status == 400
    finally:
        conn.close()


def test_graceful_stop_flushes_cache(tmp_path):
    cache = ShardedResultCache(tmp_path / "flush-cache")
    handle = start_in_thread(SweepService(cache, n_workers=1))
    status, out = _request(handle, "POST", "/jobs", _spec("iir1"))
    assert status == 200
    handle.stop()
    # after the drain, a brand-new process-view of the cache has the job
    replay = ShardedResultCache(tmp_path / "flush-cache")
    assert replay.peek(out["results"][0]["key"]) is not None

"""JSON job specs: parsing, validation, memoisation, fingerprints."""

import pytest

from repro.machine.cluster import ClusteredMachine
from repro.machine.machine import RfKind
from repro.runner import CompileJob, PipelineOptions
from repro.service import (JobSpecError, kernel_job_spec, parse_job,
                           parse_jobs, parse_loop, parse_machine,
                           parse_options)
from repro.workloads.kernels import kernel


def test_kernel_spec_matches_library_fingerprint(qrf4):
    job = parse_job({"loop": {"kernel": "daxpy"},
                     "machine": {"kind": "qrf", "n_fus": 4}})
    direct = CompileJob(kernel("daxpy"), qrf4)
    assert job.key == direct.key


def test_loops_are_memoised_by_spec():
    a = parse_loop({"kernel": "dot"})
    b = parse_loop({"kernel": "dot"})
    assert a is b           # identity matters: pool tables key by id()


def test_synth_spec_is_deterministic():
    spec = {"synth": {"seed": 11, "index": 3}}
    a, b = parse_loop(spec), parse_loop(dict(spec))
    assert a is b
    other = parse_loop({"synth": {"seed": 11, "index": 4}})
    assert other is not a


def test_machine_kinds():
    qrf = parse_machine({"kind": "qrf", "n_fus": 6})
    assert qrf.rf_kind is RfKind.QUEUE
    crf = parse_machine({"kind": "crf", "n_fus": 6})
    assert crf.rf_kind is RfKind.CONVENTIONAL
    ring = parse_machine({"kind": "clustered", "n_clusters": 4})
    assert isinstance(ring, ClusteredMachine)
    assert ring.n_clusters == 4


def test_default_machine_is_qrf4():
    job = parse_job({"loop": {"kernel": "daxpy"}})
    assert job.machine.name == "queu-4fu"


def test_options_round_trip():
    opts = parse_options({"scheduler": "sms", "do_unroll": True,
                          "extras": ["sched_stats"]})
    assert opts == PipelineOptions(scheduler="sms", do_unroll=True,
                                   extras=("sched_stats",))
    assert parse_options(None) == PipelineOptions()


@pytest.mark.parametrize("bad", [
    {"loop": {"kernel": "no-such-kernel"}},
    {"loop": {}},
    {"loop": {"kernel": "daxpy", "typo": 1}},
    {"loop": {"synth": {"seed": 1, "index": -1}}},
    {"loop": {"synth": {"bogus_field": 3}}},
    {"loop": {"kernel": "daxpy"}, "machine": {"kind": "tpu"}},
    {"loop": {"kernel": "daxpy"}, "machine": {"kind": "qrf", "n_fus": 0}},
    {"loop": {"kernel": "daxpy"},
     "machine": {"kind": "clustered", "n_clusters": 1}},
    {"loop": {"kernel": "daxpy"}, "options": {"bogus": True}},
    {"loop": {"kernel": "daxpy"}, "options": {"extras": [3]}},
    {"loop": {"kernel": "daxpy"}, "stray": 1},
    "not an object",
    42,
])
def test_malformed_specs_raise(bad):
    with pytest.raises(JobSpecError):
        parse_job(bad)


def test_parse_jobs_single_and_batch():
    single = parse_jobs({"loop": {"kernel": "daxpy"}})
    assert len(single) == 1
    batch = parse_jobs({"jobs": [{"loop": {"kernel": "daxpy"}},
                                 {"loop": {"kernel": "dot"}}]})
    assert [j.ddg.name for j in batch] == ["daxpy", "dot"]
    with pytest.raises(JobSpecError):
        parse_jobs({"jobs": []})


def test_kernel_job_spec_builder():
    spec = kernel_job_spec("fir4", n_clusters=4,
                           options={"partitioner": "agglomerative"})
    job = parse_job(spec)
    assert job.ddg.name == "fir4"
    assert isinstance(job.machine, ClusteredMachine)
    assert job.options.partitioner == "agglomerative"


@pytest.mark.parametrize("field,expect", [
    ("scheduler", "unknown scheduler 'bogus'; available:"),
    ("partitioner", "unknown partitioner 'bogus'; available:"),
    ("ii_search", "unknown II search mode 'bogus'; known:"),
])
def test_engine_name_typos_are_spec_errors(field, expect):
    """A typo'd engine name is rejected at the request boundary (HTTP
    400) with the registry-listing message, never a worker-side 500."""
    with pytest.raises(JobSpecError) as exc:
        parse_job({"loop": {"kernel": "daxpy"},
                   "options": {field: "bogus"}})
    assert expect in str(exc.value)

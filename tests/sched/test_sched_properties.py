"""Property-based tests: every synthetic loop must schedule correctly.

Uses the corpus generator as the input distribution (cross-checking it
against the structural hypothesis generator in tests/ir) and validates the
full dependence + resource contract of each schedule.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.copyins import insert_copies
from repro.machine.cluster import make_clustered
from repro.machine.presets import qrf_machine
from repro.sched.ims import modulo_schedule
from repro.sched.mii import mii
from repro.sched.partition import partitioned_schedule
from repro.workloads.synth import SynthConfig, generate_loop


@st.composite
def synth_loops(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    cfg = SynthConfig(n_loops=1, max_ops=24)
    return generate_loop(random.Random(seed), cfg, seed)


@given(synth_loops(), st.sampled_from([4, 6, 12]))
@settings(max_examples=50, deadline=None)
def test_ims_schedules_and_validates(ddg, n_fus):
    m = qrf_machine(n_fus)
    work = insert_copies(ddg).ddg
    s = modulo_schedule(work, m)
    s.validate(m.fus.as_dict())
    assert s.ii >= mii(work, m)
    assert min(s.sigma.values()) >= 0


@given(synth_loops(), st.sampled_from([2, 4, 6]))
@settings(max_examples=35, deadline=None)
def test_partition_schedules_and_validates(ddg, n_clusters):
    cm = make_clustered(n_clusters)
    work = insert_copies(ddg).ddg
    s = partitioned_schedule(work, cm)
    s.validate(cm.cluster.fus.as_dict(), adjacency=cm)
    assert s.ii >= mii(work, cm)


@given(synth_loops())
@settings(max_examples=25, deadline=None)
def test_clustered_ii_never_beats_flat(ddg):
    """Partitioning constraints can only hurt: II(clustered) >= II(flat)
    whenever the flat schedule achieved its MII."""
    cm = make_clustered(4)
    work = insert_copies(ddg).ddg
    flat = modulo_schedule(work, cm.flattened())
    clustered = partitioned_schedule(work, cm)
    if flat.ii == mii(work, cm.flattened()):
        assert clustered.ii >= flat.ii


@given(synth_loops())
@settings(max_examples=25, deadline=None)
def test_wider_machine_never_hurts_mii(ddg):
    assert mii(ddg, qrf_machine(12)) <= mii(ddg, qrf_machine(4))

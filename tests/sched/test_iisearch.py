"""The II search driver: adaptive == linear, and every edge case.

The acceptance bar of the adaptive driver is *bit-identical schedules*:
whatever mode finds an II, the probe at that II is deterministic, so the
only way the modes can diverge is by choosing different IIs.  The corpus
parity test at the bottom pins that they never do.
"""

import pytest

from repro.ir.copyins import insert_copies
from repro.machine.presets import clustered_machine, qrf_machine
from repro.sched.iisearch import (DEFAULT_II_SEARCH, NEAR_WINDOW,
                                  check_ii_search, search_ii)
from repro.sched.ims import ImsConfig, modulo_schedule
from repro.sched.partition import PartitionConfig, partitioned_schedule
from repro.sched.partitioners import available_partitioners
from repro.sched.schedule import SchedulingError
from repro.sched.strategies import available_schedulers, get_scheduler
from repro.workloads.kernels import KERNELS, kernel


def make_probe(feasible_from, limit=None, log=None):
    """Probe feasible at every II >= *feasible_from* (monotone)."""
    def probe(ii):
        if log is not None:
            log.append(ii)
        if feasible_from is not None and ii >= feasible_from:
            return f"sched@{ii}"
        return None
    return probe


class TestSearchDriver:
    def test_default_mode_is_adaptive(self):
        assert DEFAULT_II_SEARCH == "adaptive"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown II search mode"):
            check_ii_search("bogus")
        with pytest.raises(ValueError, match="bogus"):
            search_ii(make_probe(1), 1, 10, mode="bogus")

    def test_mii_feasible_means_single_probe(self):
        """MII already feasible: exactly one probe, both modes."""
        for mode in ("linear", "adaptive"):
            log = []
            assert search_ii(make_probe(4, log=log), 4, 50,
                             mode=mode) == (4, "sched@4")
            assert log == [4]

    def test_near_window_is_probe_identical_to_linear(self):
        """Within the near-MII window the adaptive probe sequence IS the
        linear walk -- same probes, same order."""
        for gap in range(NEAR_WINDOW + 1):
            lin, ada = [], []
            first = 5
            r_lin = search_ii(make_probe(first + gap, log=lin),
                              first, 60, mode="linear")
            r_ada = search_ii(make_probe(first + gap, log=ada),
                              first, 60, mode="adaptive")
            assert r_lin == r_ada == (first + gap, f"sched@{first + gap}")
            assert lin == ada

    def test_far_feasible_probes_logarithmically(self):
        log = []
        first, target, limit = 3, 200, 400
        got = search_ii(make_probe(target, log=log), first, limit,
                        mode="adaptive")
        assert got == (200, "sched@200")
        # the linear walk would probe 198 IIs; bracketing stays small
        assert len(log) < 25

    def test_adaptive_matches_linear_on_monotone_probes(self):
        for first in (1, 4):
            for target_gap in (0, 1, 2, 3, 5, 9, 17, 40):
                lin = search_ii(make_probe(first + target_gap), first, 200,
                                mode="linear")
                ada = search_ii(make_probe(first + target_gap), first, 200,
                                mode="adaptive")
                assert lin == ada

    def test_infeasible_range_returns_none(self):
        for mode in ("linear", "adaptive"):
            assert search_ii(make_probe(None), 2, 40, mode=mode) is None
            # feasible only beyond the limit
            assert search_ii(make_probe(50), 2, 40, mode=mode) is None

    def test_empty_range_returns_none(self):
        assert search_ii(make_probe(1), 5, 4) is None

    def test_limit_probed_before_giving_up(self):
        """Overshoot clamps to the limit, so a loop feasible exactly at
        the limit is still found."""
        log = []
        assert search_ii(make_probe(40, log=log), 2, 40,
                         mode="adaptive") == (40, "sched@40")
        assert 40 in log

    def test_budget_exhaustion_falls_back_to_linear(self):
        """With probe_budget exhausted mid-bisection the remaining
        bracket is walked linearly from below -- the answer is still the
        minimal feasible II."""
        log = []
        got = search_ii(make_probe(100, log=log), 1, 1000,
                        mode="adaptive", probe_budget=8)
        assert got == (100, "sched@100")
        # the fallback scan runs upward: the probes after the bracket
        # phase are a strictly increasing run ending at 100
        tail = log[log.index(max(log)) + 1:]
        assert tail == sorted(tail)
        assert tail[-1] == 100

    def test_budget_exhaustion_keeps_known_feasible_when_scan_fails(self):
        """A non-monotone probe set: the linear fallback finds nothing
        below the bracketed feasible II, which is then returned."""
        def probe(ii):
            return "ok" if ii >= 64 else None

        got = search_ii(probe, 1, 1000, mode="adaptive", probe_budget=4)
        assert got is not None
        assert probe(got[0]) == "ok"
        assert got[0] == 64


class TestEngineEdgeCases:
    def test_infeasible_loop_hits_max_ii(self):
        """A kernel on a machine lacking its FU mix cannot schedule; the
        adaptive driver must exhaust [MII, max_ii] and raise, exactly
        like the linear walk."""
        from repro.machine.presets import narrow_test_machine

        work = insert_copies(kernel("wide8")).ddg
        for mode in ("linear", "adaptive"):
            cfg = ImsConfig(max_ii=4, ii_search=mode)
            with pytest.raises(SchedulingError, match="II <= 4"):
                modulo_schedule(work, narrow_test_machine(), config=cfg)

    def test_mii_feasible_loop_probes_once(self):
        work = insert_copies(kernel("daxpy")).ddg
        sched = modulo_schedule(work, qrf_machine(12))
        assert sched.stats.iis_tried == 1           # zero extra probes
        assert sched.ii == sched.stats.mii

    def test_partitioned_infeasible_raises_at_limit(self):
        work = insert_copies(kernel("dot")).ddg
        cfg = PartitionConfig(max_ii=1, ii_search="adaptive")
        cm = clustered_machine(4)
        try:
            s = partitioned_schedule(work, cm, config=cfg)
            assert s.ii <= 1                         # genuinely fits
        except SchedulingError as exc:
            assert "II <= 1" in str(exc)


class TestCorpusParity:
    """Acceptance: ``--ii-search linear`` and ``adaptive`` produce
    identical schedules over the full kernel corpus, every engine."""

    @pytest.mark.parametrize("scheduler", available_schedulers())
    def test_schedulers_identical_across_modes(self, scheduler):
        m = qrf_machine(12)
        for name in sorted(KERNELS):
            work = insert_copies(kernel(name)).ddg
            a = get_scheduler(scheduler).schedule(
                work, m, ii_search="adaptive").schedule
            b = get_scheduler(scheduler).schedule(
                work, m, ii_search="linear").schedule
            assert (a.ii, a.sigma) == (b.ii, b.sigma), \
                f"{scheduler}/{name} diverges between II search modes"

    @pytest.mark.parametrize("partitioner", available_partitioners())
    def test_partitioners_identical_across_modes(self, partitioner):
        cm = clustered_machine(4)
        for name in sorted(KERNELS):
            work = insert_copies(kernel(name)).ddg
            a = partitioned_schedule(work, cm, config=PartitionConfig(
                partitioner=partitioner, ii_search="adaptive"))
            b = partitioned_schedule(work, cm, config=PartitionConfig(
                partitioner=partitioner, ii_search="linear"))
            assert (a.ii, a.sigma, a.cluster_of) \
                == (b.ii, b.sigma, b.cluster_of), \
                f"{partitioner}/{name} diverges between II search modes"


def test_stochastic_engines_pin_the_linear_walk():
    """The `random` engine consumes one seeded stream across probes, so
    probe outcomes depend on probe order; the II driver keeps it on the
    sequential walk (every deterministic engine stays adaptive)."""
    from repro.sched.partitioners import get_partitioner

    for name in available_partitioners():
        engine = get_partitioner(name)
        assert engine.stochastic == (name == "random"), name


def test_ii_search_is_part_of_the_job_signature():
    """Cached results can never alias across search modes."""
    from repro.runner import CompileJob, PipelineOptions

    ddg = kernel("daxpy")
    m = qrf_machine(4)
    adaptive = CompileJob(ddg, m, PipelineOptions(ii_search="adaptive"))
    linear = CompileJob(ddg, m, PipelineOptions(ii_search="linear"))
    assert adaptive.key != linear.key
    assert CompileJob(ddg, m, PipelineOptions()).key == adaptive.key

"""Unit and integration tests for Iterative Modulo Scheduling."""

import pytest

from repro.ir.builder import LoopBuilder, chain
from repro.ir.copyins import insert_copies
from repro.machine.presets import narrow_test_machine, qrf_machine
from repro.sched.ims import ImsConfig, modulo_schedule
from repro.sched.mii import mii
from repro.sched.schedule import SchedulingError
from repro.workloads.kernels import (all_kernels, daxpy, dot_product,
                                     tridiagonal, wide_independent)


class TestBasicScheduling:
    def test_daxpy_achieves_mii(self):
        m = qrf_machine(4)
        s = modulo_schedule(daxpy(), m)
        assert s.ii == mii(daxpy(), m) == 2
        s.validate(m.fus.as_dict())

    def test_recurrence_achieves_recmii(self):
        m = qrf_machine(12)
        s = modulo_schedule(tridiagonal(), m)
        assert s.ii == 3

    def test_wide_loop_saturates(self):
        m = qrf_machine(12)
        s = modulo_schedule(wide_independent(), m)
        # 16 L/S ops on 4 units -> II = 4
        assert s.ii == 4

    def test_every_kernel_schedules_on_every_paper_machine(self):
        for ddg in all_kernels():
            for n in (4, 6, 12):
                m = qrf_machine(n)
                work = insert_copies(ddg).ddg
                s = modulo_schedule(work, m)
                s.validate(m.fus.as_dict())
                assert s.ii >= mii(work, m)

    def test_machine_latency_model_applied(self):
        from repro.ir.operations import LatencyModel, Opcode
        from repro.machine.machine import make_machine
        slow = make_machine(4, latencies=LatencyModel({Opcode.LOAD: 10}))
        s = modulo_schedule(daxpy(), slow)
        loads = [o for o in s.ddg.operations if o.opcode is Opcode.LOAD]
        assert all(op.latency == 10 for op in loads)

    def test_missing_fu_class(self):
        from repro.ir.operations import FuType
        from repro.machine.machine import Machine, RfKind
        from repro.machine.resources import FuSet
        m = Machine(name="nomul",
                    fus=FuSet({FuType.LS: 1, FuType.ADD: 1}),
                    rf_kind=RfKind.CONVENTIONAL)
        with pytest.raises(SchedulingError, match="lacks"):
            modulo_schedule(daxpy(), m)


class TestSearchControls:
    def test_start_ii_respected(self):
        m = qrf_machine(4)
        s = modulo_schedule(daxpy(), m, start_ii=5)
        assert s.ii == 5

    def test_max_ii_exhaustion(self):
        m = narrow_test_machine()
        big = wide_independent()   # needs II 16 on 1 L/S unit
        with pytest.raises(SchedulingError):
            modulo_schedule(big, m, config=ImsConfig(max_ii=3))

    def test_budget_zero_falls_through_iis(self):
        # ratio so small the first II fails; a later II still succeeds
        # because the budget is per-II
        m = qrf_machine(4)
        cfg = ImsConfig(budget_ratio=1)
        s = modulo_schedule(daxpy(), m, config=cfg)
        s.validate(m.fus.as_dict())

    def test_stats_populated(self):
        m = qrf_machine(4)
        s = modulo_schedule(daxpy(), m)
        assert s.stats.mii == 2
        assert s.stats.attempts >= s.n_ops
        assert s.stats.iis_tried >= 1

    def test_input_validation_catches_bad_graph(self):
        from repro.ir.ddg import Ddg, DepKind
        from repro.ir.operations import Opcode
        ddg = Ddg("bad")
        a = ddg.add_operation(Opcode.ADD, name="a")
        b = ddg.add_operation(Opcode.ADD, name="b")
        ddg.add_dependence(a, b)
        ddg._g.add_edge(b.op_id, a.op_id, latency=1, distance=0,
                        kind=DepKind.DATA)
        ddg._bump()
        with pytest.raises(Exception):
            modulo_schedule(ddg, qrf_machine(4))


class TestLoopCarried:
    def test_distance_allows_overlap(self):
        # x[i] = x[i-3]*c + y[i]: RecMII = ceil((2+1)/3) = 1; on a wide
        # machine II can go below the serial latency
        b = LoopBuilder("rec3")
        y = b.load("y")
        xm = b.mul("xm")
        x = b.add("x", xm, y)
        b.carry(x, xm, distance=3)
        m = qrf_machine(12)
        s = modulo_schedule(b.build(), m)
        assert s.ii == 1

    def test_dot_product_overlaps_loads(self):
        m = qrf_machine(6)
        s = modulo_schedule(dot_product(), m)
        assert s.ii == 1   # 2 loads on 2 LS units, acc chain d=1 lat 1
        s.validate(m.fus.as_dict())


class TestDeterminism:
    def test_same_input_same_schedule(self):
        m = qrf_machine(6)
        ddg = chain("c", ["load", "mul", "add", "store"], carry_distance=2)
        s1 = modulo_schedule(ddg, m)
        s2 = modulo_schedule(ddg, m)
        assert s1.sigma == s2.sigma
        assert s1.ii == s2.ii

"""Partitioner-registry subsystem tests.

The invariant tests are *registry-parameterized*: they run against every
registered cluster-partitioning engine, so a future engine is held to the
same contract as the shipped five the moment it registers -- II >= MII,
every DATA edge lands on ring-adjacent clusters, inter-cluster ring
latency is honoured on the copy edges that cross clusters, and the full
pipeline (queue allocation + token simulation against the scalar
reference semantics) green on the classic kernel corpus.
"""

import pytest

from repro.ir.copyins import insert_copies
from repro.ir.ddg import DepKind
from repro.ir.unroll import unroll
from repro.machine.cluster import make_clustered
from repro.machine.presets import clustered_machine
from repro.sched.mii import mii
from repro.sched.partition import PartitionConfig, partitioned_schedule
from repro.sched.partitioners import (DEFAULT_PARTITIONER, Partitioner,
                                      agglomerative_assignment,
                                      available_partitioners,
                                      get_partitioner,
                                      partitioner_descriptions,
                                      register_partitioner)
from repro.sim.checker import run_pipeline
from repro.workloads.kernels import KERNELS, kernel

ALL_PARTITIONERS = available_partitioners()


def prepared(ddg, factor=1):
    work = unroll(ddg, factor) if factor > 1 else ddg
    return insert_copies(work).ddg


# ---------------------------------------------------------------- registry

def test_registry_lists_all_five_engines():
    assert set(ALL_PARTITIONERS) == {
        "affinity", "agglomerative", "balance", "first", "random"}
    assert DEFAULT_PARTITIONER in ALL_PARTITIONERS


def test_registry_unknown_name_names_the_alternatives():
    with pytest.raises(KeyError, match="affinity"):
        get_partitioner("nope")


def test_registry_rejects_duplicate_names():
    with pytest.raises(ValueError, match="already registered"):
        @register_partitioner
        class Duplicate(Partitioner):
            name = "affinity"

            def try_at_ii(self, ddg, cm, ii, *, budget, **kw):
                raise NotImplementedError


def test_registry_rejects_anonymous_engines():
    with pytest.raises(ValueError, match="non-empty"):
        @register_partitioner
        class NoName(Partitioner):
            def try_at_ii(self, ddg, cm, ii, *, budget, **kw):
                raise NotImplementedError


def test_every_engine_has_a_description():
    for name, descr in partitioner_descriptions().items():
        assert descr, name


# ----------------------------------------------- engine-generic invariants

@pytest.mark.parametrize("name", ALL_PARTITIONERS)
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_engine_invariants_on_classic_kernels(name, kernel_name):
    """II >= MII, resources respected, every DATA edge ring-adjacent --
    per engine, on every classic kernel, on the 4-cluster ring."""
    cm = make_clustered(4)
    work = prepared(kernel(kernel_name))
    s = partitioned_schedule(
        work, cm, config=PartitionConfig(partitioner=name))
    assert s.ii >= mii(s.ddg, cm)
    assert min(s.sigma.values()) >= 0
    assert set(s.sigma) == set(s.cluster_of) == set(s.ddg.op_ids)
    # resource + dependence + ring-adjacency audit (raises on violation)
    s.validate(cm.cluster.fus.as_dict(), adjacency=cm)


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
def test_engine_cross_checked_against_reference_simulator(name):
    """End to end on the classic kernels: partition with the engine,
    allocate queues, simulate, and verify every operand against the
    scalar reference semantics."""
    for kernel_name in sorted(KERNELS):
        res = run_pipeline(kernel(kernel_name), clustered_machine(4),
                           iterations=6, partitioner=name)
        assert res.sim.reads_checked > 0, kernel_name
        assert res.schedule.n_clusters == 4


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
@pytest.mark.parametrize("xlat", [1, 2])
def test_inter_cluster_latency_honoured_on_copy_edges(name, xlat):
    """With a non-zero ring-forwarding latency, every DATA edge that
    crosses clusters (the copy/communication edges) must leave at least
    ``xlat`` extra cycles between producer completion and the read."""
    cm = make_clustered(4, inter_cluster_latency=xlat)
    total_crossing = 0
    for kernel_name in ("daxpy", "dot", "fir4", "wide8", "cmul"):
        work = prepared(kernel(kernel_name), 2)
        s = partitioned_schedule(
            work, cm, config=PartitionConfig(partitioner=name))
        for e in s.ddg.edges(DepKind.DATA):
            if s.cluster_of[e.src] == s.cluster_of[e.dst]:
                continue
            total_crossing += 1
            slack = (s.sigma[e.dst] + e.distance * s.ii
                     - s.sigma[e.src] - e.latency)
            assert slack >= xlat, (kernel_name, e)
    # the check must have exercised real ring crossings
    assert total_crossing > 0


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
def test_engine_is_deterministic(name):
    cm = make_clustered(5)
    work = prepared(kernel("dot"), 4)
    cfg = PartitionConfig(partitioner=name)
    s1 = partitioned_schedule(work, cm, config=cfg)
    s2 = partitioned_schedule(work, cm,
                              config=PartitionConfig(partitioner=name))
    assert s1.sigma == s2.sigma
    assert s1.cluster_of == s2.cluster_of


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
def test_engine_respects_external_pins(name):
    cm = make_clustered(4)
    work = prepared(kernel("daxpy"))
    pins = {work.op_ids[0]: 2}
    s = partitioned_schedule(
        work, cm, config=PartitionConfig(partitioner=name), pinned=pins)
    assert s.cluster_of[work.op_ids[0]] == 2


# -------------------------------------------------- agglomerative details

def test_agglomerative_assignment_is_complete_and_ring_legal():
    cm = make_clustered(4)
    for kernel_name in ("dot", "fir4", "trielim", "cmul"):
        work = prepared(kernel(kernel_name), 2)
        pins = agglomerative_assignment(work, cm, ii=mii(work, cm))
        if pins is None:
            continue  # legal: the engine falls back to the free search
        assert set(pins) == set(work.op_ids)
        assert set(pins.values()) <= set(range(4))
        for e in work.edges(DepKind.DATA):
            assert cm.are_adjacent(pins[e.src], pins[e.dst]), kernel_name


def test_agglomerative_assignment_declines_tiny_loops():
    cm = make_clustered(4)
    work = prepared(kernel("daxpy"))
    if work.n_ops <= 4:
        assert agglomerative_assignment(work, cm, ii=4) is None


def test_agglomerative_spreads_independent_lanes():
    cm = make_clustered(4)
    work = prepared(kernel("wide8"))
    s = partitioned_schedule(
        work, cm, config=PartitionConfig(partitioner="agglomerative"))
    assert len(set(s.cluster_of.values())) >= 3


# --------------------------------------- eviction-bookkeeping regression

def _assert_state_consistent(state):
    """sigma, cluster_of and the per-cluster MRTs must agree exactly."""
    assert set(state.sigma) == set(state.cluster_of)
    placed_by_cluster: dict[int, set] = {}
    for c, mrt in enumerate(state.mrts):
        placed_by_cluster[c] = {p.op_id for p in mrt}
    for op_id, c in state.cluster_of.items():
        assert op_id in placed_by_cluster[c], op_id
        placement = state.mrts[c].placement_of(op_id)
        assert placement.time == state.sigma[op_id]
        # last_time records the most recent placement of every op
        assert state.last_time[op_id] == state.sigma[op_id]
    for c, placed in placed_by_cluster.items():
        for op_id in placed:
            assert state.cluster_of.get(op_id) == c, (
                f"MRT {c} holds {op_id} not assigned to it")


@pytest.mark.parametrize("name", ALL_PARTITIONERS)
def test_forced_eviction_keeps_state_consistent(name):
    """Regression: forced-placement victims used to leave through raw
    ``del state.sigma[...]`` instead of ``unschedule``; every eviction
    path must leave MRT/sigma/cluster_of bookkeeping aligned."""
    from repro.sched.schedule import ScheduleStats

    cm = make_clustered(6)
    work = insert_copies(unroll(kernel("dot"), 6)).ddg
    engine = get_partitioner(name)
    stats = ScheduleStats()
    # a tight II forces the eviction machinery; walk upward until the
    # engine lands so every engine gets audited
    state = None
    for ii in range(mii(work, cm), mii(work, cm) + 8):
        state = engine.try_at_ii(work, cm, ii, budget=12 * work.n_ops,
                                 stats=stats)
        if state is not None:
            break
    assert state is not None, f"{name} never landed near MII"
    _assert_state_consistent(state)


def test_forced_eviction_branch_actually_fires():
    """The regression test above is only meaningful if the stress input
    really drives the forced-placement path."""
    cm = make_clustered(6)
    work = insert_copies(unroll(kernel("dot"), 6)).ddg
    s = partitioned_schedule(work, cm)
    assert s.stats.evictions > 0
    s.validate(cm.cluster.fus.as_dict(), adjacency=cm)


class TestStateQueryEquivalence:
    """The slot-search inner loop inlines pred_arrivals_idx /
    scheduled_nbr_clusters_idx / allowed_from_nbrs for speed; the
    methods remain the public forms.  Pin the methods against a
    brute-force recomputation on mid-search states so neither copy can
    drift silently."""

    def test_methods_match_bruteforce_on_partial_states(self):
        import random

        from repro.ir.copyins import insert_copies
        from repro.machine.presets import clustered_machine
        from repro.sched.partitioners import PartitionState
        from repro.workloads.kernels import kernel

        rng = random.Random(7)
        for name in ("dot", "fir4", "tridiag"):
            work = insert_copies(kernel(name)).ddg
            for n_clusters in (4, 6):
                cm = clustered_machine(n_clusters)
                state = PartitionState(work, cm, ii=4)
                arr = state.arr
                # place a random half of the ops
                for i in rng.sample(range(arr.n), arr.n // 2):
                    for c in rng.sample(range(n_clusters), n_clusters):
                        t = rng.randint(0, 7)
                        if state.mrts[c].can_place(arr.pool[i], t):
                            state.place_idx(i, c, t)
                            break
                for i in range(arr.n):
                    op_id = arr.ids[i]
                    # scheduled DATA neighbours, brute force off the ddg
                    expect_nbrs = {}
                    for e in work.data_edges():
                        if e.src == e.dst:
                            continue
                        for a, b in ((e.src, e.dst), (e.dst, e.src)):
                            if a == op_id and state.cl[arr.index[b]] >= 0:
                                expect_nbrs[arr.index[b]] = \
                                    state.cl[arr.index[b]]
                    assert state.scheduled_nbr_clusters_idx(i) \
                        == expect_nbrs
                    # allowed clusters: adjacent to every neighbour
                    got = state.allowed_from_nbrs(expect_nbrs)
                    expect_allowed = [
                        c for c in range(n_clusters)
                        if all(cm.are_adjacent(c, nc)
                               for nc in expect_nbrs.values())]
                    assert got == expect_allowed
                    # estart via the cached-arrival helpers
                    for c in range(n_clusters):
                        est = 0
                        for e in work.in_edges(op_id):
                            s = arr.index[e.src]
                            if state.sig[s] < 0:
                                continue
                            cand = state.sig[s] + e.latency \
                                - e.distance * state.ii
                            if cand > est:
                                est = cand
                        assert state.estart(op_id, c) == est  # xlat == 0

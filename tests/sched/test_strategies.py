"""Scheduler-strategy subsystem tests.

The invariant tests are *registry-parameterized*: they run against every
registered engine, so a future strategy is held to the same contract as
IMS and SMS the moment it registers -- II >= MII, modulo resource limits
respected (no MRT overflow), every dependence distance honoured, and the
full pipeline (allocation + token simulation against the scalar reference
semantics) green on all 30 classic kernels.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ir.copyins import insert_copies
from repro.machine.presets import qrf_machine
from repro.machine.resources import pool_for
from repro.sched.mii import mii, mii_report
from repro.sched.schedule import SchedulingError
from repro.sched.strategies import (SchedulerResult, SchedulerStrategy,
                                    available_schedulers, get_scheduler,
                                    register_scheduler,
                                    scheduler_descriptions, sms_order,
                                    sms_schedule, time_bounds)
from repro.sim.checker import run_pipeline
from repro.workloads.kernels import KERNELS, kernel
from repro.workloads.synth import SynthConfig, generate_loop

ALL_SCHEDULERS = available_schedulers()


# ---------------------------------------------------------------- registry

def test_registry_lists_both_engines():
    assert "ims" in ALL_SCHEDULERS
    assert "sms" in ALL_SCHEDULERS


def test_registry_unknown_name_names_the_alternatives():
    with pytest.raises(KeyError, match="ims"):
        get_scheduler("nope")


def test_registry_rejects_duplicate_names():
    with pytest.raises(ValueError, match="already registered"):
        @register_scheduler
        class Duplicate(SchedulerStrategy):
            name = "ims"

            def schedule(self, ddg, machine, *, start_ii=None):
                raise NotImplementedError


def test_registry_rejects_anonymous_strategies():
    with pytest.raises(ValueError, match="non-empty"):
        @register_scheduler
        class NoName(SchedulerStrategy):
            def schedule(self, ddg, machine, *, start_ii=None):
                raise NotImplementedError


def test_every_engine_has_a_description():
    for name, descr in scheduler_descriptions().items():
        assert descr, name


# ----------------------------------------------- engine-generic invariants

@pytest.mark.parametrize("name", ALL_SCHEDULERS)
@pytest.mark.parametrize("kernel_name", sorted(KERNELS))
def test_engine_invariants_on_classic_kernels(name, kernel_name):
    """II >= MII, no MRT overflow, all dependences honoured -- per engine,
    on every classic kernel, on a narrow and a wide machine."""
    engine = get_scheduler(name)
    for n_fus in (4, 12):
        m = qrf_machine(n_fus)
        work = insert_copies(kernel(kernel_name)).ddg
        result = engine.schedule(work, m)
        assert isinstance(result, SchedulerResult)
        assert result.scheduler == name
        sched = result.schedule
        assert sched.ii >= mii(sched.ddg, m)
        assert min(sched.sigma.values()) >= 0
        # resource + dependence audit (raises on violation)
        sched.validate(m.fus.as_dict())
        # no modulo row exceeds its pool capacity -- checked explicitly,
        # not only through validate()
        usage = {}
        for op_id, t in sched.sigma.items():
            key = (pool_for(sched.ddg.op(op_id).fu_type), t % sched.ii)
            usage[key] = usage.get(key, 0) + 1
        caps = m.fus.as_dict()
        for (pool, _row), n in usage.items():
            assert n <= caps[pool]


@pytest.mark.parametrize("name", ALL_SCHEDULERS)
def test_engine_cross_checked_against_reference_simulator(name):
    """End to end on all 30 classic kernels: schedule with the engine,
    allocate queues, simulate, and verify every operand against the
    scalar reference semantics."""
    for kernel_name in sorted(KERNELS):
        res = run_pipeline(kernel(kernel_name), qrf_machine(4),
                           iterations=8, scheduler=name)
        assert res.sim.reads_checked > 0, kernel_name


@st.composite
def synth_loops(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    cfg = SynthConfig(n_loops=1, max_ops=24)
    return generate_loop(random.Random(seed), cfg, seed)


@given(synth_loops(), st.sampled_from(ALL_SCHEDULERS))
@settings(max_examples=40, deadline=None)
def test_engine_schedules_synthetic_loops(ddg, name):
    m = qrf_machine(6)
    work = insert_copies(ddg).ddg
    sched = get_scheduler(name).schedule(work, m).schedule
    sched.validate(m.fus.as_dict())
    assert sched.ii >= mii(work, m)


# ------------------------------------------------------------ SMS details

def test_sms_order_keeps_neighbourhood_invariant():
    """Every op except one seed per connected region is ordered while one
    of its DDG neighbours is already ordered (the swing property that
    makes the bidirectional placement lifetime-minimising)."""
    import networkx as nx

    for kernel_name in sorted(KERNELS):
        ddg = insert_copies(kernel(kernel_name)).ddg
        ii = mii(ddg, qrf_machine(4))
        order = sms_order(ddg, ii)
        assert sorted(order) == sorted(ddg.op_ids)
        g = nx.Graph()
        g.add_nodes_from(ddg.op_ids)
        g.add_edges_from((e.src, e.dst) for e in ddg.edges()
                         if e.src != e.dst)
        n_regions = nx.number_connected_components(g)
        seen = set()
        orphans = 0
        for op_id in order:
            nbrs = set(g[op_id])
            if nbrs and not (nbrs & seen):
                orphans += 1
            seen.add(op_id)
        assert orphans <= n_regions, kernel_name


def test_sms_time_bounds_are_consistent():
    ddg = insert_copies(kernel("fir4")).ddg
    ii = mii(ddg, qrf_machine(4))
    e_of, l_of = time_bounds(ddg, ii)
    assert all(l_of[u] >= e_of[u] >= 0 for u in ddg.op_ids)


def test_sms_is_backtrack_free():
    """SMS never evicts; its per-II placement attempts are <= n_ops."""
    for kernel_name in ("daxpy", "cmul", "trielim", "wide8"):
        m = qrf_machine(4)
        work = insert_copies(kernel(kernel_name)).ddg
        sched = sms_schedule(work, m)
        assert sched.stats.evictions == 0
        assert sched.stats.attempts <= work.n_ops * sched.stats.iis_tried


def test_sms_matches_ims_mii_achievement_on_kernels():
    """The acceptance headline, in miniature: wherever IMS hits MII on
    the classic kernels, SMS does too (>= 80% required; in practice
    it's all of them)."""
    m = qrf_machine(6)
    ims_hit, sms_hit = [], []
    for kernel_name in sorted(KERNELS):
        work = insert_copies(kernel(kernel_name)).ddg
        lo = mii(work, m)
        ims_ii = get_scheduler("ims").schedule(work, m).ii
        sms_ii = get_scheduler("sms").schedule(work, m).ii
        if ims_ii == lo:
            ims_hit.append(kernel_name)
            if sms_ii == lo:
                sms_hit.append(kernel_name)
    assert len(sms_hit) >= 0.8 * len(ims_hit)


def test_sms_raises_on_impossible_machine():
    ddg = kernel("daxpy")
    m = qrf_machine(4)
    report = mii_report(ddg, m)
    with pytest.raises(SchedulingError):
        from repro.sched.strategies import SmsConfig
        sms_schedule(ddg, m, config=SmsConfig(max_ii=report.mii - 1))

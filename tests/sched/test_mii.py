"""Unit tests for MII bounds (hand-computed cases)."""

import pytest

from repro.ir.builder import LoopBuilder, chain
from repro.machine.presets import qrf_machine
from repro.sched.mii import (max_cycle_ratio, mii, mii_report, rec_mii,
                             res_mii, theoretical_ipc_bound)
from repro.workloads.kernels import daxpy, dot_product, tridiagonal


class TestResMii:
    def test_daxpy_on_4fu(self):
        # 3 L/S ops (x, y, st) on 2 L/S units -> ceil(3/2) = 2
        assert res_mii(daxpy(), qrf_machine(4)) == 2

    def test_daxpy_on_12fu(self):
        assert res_mii(daxpy(), qrf_machine(12)) == 1

    def test_missing_fu(self):
        from repro.machine.machine import Machine, RfKind
        from repro.machine.resources import FuSet
        from repro.ir.operations import FuType
        m = Machine(name="nols", fus=FuSet({FuType.ADD: 1, FuType.MUL: 1}),
                    rf_kind=RfKind.CONVENTIONAL)
        with pytest.raises(ValueError):
            res_mii(daxpy(), m)


class TestRecMii:
    def test_acyclic_is_one(self):
        assert rec_mii(daxpy()) == 1

    def test_accumulator(self):
        # dot: acc(add, lat 1) -> acc, d=1 -> RecMII = 1
        assert rec_mii(dot_product()) == 1

    def test_tridiagonal(self):
        # cycle: sub(1) -> mul(2) -> sub, distance 1 -> lat 3 / 1 = 3
        assert rec_mii(tridiagonal()) == 3

    def test_chain_recurrence(self):
        # load(2) -> mul(2) -> add(1), carried add->load d=1: 5/1
        ddg = chain("r", ["load", "mul", "add", "store"], carry_distance=1)
        assert rec_mii(ddg) == 5

    def test_distance_divides_bound(self):
        b = LoopBuilder("d2")
        a = b.add("a", latency=6)
        b.carry(a, a, distance=3)
        assert rec_mii(b.build()) == 2  # ceil(6/3)

    def test_non_divisible_rounds_up(self):
        b = LoopBuilder("d3")
        a = b.add("a", latency=7)
        b.carry(a, a, distance=3)
        assert rec_mii(b.build()) == 3  # ceil(7/3)

    def test_mem_edges_participate(self):
        b = LoopBuilder("m")
        v = b.load("v")          # latency 2
        st = b.store("st", v)
        b.mem_order(st, v, distance=1)   # st -> next load, latency 1
        # cycle: v ->(2) st ->(1) v, distance 1 -> RecMII 3
        assert rec_mii(b.build()) == 3


class TestMaxCycleRatio:
    def test_acyclic_zero(self):
        assert max_cycle_ratio(daxpy()) == pytest.approx(0.0, abs=1e-6)

    def test_simple_ratio(self):
        b = LoopBuilder("r")
        a = b.add("a", latency=5)
        b.carry(a, a, distance=2)
        assert max_cycle_ratio(b.build()) == pytest.approx(2.5, abs=1e-4)

    def test_known_ratio_within_half_tol(self):
        """Regression: the bisection used to return the *upper* bound of
        the final interval, biasing every estimate high by up to a full
        ``tol``; the midpoint must sit within ``tol/2`` of the true
        maximum ratio on a cycle whose ratio is known exactly."""
        b = LoopBuilder("known")
        a = b.add("a", latency=3)
        c = b.add("c", a, latency=4)
        b.carry(c, a, distance=2)
        # cycle latency 3 + 4 = 7 over distance 2 -> ratio 3.5 exactly
        tol = 1e-6
        ratio = max_cycle_ratio(b.build(), tol=tol)
        assert abs(ratio - 3.5) <= tol / 2

    def test_tighter_tol_tightens_the_answer(self):
        b = LoopBuilder("r7")
        a = b.add("a", latency=7)
        b.carry(a, a, distance=3)
        loose = max_cycle_ratio(b.build(), tol=1e-2)
        tight = max_cycle_ratio(b.build(), tol=1e-8)
        assert abs(loose - 7 / 3) <= 0.5e-2
        assert abs(tight - 7 / 3) <= 0.5e-8

    def test_matches_recmii_ceiling(self, synth_sample):
        for ddg in synth_sample[:15]:
            ratio = max_cycle_ratio(ddg)
            expected = rec_mii(ddg)
            if ratio == 0.0:
                assert expected == 1
            else:
                import math
                assert math.ceil(ratio - 1e-4) == expected


class TestMiiReport:
    def test_binding_bound(self):
        rep = mii_report(tridiagonal(), qrf_machine(12))
        assert rep.rec == 3
        assert rep.mii == max(rep.res, rep.rec)
        assert not rep.resource_constrained

    def test_resource_constrained_flag(self):
        rep = mii_report(daxpy(), qrf_machine(4))
        assert rep.resource_constrained

    def test_mii_function(self):
        assert mii(daxpy(), qrf_machine(4)) == 2

    def test_ipc_bound(self):
        assert theoretical_ipc_bound(daxpy(), qrf_machine(4)) == \
            pytest.approx(5 / 2)


class TestZeroDistanceCycle:
    def test_rejected(self):
        from repro.ir.ddg import Ddg, DepKind
        from repro.ir.operations import Opcode
        ddg = Ddg("bad")
        a = ddg.add_operation(Opcode.ADD, name="a")
        b2 = ddg.add_operation(Opcode.ADD, name="b")
        ddg.add_dependence(a, b2, distance=0)
        ddg._g.add_edge(b2.op_id, a.op_id, latency=1, distance=0,
                        kind=DepKind.DATA)
        ddg._bump()
        with pytest.raises(ValueError, match="cycle"):
            rec_mii(ddg)

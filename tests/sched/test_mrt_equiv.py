"""Property test: PackedMRT must agree exactly with the legacy dict MRT.

A seeded random driver applies the same place/remove/evict/conflicts/query
sequence to both tables (the legacy :class:`ModuloReservationTable` keyed
by FuType, the packed :class:`PackedMRT` keyed by integer pool id) and
requires bit-exact agreement after every step -- occupancy, victim
selection *order*, usage counters, and placement bookkeeping.  This is the
hypothesis-style loop that pins the packed core to the legacy semantics.
"""

import random

import pytest

from repro.ir.operations import FuType
from repro.machine.resources import POOL_ID_FOR, pool_for
from repro.sched.mrt import ModuloReservationTable, PackedMRT

FU_TYPES = (FuType.LS, FuType.ADD, FuType.MUL, FuType.COPY, FuType.MOVE)


def _assert_agree(legacy: ModuloReservationTable, packed: PackedMRT,
                  ii: int) -> None:
    assert legacy.load() == packed.load()
    for fu in FU_TYPES:
        pool = pool_for(fu)
        pid = POOL_ID_FOR[fu]
        assert legacy.usage(pool) == packed.usage(pid), fu
        for t in range(ii):
            if legacy.capacity(fu):
                assert legacy.can_place(fu, t) == packed.can_place(pid, t)
            assert (tuple(legacy.occupants(fu, t))
                    == packed.occupants(pid, t)), (fu, t)
    legacy_placements = list(legacy)
    packed_placements = list(packed)
    assert [(p.op_id, p.pool, p.time, p.row) for p in legacy_placements] \
        == [(p.op_id, p.pool, p.time, p.row) for p in packed_placements]


@pytest.mark.parametrize("seed", range(8))
def test_random_sequences_agree(seed, each_kernel_backend):
    rng = random.Random(seed)
    ii = rng.randint(1, 7)
    caps = {FuType.LS: rng.randint(0, 2), FuType.ADD: rng.randint(1, 3),
            FuType.MUL: rng.randint(0, 2), FuType.COPY: rng.randint(1, 2)}
    legacy = ModuloReservationTable(ii, caps)
    packed = PackedMRT(ii, caps)
    next_id = 0
    live: list[int] = []
    fu_of: dict[int, FuType] = {}

    for _step in range(300):
        action = rng.random()
        fu = rng.choice(FU_TYPES)
        pid = POOL_ID_FOR[fu]
        t = rng.randint(0, 3 * ii)
        if action < 0.45:
            # place (only when legal -- both must agree it is)
            can_l = legacy.can_place(fu, t)
            assert can_l == packed.can_place(pid, t)
            if can_l:
                legacy.place(next_id, fu, t)
                packed.place(next_id, pid, t)
                live.append(next_id)
                fu_of[next_id] = fu
                next_id += 1
        elif action < 0.60 and live:
            victim = live.pop(rng.randrange(len(live)))
            legacy.remove(victim)
            packed.remove(victim)
            del fu_of[victim]
        elif action < 0.75:
            # non-mutating conflicts probe: identical victims, same order
            if legacy.capacity(fu) == 0:
                with pytest.raises(ValueError):
                    legacy.conflicts(fu, t)
                with pytest.raises(ValueError):
                    packed.conflicts(pid, t)
            else:
                assert (tuple(legacy.conflicts(fu, t))
                        == packed.conflicts(pid, t))
        elif action < 0.90:
            if legacy.capacity(fu) == 0:
                continue
            ev_l = tuple(legacy.evict_for(fu, t))
            ev_p = packed.evict_for(pid, t)
            assert ev_l == ev_p
            for v in ev_l:
                live.remove(v)
                del fu_of[v]
        else:
            _assert_agree(legacy, packed, ii)

    _assert_agree(legacy, packed, ii)


def test_first_free_matches_linear_scan():
    rng = random.Random(42)
    for _ in range(50):
        ii = rng.randint(1, 6)
        caps = {FuType.ADD: rng.randint(1, 2), FuType.LS: rng.randint(0, 1)}
        packed = PackedMRT(ii, caps)
        legacy = ModuloReservationTable(ii, caps)
        oid = 0
        for _ in range(rng.randint(0, 2 * ii)):
            fu = rng.choice((FuType.ADD, FuType.LS))
            t = rng.randint(0, 2 * ii)
            if legacy.can_place(fu, t):
                legacy.place(oid, fu, t)
                packed.place(oid, POOL_ID_FOR[fu], t)
                oid += 1
        for fu in (FuType.ADD, FuType.LS):
            pid = POOL_ID_FOR[fu]
            for est in range(2 * ii):
                expect = -1
                for t in range(est, est + ii):
                    if legacy.can_place(fu, t):
                        expect = t
                        break
                assert packed.first_free(pid, est) == expect


def test_conflicts_empty_is_shared_tuple():
    packed = PackedMRT(4, {FuType.ADD: 1})
    pid = POOL_ID_FOR[FuType.ADD]
    assert packed.conflicts(pid, 0) is packed.conflicts(pid, 2)


def test_occupants_conflicts_memo_mutation_safety():
    """Regression: the one-entry ``occupants()``/``conflicts()`` memos
    are keyed on the mutation stamp -- an unchanged table returns the
    *same* cached tuple, and any place/remove/evict must invalidate it
    (a stale tuple here silently corrupts eviction decisions)."""
    packed = PackedMRT(4, {FuType.ADD: 2})
    pid = POOL_ID_FOR[FuType.ADD]
    packed.place(1, pid, 0)
    first = packed.occupants(pid, 0)
    assert first == (1,)
    # untouched table: the memoised tuple object itself comes back
    assert packed.occupants(pid, 0) is first
    packed.place(2, pid, 0)
    assert packed.occupants(pid, 0) == (1, 2)   # stale (1,) is the bug
    conf = packed.conflicts(pid, 0)
    assert conf == (2,)
    assert packed.conflicts(pid, 0) is conf
    packed.remove(2)
    assert packed.conflicts(pid, 0) == ()
    assert packed.occupants(pid, 0) == (1,)
    # eviction is a mutation too
    packed.place(3, pid, 0)
    assert packed.evict_for(pid, 0) == (3,)
    assert packed.occupants(pid, 0) == (1,)
    # reset must not leak a memo into the next attempt
    packed.reset()
    assert packed.occupants(pid, 0) == ()


def test_packed_rejects_bad_shapes():
    with pytest.raises(ValueError):
        PackedMRT(0, {FuType.ADD: 1})
    with pytest.raises(ValueError):
        PackedMRT(4, [1, 2])  # wrong pool-vector length
    t = PackedMRT(2, {FuType.ADD: 1})
    t.place(1, POOL_ID_FOR[FuType.ADD], 0)
    with pytest.raises(ValueError, match="already"):
        t.place(1, POOL_ID_FOR[FuType.ADD], 1)
    with pytest.raises(ValueError, match="free"):
        t.place(2, POOL_ID_FOR[FuType.ADD], 2)
    with pytest.raises(ValueError, match="no"):
        t.conflicts(POOL_ID_FOR[FuType.MUL], 0)

"""Unit tests for the modulo reservation table."""

import pytest

from repro.ir.operations import FuType
from repro.sched.mrt import ModuloReservationTable


def mrt(ii=4, ls=1, add=2, mul=1, copy=1):
    return ModuloReservationTable(ii, {FuType.LS: ls, FuType.ADD: add,
                                       FuType.MUL: mul, FuType.COPY: copy})


class TestPlacement:
    def test_place_and_query(self):
        t = mrt()
        p = t.place(7, FuType.ADD, 5)
        assert p.row == 1
        assert t.is_placed(7)
        assert t.occupants(FuType.ADD, 9) == (7,)  # 9 % 4 == 1
        assert t.placement_of(7).time == 5

    def test_modulo_conflict(self):
        t = mrt(ii=4, ls=1)
        t.place(1, FuType.LS, 2)
        assert not t.can_place(FuType.LS, 6)   # same row
        assert t.can_place(FuType.LS, 3)

    def test_capacity_two(self):
        t = mrt(add=2)
        t.place(1, FuType.ADD, 0)
        assert t.can_place(FuType.ADD, 0)
        t.place(2, FuType.ADD, 0)
        assert not t.can_place(FuType.ADD, 4)

    def test_double_place_rejected(self):
        t = mrt()
        t.place(1, FuType.ADD, 0)
        with pytest.raises(ValueError, match="already"):
            t.place(1, FuType.ADD, 1)

    def test_place_full_rejected(self):
        t = mrt(ls=1)
        t.place(1, FuType.LS, 0)
        with pytest.raises(ValueError, match="free"):
            t.place(2, FuType.LS, 4)

    def test_no_units_of_class(self):
        t = ModuloReservationTable(4, {FuType.ADD: 1})
        assert not t.can_place(FuType.MUL, 0)

    def test_move_uses_copy_pool(self):
        t = mrt(copy=1)
        t.place(1, FuType.COPY, 0)
        assert not t.can_place(FuType.MOVE, 0)
        assert t.can_place(FuType.MOVE, 1)


class TestEviction:
    def test_evict_newest(self):
        t = mrt(add=2)
        t.place(1, FuType.ADD, 0)
        t.place(2, FuType.ADD, 4)   # same row, placed later
        evicted = t.evict_for(FuType.ADD, 8)
        assert evicted == [2]
        assert t.is_placed(1)

    def test_evict_when_free_is_noop(self):
        t = mrt(add=2)
        t.place(1, FuType.ADD, 0)
        assert t.evict_for(FuType.ADD, 0) == []

    def test_evict_no_units_raises(self):
        t = ModuloReservationTable(4, {FuType.ADD: 1})
        with pytest.raises(ValueError):
            t.evict_for(FuType.MUL, 0)

    def test_remove(self):
        t = mrt()
        t.place(1, FuType.MUL, 3)
        t.remove(1)
        assert not t.is_placed(1)
        assert t.can_place(FuType.MUL, 3)


class TestBookkeeping:
    def test_usage_and_load(self):
        t = mrt(add=2)
        t.place(1, FuType.ADD, 0)
        t.place(2, FuType.ADD, 1)
        t.place(3, FuType.LS, 0)
        assert t.usage(FuType.ADD) == 2
        assert t.load() == 3

    def test_iteration_sorted(self):
        t = mrt(add=2)
        t.place(5, FuType.ADD, 0)
        t.place(2, FuType.ADD, 1)
        assert [p.op_id for p in t] == [2, 5]

    def test_clear(self):
        t = mrt()
        t.place(1, FuType.ADD, 0)
        t.clear()
        assert t.load() == 0
        assert t.can_place(FuType.ADD, 0)

    def test_render_contains_rows(self):
        t = mrt(ii=3)
        t.place(1, FuType.ADD, 1)
        text = t.render()
        assert "  1 |" in text

    def test_bad_ii(self):
        with pytest.raises(ValueError):
            ModuloReservationTable(0, {FuType.ADD: 1})


class TestPackedFirstFree:
    """The full-row-mask fast path of ``PackedMRT.first_free`` must agree
    with the naive row-by-row scan under arbitrary interleavings."""

    @staticmethod
    def _naive_first_free(t, pool, est):
        cap = t.caps[pool]
        if cap <= 0:
            return -1
        for time in range(est, est + t.ii):
            if t.can_place(pool, time):
                return time
        return -1

    def _caps(self):
        from repro.machine.resources import N_POOLS
        return [2, 1, 1, 1][:N_POOLS] + [0] * max(0, N_POOLS - 4)

    def test_mask_agrees_with_naive_scan_randomised(self):
        import random

        from repro.machine.resources import N_POOLS
        from repro.sched.mrt import PackedMRT

        rng = random.Random(1234)
        for trial in range(40):
            ii = rng.randint(1, 9)
            t = PackedMRT(ii, self._caps())
            placed = []
            next_op = 0
            for _step in range(120):
                pool = rng.randrange(N_POOLS)
                est = rng.randint(0, 3 * ii)
                assert t.first_free(pool, est) \
                    == self._naive_first_free(t, pool, est), \
                    f"divergence at trial {trial} (ii={ii})"
                if placed and rng.random() < 0.4:
                    victim = placed.pop(rng.randrange(len(placed)))
                    t.remove(victim)
                else:
                    slot = t.first_free(pool, est)
                    if slot >= 0:
                        t.place(next_op, pool, slot)
                        placed.append(next_op)
                        next_op += 1

    def test_mask_survives_reset_and_regrow(self):
        import random

        from repro.machine.resources import N_POOLS
        from repro.sched.mrt import PackedMRT

        rng = random.Random(99)
        t = PackedMRT(3, self._caps())
        for _round in range(25):
            ii = rng.randint(1, 12)
            t.reset(ii, self._caps())
            assert t.load() == 0
            ops = 0
            for _ in range(30):
                pool = rng.randrange(N_POOLS)
                est = rng.randint(0, 2 * ii)
                got = t.first_free(pool, est)
                assert got == self._naive_first_free(t, pool, est)
                if got >= 0:
                    t.place(1000 + ops, pool, got)
                    ops += 1

"""Unit tests for the ModuloSchedule result object."""

import pytest

from repro.ir.builder import chain
from repro.machine.presets import qrf_machine
from repro.sched.ims import modulo_schedule
from repro.sched.schedule import (ModuloSchedule, ScheduleValidationError)
from repro.workloads.kernels import daxpy


def tiny_schedule():
    ddg = chain("c", ["load", "add", "store"])
    # load@0 (lat2), add@2 (lat1), store@3; II=2
    return ModuloSchedule(ddg=ddg, ii=2,
                          sigma={0: 0, 1: 2, 2: 3})


class TestDerivedQuantities:
    def test_rows_and_stages(self):
        s = tiny_schedule()
        assert s.row_of(0) == 0
        assert s.row_of(2) == 1
        assert s.stage_of(2) == 1
        assert s.stage_count == 2
        assert s.max_time == 3

    def test_static_ipc(self):
        assert tiny_schedule().static_ipc() == pytest.approx(1.5)

    def test_cycles_for(self):
        s = tiny_schedule()
        # (N + SC - 1) * II
        assert s.cycles_for(10) == (10 + 1) * 2

    def test_cycles_for_unrolled(self):
        s = tiny_schedule()
        assert s.cycles_for(10, unroll_factor=4) == (3 + 1) * 2

    def test_dynamic_ipc_less_than_static(self):
        s = tiny_schedule()
        assert s.dynamic_ipc(iterations=5) < s.static_ipc()

    def test_dynamic_ipc_approaches_static(self):
        s = tiny_schedule()
        assert s.dynamic_ipc(iterations=100_000) == \
            pytest.approx(s.static_ipc(), rel=1e-3)

    def test_value_times(self):
        s = tiny_schedule()
        assert s.value_write_time(0) == 2   # load issues 0, lat 2
        edges = list(s.ddg.data_edges())
        assert s.value_read_time(edges[0]) == 2
        assert s.edge_slack(edges[0]) == 0

    def test_bad_ii(self):
        with pytest.raises(ValueError):
            ModuloSchedule(ddg=chain("c", ["add"]), ii=0, sigma={0: 0})


class TestValidation:
    def test_valid_schedule_passes(self):
        tiny_schedule().validate()

    def test_dependence_violation_detected(self):
        s = tiny_schedule()
        s.sigma[1] = 1   # add before load's value is ready
        with pytest.raises(ScheduleValidationError, match="dependence"):
            s.validate()

    def test_missing_op_detected(self):
        s = tiny_schedule()
        del s.sigma[2]
        with pytest.raises(ScheduleValidationError, match="unscheduled"):
            s.validate()

    def test_unknown_op_detected(self):
        s = tiny_schedule()
        s.sigma[99] = 0
        with pytest.raises(ScheduleValidationError, match="unknown"):
            s.validate()

    def test_negative_time_detected(self):
        s = tiny_schedule()
        s.sigma[0] = -1
        with pytest.raises(ScheduleValidationError):
            s.validate()

    def test_resource_overflow_detected(self):
        from repro.ir.operations import FuType
        s = tiny_schedule()
        s.sigma[2] = 2  # store at row 0 with load -> 2 L/S ops on 1 unit
        with pytest.raises(ScheduleValidationError, match="capacity"):
            s.validate({FuType.LS: 1, FuType.ADD: 1})

    def test_adjacency_violation_detected(self):
        from repro.machine.cluster import make_clustered
        cm = make_clustered(6)
        s = tiny_schedule()
        s.n_clusters = 6
        s.cluster_of = {0: 0, 1: 3, 2: 3}
        with pytest.raises(ScheduleValidationError, match="non-adjacent"):
            s.validate(adjacency=cm)


class TestRender:
    def test_render_contains_ops(self):
        s = modulo_schedule(daxpy(), qrf_machine(4))
        text = s.render()
        assert "II=" in text
        assert "ax@" in text

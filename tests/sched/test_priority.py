"""Unit tests for height-based priority."""

import pytest

from repro.ir.builder import LoopBuilder, chain
from repro.sched.priority import heights, highest_priority, priority_order
from repro.workloads.kernels import daxpy


class TestHeights:
    def test_chain_heights(self):
        # load(2) -> mul(2) -> add(1) -> store: heights 5, 3, 1, 0
        ddg = chain("c", ["load", "mul", "add", "store"])
        h = heights(ddg, ii=4)
        assert [h[i] for i in ddg.op_ids] == [5, 3, 1, 0]

    def test_carried_edge_discounts_by_ii(self):
        b = LoopBuilder("r")
        a = b.add("a", latency=3)
        b.carry(a, a, distance=1)
        ddg = b.build()
        # at II=3 the self-edge contributes 3 - 3 = 0 -> height 0
        assert heights(ddg, 3)[a.op_id] == 0

    def test_below_recmii_diverges(self):
        b = LoopBuilder("r")
        a = b.add("a", latency=3)
        b.carry(a, a, distance=1)
        with pytest.raises(ValueError, match="diverge"):
            heights(b.build(), 2)

    def test_bad_ii(self):
        with pytest.raises(ValueError):
            heights(daxpy(), 0)


class TestPriorityOrder:
    def test_descending_heights(self):
        ddg = daxpy()
        order = priority_order(ddg, 2)
        h = heights(ddg, 2)
        hs = [h[o] for o in order]
        assert hs == sorted(hs, reverse=True)

    def test_ties_break_by_id(self):
        ddg = daxpy()
        order = priority_order(ddg, 2)
        h = heights(ddg, 2)
        for a, b in zip(order, order[1:]):
            if h[a] == h[b]:
                assert a < b

    def test_all_ops_present(self):
        ddg = daxpy()
        assert sorted(priority_order(ddg, 2)) == ddg.op_ids


class TestHighestPriority:
    def test_picks_first_unscheduled(self):
        order = [3, 1, 2]
        assert highest_priority({1, 2}, order) == 1

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            highest_priority(set(), [1, 2])

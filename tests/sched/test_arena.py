"""Scheduling arenas: buffer reuse, O(touched) resets, result safety."""

from repro.ir.copyins import insert_copies
from repro.machine.presets import clustered_machine, qrf_machine
from repro.machine.resources import N_POOLS
from repro.sched.arena import SchedArena, arena_counters, global_arena
from repro.sched.ims import modulo_schedule
from repro.sched.partition import PartitionConfig, partitioned_schedule
from repro.workloads.kernels import kernel


def caps():
    return [2, 1, 1, 1][:N_POOLS] + [0] * max(0, N_POOLS - 4)


class TestMrtPool:
    def test_tables_are_reused_across_attempts(self):
        arena = SchedArena()
        arena.begin_attempt()
        first = arena.take_mrts(4, 5, caps())
        assert arena.counters()["allocs"] == 4
        arena.begin_attempt()
        second = arena.take_mrts(4, 7, caps())
        assert [id(t) for t in first] == [id(t) for t in second]
        assert arena.counters()["allocs"] == 4          # no new buffers
        assert arena.counters()["hits"] == 4            # all 4 reused
        assert all(t.ii == 7 and t.load() == 0 for t in second)

    def test_pool_grows_to_widest_attempt_then_stops(self):
        arena = SchedArena()
        arena.begin_attempt()
        arena.take_mrts(2, 3, caps())
        arena.begin_attempt()
        arena.take_mrts(6, 3, caps())
        allocs = arena.counters()["allocs"]
        for _ in range(5):
            arena.begin_attempt()
            arena.take_mrts(6, 9, caps())
        assert arena.counters()["allocs"] == allocs

    def test_reused_table_starts_empty_after_occupied_attempt(self):
        arena = SchedArena()
        arena.begin_attempt()
        [t] = arena.take_mrts(1, 4, caps())
        t.place(1, 0, 0)
        t.place(2, 1, 3)
        arena.begin_attempt()
        [t2] = arena.take_mrts(1, 4, caps())
        assert t2 is t
        assert t2.load() == 0
        assert t2.first_free(0, 0) == 0
        assert not t2.is_placed(1)

    def test_sequential_takes_within_one_attempt_are_distinct(self):
        """The agglomerative engine builds two states per probe; their
        tables must not alias."""
        arena = SchedArena()
        arena.begin_attempt()
        a = arena.take_mrts(2, 4, caps())
        b = arena.take_mrts(2, 4, caps())
        assert {id(t) for t in a}.isdisjoint({id(t) for t in b})


class TestTopologyCache:
    def test_ring_topology_cached_by_cluster_count(self):
        arena = SchedArena()
        cm = clustered_machine(5)
        adj1, masks1, all1 = arena.ring_topology(cm)
        adj2, masks2, all2 = arena.ring_topology(clustered_machine(5))
        assert adj1 is adj2 and masks1 is masks2 and all1 is all2
        # masks mirror the matrix
        for c, row in enumerate(adj1):
            for b, ok in enumerate(row):
                assert bool(masks1[c] >> b & 1) == ok

    def test_distinct_ring_sizes_distinct_entries(self):
        arena = SchedArena()
        _, masks4, _ = arena.ring_topology(clustered_machine(4))
        _, masks6, _ = arena.ring_topology(clustered_machine(6))
        assert len(masks4) == 4 and len(masks6) == 6


class TestDriverIntegration:
    def test_global_arena_accumulates_and_counters_export(self):
        before = arena_counters()["resets"]
        work = insert_copies(kernel("daxpy")).ddg
        modulo_schedule(work, qrf_machine(4))
        partitioned_schedule(work, clustered_machine(4),
                             config=PartitionConfig())
        after = arena_counters()
        assert after["resets"] > before
        assert set(after) == {"generation", "resets", "hits", "allocs",
                              "pooled_mrts", "kernels"}
        assert after["kernels"] in {"python", "numpy"}
        assert global_arena().counters() == after

    def test_returned_schedules_survive_later_arena_attempts(self):
        """Arena-backed state must never leak into returned schedules:
        scheduling another loop cannot mutate an earlier result."""
        cm = clustered_machine(4)
        work = insert_copies(kernel("dot")).ddg
        first = partitioned_schedule(work, cm, config=PartitionConfig())
        snapshot = (first.ii, dict(first.sigma), dict(first.cluster_of))
        for name in ("fir4", "vadd", "tridiag"):
            other = insert_copies(kernel(name)).ddg
            partitioned_schedule(other, cm, config=PartitionConfig())
        assert snapshot == (first.ii, first.sigma, first.cluster_of)
        first.validate(cm.cluster.fus.as_dict(), adjacency=cm)

"""Tests for the clustered partitioning scheduler."""

import pytest

from repro.ir.copyins import insert_copies
from repro.ir.unroll import unroll
from repro.machine.cluster import make_clustered
from repro.sched.ims import modulo_schedule
from repro.sched.mii import mii
from repro.sched.partition import (PartitionConfig, insert_moves,
                                   partitioned_schedule,
                                   schedule_with_moves)
from repro.sched.schedule import SchedulingError
from repro.workloads.kernels import (daxpy, dot_product, wide_independent)


def prepared(ddg, factor=1):
    work = unroll(ddg, factor) if factor > 1 else ddg
    return insert_copies(work).ddg


class TestBasicPartitioning:
    def test_single_cluster_equals_ims(self):
        cm = make_clustered(1)
        work = prepared(daxpy())
        ps = partitioned_schedule(work, cm)
        ims = modulo_schedule(work, cm.cluster)
        assert ps.ii == ims.ii

    def test_adjacency_enforced(self):
        cm = make_clustered(6)
        work = prepared(wide_independent())
        s = partitioned_schedule(work, cm)
        s.validate(cm.cluster.fus.as_dict(), adjacency=cm)

    def test_spreads_over_clusters(self):
        cm = make_clustered(4)
        work = prepared(wide_independent())   # 8 independent lanes
        s = partitioned_schedule(work, cm)
        assert len(set(s.cluster_of.values())) >= 3

    def test_ii_at_least_flat_mii(self):
        cm = make_clustered(4)
        work = prepared(daxpy(), 4)
        s = partitioned_schedule(work, cm)
        assert s.ii >= mii(work, cm)

    def test_stats_and_name(self):
        cm = make_clustered(4)
        s = partitioned_schedule(prepared(daxpy()), cm)
        assert s.machine_name == cm.name
        assert s.n_clusters == 4

    def test_all_registered_engines_produce_valid_schedules(self):
        from repro.sched.partitioners import available_partitioners
        cm = make_clustered(5)
        work = prepared(dot_product(), 4)
        for engine in available_partitioners():
            s = partitioned_schedule(
                work, cm, config=PartitionConfig(partitioner=engine))
            s.validate(cm.cluster.fus.as_dict(), adjacency=cm)

    def test_unknown_partitioner_names_the_alternatives(self):
        cm = make_clustered(4)
        with pytest.raises(KeyError, match="affinity"):
            partitioned_schedule(
                prepared(daxpy()), cm,
                config=PartitionConfig(partitioner="bogus"))

    def test_strategy_alias_still_selects_the_engine(self):
        cfg = PartitionConfig(strategy="balance")
        assert cfg.partitioner == "balance"

    def test_replace_switches_engine_despite_alias_history(self):
        import dataclasses
        cfg = PartitionConfig(strategy="balance")
        swapped = dataclasses.replace(cfg, partitioner="agglomerative")
        assert swapped.partitioner == "agglomerative"

    def test_determinism(self):
        cm = make_clustered(5)
        work = prepared(daxpy(), 4)
        s1 = partitioned_schedule(work, cm)
        s2 = partitioned_schedule(work, cm)
        assert s1.sigma == s2.sigma
        assert s1.cluster_of == s2.cluster_of


class TestPinning:
    def test_pins_respected(self):
        cm = make_clustered(4)
        work = prepared(daxpy())
        pins = {work.op_ids[0]: 2}
        s = partitioned_schedule(work, cm, pinned=pins)
        assert s.cluster_of[work.op_ids[0]] == 2

    def test_relax_adjacency_skips_check(self):
        cm = make_clustered(6)
        work = prepared(wide_independent(), 2)
        s = partitioned_schedule(work, cm, relax_adjacency=True)
        # schedule is valid except possibly adjacency
        s.validate(cm.cluster.fus.as_dict())


class TestMoves:
    def test_insert_moves_bridges_hops(self):
        cm = make_clustered(6)
        work = prepared(daxpy())
        cluster_of = {o: 0 for o in work.op_ids}
        # stretch the edge into the store (a sink: no further out-edges)
        store = next(o for o in work.op_ids
                     if not work.op(o).produces_value)
        cluster_of[store] = 3
        moved, pins = insert_moves(work, cm, cluster_of)
        n_moves = moved.n_ops - work.n_ops
        assert n_moves == 2    # 0 -> 1 -> 2 -> 3
        # pins cover all ops, moves pinned on the path interior
        assert set(pins) == set(moved.op_ids)
        move_pins = sorted(pins[o] for o in moved.op_ids
                           if moved.op(o).is_move)
        assert move_pins == [1, 2]

    def test_insert_moves_noop_when_adjacent(self):
        cm = make_clustered(4)
        work = prepared(daxpy())
        cluster_of = {o: 0 for o in work.op_ids}
        moved, _pins = insert_moves(work, cm, cluster_of)
        assert moved.n_ops == work.n_ops

    def test_schedule_with_moves_is_ring_legal(self):
        cm = make_clustered(6)
        work = prepared(wide_independent(), 2)
        res = schedule_with_moves(work, cm)
        res.schedule.validate(cm.cluster.fus.as_dict(), adjacency=cm)

    def test_moves_never_worse_than_many_clusters_strict(self):
        """With moves available the scheduler handles loops the strict
        ring rejects at low II; II(with moves) <= II(ring-only)."""
        cm = make_clustered(6)
        work = prepared(dot_product(), 6)
        strict = partitioned_schedule(work, cm)
        relaxed = schedule_with_moves(work, cm)
        assert relaxed.schedule.ii <= strict.ii + 1  # moves cost resources


class TestFailureModes:
    def test_max_ii_exhaustion(self):
        cm = make_clustered(2)
        work = prepared(wide_independent())
        with pytest.raises(SchedulingError):
            partitioned_schedule(work, cm,
                                 config=PartitionConfig(max_ii=1))

"""Stress/regression tests for the partitioner's backtracking machinery.

The deterministic affinity heuristic used to livelock on recurrence
chains spanning many clusters (op A evicts neighbour B, B re-places and
evicts A, forever): these tests pin the deadlock-aging fix with the exact
family of loops that exposed it -- unrolled accumulators whose carried
chain must snake around the whole ring.
"""

import pytest

from repro.ir.copyins import insert_copies
from repro.ir.unroll import unroll
from repro.machine.cluster import make_clustered
from repro.sched.mii import mii
from repro.sched.partition import PartitionConfig, partitioned_schedule
from repro.workloads.kernels import dot_product, prefix_sum, state_update


@pytest.mark.parametrize("n_clusters", [4, 5, 6])
@pytest.mark.parametrize("factor", [4, 6, 8])
def test_unrolled_accumulator_chain(n_clusters, factor):
    """The original livelock case: dot product unrolled to a rotation
    chain as long as (or longer than) the ring."""
    cm = make_clustered(n_clusters)
    work = insert_copies(unroll(dot_product(), factor)).ddg
    s = partitioned_schedule(work, cm)
    s.validate(cm.cluster.fus.as_dict(), adjacency=cm)
    # the accumulator chain bounds II at `factor` adds on shared units;
    # the partitioner must land within one cycle of the machine-wide MII
    assert s.ii <= max(mii(work, cm), factor) + 1


@pytest.mark.parametrize("factor", [4, 6])
def test_unrolled_scan_with_stores(factor):
    """prefix sum adds a store (and hence a copy on the carried value)
    per unroll copy -- more eviction pressure."""
    cm = make_clustered(6)
    work = insert_copies(unroll(prefix_sum(), factor)).ddg
    s = partitioned_schedule(work, cm)
    s.validate(cm.cluster.fus.as_dict(), adjacency=cm)


def test_mutual_recurrence_across_ring():
    """Two mutually-recurrent state variables, unrolled: cross edges in
    both directions every copy."""
    cm = make_clustered(5)
    work = insert_copies(unroll(state_update(), 5)).ddg
    s = partitioned_schedule(work, cm)
    s.validate(cm.cluster.fus.as_dict(), adjacency=cm)


def test_budget_stays_bounded():
    """The aging fix must converge quickly, not just eventually: the
    original livelock burned the full budget at every II."""
    cm = make_clustered(6)
    work = insert_copies(unroll(dot_product(), 6)).ddg
    s = partitioned_schedule(work, cm)
    # one or two II attempts, a bounded number of evictions
    assert s.stats.iis_tried <= 3
    assert s.stats.evictions <= 8 * work.n_ops


def test_all_registered_engines_survive_stress():
    from repro.sched.partitioners import available_partitioners
    cm = make_clustered(6)
    work = insert_copies(unroll(dot_product(), 6)).ddg
    for engine in available_partitioners():
        s = partitioned_schedule(
            work, cm, config=PartitionConfig(partitioner=engine))
        s.validate(cm.cluster.fus.as_dict(), adjacency=cm)

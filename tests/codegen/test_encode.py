"""Tests for queue-operand instruction encoding."""

import pytest

from repro.codegen.encode import (check_instruction_format, encode_schedule,
                                  render_assembly)
from repro.ir.copyins import insert_copies
from repro.machine.cluster import make_clustered
from repro.machine.presets import qrf_machine
from repro.regalloc.queues import allocate_for_schedule
from repro.sched.ims import modulo_schedule
from repro.sched.partition import partitioned_schedule
from repro.workloads.kernels import all_kernels, daxpy, norm2


def compiled(ddg, n_fus=4):
    m = qrf_machine(n_fus)
    s = modulo_schedule(insert_copies(ddg).ddg, m)
    return s, allocate_for_schedule(s)


class TestEncode:
    def test_every_op_encoded(self):
        s, usage = compiled(daxpy())
        encoded = encode_schedule(s, usage)
        assert len(encoded) == s.n_ops

    def test_sources_match_producers(self):
        s, usage = compiled(daxpy())
        by_id = {e.op_id: e for e in encode_schedule(s, usage)}
        for op_id in s.ddg.op_ids:
            n_prod = len(s.ddg.producers(op_id))
            enc = by_id[op_id]
            real_srcs = [x for x in enc.sources if x is not None]
            assert len(real_srcs) == n_prod

    def test_live_in_marked_imm(self):
        # daxpy's mul has one DATA producer (x) and the invariant a
        s, usage = compiled(daxpy())
        by_name = {s.ddg.op(e.op_id).name: e
                   for e in encode_schedule(s, usage)}
        loads = [e for name, e in by_name.items() if name in ("x", "y")]
        for e in loads:
            assert e.sources == (None,)   # address from induction var

    def test_format_limits_hold_for_all_kernels(self):
        for ddg in all_kernels():
            s, usage = compiled(ddg, 6)
            encoded = encode_schedule(s, usage)
            check_instruction_format(encoded)

    def test_copy_writes_two_queues(self):
        s, usage = compiled(norm2())   # x*x -> one copy
        copies = [e for e in encode_schedule(s, usage)
                  if e.mnemonic == "copy"]
        assert copies
        assert all(1 <= len(c.dests) <= 2 for c in copies)

    def test_format_violation_detected(self):
        s, usage = compiled(daxpy())
        encoded = encode_schedule(s, usage)
        with pytest.raises(AssertionError, match="reads"):
            check_instruction_format(encoded, max_sources=0)

    def test_clustered_encoding_uses_ring_refs(self):
        cm = make_clustered(4)
        from repro.ir.unroll import unroll
        work = insert_copies(unroll(daxpy(), 4)).ddg
        s = partitioned_schedule(work, cm)
        usage = allocate_for_schedule(s, cm)
        encoded = encode_schedule(s, usage)
        locs = {ref.location.kind.value
                for e in encoded for ref in e.dests}
        assert "private" in locs

    def test_render_assembly(self):
        s, usage = compiled(daxpy())
        text = render_assembly(s, usage)
        assert "; kernel II=" in text
        assert "row 0:" in text
        assert "->" in text

"""Unit tests for VLIW code expansion."""

import pytest

from repro.ir.copyins import insert_copies
from repro.machine.cluster import make_clustered
from repro.machine.presets import qrf_machine
from repro.codegen.vliw import (SlotConflictError, expand_program,
                                issue_counts, render_program)
from repro.sched.ims import modulo_schedule
from repro.sched.partition import partitioned_schedule
from repro.sched.schedule import ModuloSchedule
from repro.workloads.kernels import daxpy, fir4


def daxpy_schedule():
    m = qrf_machine(4)
    return modulo_schedule(insert_copies(daxpy()).ddg, m), m


class TestExpand:
    def test_total_issues(self):
        s, m = daxpy_schedule()
        words = expand_program(s, m.fus.as_dict(), iterations=6)
        assert sum(issue_counts(words)) == 6 * s.n_ops

    def test_length(self):
        s, m = daxpy_schedule()
        words = expand_program(s, m.fus.as_dict(), iterations=6)
        assert len(words) == s.max_time + 5 * s.ii + 1

    def test_no_slot_reuse_within_cycle(self):
        s, m = daxpy_schedule()
        for w in expand_program(s, m.fus.as_dict(), iterations=5):
            assert len(w.slots) == len(set(w.slots))

    def test_unit_indices_below_capacity(self):
        s, m = daxpy_schedule()
        caps = m.fus.as_dict()
        for w in expand_program(s, caps, iterations=5):
            for slot in w.slots:
                assert slot.unit < caps[slot.pool]

    def test_conflict_detected(self):
        from repro.ir.builder import chain
        ddg = chain("c", ["add", "add"])
        # hand-build an over-subscribed schedule: 2 adds same cycle, 1 unit
        bad = ModuloSchedule(ddg=ddg, ii=1, sigma={0: 0, 1: 0})
        from repro.ir.operations import FuType
        with pytest.raises(SlotConflictError):
            expand_program(bad, {FuType.ADD: 1}, iterations=1)

    def test_bad_iterations(self):
        s, m = daxpy_schedule()
        with pytest.raises(ValueError):
            expand_program(s, m.fus.as_dict(), iterations=0)

    def test_clustered_slots_tagged(self):
        cm = make_clustered(4)
        work = insert_copies(fir4()).ddg
        s = partitioned_schedule(work, cm)
        words = expand_program(s, cm.cluster.fus.as_dict(), iterations=4)
        clusters = {slot.cluster for w in words for slot in w.slots}
        assert clusters <= set(range(4))
        assert len(clusters) >= 2


class TestRender:
    def test_render_program_limit(self):
        s, m = daxpy_schedule()
        words = expand_program(s, m.fus.as_dict(), iterations=4)
        text = render_program(s, words, limit=3)
        assert "more cycles" in text

    def test_word_render_contains_label(self):
        s, m = daxpy_schedule()
        words = expand_program(s, m.fus.as_dict(), iterations=2)
        assert any("[0]" in w.render(s) for w in words)

"""Unit tests for prologue/kernel/epilogue decomposition."""

import pytest

from repro.ir.copyins import insert_copies
from repro.machine.presets import qrf_machine
from repro.codegen.kernel import kernel_is_periodic, split_phases
from repro.sched.ims import modulo_schedule
from repro.workloads.kernels import all_kernels, daxpy, tridiagonal


def sched_for(ddg, n_fus=4):
    m = qrf_machine(n_fus)
    return modulo_schedule(insert_copies(ddg).ddg, m), m


class TestSplitPhases:
    def test_phase_lengths(self):
        s, m = sched_for(daxpy())
        code = split_phases(s, m.fus.as_dict(), iterations=10)
        assert len(code.prologue) == (s.stage_count - 1) * s.ii
        assert len(code.kernel) == s.ii
        assert code.kernel_repeats == 10 - s.stage_count + 1
        assert code.total_cycles == s.cycles_for(10)

    def test_kernel_issues_whole_body(self):
        s, m = sched_for(daxpy())
        code = split_phases(s, m.fus.as_dict(), iterations=10)
        issued = sum(w.n_issued for w in code.kernel)
        assert issued == s.n_ops

    def test_kernel_fraction_grows_with_iterations(self):
        s, m = sched_for(tridiagonal())
        f_small = split_phases(s, m.fus.as_dict(), 8).kernel_fraction()
        f_large = split_phases(s, m.fus.as_dict(), 80).kernel_fraction()
        assert f_large > f_small

    def test_too_few_iterations(self):
        s, m = sched_for(daxpy())
        with pytest.raises(ValueError, match="steady state"):
            split_phases(s, m.fus.as_dict(), iterations=1)

    def test_phase_of_cycle(self):
        s, m = sched_for(daxpy())
        code = split_phases(s, m.fus.as_dict(), iterations=10)
        assert code.phase_of_cycle(0) in ("prologue", "kernel")
        assert code.phase_of_cycle(code.total_cycles - 1) == "epilogue" \
            or s.stage_count == 1


class TestPeriodicity:
    def test_every_kernel_is_periodic(self):
        m = qrf_machine(6)
        for ddg in all_kernels():
            s = modulo_schedule(insert_copies(ddg).ddg, m)
            iters = s.stage_count + 4
            assert kernel_is_periodic(s, m.fus.as_dict(), iters), ddg.name

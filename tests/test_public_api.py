"""The README's public API surface must exist and work as documented."""

import repro


def test_version():
    assert repro.__version__


def test_all_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_quickstart_snippet():
    # the exact flow the package docstring/README shows
    result = repro.run_pipeline(repro.daxpy_example(),
                                repro.qrf_machine(4), iterations=16)
    assert result.schedule.ii == 2
    text = result.schedule.render()
    assert "II=2" in text


def test_clustered_flow():
    ddg = repro.unroll(repro.daxpy_example(), 4)
    work = repro.insert_copies(ddg).ddg
    sched = repro.partitioned_schedule(work, repro.clustered_machine(4))
    usage = repro.allocate_for_schedule(sched, repro.clustered_machine(4))
    rep = repro.simulate(sched, usage, iterations=12)
    assert rep.reads_checked > 0


def test_mii_exports():
    assert repro.mii(repro.daxpy_example(), repro.qrf_machine(4)) == 2

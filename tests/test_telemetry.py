"""Unit tests for the benchmark perf-telemetry layer (benchmarks/telemetry.py)."""

import json
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent.parent / "benchmarks"))
import telemetry  # noqa: E402


@pytest.fixture()
def bench_dir(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_BENCH_DIR", str(tmp_path))
    return tmp_path


def test_write_bench_json_shape(bench_dir):
    path = telemetry.write_bench_json(
        "demo", 1.23456, corpus_size=190, metrics={"hit_rate": 0.9})
    assert path == bench_dir / "BENCH_demo.json"
    rec = json.loads(path.read_text())
    assert rec["name"] == "demo"
    assert rec["wall_s"] == 1.2346
    assert rec["corpus_size"] == 190
    assert rec["metrics"] == {"hit_rate": 0.9}
    assert rec["schema"] == telemetry.SCHEMA_VERSION
    assert "timestamp" in rec
    prov = rec["provenance"]
    assert set(prov) == {"git_sha", "host", "python", "kernels"}
    assert len(prov["host"]) == 12
    assert prov["python"].count(".") == 2
    from repro.kernels import BACKENDS
    assert prov["kernels"] in BACKENDS


def test_provenance_git_sha_env_override(bench_dir, monkeypatch):
    monkeypatch.setattr(telemetry, "_PROVENANCE", None)
    monkeypatch.setenv("REPRO_GIT_SHA", "cafe123")
    assert telemetry.provenance()["git_sha"] == "cafe123"
    monkeypatch.setattr(telemetry, "_PROVENANCE", None)


def _baseline(tmp_path, benches):
    p = tmp_path / "baseline.json"
    p.write_text(json.dumps({"schema": 1, "benches": benches}))
    return p


def test_check_passes_within_tolerance(bench_dir, tmp_path):
    r = telemetry.write_bench_json("fast", 1.0)
    base = _baseline(tmp_path, {"fast": {"wall_s": 0.9}})
    report, failures = telemetry.check_against_baseline(
        [r], telemetry.load_baseline(base), tolerance=1.3)
    assert not failures
    assert any("ok" in line for line in report)


def test_check_fails_beyond_tolerance(bench_dir, tmp_path):
    r = telemetry.write_bench_json("slow", 2.0)
    base = _baseline(tmp_path, {"slow": {"wall_s": 1.0}})
    _report, failures = telemetry.check_against_baseline(
        [r], telemetry.load_baseline(base), tolerance=1.3)
    assert len(failures) == 1
    assert "REGRESSION" in failures[0]


def test_check_per_entry_tolerance_overrides(bench_dir, tmp_path):
    r = telemetry.write_bench_json("loose", 2.0)
    base = _baseline(tmp_path, {"loose": {"wall_s": 1.0, "tolerance": 2.5}})
    _report, failures = telemetry.check_against_baseline(
        [r], telemetry.load_baseline(base), tolerance=1.3)
    assert not failures


def test_unbaselined_record_reports_but_never_fails(bench_dir, tmp_path):
    r = telemetry.write_bench_json("newbench", 99.0)
    base = _baseline(tmp_path, {})
    report, failures = telemetry.check_against_baseline(
        [r], telemetry.load_baseline(base))
    assert not failures
    assert any("no baseline entry" in line for line in report)


def test_update_folds_records_and_keeps_others(bench_dir, tmp_path):
    r = telemetry.write_bench_json("fresh", 3.0)
    base = _baseline(tmp_path, {"old": {"wall_s": 7.0}})
    data = telemetry.update_baseline([r], base)
    assert data["benches"]["fresh"]["wall_s"] == 3.0
    assert data["benches"]["old"]["wall_s"] == 7.0
    # persisted
    assert json.loads(base.read_text())["benches"]["fresh"]["wall_s"] == 3.0


def test_cli_check_exit_codes(bench_dir, tmp_path, capsys):
    r = telemetry.write_bench_json("cli", 1.0)
    good = _baseline(tmp_path, {"cli": {"wall_s": 1.0}})
    assert telemetry.main(
        ["check", str(r), "--baseline", str(good)]) == 0
    bad = _baseline(tmp_path, {"cli": {"wall_s": 0.1}})
    assert telemetry.main(
        ["check", str(r), "--baseline", str(bad)]) == 1
    capsys.readouterr()


def test_real_baseline_is_wellformed():
    base = telemetry.load_baseline(telemetry.DEFAULT_BASELINE)
    assert "fig6_partition" in base["benches"]
    assert "scheduler_compare" in base["benches"]
    for entry in base["benches"].values():
        assert entry["wall_s"] > 0

#!/usr/bin/env python
"""Reproduce every figure of the paper on a corpus sample.

Runs the drivers behind Figs. 3/4/6/8/9 and the Section 2/4 text numbers
on a subsample of the synthetic corpus (pass ``--full`` for all 1258 loops;
expect a long run) and prints the paper's reported values next to ours.

Run:  python examples/reproduce_paper.py [--sample N] [--full] [--sweep]
"""

import argparse

from repro.analysis import (fig3_queue_requirements, fig4_unroll_speedup,
                            fig6_ii_variation, fig8_ipc, sec2_copy_impact,
                            sec4_cluster_queues)
from repro.workloads.corpus import bench_corpus, corpus_stats, paper_corpus

PAPER_NOTES = {
    "fig3": "paper: most loops schedulable within 32 queues",
    "sec2": "paper: ~95% of loops keep the same II after copy insertion",
    "fig4": "paper: a considerable fraction achieves II_speedup > 1,"
            " growing with machine width",
    "fig6": "paper: 95% / 84% / 52% keep the single-cluster II",
    "sec4": "paper: 8 private + 8 ring queues per direction suffice",
    "fig8": "paper: IPC grows with FUs; clustered slightly below single;"
            " dynamic below static",
}


def main() -> None:
    ap = argparse.ArgumentParser()
    ap.add_argument("--sample", type=int, default=120)
    ap.add_argument("--full", action="store_true")
    ap.add_argument("--sweep", action="store_true",
                    help="include the (slow) Fig. 8 IPC sweep")
    args = ap.parse_args()

    loops = paper_corpus() if args.full else bench_corpus(args.sample)
    print(f"corpus: {corpus_stats(loops).render()}\n")

    sections = [
        ("fig3", lambda: fig3_queue_requirements(loops)),
        ("sec2", lambda: sec2_copy_impact(loops)),
        ("fig4", lambda: fig4_unroll_speedup(loops)),
        ("fig6", lambda: fig6_ii_variation(loops)),
        ("sec4", lambda: sec4_cluster_queues(loops)),
    ]
    if args.sweep:
        sections.append(("fig8", lambda: fig8_ipc(loops)))

    for key, run in sections:
        print("=" * 72)
        print(run().render())
        print(f"[{PAPER_NOTES[key]}]\n")


if __name__ == "__main__":
    main()

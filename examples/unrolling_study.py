#!/usr/bin/env python
"""Section 3 in miniature: when does loop unrolling pay off?

For a set of kernels on the 12-FU machine, compares the rolled schedule
against the automatically-chosen unroll factor and reports the paper's
``II_speedup`` metric (Eq. 1, per original iteration), plus the price in
queues -- the trade-off Fig. 4 and the Section 3 text quantify.

Run:  python examples/unrolling_study.py
"""

from repro import qrf_machine
from repro.ir import insert_copies, select_unroll_factor, unroll, ii_speedup
from repro.regalloc import allocate_for_schedule
from repro.sched import modulo_schedule
from repro.workloads.kernels import (daxpy, dot_product, fir4, stencil3,
                                     tridiagonal, vector_scale)


def study(ddg, machine):
    fu_counts = {t: machine.capacity(t)
                 for t in machine.fus.counts}
    choice = select_unroll_factor(ddg, fu_counts)

    rolled = modulo_schedule(insert_copies(ddg).ddg, machine)
    rolled_q = allocate_for_schedule(rolled).total_queues

    if choice.factor == 1:
        return (ddg.name, rolled.ii, 1, rolled.ii, 1.0, rolled_q, rolled_q,
                choice.rec_frac)

    work = insert_copies(unroll(ddg, choice.factor)).ddg
    unrolled = modulo_schedule(work, machine)
    unrolled_q = allocate_for_schedule(unrolled).total_queues
    spd = ii_speedup(rolled.ii, unrolled.ii, choice.factor)
    return (ddg.name, rolled.ii, choice.factor, unrolled.ii, spd,
            rolled_q, unrolled_q, choice.rec_frac)


def main() -> None:
    machine = qrf_machine(12)
    print(f"machine: {machine.describe()}\n")
    print(f"{'loop':<10} {'II':>4} {'U':>3} {'II_u':>5} {'speedup':>8} "
          f"{'queues':>7} {'queues_u':>9}  note")
    for factory in (daxpy, vector_scale, dot_product, fir4, stencil3,
                    tridiagonal):
        name, ii1, u, ii_u, spd, q1, qu, rec = study(factory(), machine)
        note = ""
        if rec > 0 and u == 1:
            note = "recurrence-bound: unrolling cannot help"
        elif spd > 1:
            note = "resource rounding recovered"
        print(f"{name:<10} {ii1:>4} {u:>3} {ii_u:>5} {spd:>8.2f} "
              f"{q1:>7} {qu:>9}  {note}")

    print("\nThe streaming loops trade a moderate queue increase for a "
          "faster kernel;\nthe recurrence-bound ones (tridiag) are capped "
          "by RecMII and stay rolled.")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Quickstart: software-pipeline one loop onto a queue-register-file VLIW.

Walks the full paper pipeline on daxpy (``y[i] = a*x[i] + y[i]``):

1. build the loop's data-dependence graph,
2. compute the initiation-interval lower bounds (ResMII / RecMII),
3. modulo-schedule with Rau's IMS,
4. allocate queue register files with the Q-Compatibility test,
5. expand the VLIW code and execute it on the token simulator, verifying
   every operand delivery.

Run:  python examples/quickstart.py
"""

from repro import qrf_machine
from repro.codegen import expand_program, render_program, split_phases
from repro.ir import LoopBuilder, insert_copies
from repro.regalloc import allocate_for_schedule
from repro.sched import mii_report, modulo_schedule
from repro.sim import simulate


def build_daxpy():
    """y[i] = a * x[i] + y[i]  (a is a loop invariant)."""
    b = LoopBuilder("daxpy", trip_count=1000)
    x = b.load("x")
    y = b.load("y")
    ax = b.mul("ax", x)
    s = b.add("s", ax, y)
    b.store("st", s)
    return b.build()


def main() -> None:
    ddg = build_daxpy()
    machine = qrf_machine(4)   # 2x L/S + 1x ADD + 1x MUL + 2 copy units

    print("== loop ==")
    print(ddg.summary())

    print("\n== lower bounds ==")
    rep = mii_report(ddg, machine)
    print(f"ResMII={rep.res}  RecMII={rep.rec}  ->  MII={rep.mii}")

    # queue RFs destroy values on read: fan-out > 1 needs copy ops
    work = insert_copies(ddg).ddg

    print("\n== modulo schedule (Rau's IMS) ==")
    sched = modulo_schedule(work, machine)
    print(sched.render())
    print(f"stage count: {sched.stage_count}, "
          f"static IPC: {sched.static_ipc():.2f}")

    print("\n== queue allocation (Theorem 1.1) ==")
    usage = allocate_for_schedule(sched)
    for loc, alloc in usage.by_location.items():
        print(f"{loc.describe()}: {alloc.n_queues} queues, "
              f"depths {alloc.depths}")

    print("\n== VLIW code (first 8 cycles of 6 iterations) ==")
    words = expand_program(sched, machine.fus.as_dict(), iterations=6)
    print(render_program(sched, words, limit=8))
    code = split_phases(sched, machine.fus.as_dict(), iterations=6)
    print(f"prologue {len(code.prologue)} cycles | kernel II={code.ii} "
          f"x{code.kernel_repeats} | epilogue {len(code.epilogue)} cycles")

    print("\n== simulation (token-level verification) ==")
    sim = simulate(sched, usage, iterations=100,
                   capacities=machine.fus.as_dict())
    print(f"{sim.iterations} iterations in {sim.cycles} cycles: "
          f"{sim.ops_executed} ops, {sim.reads_checked} operand reads "
          f"verified, dynamic IPC {sim.dynamic_ipc:.2f}")


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Section 4 in miniature: partition an unrolled loop over a cluster ring.

Takes an 8-lane independent multiply-add loop (the kind of body that
motivates wide machines), unrolls it, inserts copy ops, and schedules it on

* the single-cluster 12-FU machine (no placement constraints), and
* the 4-cluster ring (values may only cross to adjacent clusters),

comparing the achieved II -- the quantity Fig. 6 aggregates over the whole
corpus.  Then it demonstrates the failure mode the paper reports for six
clusters, and the future-work MOVE extension that repairs it.

Run:  python examples/clustered_partitioning.py
"""

from repro import clustered_machine
from repro.ir import insert_copies, unroll
from repro.regalloc import allocate_for_schedule
from repro.sched import (modulo_schedule, partitioned_schedule,
                         schedule_with_moves)
from repro.sim import simulate
from repro.workloads.kernels import wide_independent


def main() -> None:
    ddg = unroll(wide_independent(trip_count=600), 2)
    work = insert_copies(ddg).ddg
    print(f"loop: {work.name}, {work.n_ops} ops after unroll + copies\n")

    cm4 = clustered_machine(4)
    flat = cm4.flattened()

    flat_sched = modulo_schedule(work, flat)
    print(f"single cluster ({flat.n_fus} FUs):   II = {flat_sched.ii}, "
          f"SC = {flat_sched.stage_count}")

    part = partitioned_schedule(work, cm4)
    print(f"4-cluster ring ({cm4.n_fus} FUs):    II = {part.ii}, "
          f"SC = {part.stage_count}")
    spread = {c: sum(1 for v in part.cluster_of.values() if v == c)
              for c in range(cm4.n_clusters)}
    print(f"ops per cluster: {spread}")

    # where do values physically live?
    usage = allocate_for_schedule(part, cm4)
    print("\nqueue sets used:")
    for loc, alloc in usage.by_location.items():
        print(f"  {loc.describe():>14}: {alloc.n_queues} queues "
              f"(max depth {alloc.max_depth})")
    ok = usage.fits_budget(cm4.queue_budget.private,
                           cm4.queue_budget.ring_out_cw)
    print(f"fits the paper's 8+8+8 per-cluster budget: {ok}")

    # execute on the simulator: adjacency, FIFO order, ports all checked
    sim = simulate(part, usage, iterations=16,
                   capacities=cm4.cluster.fus.as_dict())
    print(f"\nsimulated 16 iterations: {sim.reads_checked} reads verified,"
          f" dynamic IPC {sim.dynamic_ipc:.2f}")

    # --- six clusters: the ring starts to bite (Fig. 6's 52 %) ---------
    cm6 = clustered_machine(6)
    flat6 = modulo_schedule(work, cm6.flattened())
    strict6 = partitioned_schedule(work, cm6)
    moved6 = schedule_with_moves(work, cm6)
    print(f"\n6 clusters ({cm6.n_fus} FUs):")
    print(f"  single cluster     II = {flat6.ii}")
    print(f"  ring only          II = {strict6.ii}")
    print(f"  with MOVE ops      II = {moved6.schedule.ii} "
          f"({moved6.n_moves} moves inserted)")


if __name__ == "__main__":
    main()

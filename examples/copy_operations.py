#!/usr/bin/env python
"""Section 2 in miniature: why queue register files need copy operations.

A queue read is destructive, so a value with several consumers must be
replicated into several queues by a dedicated copy unit (1 read, 2 writes).
This example shows the DDG rewrite on a loop with fan-out, compares the
three fan-out tree strategies, and demonstrates the one case where copies
genuinely cost performance: a recurrence circuit whose producer feeds extra
consumers (the store in a prefix sum).

Run:  python examples/copy_operations.py
"""

from repro import qrf_machine
from repro.ir import LoopBuilder, insert_copies
from repro.sched import mii_report, modulo_schedule
from repro.sim import run_pipeline


def fanout_loop(n: int):
    """One loaded value consumed by n independent add/store lanes."""
    b = LoopBuilder(f"fan{n}", trip_count=200)
    v = b.load("v")
    for i in range(n):
        b.store(f"st{i}", b.add(f"a{i}", v))
    return b.build()


def prefix_sum():
    """s[i] = s[i-1] + x[i], stored every iteration: the accumulator value
    has fan-out 2 (the store and its own next iteration)."""
    b = LoopBuilder("scan", trip_count=500)
    x = b.load("x")
    s = b.add("s", x)
    b.store("st", s)
    b.carry(s, s, distance=1)
    return b.build()


def main() -> None:
    machine = qrf_machine(6)

    print("== fan-out 5: one value, five consumers ==")
    ddg = fanout_loop(5)
    for strategy in ("chain", "balanced", "slack"):
        res = insert_copies(ddg, strategy=strategy)
        sched = modulo_schedule(res.ddg, machine)
        print(f"  {strategy:<9}: {res.n_copies} copies, "
              f"max tree depth {res.max_depth}, II={sched.ii}, "
              f"SC={sched.stage_count}")

    print("\n== the copy tree in the rewritten DDG (slack strategy) ==")
    res = insert_copies(ddg)
    print(res.ddg.summary())

    print("\n== copies on a recurrence circuit ==")
    scan = prefix_sum()
    before = mii_report(scan, machine)
    after = mii_report(insert_copies(scan).ddg, machine)
    print(f"prefix sum RecMII: {before.rec} -> {after.rec} "
          f"(the carried value must pass through one copy: the producer "
          f"has a single queue write port)")

    print("\n== end-to-end check ==")
    result = run_pipeline(scan, machine, iterations=50)
    print(f"II={result.ii}, {result.n_copies} copy, "
          f"{result.total_queues} queues, "
          f"{result.sim.reads_checked} reads verified")


if __name__ == "__main__":
    main()

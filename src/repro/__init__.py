"""repro -- reproduction of *Partitioned Schedules for Clustered VLIW
Architectures* (Fernandes, Llosa & Topham, IPPS/SPDP 1998).

A software-pipelining compiler backend for clustered VLIW machines with
queue register files:

* :mod:`repro.ir`       -- loop DDGs, unrolling, copy insertion;
* :mod:`repro.machine`  -- single-cluster and ring-clustered machines;
* :mod:`repro.sched`    -- MII bounds, pluggable scheduling engines
  (Rau's IMS, Llosa's SMS), the cluster partitioner;
* :mod:`repro.regalloc` -- Q-compatibility queue allocation, MaxLive;
* :mod:`repro.codegen`  -- VLIW words, prologue/kernel/epilogue;
* :mod:`repro.sim`      -- token-level simulator and end-to-end checker;
* :mod:`repro.workloads`-- classic kernels + the synthetic corpus;
* :mod:`repro.analysis` -- drivers for every figure of the paper;
* :mod:`repro.runner`   -- parallel sweep runner + content-addressed
  result cache behind every experiment driver (``--jobs N``).

Quickstart::

    from repro import daxpy_example, qrf_machine, run_pipeline
    result = run_pipeline(daxpy_example(), qrf_machine(4), iterations=16)
    print(result.schedule.render())
"""

from repro.ir import (Ddg, DepKind, FuType, LoopBuilder, Opcode, Operation,
                      insert_copies, select_unroll_factor, unroll,
                      validate_ddg)
from repro.machine import (ClusteredMachine, Machine, RfKind,
                           clustered_machine, crf_machine, make_clustered,
                           make_machine, qrf_machine)
from repro.regalloc import (allocate_for_schedule, allocate_queues,
                            q_compatible, register_requirement)
from repro.sched import (ModuloSchedule, SchedulingError,
                         available_partitioners, available_schedulers,
                         get_partitioner, get_scheduler, mii,
                         mii_report, modulo_schedule, partitioned_schedule,
                         schedule_with_moves, sms_schedule)
from repro.sim import PipelineResult, SimulationError, run_pipeline, simulate
from repro.workloads import (KERNELS, SynthConfig, all_kernels, bench_corpus,
                             corpus_stats, kernel, paper_corpus)
from repro.workloads.kernels import daxpy as daxpy_example

__version__ = "1.0.0"

__all__ = [
    "Ddg", "DepKind", "FuType", "LoopBuilder", "Opcode", "Operation",
    "insert_copies", "select_unroll_factor", "unroll", "validate_ddg",
    "ClusteredMachine", "Machine", "RfKind", "clustered_machine",
    "crf_machine", "make_clustered", "make_machine", "qrf_machine",
    "allocate_for_schedule", "allocate_queues", "q_compatible",
    "register_requirement",
    "ModuloSchedule", "SchedulingError", "available_partitioners",
    "available_schedulers", "get_partitioner", "get_scheduler", "mii",
    "mii_report", "modulo_schedule",
    "partitioned_schedule", "schedule_with_moves", "sms_schedule",
    "PipelineResult", "SimulationError", "run_pipeline", "simulate",
    "KERNELS", "SynthConfig", "all_kernels", "bench_corpus",
    "corpus_stats", "kernel", "paper_corpus", "daxpy_example",
    "__version__",
]

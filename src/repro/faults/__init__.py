"""Seeded, deterministic fault injection for the sweep fabric.

The runner and the service recover from worker crashes, torn cache
writes and slow batches -- but none of those happen on a developer
laptop, so the recovery paths would rot untested.  This package turns
infrastructure faults into a *reproducible input*: a
:class:`FaultPlan` names the injection sites threaded through the hot
seams and decides, deterministically, which operations fail.

Design rules (mirroring the tracer, :mod:`repro.obs.trace`):

* **one process-global plan** -- :func:`fault_point` is a single
  ``is None`` test when injection is disabled, so production paths pay
  nothing;
* **stateless draws** -- whether a site fires for a given operation is
  a pure function ``hash(seed, site, kind, token) < rate`` of the plan
  seed and a caller-supplied token (the job fingerprint, the cache
  key...).  There is no RNG stream to advance, so the verdicts do not
  depend on scheduling order: the same seed injects the same faults
  into the same jobs whether the sweep runs serially, over 2 workers
  or over 16, which is what makes chaos runs replayable;
* **fork-friendly** -- worker processes inherit the parent's plan
  through ``fork`` (and through ``REPRO_FAULTS`` in the environment
  otherwise), so worker-side sites fire without any per-task plumbing.

Spec grammar (also the ``REPRO_FAULTS`` format)::

    seed=7;pool.worker=crash:0.05,hang:0.02:2.0;cache.put=torn:0.25

i.e. ``;``-separated assignments; ``seed`` and ``ledger`` are reserved
keys, everything else is ``site=kind:rate[:arg],...``.  See
:data:`SITES` for the site/kind catalogue and DESIGN §5.10 for how the
supervision layers respond to each kind.
"""

from .plan import (CRASH_EXIT_STATUS, FAULTS_ENV, FaultError, FaultPlan,
                   FaultSpec, SITES, active_plan, disable_faults,
                   enable_faults, fault_counters, fault_point,
                   faults_enabled, on_job_execute, read_ledger,
                   torn_payload)

__all__ = [
    "CRASH_EXIT_STATUS", "FAULTS_ENV", "FaultError", "FaultPlan",
    "FaultSpec", "SITES", "active_plan", "disable_faults",
    "enable_faults", "fault_counters", "fault_point", "faults_enabled",
    "on_job_execute", "read_ledger", "torn_payload",
]

"""The fault plan: spec parsing, deterministic draws, injection helpers.

Everything here is parent- and worker-side at once: the module-global
plan is installed either by :func:`enable_faults` (tests, the CLI
``--faults`` flag) or from the ``REPRO_FAULTS`` environment variable at
import time (the daemon smoke jobs, spawned worker processes on
platforms without ``fork``).
"""

from __future__ import annotations

import hashlib
import os
import threading
import time
from dataclasses import dataclass
from typing import Optional

from repro.obs.trace import trace_count

#: Environment variable carrying a plan spec (see :func:`FaultPlan.from_spec`).
FAULTS_ENV = "REPRO_FAULTS"

#: The injection-site catalogue: site name -> kinds it understands.
#: ``raise`` throws :class:`FaultError`, ``crash`` hard-kills the worker
#: process (``os._exit``), ``hang`` / ``slow`` sleep for ``arg`` seconds
#: (watchdog fodder vs. jitter), ``torn`` truncates a write payload.
SITES: dict[str, tuple[str, ...]] = {
    "pool.worker": ("crash", "hang", "slow"),      # worker task entry
    "job.execute": ("raise", "slow"),              # inside execute_job
    "cache.get": ("raise",),                       # cache lookup I/O
    "cache.put": ("raise", "torn"),                # cache store I/O
    "service.batch": ("raise",),                   # micro-batch dispatch
    "daemon.request": ("raise",),                  # HTTP request handling
}

#: Exit status of a ``crash``-killed worker (distinctive in pool logs).
CRASH_EXIT_STATUS = 70

_DEFAULT_HANG_S = 30.0
_DEFAULT_SLOW_S = 0.05


class FaultError(RuntimeError):
    """An injected fault (the ``raise`` kind) -- never a real failure."""

    def __init__(self, site: str, token: str) -> None:
        super().__init__(f"injected fault at {site} (token {token[:16]})")
        self.site = site
        self.token = token


@dataclass(frozen=True)
class FaultSpec:
    """One armed fault kind at one site: fire with ``rate`` probability.

    ``arg`` parameterises the kind (sleep seconds for ``hang``/``slow``,
    unused otherwise).
    """

    kind: str
    rate: float
    arg: Optional[float] = None

    def render(self) -> str:
        if self.arg is None:
            return f"{self.kind}:{self.rate:g}"
        return f"{self.kind}:{self.rate:g}:{self.arg:g}"


def _draw_unit(seed: int, site: str, kind: str, token: str) -> float:
    """Uniform [0, 1) draw, a pure function of its arguments."""
    digest = hashlib.sha256(
        f"{seed}|{site}|{kind}|{token}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / 2.0 ** 64


class FaultPlan:
    """A seeded set of armed injection sites plus fired-fault counters."""

    def __init__(self, seed: int = 0,
                 sites: Optional[dict[str, tuple[FaultSpec, ...]]] = None,
                 ledger: Optional[str] = None) -> None:
        self.seed = seed
        self.sites: dict[str, tuple[FaultSpec, ...]] = {}
        self.ledger = ledger
        self._mutex = threading.Lock()
        self._fired: dict[str, int] = {}
        for site, specs in (sites or {}).items():
            kinds = SITES.get(site)
            if kinds is None:
                raise ValueError(f"unknown fault site {site!r}; known: "
                                 f"{', '.join(sorted(SITES))}")
            for spec in specs:
                if spec.kind not in kinds:
                    raise ValueError(
                        f"site {site!r} does not understand kind "
                        f"{spec.kind!r}; it understands: "
                        f"{', '.join(kinds)}")
                if not 0.0 <= spec.rate <= 1.0:
                    raise ValueError(f"fault rate must be in [0, 1], "
                                     f"not {spec.rate!r}")
            self.sites[site] = tuple(specs)

    # -------------------------------------------------------------- spec

    @classmethod
    def from_spec(cls, text: str) -> "FaultPlan":
        """Parse ``seed=7;site=kind:rate[:arg],...;ledger=/path``."""
        seed = 0
        ledger: Optional[str] = None
        sites: dict[str, tuple[FaultSpec, ...]] = {}
        for clause in text.split(";"):
            clause = clause.strip()
            if not clause:
                continue
            name, sep, value = clause.partition("=")
            name = name.strip()
            if not sep:
                raise ValueError(f"bad fault clause {clause!r}; "
                                 f"expected name=value")
            if name == "seed":
                try:
                    seed = int(value)
                except ValueError:
                    raise ValueError(
                        f"fault seed must be an int, not {value!r}"
                    ) from None
                continue
            if name == "ledger":
                ledger = value.strip()
                continue
            specs: list[FaultSpec] = []
            for part in value.split(","):
                fields = part.strip().split(":")
                if len(fields) not in (2, 3):
                    raise ValueError(
                        f"bad fault spec {part!r} for site {name!r}; "
                        f"expected kind:rate[:arg]")
                try:
                    rate = float(fields[1])
                    arg = float(fields[2]) if len(fields) == 3 else None
                except ValueError:
                    raise ValueError(
                        f"bad numeric field in fault spec {part!r}"
                    ) from None
                specs.append(FaultSpec(fields[0], rate, arg))
            sites[name] = tuple(specs)
        return cls(seed=seed, sites=sites, ledger=ledger)

    def spec(self) -> str:
        """Round-trippable spec text (what ``REPRO_FAULTS`` carries)."""
        clauses = [f"seed={self.seed}"]
        for site in sorted(self.sites):
            armed = ",".join(s.render() for s in self.sites[site])
            clauses.append(f"{site}={armed}")
        if self.ledger:
            clauses.append(f"ledger={self.ledger}")
        return ";".join(clauses)

    # -------------------------------------------------------------- draws

    def draw(self, site: str, token: str) -> Optional[FaultSpec]:
        """The armed fault that fires at *site* for *token*, if any.

        Deterministic: a pure function of ``(seed, site, kind, token)``,
        independent of call order, thread or process.  Fired faults are
        counted (per ``site.kind``) for ``/metrics``.
        """
        for spec in self.sites.get(site, ()):
            if _draw_unit(self.seed, site, spec.kind, token) < spec.rate:
                with self._mutex:
                    name = f"{site}.{spec.kind}"
                    self._fired[name] = self._fired.get(name, 0) + 1
                return spec
        return None

    def counters(self) -> dict[str, int]:
        with self._mutex:
            return dict(self._fired)


# ---------------------------------------------------------------------------
# the process-global plan
# ---------------------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None


def enable_faults(plan: "FaultPlan | str") -> FaultPlan:
    """Install *plan* (an instance or a spec string) process-globally.

    Also mirrors the spec into ``REPRO_FAULTS`` so worker processes
    started under non-``fork`` methods see the same plan.
    """
    global _PLAN
    if isinstance(plan, str):
        plan = FaultPlan.from_spec(plan)
    _PLAN = plan
    os.environ[FAULTS_ENV] = plan.spec()
    return plan


def disable_faults() -> None:
    """Remove the global plan; every site reverts to a cheap no-op."""
    global _PLAN
    _PLAN = None
    os.environ.pop(FAULTS_ENV, None)


def faults_enabled() -> bool:
    return _PLAN is not None


def active_plan() -> Optional[FaultPlan]:
    return _PLAN


def fault_counters() -> dict[str, int]:
    """Fired-fault counters of the active plan (empty when disabled)."""
    return {} if _PLAN is None else _PLAN.counters()


# ---------------------------------------------------------------------------
# injection helpers (the only calls production code makes)
# ---------------------------------------------------------------------------

def fault_point(site: str, token: str) -> Optional[str]:
    """Maybe inject a control-flow fault at *site* for *token*.

    No-op (one ``is None`` test) when injection is disabled.  Returns
    the fired kind for callers that want to log it; ``raise`` raises
    :class:`FaultError`, ``crash`` never returns.
    """
    plan = _PLAN
    if plan is None:
        return None
    spec = plan.draw(site, token)
    if spec is None:
        return None
    trace_count(f"faults.{site}.{spec.kind}")
    if spec.kind == "raise":
        raise FaultError(site, token)
    if spec.kind == "crash":
        os._exit(CRASH_EXIT_STATUS)
    if spec.kind == "hang":
        time.sleep(spec.arg if spec.arg is not None else _DEFAULT_HANG_S)
    elif spec.kind == "slow":
        time.sleep(spec.arg if spec.arg is not None else _DEFAULT_SLOW_S)
    return spec.kind


def torn_payload(site: str, token: str, payload: str) -> str:
    """Maybe truncate a write *payload* (the ``torn`` kind) at *site*.

    Models a writer dying mid-``write``: the returned text is cut inside
    its final record and does not end on a line boundary, which is
    exactly the corruption the cache loaders must isolate and count.
    """
    plan = _PLAN
    if plan is None:
        return payload
    spec = plan.draw(site, token)
    if spec is None or spec.kind != "torn":
        return payload
    trace_count(f"faults.{site}.torn")
    cut = max(1, (2 * len(payload)) // 3)
    torn = payload[:cut].rstrip("\n")
    return torn or payload[:1]


def on_job_execute(key: str) -> None:
    """Record one execution attempt of job *key* in the plan's ledger.

    The ledger is an append-only line-per-attempt file shared by every
    process in the storm (``O_APPEND`` keeps short writes atomic on
    POSIX); the chaos suite reads it back to prove no job ran more than
    ``1 + retries`` times.  No-op without a plan or a ledger path.
    """
    plan = _PLAN
    if plan is None or not plan.ledger:
        return
    try:
        fd = os.open(plan.ledger,
                     os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            os.write(fd, (key + "\n").encode("ascii"))
        finally:
            os.close(fd)
    except OSError:  # a lost ledger line must never fail a sweep
        pass


def read_ledger(path: str) -> dict[str, int]:
    """Execution-attempt counts per job key from a ledger file."""
    counts: dict[str, int] = {}
    try:
        with open(path, "r", encoding="ascii") as fh:
            for line in fh:
                key = line.strip()
                if key:
                    counts[key] = counts.get(key, 0) + 1
    except OSError:
        pass
    return counts


# arm from the environment at import: the daemon CI job exports
# REPRO_FAULTS before starting the process, and spawned (non-fork)
# workers re-import this module with the variable inherited
_spec = os.environ.get(FAULTS_ENV)
if _spec:
    try:
        _PLAN = FaultPlan.from_spec(_spec)
    except ValueError as exc:  # pragma: no cover - operator typo
        raise SystemExit(f"repro-vliw: bad {FAULTS_ENV} spec: {exc}")
del _spec

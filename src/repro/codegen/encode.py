"""Queue-operand instruction encoding ("assembly" level).

The paper notes that one advantage of simultaneous-write avoidance is a
simpler instruction format: with copy ops, every operation names at most
one destination queue (copies: two) and one queue per source operand.
This module produces that final form: each scheduled op becomes an
:class:`EncodedOp` whose operands are *queue references* resolved from the
allocation -- the artefact an assembler for this machine would consume.

Live-in operands (no producing DATA edge, e.g. loop invariants) read from
the constant/scalar file, encoded as ``imm``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.regalloc.lifetimes import Location

if TYPE_CHECKING:  # pragma: no cover
    from repro.regalloc.queues import ScheduleQueueUsage
    from repro.sched.schedule import ModuloSchedule


@dataclass(frozen=True)
class QueueRef:
    """One queue operand: the location (private/ring set) and index."""

    location: Location
    index: int

    def render(self) -> str:
        return f"{self.location.describe()}#{self.index}"


@dataclass(frozen=True)
class EncodedOp:
    """One op of the kernel in its final, queue-addressed form."""

    op_id: int
    mnemonic: str
    cluster: int
    row: int                  # modulo row (cycle % II)
    stage: int
    sources: tuple[Optional[QueueRef], ...]   # None == live-in / imm
    dests: tuple[QueueRef, ...]

    def render(self) -> str:
        srcs = ", ".join(s.render() if s else "imm" for s in self.sources)
        dsts = ", ".join(d.render() for d in self.dests)
        core = f"{self.mnemonic}"
        if srcs:
            core += f" {srcs}"
        if dsts:
            core += f" -> {dsts}"
        return (f"c{self.cluster} row{self.row} s{self.stage}: {core}")


def encode_schedule(sched: "ModuloSchedule",
                    usage: "ScheduleQueueUsage") -> list[EncodedOp]:
    """Resolve every op's operands to queue references.

    Raises ``KeyError`` if the allocation does not cover some DATA edge
    (callers should allocate with
    :func:`repro.regalloc.queues.allocate_for_schedule` first).
    """
    edge_to_ref: dict[tuple[int, int, int], QueueRef] = {}
    for loc, alloc in usage.by_location.items():
        for key, qidx in alloc.assignment().items():
            edge_to_ref[key] = QueueRef(loc, qidx)

    encoded: list[EncodedOp] = []
    ddg = sched.ddg
    for op_id in ddg.op_ids:
        op = ddg.op(op_id)
        sources: list[Optional[QueueRef]] = []
        for e in ddg.producers(op_id):
            sources.append(edge_to_ref[(e.src, e.dst, e.key)])
        if not sources:
            # live-in operand: loop invariant or induction-variable
            # address, served by the scalar/constant file, not a queue
            sources.append(None)
        dests = tuple(edge_to_ref[(e.src, e.dst, e.key)]
                      for e in ddg.consumers(op_id))
        encoded.append(EncodedOp(
            op_id=op_id,
            mnemonic=op.opcode.mnemonic,
            cluster=sched.cluster_of.get(op_id, 0),
            row=sched.row_of(op_id),
            stage=sched.stage_of(op_id),
            sources=tuple(sources),
            dests=dests,
        ))
    return encoded


def check_instruction_format(encoded: list[EncodedOp], *,
                             max_dests_regular: int = 1,
                             max_dests_copy: int = 2,
                             max_sources: int = 2) -> None:
    """Assert the hardware's instruction-format limits (paper Section 2):
    regular FUs write one queue, the copy unit two; at most two source
    queues per op (binary operations)."""
    for e in encoded:
        limit = max_dests_copy if e.mnemonic == "copy" else \
            max_dests_regular
        if len(e.dests) > limit:
            raise AssertionError(
                f"{e.mnemonic} op {e.op_id} writes {len(e.dests)} queues "
                f"(format allows {limit})")
        if len(e.sources) > max_sources:
            raise AssertionError(
                f"{e.mnemonic} op {e.op_id} reads {len(e.sources)} queues "
                f"(format allows {max_sources})")


def render_assembly(sched: "ModuloSchedule",
                    usage: "ScheduleQueueUsage") -> str:
    """Kernel 'assembly' listing: rows x encoded ops."""
    encoded = encode_schedule(sched, usage)
    by_row: dict[int, list[EncodedOp]] = {}
    for e in encoded:
        by_row.setdefault(e.row, []).append(e)
    lines = [f"; kernel II={sched.ii} SC={sched.stage_count}"]
    for row in range(sched.ii):
        lines.append(f"row {row}:")
        for e in sorted(by_row.get(row, []),
                        key=lambda x: (x.cluster, x.op_id)):
            lines.append(f"    {e.render()}")
    return "\n".join(lines)

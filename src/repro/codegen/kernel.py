"""Prologue / kernel / epilogue decomposition of a modulo-scheduled loop.

A modulo schedule with stage count SC executes N iterations in
``(N + SC - 1) * II`` cycles: the first ``(SC - 1) * II`` cycles ramp the
pipeline up (prologue), the last ``(SC - 1) * II`` drain it (epilogue), and
the middle is ``N - SC + 1`` repetitions of a steady-state *kernel* of II
cycles in which every op of the loop body issues exactly once.  Section 2
of the paper leans on this structure: "code execution at full performance
occurs at the kernel stage, which accounts for the largest share of the
total execution time".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.ir.operations import FuType

from .vliw import VliwWord, expand_program

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.schedule import ModuloSchedule


@dataclass
class LoopCode:
    """The three phases of an expanded software-pipelined loop."""

    ii: int
    stage_count: int
    iterations: int
    prologue: list[VliwWord]
    kernel: list[VliwWord]       # one steady-state II window
    kernel_repeats: int
    epilogue: list[VliwWord]

    @property
    def total_cycles(self) -> int:
        return (len(self.prologue) + self.kernel_repeats * self.ii
                + len(self.epilogue))

    @property
    def kernel_cycles(self) -> int:
        return self.kernel_repeats * self.ii

    def kernel_fraction(self) -> float:
        """Share of execution spent at full performance."""
        total = self.total_cycles
        return self.kernel_cycles / total if total else 0.0

    def phase_of_cycle(self, t: int) -> str:
        if t < len(self.prologue):
            return "prologue"
        if t < len(self.prologue) + self.kernel_cycles:
            return "kernel"
        return "epilogue"


def split_phases(sched: "ModuloSchedule",
                 capacities: dict[FuType, int],
                 iterations: int) -> LoopCode:
    """Expand and split a schedule; *iterations* must cover the pipeline
    (``>= stage_count``) so a steady state exists."""
    sc = sched.stage_count
    if iterations < sc:
        raise ValueError(
            f"need >= {sc} iterations for a steady state, got {iterations}")
    words = expand_program(sched, capacities, iterations)
    ramp = (sc - 1) * sched.ii
    prologue = words[:ramp]
    kernel = words[ramp:ramp + sched.ii]
    kernel_repeats = iterations - sc + 1
    epilogue = words[ramp + kernel_repeats * sched.ii:]
    return LoopCode(
        ii=sched.ii, stage_count=sc, iterations=iterations,
        prologue=prologue, kernel=kernel, kernel_repeats=kernel_repeats,
        epilogue=epilogue)


def kernel_is_periodic(sched: "ModuloSchedule",
                       capacities: dict[FuType, int],
                       iterations: int) -> bool:
    """Every kernel window issues the same (op, row) pattern -- a sanity
    property tests assert on all schedules."""
    code = split_phases(sched, capacities, iterations)
    words = expand_program(sched, capacities, iterations)
    ramp = len(code.prologue)

    def pattern(start: int) -> list[set[tuple[int, int]]]:
        out = []
        for row in range(sched.ii):
            w = words[start + row]
            out.append({(s.cluster, inst.op_id)
                        for s, inst in w.slots.items()})
        return out

    first = pattern(ramp)
    for rep in range(1, code.kernel_repeats):
        if pattern(ramp + rep * sched.ii) != first:
            return False
    return True

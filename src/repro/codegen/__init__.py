"""VLIW code expansion: instruction words and pipeline phases."""

from .encode import (EncodedOp, QueueRef, check_instruction_format,
                     encode_schedule, render_assembly)
from .kernel import LoopCode, kernel_is_periodic, split_phases
from .vliw import (OpInstance, Slot, SlotConflictError, VliwWord,
                   expand_program, issue_counts, render_program)

__all__ = [
    "EncodedOp", "QueueRef", "check_instruction_format",
    "encode_schedule", "render_assembly",
    "LoopCode", "kernel_is_periodic", "split_phases",
    "OpInstance", "Slot", "SlotConflictError", "VliwWord",
    "expand_program", "issue_counts", "render_program",
]

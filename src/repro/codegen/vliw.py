"""Explicit VLIW code: instruction words with per-unit slots.

A modulo schedule is an implicit program; this module expands it into the
explicit very long instruction words a VLIW machine would fetch -- one word
per cycle, one slot per functional unit (per cluster).  Used by the
examples/CLI for display and by tests to assert that no two ops ever share
a unit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.ir.operations import FuType
from repro.machine.resources import pool_for

if TYPE_CHECKING:  # pragma: no cover
    from repro.sched.schedule import ModuloSchedule


@dataclass(frozen=True)
class OpInstance:
    """One dynamic execution of an op: (op, iteration)."""

    op_id: int
    iteration: int

    def label(self, sched: "ModuloSchedule") -> str:
        return f"{sched.ddg.op(self.op_id).name}[{self.iteration}]"


@dataclass(frozen=True)
class Slot:
    """A unit of the machine: (cluster, pool, unit index within pool)."""

    cluster: int
    pool: FuType
    unit: int


@dataclass
class VliwWord:
    """All ops issued in one cycle."""

    cycle: int
    slots: dict[Slot, OpInstance] = field(default_factory=dict)

    @property
    def n_issued(self) -> int:
        return len(self.slots)

    def render(self, sched: "ModuloSchedule") -> str:
        parts = [
            f"c{s.cluster}.{s.pool.value}{s.unit}={inst.label(sched)}"
            for s, inst in sorted(
                self.slots.items(),
                key=lambda kv: (kv[0].cluster, kv[0].pool.name, kv[0].unit))
        ]
        return f"{self.cycle:5d}: " + "  ".join(parts) if parts else \
            f"{self.cycle:5d}: (nop)"


class SlotConflictError(RuntimeError):
    """More ops issued to a pool in one cycle than it has units."""


def expand_program(sched: "ModuloSchedule",
                   capacities: dict[FuType, int],
                   iterations: int) -> list[VliwWord]:
    """Expand *iterations* iterations of the schedule into VLIW words.

    *capacities* are per-cluster pool sizes.  Units within a pool are
    assigned in deterministic (op id) order each cycle; overflow raises
    :class:`SlotConflictError` (a correct schedule never overflows).
    """
    if iterations < 1:
        raise ValueError("iterations must be >= 1")
    total_cycles = sched.max_time + (iterations - 1) * sched.ii + 1
    words = [VliwWord(cycle=t) for t in range(total_cycles)]

    # group issues per (cycle, cluster, pool)
    per_cp: dict[tuple[int, int, FuType], list[OpInstance]] = {}
    for op_id, t0 in sorted(sched.sigma.items()):
        pool = pool_for(sched.ddg.op(op_id).fu_type)
        cl = sched.cluster_of.get(op_id, 0)
        for k in range(iterations):
            t = t0 + k * sched.ii
            per_cp.setdefault((t, cl, pool), []).append(
                OpInstance(op_id, k))

    for (t, cl, pool), instances in per_cp.items():
        cap = capacities.get(pool, 0)
        if len(instances) > cap:
            raise SlotConflictError(
                f"cycle {t}, cluster {cl}: {len(instances)} ops on "
                f"{pool.value} (capacity {cap})")
        for unit, inst in enumerate(
                sorted(instances, key=lambda i: i.op_id)):
            words[t].slots[Slot(cl, pool, unit)] = inst
    return words


def issue_counts(words: list[VliwWord]) -> list[int]:
    """Ops issued per cycle (the raw series behind IPC plots)."""
    return [w.n_issued for w in words]


def render_program(sched: "ModuloSchedule", words: list[VliwWord],
                   *, limit: Optional[int] = None) -> str:
    shown = words if limit is None else words[:limit]
    lines = [w.render(sched) for w in shown]
    if limit is not None and len(words) > limit:
        lines.append(f"... ({len(words) - limit} more cycles)")
    return "\n".join(lines)

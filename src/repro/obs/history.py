"""The perf observatory's data layer: bench history + regression tests.

``BENCH_<name>.json`` records (one per benchmark per run, schema 1 or 2)
are flattened into rows keyed by ``(bench, metric, git_sha, timestamp)``
and appended to a JSONL history file -- CI appends its fresh perf-smoke
records every run, so the file accumulates the repo's performance
trajectory across commits.

On top of the rows sit per-metric trend statistics
(:func:`trend_stats`) and the statistical regression gate
(:func:`detect_regressions`): the newest value of each gated metric is
compared against the trailing window of its history with a robust
median + MAD z-score.  Short history and zero-variance series fall back
to the fixed-ratio test the 1.3x baseline gate already uses, so the
statistical gate is never *weaker* than the historical one -- it only
gets sharper as history accumulates.
"""

from __future__ import annotations

import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

#: Default trailing-window length for the robust test.
DEFAULT_WINDOW = 10

#: Minimum prior observations before MAD statistics apply; below this the
#: fixed-ratio fallback gates instead.
MIN_HISTORY = 4

#: Robust z-score threshold (0.6745 * (x - median) / MAD ~ N(0,1)).
DEFAULT_Z_THRESHOLD = 3.5

#: Fixed-ratio fallback (and the floor under the z-test: a statistically
#: significant but sub-5% drift is reported, never failed).
DEFAULT_RATIO = 1.3
SLOWDOWN_FLOOR = 1.05

#: Metrics gated for regressions: wall time plus anything that is
#: explicitly a duration.  Other metrics get trend statistics only --
#: their "good" direction is not knowable here.
GATED_METRICS = ("wall_s",)


def _flatten(metrics: dict, prefix: str = "") -> Iterable[tuple[str, float]]:
    for key, value in metrics.items():
        name = f"{prefix}{key}"
        if isinstance(value, bool):
            continue
        if isinstance(value, (int, float)) and math.isfinite(value):
            yield name, float(value)
        elif isinstance(value, dict):
            yield from _flatten(value, f"{name}.")


def rows_from_record(record: dict, *,
                     git_sha: Optional[str] = None) -> list[dict]:
    """Flatten one telemetry record into history rows.

    Works on schema-1 records (no provenance block) and schema-2 ones
    (``git_sha`` comes from ``record["provenance"]``); the *git_sha*
    argument overrides both.  Rows carry the kernel backend the record
    was measured under (``provenance["kernels"]``); records predating
    the backend field were measured by the pure-Python loops, so they
    default to ``python``.
    """
    provenance = record.get("provenance") or {}
    sha = git_sha or provenance.get("git_sha") or "unknown"
    backend = provenance.get("kernels") or "python"
    ts = record.get("timestamp") or ""
    bench = record.get("name") or "unknown"
    rows = []
    metrics = {"wall_s": record.get("wall_s")}
    metrics.update(record.get("metrics") or {})
    for metric, value in _flatten(metrics):
        rows.append({"bench": bench, "metric": metric, "value": value,
                     "git_sha": sha, "timestamp": ts,
                     "backend": backend})
    return rows


def rows_from_files(paths: Iterable["pathlib.Path | str"], *,
                    git_sha: Optional[str] = None) -> list[dict]:
    rows: list[dict] = []
    for path in sorted(map(str, paths)):
        try:
            record = json.loads(pathlib.Path(path).read_text())
        except (OSError, ValueError):
            continue
        rows.extend(rows_from_record(record, git_sha=git_sha))
    return rows


class BenchHistory:
    """Append-only JSONL history of benchmark metric rows."""

    def __init__(self, path: "pathlib.Path | str") -> None:
        self.path = pathlib.Path(path)

    def append(self, rows: Sequence[dict]) -> int:
        """Append *rows*, skipping exact (bench, metric, git_sha,
        timestamp, backend) duplicates already present; returns rows
        written."""
        def _ident(r: dict) -> tuple:
            return (r["bench"], r["metric"], r["git_sha"],
                    r["timestamp"], r.get("backend") or "python")

        seen = {_ident(r) for r in self.load()}
        fresh = [r for r in rows if _ident(r) not in seen]
        if fresh:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with self.path.open("a") as fh:
                for row in fresh:
                    fh.write(json.dumps(row, sort_keys=True) + "\n")
        return len(fresh)

    def load(self) -> list[dict]:
        """Every well-formed row, in file order (corrupt lines skipped)."""
        if not self.path.exists():
            return []
        rows = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except ValueError:
                continue
            if isinstance(row, dict) and "bench" in row and "metric" in row:
                rows.append(row)
        return rows

    def series(self) -> dict[tuple[str, str], list[dict]]:
        """Rows grouped by ``(bench, metric)``, ordered by timestamp."""
        out: dict[tuple[str, str], list[dict]] = {}
        for row in self.load():
            out.setdefault((row["bench"], row["metric"]), []).append(row)
        for rows in out.values():
            rows.sort(key=lambda r: r.get("timestamp") or "")
        return out


# ---------------------------------------------------------------------------
# trend statistics + the regression gate
# ---------------------------------------------------------------------------

@dataclass
class TrendStat:
    """Trend verdict for one (bench, metric) against its history."""

    bench: str
    metric: str
    latest: Optional[float]
    n_history: int
    backend: str = "python"
    median: Optional[float] = None
    mad: Optional[float] = None
    z: Optional[float] = None
    ratio: Optional[float] = None
    verdict: str = "ok"          # ok | regression | missing | no-history
    test: str = "none"           # mad-z | ratio | none
    history: list[float] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return self.verdict == "regression"

    def describe(self) -> str:
        if self.verdict == "missing":
            return (f"{self.bench}/{self.metric}: MISSING from the newest "
                    f"record ({self.n_history} historical runs have it)")
        if self.verdict == "no-history":
            return (f"{self.bench}/{self.metric}: {self.latest:.4g} "
                    f"(no history yet)")
        detail = f"latest {self.latest:.4g} vs median {self.median:.4g}"
        if self.test == "mad-z":
            detail += f", robust z {self.z:.2f}"
        elif self.ratio is not None:
            detail += f", ratio {self.ratio:.2f}x"
        tag = "REGRESSION" if self.regressed else "ok"
        return (f"{self.bench}/{self.metric}: {detail} "
                f"[{self.test}, n={self.n_history}, "
                f"{self.backend}] -- {tag}")


def _median(values: Sequence[float]) -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def robust_stats(values: Sequence[float]) -> tuple[float, float]:
    """``(median, MAD)`` of *values* (MAD = median absolute deviation)."""
    med = _median(values)
    mad = _median([abs(v - med) for v in values])
    return med, mad


def evaluate_metric(history: Sequence[float], latest: Optional[float], *,
                    bench: str, metric: str,
                    window: int = DEFAULT_WINDOW,
                    z_threshold: float = DEFAULT_Z_THRESHOLD,
                    ratio: float = DEFAULT_RATIO) -> TrendStat:
    """Gate one metric's newest value against its trailing history.

    Decision ladder (higher value = worse, callers only gate durations):

    1. *latest* is ``None`` -> ``missing`` (flagged, but distinct from a
       measured regression).
    2. no history -> ``no-history`` (never fails: a brand-new benchmark
       must not need same-change history edits, mirroring the baseline
       gate's behaviour for unknown records).
    3. fewer than :data:`MIN_HISTORY` points, or MAD == 0 (zero-variance
       series) -> fixed-ratio test against the median.
    4. otherwise -> robust z-score over the trailing *window*, with the
       :data:`SLOWDOWN_FLOOR` guard so microsecond-tight series cannot
       fail on drift too small to matter.
    """
    tail = list(history)[-window:]
    stat = TrendStat(bench=bench, metric=metric, latest=latest,
                     n_history=len(tail), history=tail)
    if latest is None:
        stat.verdict = "missing"
        return stat
    if not tail:
        stat.verdict = "no-history"
        return stat
    med, mad = robust_stats(tail)
    stat.median, stat.mad = med, mad
    stat.ratio = (latest / med) if med > 0 else None
    if len(tail) < MIN_HISTORY or mad == 0.0:
        stat.test = "ratio"
        if med > 0 and latest > med * ratio:
            stat.verdict = "regression"
        return stat
    stat.test = "mad-z"
    stat.z = 0.6745 * (latest - med) / mad
    if stat.z > z_threshold and med > 0 \
            and latest > med * SLOWDOWN_FLOOR:
        stat.verdict = "regression"
    return stat


def trend_stats(history: BenchHistory, records: Sequence[dict], *,
                window: int = DEFAULT_WINDOW,
                z_threshold: float = DEFAULT_Z_THRESHOLD,
                ratio: float = DEFAULT_RATIO) -> list[TrendStat]:
    """One :class:`TrendStat` per gated metric per newest record.

    *records* are the freshly produced telemetry records (the run under
    test); rows already in *history* with the same (bench, git_sha,
    timestamp) identity are excluded from the comparison window, so
    appending before gating does not let a run vouch for itself.

    The comparison window is restricted to rows measured under the same
    kernel backend as the record under test: a numpy-backed run is
    gated against numpy history only (and vice versa), so switching
    backends can never trip -- or mask -- the MAD gate by mixing two
    different performance regimes into one series.
    """
    series = history.series()
    stats: list[TrendStat] = []
    for record in sorted(records, key=lambda r: r.get("name") or ""):
        bench = record.get("name") or "unknown"
        backend = (record.get("provenance") or {}).get("kernels") \
            or "python"
        newest = rows_from_record(record)
        newest_ids = {(r["git_sha"], r["timestamp"]) for r in newest}
        latest_by_metric = {r["metric"]: r["value"] for r in newest}
        gated = [m for m in GATED_METRICS]
        # historical gated metrics missing from the newest record are a
        # telemetry break worth surfacing -- but only ones ever recorded
        for (b, metric), rows in series.items():
            if b == bench and metric in GATED_METRICS \
                    and metric not in latest_by_metric \
                    and metric not in gated:
                gated.append(metric)
        for metric in gated:
            prior = [r["value"]
                     for r in series.get((bench, metric), [])
                     if (r["git_sha"], r["timestamp"]) not in newest_ids
                     and (r.get("backend") or "python") == backend]
            latest = latest_by_metric.get(metric)
            if latest is None and not prior:
                continue
            stat = evaluate_metric(
                prior, latest, bench=bench, metric=metric, window=window,
                z_threshold=z_threshold, ratio=ratio)
            stat.backend = backend
            stats.append(stat)
    return stats


def detect_regressions(history: BenchHistory, records: Sequence[dict],
                       **kwargs) -> list[TrendStat]:
    """The flagged subset of :func:`trend_stats` (regressions and
    missing-metric breaks)."""
    return [s for s in trend_stats(history, records, **kwargs)
            if s.verdict in ("regression", "missing")]

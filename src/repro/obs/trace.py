"""Lightweight span/counter tracing for the compile pipeline.

The tracer answers "where inside a compile does the time go" -- II-search
attempts vs. placement rounds vs. copy insertion vs. queue allocation --
without perturbing the numbers it measures:

* **Spans** -- ``with span("pipeline.schedule"):`` times a stage on the
  monotonic clock and folds it into a per-stage aggregate (count, total,
  min, max, log-spaced latency histogram).  Spans nest freely; stages are
  attributed by name, so a nested span never corrupts its parent's
  accounting.
* **Counters** -- ``trace_count("sched.ii_rejected")`` for events with no
  duration (accepted/rejected attempts, evictions, cache hits).
* **Disabled path** -- tracing is *off* unless ``REPRO_TRACE=1`` or
  :func:`enable_tracing` ran.  ``span()`` then returns one shared no-op
  context manager and ``trace_count`` returns immediately: the hot
  control paths pay a single flag test (the perf-smoke gate holds the
  overhead under its 1.3x budget, and the acceptance bar is <= 2%).
  Sites inside per-attempt loops additionally guard on
  :func:`tracing_enabled` so the disabled cost is one check per *search*,
  not per probe.
* **Process boundaries** -- pool workers trace into their own
  (copy-on-fork) aggregate; :func:`job_capture` snapshots the delta one
  job contributed, which rides back on ``JobResult.extras["trace"]`` and
  is folded into the parent's aggregate by ``run_jobs`` via
  :func:`merge_job_trace`.  The service's ``/metrics`` histograms are a
  straight export of the parent aggregate.

Aggregation is process-global and lock-protected (the service records
from executor threads); per-event cost while enabled is one
``perf_counter`` pair plus a dict update.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Optional

#: Upper edges of the per-stage latency histogram, seconds (log-spaced);
#: the implicit final bucket is +Inf.  Matches Prometheus ``le`` buckets.
BUCKETS = (0.0001, 0.000316, 0.001, 0.00316, 0.01, 0.0316,
           0.1, 0.316, 1.0, 3.16, 10.0)

_N_BUCKETS = len(BUCKETS) + 1


class _StageStat:
    """Aggregate of every span recorded under one stage name."""

    __slots__ = ("count", "total_s", "min_s", "max_s", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.min_s = float("inf")
        self.max_s = 0.0
        self.buckets = [0] * _N_BUCKETS

    def add(self, elapsed: float) -> None:
        self.count += 1
        self.total_s += elapsed
        if elapsed < self.min_s:
            self.min_s = elapsed
        if elapsed > self.max_s:
            self.max_s = elapsed
        for i, edge in enumerate(BUCKETS):
            if elapsed <= edge:
                self.buckets[i] += 1
                return
        self.buckets[-1] += 1

    def summary(self) -> dict:
        return {"count": self.count, "total_s": round(self.total_s, 6),
                "min_s": round(self.min_s, 6), "max_s": round(self.max_s, 6),
                "buckets": list(self.buckets)}


class Tracer:
    """One process's span/counter aggregate (normally the global one)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.stages: dict[str, _StageStat] = {}
        self.counters: dict[str, int] = {}

    def record(self, name: str, elapsed: float) -> None:
        with self._lock:
            stat = self.stages.get(name)
            if stat is None:
                stat = self.stages[name] = _StageStat()
            stat.add(elapsed)

    def count(self, name: str, n: int = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + n

    def reset(self) -> None:
        with self._lock:
            self.stages.clear()
            self.counters.clear()

    def snapshot(self) -> dict:
        """JSON-shaped aggregate: per-stage stats plus counters."""
        with self._lock:
            return {"stages": {name: stat.summary()
                               for name, stat in self.stages.items()},
                    "counters": dict(self.counters)}

    def merge(self, summary: Optional[dict]) -> None:
        """Fold a :meth:`snapshot`/:func:`job_capture` summary (e.g. one
        shipped back from a pool worker) into this aggregate."""
        if not summary:
            return
        with self._lock:
            for name, s in (summary.get("stages") or {}).items():
                stat = self.stages.get(name)
                if stat is None:
                    stat = self.stages[name] = _StageStat()
                stat.count += int(s.get("count", 0))
                stat.total_s += float(s.get("total_s", 0.0))
                stat.min_s = min(stat.min_s, float(s.get("min_s", "inf")))
                stat.max_s = max(stat.max_s, float(s.get("max_s", 0.0)))
                incoming = s.get("buckets")
                if incoming and len(incoming) == _N_BUCKETS:
                    for i, n in enumerate(incoming):
                        stat.buckets[i] += int(n)
            for name, n in (summary.get("counters") or {}).items():
                self.counters[name] = self.counters.get(name, 0) + int(n)


_TRACER = Tracer()
_ENABLED = os.environ.get("REPRO_TRACE", "") not in ("", "0")


def tracing_enabled() -> bool:
    return _ENABLED


def enable_tracing() -> None:
    global _ENABLED
    _ENABLED = True


def disable_tracing() -> None:
    global _ENABLED
    _ENABLED = False


def reset_tracing() -> None:
    """Clear the aggregate (the enabled flag is untouched)."""
    _TRACER.reset()


def trace_snapshot() -> dict:
    """The process-global aggregate, JSON-shaped."""
    return _TRACER.snapshot()


def merge_job_trace(summary: Optional[dict]) -> None:
    """Fold one job's worker-side trace summary into this process."""
    _TRACER.merge(summary)


def trace_count(name: str, n: int = 1) -> None:
    if _ENABLED:
        _TRACER.count(name, n)


def trace_time(name: str, seconds: float) -> None:
    """Record one pre-measured duration sample.

    For call sites that already hold a ``perf_counter`` delta (e.g. a
    probe wrapper installed only when tracing is on) and cannot use the
    :func:`span` context manager.
    """
    if _ENABLED:
        _TRACER.record(name, seconds)


class _NullSpan:
    """Shared do-nothing context manager: the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    __slots__ = ("name", "_t0")

    def __init__(self, name: str) -> None:
        self.name = name

    def __enter__(self) -> "_Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> bool:
        _TRACER.record(self.name, time.perf_counter() - self._t0)
        return False


def span(name: str):
    """Context manager timing one stage; a shared no-op when disabled."""
    if not _ENABLED:
        return _NULL_SPAN
    return _Span(name)


class _JobCapture:
    """Delta of the aggregate across one job (see :func:`job_capture`)."""

    __slots__ = ("summary", "_before")

    def __init__(self) -> None:
        self.summary: Optional[dict] = None
        self._before: Optional[dict] = None

    def __enter__(self) -> "_JobCapture":
        self._before = _TRACER.snapshot()
        return self

    def __exit__(self, *exc) -> bool:
        after = _TRACER.snapshot()
        before = self._before
        stages = {}
        for name, s in after["stages"].items():
            b = before["stages"].get(name)
            if b is None:
                stages[name] = s
                continue
            count = s["count"] - b["count"]
            if count <= 0:
                continue
            stages[name] = {
                "count": count,
                "total_s": round(s["total_s"] - b["total_s"], 6),
                # min/max are not recoverable from a cumulative snapshot;
                # report the per-job mean bounds conservatively
                "min_s": b["min_s"], "max_s": s["max_s"],
                "buckets": [x - y for x, y
                            in zip(s["buckets"], b["buckets"])],
            }
        counters = {}
        for name, n in after["counters"].items():
            d = n - before["counters"].get(name, 0)
            if d:
                counters[name] = d
        self.summary = {"stages": stages, "counters": counters}
        return False


def job_capture() -> _JobCapture:
    """Capture the trace delta one job contributes (worker side).

    ``with job_capture() as cap: ...`` then ``cap.summary`` is the
    JSON-shaped per-job stage summary that rides on
    ``JobResult.extras["trace"]``.
    """
    return _JobCapture()


def stage_breakdown(snapshot: dict, *, prefix: str = "pipeline.",
                    wall_s: Optional[float] = None) -> str:
    """Render a per-stage breakdown table from a :func:`trace_snapshot`.

    Only stages under *prefix* count toward the coverage line (nested
    spans -- II attempts inside ``pipeline.schedule`` -- would otherwise
    double-count), but every stage is listed.  With *wall_s* the footer
    reports how much of the wall clock the top-level stages cover.
    """
    stages = snapshot.get("stages", {})
    lines = [f"{'stage':<28} {'count':>7} {'total s':>10} {'mean ms':>9}"]
    top_total = 0.0
    for name in sorted(stages):
        s = stages[name]
        mean_ms = 1e3 * s["total_s"] / max(1, s["count"])
        lines.append(f"{name:<28} {s['count']:>7d} {s['total_s']:>10.4f} "
                     f"{mean_ms:>9.3f}")
        if name.startswith(prefix):
            top_total += s["total_s"]
    counters = snapshot.get("counters", {})
    if counters:
        lines.append("")
        lines.append(f"{'counter':<38} {'n':>8}")
        for name in sorted(counters):
            lines.append(f"{name:<38} {counters[name]:>8d}")
    if wall_s is not None and wall_s > 0.0:
        lines.append("")
        lines.append(f"stage sum {top_total:.4f}s over wall {wall_s:.4f}s "
                     f"({100.0 * top_total / wall_s:.1f}% covered)")
    return "\n".join(lines)

"""Observatory rendering: trend tables, the HTML dashboard, /metrics.

Three consumers of the same history data:

* :func:`trend_table` -- the terminal view (``repro-vliw report``): one
  row per gated metric with a unicode sparkline of its trailing window.
* :func:`render_dashboard` -- a self-contained static HTML page (no
  external assets) with one SVG sparkline per benchmark, stat tiles and
  a regression-callout section; CI uploads it as the perf-smoke
  dashboard artifact.
* :func:`prometheus_text` -- the service's ``GET /metrics`` exposition:
  valid Prometheus text format (``# HELP``/``# TYPE`` lines, ``_total``
  counter suffixes, cumulative histogram buckets) over the service,
  cache, pool, arena and per-stage tracing counters.
"""

from __future__ import annotations

import html
import json
from typing import Iterable, Optional, Sequence

from .history import BenchHistory, TrendStat
from .trace import BUCKETS

_SPARK_GLYPHS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], width: int = 16) -> str:
    """Unicode sparkline of the trailing *width* values."""
    tail = list(values)[-width:]
    if not tail:
        return ""
    lo, hi = min(tail), max(tail)
    if hi <= lo:
        return _SPARK_GLYPHS[0] * len(tail)
    scale = (len(_SPARK_GLYPHS) - 1) / (hi - lo)
    return "".join(_SPARK_GLYPHS[int((v - lo) * scale)] for v in tail)


def trend_table(stats: Sequence[TrendStat]) -> str:
    """Render per-metric trend rows (the ``repro-vliw report`` body)."""
    if not stats:
        return "no benchmark records to report on"
    lines = [f"{'benchmark':<28} {'metric':<10} {'kernels':<8} "
             f"{'runs':>4} {'latest':>9} {'median':>9} {'trend':<16} "
             f"verdict"]
    for s in stats:
        latest = "missing" if s.latest is None else f"{s.latest:9.4g}"
        median = "" if s.median is None else f"{s.median:9.4g}"
        verdict = s.verdict.upper() if s.regressed else s.verdict
        if s.test == "mad-z" and s.z is not None:
            verdict += f" (z={s.z:.2f})"
        elif s.test == "ratio" and s.ratio is not None:
            verdict += f" ({s.ratio:.2f}x)"
        lines.append(f"{s.bench:<28} {s.metric:<10} {s.backend:<8} "
                     f"{s.n_history:>4d} "
                     f"{latest:>9} {median:>9} "
                     f"{sparkline(s.history + ([s.latest] if s.latest is not None else [])):<16} "
                     f"{verdict}")
    flagged = [s for s in stats if s.verdict in ("regression", "missing")]
    lines.append("")
    if flagged:
        lines.append(f"{len(flagged)} metric(s) flagged:")
        lines.extend(f"  {s.describe()}" for s in flagged)
    else:
        lines.append("no regressions flagged")
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# HTML dashboard
# ---------------------------------------------------------------------------

def _svg_sparkline(values: Sequence[float], labels: Sequence[str], *,
                   width: int = 220, height: int = 48,
                   flagged: bool = False) -> str:
    """One benchmark's wall-time sparkline as inline SVG.

    Points carry native ``<title>`` tooltips (value + run label); the
    newest point is emphasised, red + ring when flagged.
    """
    if not values:
        return ""
    lo, hi = min(values), max(values)
    span = (hi - lo) or max(hi, 1e-9)
    pad = 6
    n = len(values)
    xs = [pad + (width - 2 * pad) * (i / max(1, n - 1)) for i in range(n)]
    ys = [height - pad - (height - 2 * pad) * ((v - lo) / span)
          for v in values]
    points = " ".join(f"{x:.1f},{y:.1f}" for x, y in zip(xs, ys))
    dots = []
    for i, (x, y, v) in enumerate(zip(xs, ys, values)):
        last = i == n - 1
        cls = "pt-last-bad" if (last and flagged) else (
            "pt-last" if last else "pt")
        r = 4 if last else 2.5
        label = html.escape(labels[i] if i < len(labels) else "")
        dots.append(
            f'<circle class="{cls}" cx="{x:.1f}" cy="{y:.1f}" r="{r}">'
            f"<title>{v:.4g}s {label}</title></circle>")
    line = (f'<polyline class="line" fill="none" points="{points}"/>'
            if n > 1 else "")
    return (f'<svg viewBox="0 0 {width} {height}" width="{width}" '
            f'height="{height}" role="img" '
            f'aria-label="wall-time trend">{line}{"".join(dots)}</svg>')


_DASHBOARD_CSS = """
  .viz-root {
    color-scheme: light;
    --surface-1: #fcfcfb; --surface-2: #f1f0ee;
    --text-primary: #0b0b0b; --text-secondary: #52514e;
    --series-1: #2a78d6; --status-serious: #e34948;
    --grid: #e3e2df;
    font: 14px/1.45 system-ui, sans-serif;
    background: var(--surface-1); color: var(--text-primary);
    margin: 0; padding: 24px;
  }
  @media (prefers-color-scheme: dark) {
    :root:where(:not([data-theme="light"])) .viz-root {
      color-scheme: dark;
      --surface-1: #1a1a19; --surface-2: #242422;
      --text-primary: #ffffff; --text-secondary: #c3c2b7;
      --series-1: #3987e5; --status-serious: #e66767;
      --grid: #3a3a38;
    }
  }
  .viz-root h1 { font-size: 20px; margin: 0 0 4px; }
  .viz-root .sub { color: var(--text-secondary); margin: 0 0 20px; }
  .tiles { display: flex; gap: 12px; flex-wrap: wrap; margin: 0 0 20px; }
  .tile { background: var(--surface-2); border-radius: 8px;
          padding: 10px 16px; min-width: 120px; }
  .tile .v { font-size: 22px; font-weight: 600; }
  .tile .k { color: var(--text-secondary); font-size: 12px; }
  .callouts { border-left: 3px solid var(--status-serious);
              background: var(--surface-2); padding: 10px 14px;
              border-radius: 0 8px 8px 0; margin: 0 0 20px; }
  .callouts .flag { color: var(--status-serious); font-weight: 600; }
  .grid { display: grid; gap: 12px;
          grid-template-columns: repeat(auto-fill, minmax(280px, 1fr)); }
  .card { background: var(--surface-2); border-radius: 8px;
          padding: 12px 14px; }
  .card .name { font-weight: 600; margin-bottom: 2px;
                overflow-wrap: anywhere; }
  .card .meta { color: var(--text-secondary); font-size: 12px;
                margin-bottom: 6px; }
  .card .flag { color: var(--status-serious); font-weight: 600; }
  svg .line { stroke: var(--series-1); stroke-width: 2; }
  svg .pt { fill: var(--series-1); }
  svg .pt-last { fill: var(--series-1); stroke: var(--surface-2);
                 stroke-width: 2; }
  svg .pt-last-bad { fill: var(--status-serious);
                     stroke: var(--surface-2); stroke-width: 2; }
  table { border-collapse: collapse; margin-top: 24px; width: 100%; }
  th, td { text-align: left; padding: 4px 10px;
           border-bottom: 1px solid var(--grid); font-size: 13px; }
  th { color: var(--text-secondary); font-weight: 600; }
  td.num { font-variant-numeric: tabular-nums; }
"""


def render_dashboard(history: BenchHistory, stats: Sequence[TrendStat], *,
                     title: str = "repro-vliw perf observatory") -> str:
    """The static HTML dashboard: tiles, callouts, sparkline cards and a
    full table view of every gated metric."""
    series = history.series()
    by_bench = {s.bench: s for s in stats if s.metric == "wall_s"}
    flagged = [s for s in stats if s.verdict in ("regression", "missing")]

    tiles = [
        ("benchmarks", str(len(by_bench))),
        ("history rows", str(sum(len(v) for v in series.values()))),
        ("flagged", str(len(flagged))),
    ]
    tile_html = "".join(
        f'<div class="tile"><div class="v">{html.escape(v)}</div>'
        f'<div class="k">{html.escape(k)}</div></div>'
        for k, v in tiles)

    if flagged:
        items = "".join(f"<li>{html.escape(s.describe())}</li>"
                        for s in flagged)
        callouts = (f'<div class="callouts"><span class="flag">'
                    f'&#9650; {len(flagged)} flagged</span>'
                    f"<ul>{items}</ul></div>")
    else:
        callouts = ('<div class="callouts" style="border-color:'
                    'var(--grid)">no regressions flagged</div>')

    cards = []
    for bench in sorted(by_bench):
        s = by_bench[bench]
        # the sparkline must stay in one performance regime: only rows
        # measured under the same kernel backend as the gated stat
        rows = [r for r in series.get((bench, "wall_s"), [])
                if (r.get("backend") or "python") == s.backend]
        values = [r["value"] for r in rows]
        labels = [f'{r.get("git_sha", "")} {r.get("timestamp", "")}'
                  for r in rows]
        if s.latest is not None:
            values = values + [s.latest]
            labels = labels + ["latest"]
        meta = ("missing" if s.latest is None
                else f"{s.latest:.4g}s latest")
        if s.median is not None:
            meta += f" &middot; median {s.median:.4g}s"
        flag = ('<span class="flag"> &#9650; regression</span>'
                if s.regressed else
                ('<span class="flag"> &#9650; missing</span>'
                 if s.verdict == "missing" else ""))
        cards.append(
            f'<div class="card"><div class="name">{html.escape(bench)}'
            f'{flag}</div><div class="meta">{meta}</div>'
            f'{_svg_sparkline(values, labels, flagged=s.regressed)}</div>')

    rows_html = []
    for s in stats:
        verdict = s.verdict
        if s.regressed or s.verdict == "missing":
            verdict = f'<span class="flag">&#9650; {s.verdict}</span>'
        rows_html.append(
            "<tr>"
            f"<td>{html.escape(s.bench)}</td>"
            f"<td>{html.escape(s.metric)}</td>"
            f'<td class="num">{s.n_history}</td>'
            f'<td class="num">'
            f'{"" if s.latest is None else f"{s.latest:.4g}"}</td>'
            f'<td class="num">'
            f'{"" if s.median is None else f"{s.median:.4g}"}</td>'
            f"<td>{html.escape(s.test)}</td>"
            f"<td>{verdict}</td></tr>")

    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{html.escape(title)}</title>
<style>{_DASHBOARD_CSS}</style>
</head>
<body class="viz-root">
<h1>{html.escape(title)}</h1>
<p class="sub">wall-time trajectory per benchmark; robust median+MAD
gate with fixed-ratio fallback on short history</p>
<div class="tiles">{tile_html}</div>
{callouts}
<div class="grid">{"".join(cards)}</div>
<table>
<thead><tr><th>benchmark</th><th>metric</th><th>runs</th><th>latest</th>
<th>median</th><th>test</th><th>verdict</th></tr></thead>
<tbody>{"".join(rows_html)}</tbody>
</table>
</body>
</html>
"""


# ---------------------------------------------------------------------------
# Prometheus text exposition
# ---------------------------------------------------------------------------

def _sanitize(name: str) -> str:
    return "".join(c if (c.isalnum() or c == "_") else "_"
                   for c in name)


def _metric(lines: list, name: str, kind: str, help_text: str,
            samples: Iterable[tuple[str, float]]) -> None:
    """Emit one metric family: HELP/TYPE then ``(labels, value)`` rows."""
    lines.append(f"# HELP {name} {help_text}")
    lines.append(f"# TYPE {name} {kind}")
    for labels, value in samples:
        if isinstance(value, float) and value == int(value):
            value = int(value)
        lines.append(f"{name}{labels} {value}")


def prometheus_text(snapshot: dict) -> str:
    """Render a :meth:`SweepService.metrics` snapshot as Prometheus text.

    Counters get the ``_total`` suffix, every family carries HELP/TYPE
    lines, histogram buckets are cumulative with an explicit ``+Inf``
    edge -- the format the service-smoke job (and any real scrape)
    validates.
    """
    lines: list[str] = []
    service = snapshot.get("service") or {}
    _metric(lines, "repro_uptime_seconds", "gauge",
            "Seconds since the service started.",
            [("", float(snapshot.get("uptime_s", 0.0)))])

    kernels = snapshot.get("kernels") or {}
    if kernels.get("active"):
        _metric(lines, "repro_kernels_info", "gauge",
                "Active compute-kernel backend (labels carry the "
                "selection).",
                [(f'{{backend="{_sanitize(str(kernels["active"]))}",'
                  f'requested="{_sanitize(str(kernels.get("requested", "auto")))}"}}',
                  1)])

    service_counters = {
        "requests": "Submit requests received.",
        "jobs": "Job specs received across all requests.",
        "dedup_inflight": "Jobs coalesced onto an in-flight compile.",
        "served_from_cache": "Jobs answered straight from the cache.",
        "compiled": "Jobs that actually compiled.",
        "batches": "Dispatcher micro-batches executed.",
        "batch_jobs": "Jobs across all micro-batches.",
        "shed": "Requests shed on dispatcher queue depth (503).",
        "breaker_rejected": "Requests failed fast by the open breaker.",
        "breaker_trips": "Circuit-breaker transitions to open.",
        "batch_failures": "Micro-batches that failed wholesale.",
        "deadline_exceeded": "Requests past their deadline (504).",
        "cache_errors": "Cache lookups degraded to misses.",
    }
    for key, help_text in service_counters.items():
        _metric(lines, f"repro_service_{key}_total", "counter", help_text,
                [("", float(service.get(key, 0)))])
    _metric(lines, "repro_service_submit_seconds_total", "counter",
            "Cumulative submit latency.",
            [("", float(service.get("submit_s", 0.0)))])
    for key, help_text in (
            ("inflight", "Jobs currently compiling."),
            ("queue_depth", "Jobs waiting for the dispatcher."),
            ("n_workers", "Configured compile worker count.")):
        _metric(lines, f"repro_service_{key}", "gauge", help_text,
                [("", float(service.get(key, 0)))])
    breaker_state = service.get("breaker_state")
    if breaker_state is not None:
        _metric(lines, "repro_service_breaker_state", "gauge",
                "Circuit-breaker state (the label carries it).",
                [(f'{{state="{_sanitize(str(breaker_state))}"}}', 1)])

    cache = snapshot.get("cache")
    if cache:
        backend = _sanitize(str(cache.get("backend", "none")))
        _metric(lines, "repro_cache_info", "gauge",
                "Result-cache backend (label carries the kind).",
                [(f'{{backend="{backend}"}}', 1)])
        for key, help_text in (
                ("hits", "Cache lookups served."),
                ("misses", "Cache lookups that missed."),
                ("stores", "Results written to the cache."),
                ("evictions", "Records evicted by the byte budget."),
                ("compactions", "Shard compaction passes.")):
            if key in cache:
                _metric(lines, f"repro_cache_{key}_total", "counter",
                        help_text, [("", float(cache.get(key, 0)))])
        for key, help_text in (
                ("entries", "Results currently cached."),
                ("bytes", "Bytes on disk across cache shards.")):
            if key in cache:
                _metric(lines, f"repro_cache_{key}", "gauge", help_text,
                        [("", float(cache.get(key, 0)))])

    pool = snapshot.get("pool") or {}
    for key, help_text in (
            ("spawns", "Worker pools (re)created."),
            ("reuses", "run_jobs calls served by a live pool."),
            ("respawns", "Partial recoveries (workers replaced)."),
            ("retries", "Jobs re-dispatched after a failed round."),
            ("quarantines", "Jobs quarantined to the serial path.")):
        samples = [(f'{{workers="{n}"}}', float(c.get(key, 0)))
                   for n, c in sorted(pool.items())]
        if samples:
            _metric(lines, f"repro_pool_{key}_total", "counter",
                    help_text, samples)

    faults = snapshot.get("faults") or {}
    _metric(lines, "repro_faults_enabled", "gauge",
            "Whether a fault-injection plan is armed.",
            [("", 1.0 if faults.get("enabled") else 0.0)])
    injected = faults.get("injected") or {}
    if injected:
        samples = []
        for name in sorted(injected):
            site, _, kind = name.rpartition(".")
            samples.append((f'{{site="{_sanitize(site)}",'
                            f'kind="{_sanitize(kind)}"}}',
                            float(injected[name])))
        _metric(lines, "repro_faults_injected_total", "counter",
                "Deterministically injected faults fired, by site/kind.",
                samples)

    arena = snapshot.get("arena") or {}
    for key, help_text in (
            ("hits", "Scheduling-arena buffers served from the pool."),
            ("allocs", "Scheduling-arena buffers newly allocated."),
            ("resets", "Scheduling attempts begun.")):
        if key in arena:
            _metric(lines, f"repro_arena_{key}_total", "counter",
                    help_text, [("", float(arena.get(key, 0)))])
    if "pooled_mrts" in arena:
        _metric(lines, "repro_arena_pooled_mrts", "gauge",
                "Reservation tables held by the arena pool.",
                [("", float(arena.get("pooled_mrts", 0)))])

    trace = snapshot.get("trace") or {}
    stages = trace.get("stages") or {}
    if stages:
        lines.append("# HELP repro_stage_seconds Per-stage compile "
                     "latency (tracing spans).")
        lines.append("# TYPE repro_stage_seconds histogram")
        for name in sorted(stages):
            s = stages[name]
            stage = _sanitize(name)
            cumulative = 0
            buckets = s.get("buckets") or []
            for edge, count in zip(BUCKETS, buckets):
                cumulative += count
                lines.append(
                    f'repro_stage_seconds_bucket{{stage="{stage}",'
                    f'le="{edge}"}} {cumulative}')
            lines.append(
                f'repro_stage_seconds_bucket{{stage="{stage}",'
                f'le="+Inf"}} {s["count"]}')
            lines.append(f'repro_stage_seconds_sum{{stage="{stage}"}} '
                         f'{s["total_s"]}')
            lines.append(f'repro_stage_seconds_count{{stage="{stage}"}} '
                         f'{s["count"]}')
    counters = trace.get("counters") or {}
    for name in sorted(counters):
        _metric(lines, f"repro_trace_{_sanitize(name)}_total", "counter",
                "Tracing event counter.", [("", float(counters[name]))])
    return "\n".join(lines) + "\n"


def write_json(path, payload: dict) -> None:
    """Small helper: pretty, sorted, trailing newline (repo convention)."""
    import pathlib

    pathlib.Path(path).write_text(
        json.dumps(payload, indent=1, sort_keys=True) + "\n")

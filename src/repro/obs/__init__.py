"""Observability: compile-pipeline tracing and the perf observatory.

Two halves (DESIGN §5.8):

* :mod:`repro.obs.trace` -- a lightweight span/counter tracer threaded
  through the compile pipeline's control paths (front-end stages, II
  search attempts, partitioner placement, pool dispatch, cache
  read-through).  Off by default; the disabled path is a single flag
  check, so the hot loops pay nothing measurable.
* :mod:`repro.obs.history` + :mod:`repro.obs.report` -- the perf
  observatory: ingest ``BENCH_*.json`` telemetry records into an
  append-only JSONL history, compute per-metric trend statistics, flag
  regressions with a robust statistical test (median + MAD z-score,
  falling back to a fixed ratio on short history), and render trend
  tables, a static HTML dashboard and the Prometheus ``/metrics``
  exposition.
"""

from .history import (BenchHistory, TrendStat, detect_regressions,
                      rows_from_record, trend_stats)
from .report import prometheus_text, render_dashboard, trend_table
from .trace import (disable_tracing, enable_tracing, job_capture,
                    merge_job_trace, reset_tracing, span, trace_count,
                    trace_snapshot, tracing_enabled)

__all__ = [
    "BenchHistory", "TrendStat", "detect_regressions", "rows_from_record",
    "trend_stats",
    "prometheus_text", "render_dashboard", "trend_table",
    "disable_tracing", "enable_tracing", "job_capture", "merge_job_trace",
    "reset_tracing", "span", "trace_count", "trace_snapshot",
    "tracing_enabled",
]

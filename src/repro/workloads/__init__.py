"""Workloads: classic kernels and the synthetic Perfect-Club-like corpus."""

from .corpus import (DEFAULT_BENCH_SAMPLE, FULL_CORPUS_ENV, CorpusStats,
                     bench_corpus, corpus, corpus_stats, paper_corpus,
                     resource_constrained)
from .kernels import KERNELS, all_kernels, kernel
from .synth import SynthConfig, generate_corpus, generate_loop

__all__ = [
    "DEFAULT_BENCH_SAMPLE", "FULL_CORPUS_ENV", "CorpusStats",
    "bench_corpus", "corpus", "corpus_stats", "paper_corpus",
    "resource_constrained",
    "KERNELS", "all_kernels", "kernel",
    "SynthConfig", "generate_corpus", "generate_loop",
]

"""Hand-written classic innermost loops.

The paper's corpus is 1258 innermost loops from the Perfect Club benchmark;
these hand-built kernels cover the archetypes that dominate such scientific
code -- streaming (daxpy, scale), reductions (dot, norm), short recurrences
(tridiagonal, IIR, prefix sums), stencils, FIR filters, and mixed bodies --
and serve as readable fixtures for examples and tests.  Each returns a
fresh :class:`~repro.ir.ddg.Ddg`.
"""

from __future__ import annotations

from typing import Callable

from repro.ir.builder import LoopBuilder
from repro.ir.ddg import Ddg


def daxpy(trip_count: int = 1000) -> Ddg:
    """``y[i] = a * x[i] + y[i]`` -- the canonical streaming loop."""
    b = LoopBuilder("daxpy", trip_count)
    x = b.load("x")
    y = b.load("y")
    ax = b.mul("ax", x)          # a is a live-in invariant
    s = b.add("s", ax, y)
    b.store("st", s)
    return b.build()


def dot_product(trip_count: int = 1000) -> Ddg:
    """``acc += x[i] * y[i]`` -- reduction with a 1-cycle recurrence."""
    b = LoopBuilder("dot", trip_count)
    x = b.load("x")
    y = b.load("y")
    p = b.mul("p", x, y)
    acc = b.add("acc", p)
    b.carry(acc, acc, distance=1)
    return b.build()


def vector_scale(trip_count: int = 2000) -> Ddg:
    """``y[i] = a * x[i]`` -- minimal streaming body."""
    b = LoopBuilder("scale", trip_count)
    x = b.load("x")
    ax = b.mul("ax", x)
    b.store("st", ax)
    return b.build()


def vector_add(trip_count: int = 2000) -> Ddg:
    """``z[i] = x[i] + y[i]``."""
    b = LoopBuilder("vadd", trip_count)
    x = b.load("x")
    y = b.load("y")
    s = b.add("s", x, y)
    b.store("st", s)
    return b.build()


def fir4(trip_count: int = 800) -> Ddg:
    """4-tap FIR: ``y[i] = sum_j c_j * x[i - j]`` with reloaded taps."""
    b = LoopBuilder("fir4", trip_count)
    terms = []
    for j in range(4):
        x = b.load(f"x{j}")
        terms.append(b.mul(f"m{j}", x))
    s01 = b.add("s01", terms[0], terms[1])
    s23 = b.add("s23", terms[2], terms[3])
    s = b.add("s", s01, s23)
    b.store("st", s)
    return b.build()


def stencil3(trip_count: int = 500) -> Ddg:
    """3-point stencil ``y[i] = (x[i-1] + x[i] + x[i+1]) * w``."""
    b = LoopBuilder("stencil3", trip_count)
    xm = b.load("xm")
    xc = b.load("xc")
    xp = b.load("xp")
    s1 = b.add("s1", xm, xc)
    s2 = b.add("s2", s1, xp)
    w = b.mul("w", s2)
    b.store("st", w)
    return b.build()


def tridiagonal(trip_count: int = 400) -> Ddg:
    """Livermore kernel 5 shape: ``x[i] = z[i] * (y[i] - x[i-1])`` --
    the classic tight first-order recurrence."""
    b = LoopBuilder("tridiag", trip_count)
    y = b.load("y")
    z = b.load("z")
    d = b.sub("d", y)           # y[i] - x[i-1]; x[i-1] arrives via carry
    x = b.mul("x", z, d)
    b.store("st", x)
    b.carry(x, d, distance=1)
    return b.build()


def iir1(trip_count: int = 600) -> Ddg:
    """First-order IIR filter ``y[i] = a*x[i] + b*y[i-1]``."""
    b = LoopBuilder("iir1", trip_count)
    x = b.load("x")
    ax = b.mul("ax", x)
    by = b.mul("by")            # b * y[i-1], operand via carry
    y = b.add("y", ax, by)
    b.store("st", y)
    b.carry(y, by, distance=1)
    return b.build()


def prefix_sum(trip_count: int = 1000) -> Ddg:
    """``s[i] = s[i-1] + x[i]`` -- store-every-iteration scan."""
    b = LoopBuilder("scan", trip_count)
    x = b.load("x")
    s = b.add("s", x)
    b.store("st", s)
    b.carry(s, s, distance=1)
    return b.build()


def complex_multiply(trip_count: int = 700) -> Ddg:
    """``(cr, ci) = (ar*br - ai*bi, ar*bi + ai*br)`` per element."""
    b = LoopBuilder("cmul", trip_count)
    ar = b.load("ar")
    ai = b.load("ai")
    br = b.load("br")
    bi = b.load("bi")
    t1 = b.mul("t1", ar, br)
    t2 = b.mul("t2", ai, bi)
    t3 = b.mul("t3", ar, bi)
    t4 = b.mul("t4", ai, br)
    cr = b.sub("cr", t1, t2)
    ci = b.add("ci", t3, t4)
    b.store("str", cr)
    b.store("sti", ci)
    return b.build()


def horner4(trip_count: int = 900) -> Ddg:
    """Degree-4 Horner evaluation per element (serial mul/add chain)."""
    b = LoopBuilder("horner4", trip_count)
    x = b.load("x")
    acc = b.mul("h0", x)
    for j in range(1, 4):
        acc = b.add(f"a{j}", acc)
        acc = b.mul(f"h{j}", acc, x)
    b.store("st", acc)
    return b.build()


def norm2(trip_count: int = 1200) -> Ddg:
    """``acc += x[i] * x[i]`` -- reduction with a fan-out-2 operand."""
    b = LoopBuilder("norm2", trip_count)
    x = b.load("x")
    sq = b.mul("sq", x, x)
    acc = b.add("acc", sq)
    b.carry(acc, acc, distance=1)
    return b.build()


def saxpy_interleaved(trip_count: int = 1000) -> Ddg:
    """Two independent daxpy bodies (manually 2-way parallel source)."""
    b = LoopBuilder("saxpy2", trip_count)
    for lane in range(2):
        x = b.load(f"x{lane}")
        y = b.load(f"y{lane}")
        ax = b.mul(f"ax{lane}", x)
        s = b.add(f"s{lane}", ax, y)
        b.store(f"st{lane}", s)
    return b.build()


def matvec_row(trip_count: int = 300) -> Ddg:
    """Inner loop of a dense mat-vec: dot with pointer update."""
    b = LoopBuilder("matvec", trip_count)
    a = b.load("a")
    x = b.load("x")
    p = b.mul("p", a, x)
    acc = b.add("acc", p)
    b.carry(acc, acc, distance=1)
    idx = b.add("idx")           # address update chain
    b.carry(idx, idx, distance=1)
    return b.build()


def hydro1(trip_count: int = 400) -> Ddg:
    """Livermore kernel 1 (hydro fragment):
    ``x[k] = q + y[k]*(r*z[k+10] + t*z[k+11])``."""
    b = LoopBuilder("hydro1", trip_count)
    y = b.load("y")
    z10 = b.load("z10")
    z11 = b.load("z11")
    rz = b.mul("rz", z10)
    tz = b.mul("tz", z11)
    inner = b.add("inner", rz, tz)
    prod = b.mul("prod", y, inner)
    x = b.add("x", prod)         # + q (live-in)
    b.store("st", x)
    return b.build()


def state_update(trip_count: int = 500) -> Ddg:
    """Two mutually-recurrent state variables (distance-1 cross terms)."""
    b = LoopBuilder("state2", trip_count)
    u = b.load("u")
    a = b.add("a", u)            # a[i] = u[i] + f(b[i-1])
    bb = b.mul("b", u)           # b[i] = u[i] * g(a[i-1])
    b.carry(a, bb, distance=1)
    b.carry(bb, a, distance=1)
    b.store("sta", a)
    b.store("stb", bb)
    return b.build()


def long_recurrence(trip_count: int = 350) -> Ddg:
    """Distance-3 recurrence: ``x[i] = x[i-3] * c + y[i]`` (software
    pipelining can overlap 3 chains)."""
    b = LoopBuilder("rec3", trip_count)
    y = b.load("y")
    xm = b.mul("xm")             # x[i-3] * c, operand via carry
    x = b.add("x", xm, y)
    b.store("st", x)
    b.carry(x, xm, distance=3)
    return b.build()


def memory_recurrence(trip_count: int = 450) -> Ddg:
    """Array recurrence through memory: store feeds next iteration's load
    via a MEM ordering edge (no register value crosses)."""
    b = LoopBuilder("memrec", trip_count)
    ld = b.load("ld")
    v = b.add("v", ld)
    st = b.store("st", v)
    b.mem_order(st, ld, distance=1)
    return b.build()


def wide_independent(trip_count: int = 600) -> Ddg:
    """Eight independent multiply-add lanes -- embarrassingly parallel,
    the kind of body that saturates wide machines."""
    b = LoopBuilder("wide8", trip_count)
    for lane in range(8):
        x = b.load(f"x{lane}")
        m = b.mul(f"m{lane}", x)
        s = b.add(f"s{lane}", m)
        b.store(f"st{lane}", s)
    return b.build()


def reduction_tree(trip_count: int = 800) -> Ddg:
    """Sum of 8 loaded values via a balanced add tree + accumulator."""
    b = LoopBuilder("redtree", trip_count)
    vals = [b.load(f"x{j}") for j in range(8)]
    level = 0
    while len(vals) > 1:
        nxt = []
        for j in range(0, len(vals), 2):
            nxt.append(b.add(f"t{level}_{j}", vals[j], vals[j + 1]))
        vals = nxt
        level += 1
    acc = b.add("acc", vals[0])
    b.carry(acc, acc, distance=1)
    return b.build()


#: name -> factory, the full catalogue.
KERNELS: dict[str, Callable[[], Ddg]] = {
    "daxpy": daxpy,
    "dot": dot_product,
    "scale": vector_scale,
    "vadd": vector_add,
    "fir4": fir4,
    "stencil3": stencil3,
    "tridiag": tridiagonal,
    "iir1": iir1,
    "scan": prefix_sum,
    "cmul": complex_multiply,
    "horner4": horner4,
    "norm2": norm2,
    "saxpy2": saxpy_interleaved,
    "matvec": matvec_row,
    "hydro1": hydro1,
    "state2": state_update,
    "rec3": long_recurrence,
    "memrec": memory_recurrence,
    "wide8": wide_independent,
    "redtree": reduction_tree,
}


def all_kernels() -> list[Ddg]:
    """Fresh instances of every kernel, catalogue order."""
    return [factory() for factory in KERNELS.values()]


def kernel(name: str) -> Ddg:
    try:
        return KERNELS[name]()
    except KeyError:
        raise KeyError(
            f"unknown kernel {name!r}; available: {sorted(KERNELS)}"
        ) from None


def hydro2d_fragment(trip_count: int = 350) -> Ddg:
    """Livermore kernel 7 shape (equation of state fragment): a wide
    expression tree over many loads, no recurrence."""
    b = LoopBuilder("hydro2d", trip_count)
    u = b.load("u")
    z = b.load("z")
    r = b.load("r")
    t1 = b.mul("t1", u, z)
    t2 = b.mul("t2", r)
    t3 = b.add("t3", t1, t2)
    t4 = b.mul("t4", t3)
    t5 = b.add("t5", t4, u)
    b.store("st", t5)
    return b.build()


def inner_product_pair(trip_count: int = 900) -> Ddg:
    """Two interleaved reductions sharing loads (banded matvec style)."""
    b = LoopBuilder("ip2", trip_count)
    x = b.load("x")
    a1 = b.load("a1")
    a2 = b.load("a2")
    p1 = b.mul("p1", a1, x)
    p2 = b.mul("p2", a2, x)
    s1 = b.add("s1", p1)
    s2 = b.add("s2", p2)
    b.carry(s1, s1, distance=1)
    b.carry(s2, s2, distance=1)
    return b.build()


def first_difference(trip_count: int = 1500) -> Ddg:
    """Livermore kernel 12: ``x[i] = y[i+1] - y[i]`` (pure streaming)."""
    b = LoopBuilder("firstdiff", trip_count)
    yp = b.load("yp")
    yc = b.load("yc")
    d = b.sub("d", yp, yc)
    b.store("st", d)
    return b.build()


def banded_linear(trip_count: int = 250) -> Ddg:
    """Livermore kernel 2 shape (incomplete Cholesky fragment): mul/sub
    chain with a distance-1 recurrence through the eliminated term."""
    b = LoopBuilder("band", trip_count)
    x = b.load("x")
    v = b.load("v")
    m = b.mul("m", x, v)
    r = b.sub("r", m)             # r[i] = m[i] - f(r[i-1])
    b.store("st", r)
    b.carry(r, r, distance=1)
    return b.build()


def general_linear_recurrence(trip_count: int = 300) -> Ddg:
    """Livermore kernel 6 shape: w[i] += b[i]*w[i-2] (distance 2)."""
    b = LoopBuilder("glr", trip_count)
    bb = b.load("b")
    prod = b.mul("prod", bb)       # b[i] * w[i-2]
    w = b.add("w", prod)
    b.store("st", w)
    b.carry(w, prod, distance=2)
    return b.build()


def tri_diag_elimination(trip_count: int = 280) -> Ddg:
    """Forward elimination with two coupled recurrences of distance 1."""
    b = LoopBuilder("trielim", trip_count)
    a = b.load("a")
    c = b.load("c")
    num = b.mul("num", a)          # a[i] * d[i-1]
    den = b.add("den", c)          # c[i] + e[i-1]
    d = b.div("d", num, den)
    e = b.mul("e", d, c)
    b.store("st", d)
    b.carry(d, num, distance=1)
    b.carry(e, den, distance=1)
    return b.build()


def planckian(trip_count: int = 450) -> Ddg:
    """Livermore kernel 15 shape: division-heavy streaming body."""
    b = LoopBuilder("planck", trip_count)
    u = b.load("u")
    v = b.load("v")
    expo = b.div("expo", u, v)
    t = b.add("t", expo)
    w = b.div("w", t)
    b.store("st", w)
    return b.build()


def average_filter(trip_count: int = 700) -> Ddg:
    """5-point moving average: shifted loads, add tree, scale."""
    b = LoopBuilder("avg5", trip_count)
    taps = [b.load(f"x{j}") for j in range(5)]
    s01 = b.add("s01", taps[0], taps[1])
    s23 = b.add("s23", taps[2], taps[3])
    s = b.add("s", s01, s23)
    s4 = b.add("s4", s, taps[4])
    out = b.mul("out", s4)          # * 1/5
    b.store("st", out)
    return b.build()


def interpolation(trip_count: int = 600) -> Ddg:
    """Linear interpolation ``y = y0 + t*(y1 - y0)``: fan-out on y0."""
    b = LoopBuilder("lerp", trip_count)
    y0 = b.load("y0")
    y1 = b.load("y1")
    t = b.load("t")
    d = b.sub("d", y1, y0)
    td = b.mul("td", t, d)
    y = b.add("y", y0, td)
    b.store("st", y)
    return b.build()


def pointer_chase_like(trip_count: int = 200) -> Ddg:
    """Serial load->load recurrence through memory ordering: the
    archetypal software-pipelining-hostile loop."""
    b = LoopBuilder("chase", trip_count)
    ld = b.load("ld")
    nxt = b.add("nxt", ld)
    st = b.store("st", nxt)
    b.mem_order(st, ld, distance=1)
    b.carry(nxt, ld, distance=1)   # address feeds the next load
    return b.build()


KERNELS.update({
    "hydro2d": hydro2d_fragment,
    "ip2": inner_product_pair,
    "firstdiff": first_difference,
    "band": banded_linear,
    "glr": general_linear_recurrence,
    "trielim": tri_diag_elimination,
    "planck": planckian,
    "avg5": average_filter,
    "lerp": interpolation,
    "chase": pointer_chase_like,
})

"""Synthetic Perfect-Club-like corpus generator.

The paper evaluates on 1258 innermost loops extracted from the Perfect Club
benchmark [2].  That suite is not redistributable and its loop extraction
pipeline (ICTINEO) is long gone, so -- per the substitution policy in
DESIGN.md §2 -- we generate a *synthetic corpus* whose structural
distributions mimic what published studies of scientific FP loops report
(Rau'96, Llosa et al.'94/'96 use the same corpus family):

* body sizes: heavy-tailed, most loops 5-20 ops, a tail to ~64;
* op mix: roughly 25-40 % memory ops, the rest split between add-class and
  mul-class arithmetic;
* 30-40 % of loops carry at least one recurrence (accumulators dominate,
  a few longer/deeper recurrences);
* moderate fan-out: most values have one consumer, a minority 2-4;
* heavy-tailed trip counts (a few loops dominate execution time -- the
  effect the paper calls out in its dynamic-IPC discussion).

Generation is seeded and fully deterministic: ``generate_corpus()`` always
returns the same 1258 loops.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.ir.ddg import Ddg, DepKind
from repro.ir.operations import Opcode
from repro.ir.validate import validate_ddg

#: weights of arithmetic opcodes (memory handled separately)
DEFAULT_ARITH_MIX: dict[Opcode, float] = {
    Opcode.ADD: 0.38,
    Opcode.SUB: 0.12,
    Opcode.MUL: 0.26,
    Opcode.FMUL: 0.12,
    Opcode.CMP: 0.05,
    Opcode.SHIFT: 0.04,
    Opcode.DIV: 0.03,
}


@dataclass(frozen=True)
class SynthConfig:
    """Knobs of the generator (defaults calibrated per module docstring)."""

    n_loops: int = 1258
    seed: int = 19980330          # IPPS/SPDP 1998, Orlando

    # body size: lognormal, clipped
    min_ops: int = 4
    max_ops: int = 64
    size_mu: float = 2.45         # exp(mu) ~ 11.6 ops median
    size_sigma: float = 0.55

    # structure
    load_fraction: float = 0.24   # of the body, before stores
    store_fraction: float = 0.08
    p_binary: float = 0.6         # arith op takes 2 operands (else 1)
    recent_bias: float = 2.0      # operand choice biased to recent values
    p_reuse_operand: float = 0.18 # chance to reuse an already-consumed value

    # recurrences
    p_recurrence: float = 0.38    # >= 1 recurrence in the loop
    p_extra_recurrence: float = 0.30
    p_long_distance: float = 0.25 # recurrence distance > 1
    max_distance: int = 4
    p_mem_recurrence: float = 0.10

    p_pure_accumulator: float = 0.80  # recurrence value is live-out only
    p_self_recurrence: float = 0.75   # accumulator vs deeper circuit

    # dangling values
    p_store_dangling: float = 0.35

    # trip counts: lognormal, clipped
    trip_mu: float = 4.2          # exp(4.2) ~ 67 median iterations
    trip_sigma: float = 1.4
    min_trip: int = 4
    max_trip: int = 50_000

    arith_mix: tuple[tuple[Opcode, float], ...] = field(
        default_factory=lambda: tuple(DEFAULT_ARITH_MIX.items()))


def _sample_clipped_lognormal(rng: random.Random, mu: float, sigma: float,
                              lo: int, hi: int) -> int:
    val = int(round(math.exp(rng.gauss(mu, sigma))))
    return max(lo, min(hi, val))


def _pick_operand(rng: random.Random, producers: list[int],
                  cfg: SynthConfig) -> int:
    """Choose a producer, biased towards recently created values (models
    expression locality); occasionally an older one (models reuse and
    creates fan-out)."""
    n = len(producers)
    if n == 1:
        return producers[0]
    if rng.random() < cfg.p_reuse_operand:
        return producers[rng.randrange(n)]
    # weight ~ (position+1)^bias
    weights = [(i + 1) ** cfg.recent_bias for i in range(n)]
    total = sum(weights)
    r = rng.random() * total
    acc = 0.0
    for i, w in enumerate(weights):
        acc += w
        if r <= acc:
            return producers[i]
    return producers[-1]


def _weighted_opcode(rng: random.Random,
                     mix: tuple[tuple[Opcode, float], ...]) -> Opcode:
    total = sum(w for _op, w in mix)
    r = rng.random() * total
    acc = 0.0
    for op, w in mix:
        acc += w
        if r <= acc:
            return op
    return mix[-1][0]


def generate_loop(rng: random.Random, cfg: SynthConfig,
                  index: int) -> Ddg:
    """One synthetic innermost loop (deterministic given rng state)."""
    n_target = _sample_clipped_lognormal(
        rng, cfg.size_mu, cfg.size_sigma, cfg.min_ops, cfg.max_ops)
    trip = _sample_clipped_lognormal(
        rng, cfg.trip_mu, cfg.trip_sigma, cfg.min_trip, cfg.max_trip)
    ddg = Ddg(f"synth-{index:04d}", trip_count=trip)

    n_loads = max(1, round(n_target * cfg.load_fraction))
    n_stores = max(1, round(n_target * cfg.store_fraction))
    n_arith = max(1, n_target - n_loads - n_stores)

    producers: list[int] = []
    for i in range(n_loads):
        op = ddg.add_operation(Opcode.LOAD, name=f"ld{i}")
        producers.append(op.op_id)

    arith_ids: list[int] = []
    for i in range(n_arith):
        opcode = _weighted_opcode(rng, cfg.arith_mix)
        op = ddg.add_operation(opcode, name=f"{opcode.mnemonic}{i}")
        n_operands = 2 if rng.random() < cfg.p_binary else 1
        chosen = {_pick_operand(rng, producers, cfg)
                  for _ in range(n_operands)}
        for src in sorted(chosen):
            ddg.add_dependence(src, op, distance=0, kind=DepKind.DATA)
        producers.append(op.op_id)
        arith_ids.append(op.op_id)

    # recurrences come *before* store placement: real reductions are
    # usually live-out only (the accumulator is not written back every
    # iteration), so recurrence tails prefer values nothing consumes yet --
    # their only consumer becomes the carried edge, and copy insertion
    # never has to lengthen the recurrence circuit.
    if arith_ids and rng.random() < cfg.p_recurrence:
        n_rec = 1
        while (rng.random() < cfg.p_extra_recurrence
               and n_rec < 1 + len(arith_ids) // 6):
            n_rec += 1
        consumed_now = {e.src for e in ddg.data_edges()}
        for _ in range(n_rec):
            free_tails = [a for a in arith_ids if a not in consumed_now]
            if free_tails and rng.random() < cfg.p_pure_accumulator:
                tail = free_tails[rng.randrange(len(free_tails))]
            else:
                tail = arith_ids[rng.randrange(len(arith_ids))]
            # close onto the op itself (accumulator) or onto one of its
            # ancestors (deeper recurrence circuit); simple accumulators
            # dominate real scientific loops
            if rng.random() < cfg.p_self_recurrence:
                head = tail
            else:
                ancestors = [e.src for e in ddg.producers(tail)
                             if ddg.op(e.src).produces_value]
                head = (ancestors[rng.randrange(len(ancestors))]
                        if ancestors else tail)
            dist = 1
            if rng.random() < cfg.p_long_distance:
                dist = rng.randint(2, cfg.max_distance)
            ddg.add_dependence(tail, head, distance=dist,
                               kind=DepKind.DATA)
            consumed_now.add(tail)

    # stores: prefer values not yet consumed (computation results get
    # written back)
    consumed = {e.src for e in ddg.data_edges()}
    dangling = [p for p in producers if p not in consumed]
    store_ids: list[int] = []
    for i in range(n_stores):
        pool = dangling if dangling else producers
        src = pool.pop(rng.randrange(len(pool))) if pool is dangling \
            else _pick_operand(rng, producers, cfg)
        st = ddg.add_operation(Opcode.STORE, name=f"st{i}")
        ddg.add_dependence(src, st, distance=0, kind=DepKind.DATA)
        store_ids.append(st.op_id)

    # leftover dangling values: write them back or feed a later consumer
    consumed = {e.src for e in ddg.data_edges()}
    extra = 0
    for p in producers:
        if p in consumed:
            continue
        if rng.random() < cfg.p_store_dangling or not store_ids:
            st = ddg.add_operation(Opcode.STORE, name=f"stx{extra}")
            ddg.add_dependence(p, st, distance=0, kind=DepKind.DATA)
            store_ids.append(st.op_id)
            extra += 1
        else:
            # feed an existing store as an extra operand (address value)
            ddg.add_dependence(p, store_ids[rng.randrange(len(store_ids))],
                               distance=0, kind=DepKind.DATA)

    # occasional memory recurrence (store -> load ordering)
    if store_ids and rng.random() < cfg.p_mem_recurrence:
        st = store_ids[rng.randrange(len(store_ids))]
        loads = [o for o in ddg.op_ids if ddg.op(o).opcode is Opcode.LOAD]
        ld = loads[rng.randrange(len(loads))]
        ddg.add_dependence(st, ld, distance=rng.randint(1, 2),
                           kind=DepKind.MEM)

    validate_ddg(ddg)
    return ddg


def generate_corpus(cfg: SynthConfig | None = None) -> list[Ddg]:
    """The deterministic corpus: ``cfg.n_loops`` loops from ``cfg.seed``."""
    cfg = cfg or SynthConfig()
    rng = random.Random(cfg.seed)
    return [generate_loop(rng, cfg, i) for i in range(cfg.n_loops)]

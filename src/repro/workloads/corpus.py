"""Corpus management: caching, summaries, and experiment filters."""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.ir.ddg import Ddg
from repro.sched.mii import mii_report

from .kernels import all_kernels
from .synth import SynthConfig, generate_corpus

_CACHE: dict[SynthConfig, list[Ddg]] = {}

#: Environment variable: set to 1 to run experiments on the full corpus.
FULL_CORPUS_ENV = "REPRO_FULL_CORPUS"

#: Default subsample size for benchmarks (keeps bench wall-time sane in
#: pure Python; the experiment drivers accept any subset).
DEFAULT_BENCH_SAMPLE = 160


def _cached(cfg: Optional[SynthConfig] = None) -> list[Ddg]:
    """The shared cached loop list -- internal; callers get copies."""
    cfg = cfg or SynthConfig()
    if cfg not in _CACHE:
        _CACHE[cfg] = generate_corpus(cfg)
    return _CACHE[cfg]


def corpus(cfg: Optional[SynthConfig] = None) -> list[Ddg]:
    """The (cached) deterministic corpus for *cfg*.

    Loops are **copied on return**: generating the corpus is expensive
    (so the module caches it), but ``Ddg`` objects are mutable -- handing
    out the cached instances let one caller's transformation (unrolling,
    copy insertion done in place, a stress test poking at edges) silently
    poison every later sweep's corpus.  Each call now owns its loops.
    """
    return [ddg.copy() for ddg in _cached(cfg)]


def paper_corpus() -> list[Ddg]:
    """The 1258-loop corpus used by all paper-reproduction experiments."""
    return corpus(SynthConfig())


def bench_corpus(sample: Optional[int] = None) -> list[Ddg]:
    """Corpus subset for benchmarks.

    Uses the full 1258 loops when ``REPRO_FULL_CORPUS=1``; otherwise an
    evenly strided subsample of ``sample`` (default 160) loops plus all
    hand-written kernels, preserving the size/recurrence distributions.
    """
    loops = _cached()
    if os.environ.get(FULL_CORPUS_ENV, "") == "1":
        return [ddg.copy() for ddg in loops]
    n = sample or DEFAULT_BENCH_SAMPLE
    if n >= len(loops):
        return [ddg.copy() for ddg in loops]
    # sample first, copy only what the caller keeps
    stride = len(loops) / n
    picked = [loops[int(i * stride)].copy() for i in range(n)]
    return picked + all_kernels()


@dataclass(frozen=True)
class CorpusStats:
    """Structural summary of a loop set (sanity-checked in tests against
    the calibration targets of :mod:`repro.workloads.synth`)."""

    n_loops: int
    mean_ops: float
    median_ops: int
    max_ops: int
    mem_fraction: float
    recurrent_fraction: float
    mean_fanout_gt1: float
    median_trip: int
    max_trip: int

    def render(self) -> str:
        return (
            f"{self.n_loops} loops | ops mean {self.mean_ops:.1f} "
            f"median {self.median_ops} max {self.max_ops} | "
            f"mem {self.mem_fraction:.0%} | recurrent "
            f"{self.recurrent_fraction:.0%} | fanout>1 per loop "
            f"{self.mean_fanout_gt1:.1f} | trips median {self.median_trip} "
            f"max {self.max_trip}")


def corpus_stats(loops: Sequence[Ddg]) -> CorpusStats:
    sizes = sorted(l.n_ops for l in loops)
    mem = sum(1 for l in loops for op in l.operations if op.is_memory)
    total_ops = sum(sizes)
    recurrent = sum(1 for l in loops if l.recurrence_ops())
    fanout_gt1 = [sum(1 for o in l.op_ids if l.fanout(o) > 1)
                  for l in loops]
    trips = sorted(l.trip_count for l in loops)
    return CorpusStats(
        n_loops=len(loops),
        mean_ops=total_ops / len(loops),
        median_ops=sizes[len(sizes) // 2],
        max_ops=sizes[-1],
        mem_fraction=mem / total_ops,
        recurrent_fraction=recurrent / len(loops),
        mean_fanout_gt1=sum(fanout_gt1) / len(loops),
        median_trip=trips[len(trips) // 2],
        max_trip=trips[-1],
    )


def resource_constrained(loops: Sequence[Ddg], machine) -> list[Ddg]:
    """Loops whose MII is bound by FUs rather than recurrences
    (``ResMII >= RecMII`` -- the Fig. 9 population)."""
    return [l for l in loops
            if mii_report(l, machine).resource_constrained]

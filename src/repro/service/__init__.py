"""Schedule-compilation-as-a-service: the sweep runner as a daemon.

The ROADMAP's "millions of users" front door: a long-running asyncio
HTTP service that accepts loop+machine+options job specs, dedups them
through the content-addressed fingerprints (in-flight *and* cached),
micro-batches fresh work onto the persistent worker pools, and answers
with the same plain-data results a direct
:func:`~repro.runner.pipeline.compile_loop` call produces.

Layers (each usable on its own):

* :mod:`.jobspec` -- the JSON wire format -> :class:`CompileJob` parser
* :mod:`.engine`  -- :class:`SweepService`: dedup + batching + metrics
* :mod:`.daemon`  -- the HTTP/1.1 front end, blocking (``serve``) or on
  a background thread (``start_in_thread``), with graceful drain on
  SIGTERM/SIGINT

Quick start::

    repro-vliw --jobs 4 serve --port 8123 &
    repro-vliw submit --port 8123 daxpy dot --fus 4
    curl -s http://127.0.0.1:8123/metrics
"""

from .daemon import ServerHandle, serve, start_in_thread
from .engine import (DeadlineExceeded, ServiceOverloaded, SweepService,
                     result_to_wire)
from .jobspec import (JobSpecError, kernel_job_spec, parse_job, parse_jobs,
                      parse_loop, parse_machine, parse_options)

__all__ = [
    "ServerHandle", "serve", "start_in_thread",
    "DeadlineExceeded", "ServiceOverloaded",
    "SweepService", "result_to_wire",
    "JobSpecError", "kernel_job_spec", "parse_job", "parse_jobs",
    "parse_loop", "parse_machine", "parse_options",
]

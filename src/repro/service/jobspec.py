"""JSON job specifications: the wire format of ``POST /jobs``.

A job spec is a plain JSON object naming the three inputs of a
:class:`~repro.runner.job.CompileJob`::

    {"loop":    {"kernel": "daxpy"},
     "machine": {"kind": "clustered", "n_clusters": 4},
     "options": {"scheduler": "sms", "extras": ["sched_stats"]}}

Loops come from the kernel catalogue (``{"kernel": name}``) or the
seeded synthetic generator (``{"synth": {"seed": S, "index": I, ...}}``
-- deterministic: the same spec always yields the same DDG, hence the
same fingerprint).  Machines are the paper presets: ``qrf``/``crf``
single-cluster machines (``n_fus``) or the ring-``clustered`` machine
(``n_clusters``, ``allow_moves``).  ``options`` maps straight onto
:class:`~repro.runner.job.PipelineOptions` fields.

Parsed loops are memoised by canonical spec, which matters beyond speed:
the persistent worker pool keys its payload tables by DDG *identity*, so
serving every request a fresh copy of the same loop would restart the
pool (and defeat the front-end memo) on every submission.  Malformed
specs raise :class:`JobSpecError`, which the daemon maps to HTTP 400.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Optional

from repro.ir.ddg import Ddg
from repro.machine.presets import clustered_machine, crf_machine, qrf_machine
from repro.runner.fingerprint import canonical_json
from repro.sched.iisearch import check_ii_search
from repro.sched.partitioners import check_partitioner
from repro.sched.strategies import check_scheduler
from repro.runner.job import CompileJob, PipelineOptions
from repro.workloads.kernels import KERNELS
from repro.workloads.synth import SynthConfig, generate_loop


class JobSpecError(ValueError):
    """A malformed job spec (unknown kernel, bad machine kind, ...)."""


#: Job specs one request may carry.  A bound, not a throughput limit:
#: bigger sweeps split into several requests and still dedup/batch the
#: same -- while a runaway client cannot park an unbounded parse +
#: compile obligation behind a single deadline-less POST.
MAX_JOBS_PER_REQUEST = 4096


#: canonical loop spec -> Ddg; grow-only, bounded by the spec space the
#: clients actually use (kernel names x synth configs)
_LOOP_MEMO: dict[str, Ddg] = {}

#: canonical machine spec -> machine object
_MACHINE_MEMO: dict[str, object] = {}

_SYNTH_FIELDS = {f.name for f in dataclasses.fields(SynthConfig)}
_OPTION_FIELDS = {f.name for f in dataclasses.fields(PipelineOptions)}


def _require_mapping(spec: object, what: str) -> dict:
    if not isinstance(spec, dict):
        raise JobSpecError(f"{what} spec must be a JSON object, "
                           f"not {type(spec).__name__}")
    return spec


def parse_loop(spec: object) -> Ddg:
    """Loop spec -> DDG (memoised; identical specs share one object)."""
    spec = _require_mapping(spec, "loop")
    memo_key = canonical_json(spec)
    hit = _LOOP_MEMO.get(memo_key)
    if hit is not None:
        return hit
    if "kernel" in spec:
        name = spec["kernel"]
        extra = set(spec) - {"kernel"}
        if extra:
            raise JobSpecError(f"unknown loop spec fields: {sorted(extra)}")
        factory = KERNELS.get(name)
        if factory is None:
            raise JobSpecError(f"unknown kernel {name!r}; available: "
                               f"{', '.join(sorted(KERNELS))}")
        ddg = factory()
    elif "synth" in spec:
        cfg_spec = dict(_require_mapping(spec["synth"], "synth"))
        index = cfg_spec.pop("index", 0)
        if not isinstance(index, int) or index < 0:
            raise JobSpecError("synth 'index' must be a non-negative int")
        unknown = set(cfg_spec) - _SYNTH_FIELDS
        if unknown:
            raise JobSpecError(f"unknown synth fields: {sorted(unknown)}; "
                               f"known: {sorted(_SYNTH_FIELDS)}")
        try:
            cfg = SynthConfig(**cfg_spec)
        except TypeError as exc:
            raise JobSpecError(f"bad synth config: {exc}") from None
        # the generator is sequential-state: loop i depends on the draws
        # of loops 0..i-1, so replay the stream up to the asked index --
        # exactly how the corpus builder produces it
        rng = random.Random(cfg.seed)
        ddg = generate_loop(rng, cfg, 0)
        for i in range(1, index + 1):
            ddg = generate_loop(rng, cfg, i)
    else:
        raise JobSpecError("loop spec needs 'kernel' or 'synth'")
    _LOOP_MEMO[memo_key] = ddg
    return ddg


def parse_machine(spec: object) -> object:
    """Machine spec -> preset machine object (memoised)."""
    spec = _require_mapping(spec, "machine")
    memo_key = canonical_json(spec)
    hit = _MACHINE_MEMO.get(memo_key)
    if hit is not None:
        return hit
    kind = spec.get("kind", "qrf")
    if kind in ("qrf", "crf"):
        extra = set(spec) - {"kind", "n_fus"}
        if extra:
            raise JobSpecError(
                f"unknown machine spec fields: {sorted(extra)}")
        n_fus = spec.get("n_fus", 4)
        if not isinstance(n_fus, int) or n_fus < 1:
            raise JobSpecError("'n_fus' must be a positive int")
        machine = (qrf_machine if kind == "qrf" else crf_machine)(n_fus)
    elif kind == "clustered":
        extra = set(spec) - {"kind", "n_clusters", "allow_moves"}
        if extra:
            raise JobSpecError(
                f"unknown machine spec fields: {sorted(extra)}")
        n_clusters = spec.get("n_clusters", 4)
        if not isinstance(n_clusters, int) or n_clusters < 2:
            raise JobSpecError("'n_clusters' must be an int >= 2")
        machine = clustered_machine(
            n_clusters, allow_moves=bool(spec.get("allow_moves", False)))
    else:
        raise JobSpecError(f"unknown machine kind {kind!r}; "
                           f"use 'qrf', 'crf' or 'clustered'")
    _MACHINE_MEMO[memo_key] = machine
    return machine


def parse_options(spec: object) -> PipelineOptions:
    """Options spec -> :class:`PipelineOptions`.

    Engine names (``scheduler``/``partitioner``/``ii_search``) are
    validated here, at the request boundary, so a typo comes back as a
    400 listing the registered engines -- the same message the registry
    raises for library callers -- instead of a worker-side 500.
    """
    if spec is None:
        return PipelineOptions()
    spec = dict(_require_mapping(spec, "options"))
    unknown = set(spec) - _OPTION_FIELDS
    if unknown:
        raise JobSpecError(f"unknown option fields: {sorted(unknown)}; "
                           f"known: {sorted(_OPTION_FIELDS)}")
    if "extras" in spec:
        extras = spec["extras"]
        if not isinstance(extras, (list, tuple)) or \
                not all(isinstance(e, str) for e in extras):
            raise JobSpecError("'extras' must be a list of strings")
        spec["extras"] = tuple(extras)
    try:
        options = PipelineOptions(**spec)
    except TypeError as exc:
        raise JobSpecError(f"bad options: {exc}") from None
    try:
        check_scheduler(options.scheduler)
        check_partitioner(options.partitioner)
        check_ii_search(options.ii_search)
    except (KeyError, ValueError) as exc:
        raise JobSpecError(str(exc.args[0]) if exc.args
                           else str(exc)) from None
    return options


def parse_job(spec: object) -> CompileJob:
    """Full job spec -> :class:`CompileJob` (fingerprinted lazily)."""
    spec = _require_mapping(spec, "job")
    unknown = set(spec) - {"loop", "machine", "options"}
    if unknown:
        raise JobSpecError(f"unknown job spec fields: {sorted(unknown)}")
    if "loop" not in spec:
        raise JobSpecError("job spec needs a 'loop'")
    return CompileJob(ddg=parse_loop(spec["loop"]),
                      machine=parse_machine(spec.get("machine", {})),
                      options=parse_options(spec.get("options")))


def parse_jobs(body: object) -> list[CompileJob]:
    """Request body -> job list: one spec object, or ``{"jobs": [...]}``."""
    body = _require_mapping(body, "request")
    if "jobs" in body:
        specs = body["jobs"]
        if not isinstance(specs, list) or not specs:
            raise JobSpecError("'jobs' must be a non-empty list")
        if len(specs) > MAX_JOBS_PER_REQUEST:
            raise JobSpecError(
                f"'jobs' lists {len(specs)} specs; the per-request "
                f"bound is {MAX_JOBS_PER_REQUEST} -- split the sweep")
        return [parse_job(s) for s in specs]
    return [parse_job(body)]


def kernel_job_spec(kernel: str, *, n_fus: Optional[int] = None,
                    n_clusters: Optional[int] = None,
                    options: Optional[dict] = None) -> dict:
    """Convenience builder for clients (the CLI ``submit`` command)."""
    if n_clusters:
        machine = {"kind": "clustered", "n_clusters": n_clusters}
    else:
        machine = {"kind": "qrf", "n_fus": n_fus or 4}
    spec = {"loop": {"kernel": kernel}, "machine": machine}
    if options:
        spec["options"] = options
    return spec

"""The sweep service core: dedup, micro-batching, metrics.

:class:`SweepService` is the daemon's engine, independent of HTTP so the
in-process tests and the throughput benchmark can drive it directly.
One submission path:

1. **Fingerprint** -- every incoming :class:`CompileJob` already carries
   its content-hash key (:mod:`repro.runner.fingerprint`), the identity
   used everywhere below.
2. **In-flight dedup** -- a key currently being compiled has a future in
   ``_inflight``; N identical concurrent requests await that one future,
   so the service compiles each distinct job at most once no matter how
   many clients hammer it (``dedup_inflight`` counts the coalesced
   requests).
3. **Cache** -- settled keys are served straight from the (sharded)
   result cache without touching the dispatcher.
4. **Micro-batch** -- genuinely new jobs land on an ``asyncio.Queue``; a
   single dispatcher task drains it into batches (up to ``batch_max``
   jobs, or whatever arrives within ``batch_window_s`` of the first),
   and runs each batch through :func:`~repro.runner.executor.run_jobs`
   on a worker thread -- which fans out onto the persistent
   :class:`~repro.runner.pool.PoolSession` exactly like a CLI sweep.
   Batching is what lets many single-job HTTP requests amortise the
   pool's chunked dispatch instead of paying per-request IPC.

Shutdown (:meth:`stop`) drains the queue, waits for every in-flight
future, then retires the worker pools gracefully (``close_all_sessions
(graceful=True)``) -- nothing is silently dropped.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional, Sequence

from repro.runner import pool as pool_mod
from repro.runner.executor import RunnerConfig, run_jobs
from repro.runner.job import CompileJob, JobResult

#: sentinel that tells the dispatcher to finish up
_STOP = object()


def result_to_wire(result: JobResult) -> dict:
    """JSON-shaped response record for one settled job."""
    record = result.to_record()
    record["cached"] = result.cached
    return record


class SweepService:
    """Schedule-compilation-as-a-service over the sweep runner."""

    def __init__(self, cache: object = None, *, n_workers: int = 1,
                 batch_window_s: float = 0.005, batch_max: int = 64,
                 chunk_size: Optional[int] = None) -> None:
        self.cache = cache
        self.n_workers = n_workers
        self.batch_window_s = batch_window_s
        self.batch_max = batch_max
        self.chunk_size = chunk_size
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.t_started = time.monotonic()
        # ------------------------------------------------ counters
        self.c_requests = 0          # submit() calls
        self.c_jobs = 0              # job specs received
        self.c_dedup_inflight = 0    # coalesced onto a live compile
        self.c_cache_hits = 0        # served straight from the cache
        self.c_compiled = 0          # jobs that actually compiled
        self.c_batches = 0           # dispatcher batches executed
        self.c_batch_jobs = 0        # jobs across all batches
        self.submit_s = 0.0          # cumulative submit latency

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind to the running event loop and start the dispatcher."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._dispatcher = self._loop.create_task(self._dispatch())

    async def stop(self, drain: bool = True) -> None:
        """Shut down: drain in-flight jobs, flush state, retire pools.

        With ``drain`` (the SIGTERM path) every queued and in-flight job
        completes and its waiters are answered before the pools retire;
        without it, queued jobs are failed fast with CancelledError.
        """
        if self._queue is None:
            return
        if not drain:
            while not self._queue.empty():
                item = self._queue.get_nowait()
                if item is not _STOP:
                    job, fut = item
                    if not fut.done():
                        fut.cancel()
                    self._inflight.pop(job.key, None)
        await self._queue.put(_STOP)
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._inflight:  # pragma: no cover - defensive
            await asyncio.gather(*self._inflight.values(),
                                 return_exceptions=True)
        # retire the persistent worker pools without killing mid-task
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: pool_mod.close_all_sessions(graceful=True))
        self._queue = None

    # ------------------------------------------------------------ serving

    async def submit(self, jobs: Sequence[CompileJob]) -> list[JobResult]:
        """Compile *jobs* (deduped against in-flight work and the cache),
        returning results in request order."""
        assert self._queue is not None, "SweepService.start() not awaited"
        t0 = time.perf_counter()
        self.c_requests += 1
        futures: list[asyncio.Future] = []
        for job in jobs:
            key = job.key
            self.c_jobs += 1
            fut = self._inflight.get(key)
            if fut is not None:
                self.c_dedup_inflight += 1
                futures.append(fut)
                continue
            hit = self.cache.get(key) if self.cache is not None else None
            if hit is not None:
                self.c_cache_hits += 1
                done: asyncio.Future = self._loop.create_future()
                done.set_result(hit)
                futures.append(done)
                continue
            fut = self._loop.create_future()
            self._inflight[key] = fut
            futures.append(fut)
            await self._queue.put((job, fut))
        results = list(await asyncio.gather(*futures))
        self.submit_s += time.perf_counter() - t0
        return results

    def status(self, key: str) -> tuple[str, Optional[dict]]:
        """``("done", record)`` / ``("pending", None)`` /
        ``("unknown", None)`` for one fingerprint key."""
        if key in self._inflight:
            return "pending", None
        if self.cache is not None:
            hit = self.cache.peek(key)
            if hit is not None:
                return "done", result_to_wire(hit)
        return "unknown", None

    # ---------------------------------------------------------- dispatcher

    async def _dispatch(self) -> None:
        """Single consumer: drain the queue into micro-batches."""
        stopping = False
        while not stopping:
            item = await self._queue.get()
            if item is _STOP:
                break
            batch = [item]
            deadline = self._loop.time() + self.batch_window_s
            while len(batch) < self.batch_max:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(),
                                                 remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is _STOP:
                    stopping = True
                    break
                batch.append(nxt)
            await self._run_batch(batch)

    async def _run_batch(self, batch: list) -> None:
        jobs = [job for job, _ in batch]
        config = RunnerConfig(n_workers=self.n_workers, cache=self.cache,
                              chunk_size=self.chunk_size)
        try:
            results = await self._loop.run_in_executor(
                None, run_jobs, jobs, config)
        except Exception as exc:  # pragma: no cover - runner never raises
            for job, fut in batch:
                self._inflight.pop(job.key, None)
                if not fut.done():
                    fut.set_exception(exc)
            return
        self.c_batches += 1
        self.c_batch_jobs += len(batch)
        self.c_compiled += sum(1 for r in results if not r.cached)
        for (job, fut), result in zip(batch, results):
            self._inflight.pop(job.key, None)
            if not fut.done():
                fut.set_result(result)

    # ------------------------------------------------------------- metrics

    def metrics(self) -> dict:
        """One JSON-shaped snapshot: service, cache, pool, arena and
        tracing counters (the source of both ``/metrics.json`` and the
        Prometheus ``/metrics`` exposition)."""
        import repro
        from repro.obs.trace import trace_snapshot
        from repro.sched import arena_counters

        return {
            "uptime_s": round(time.monotonic() - self.t_started, 3),
            "version": repro.__version__,
            "service": {
                "requests": self.c_requests,
                "jobs": self.c_jobs,
                "dedup_inflight": self.c_dedup_inflight,
                "served_from_cache": self.c_cache_hits,
                "compiled": self.c_compiled,
                "batches": self.c_batches,
                "batch_jobs": self.c_batch_jobs,
                "inflight": len(self._inflight),
                "queue_depth": (self._queue.qsize()
                                if self._queue is not None else 0),
                "submit_s": round(self.submit_s, 6),
                "n_workers": self.n_workers,
            },
            "cache": (self.cache.stats()
                      if self.cache is not None else None),
            "pool": pool_mod.session_counters(),
            "arena": arena_counters(),
            "trace": trace_snapshot(),
        }

"""The sweep service core: dedup, micro-batching, metrics.

:class:`SweepService` is the daemon's engine, independent of HTTP so the
in-process tests and the throughput benchmark can drive it directly.
One submission path:

1. **Fingerprint** -- every incoming :class:`CompileJob` already carries
   its content-hash key (:mod:`repro.runner.fingerprint`), the identity
   used everywhere below.
2. **In-flight dedup** -- a key currently being compiled has a future in
   ``_inflight``; N identical concurrent requests await that one future,
   so the service compiles each distinct job at most once no matter how
   many clients hammer it (``dedup_inflight`` counts the coalesced
   requests).
3. **Cache** -- settled keys are served straight from the (sharded)
   result cache without touching the dispatcher.
4. **Micro-batch** -- genuinely new jobs land on an ``asyncio.Queue``; a
   single dispatcher task drains it into batches (up to ``batch_max``
   jobs, or whatever arrives within ``batch_window_s`` of the first),
   and runs each batch through :func:`~repro.runner.executor.run_jobs`
   on a worker thread -- which fans out onto the persistent
   :class:`~repro.runner.pool.PoolSession` exactly like a CLI sweep.
   Batching is what lets many single-job HTTP requests amortise the
   pool's chunked dispatch instead of paying per-request IPC.

Shutdown (:meth:`stop`) drains the queue, waits for every in-flight
future, then retires the worker pools gracefully (``close_all_sessions
(graceful=True)``) -- nothing is silently dropped.

Overload and failure are answered at the front door rather than by
queueing forever (DESIGN §5.10): requests carry a **deadline**
(:class:`DeadlineExceeded` -> HTTP 504, with the job keys so clients
poll ``GET /jobs/<key>`` instead of resubmitting), a full dispatcher
queue **sheds load** (:class:`ServiceOverloaded` -> 503 +
``Retry-After``), and a **circuit breaker** fails fast after
``breaker_threshold`` consecutive batch failures, half-opening after
``breaker_cooldown_s`` to probe with real traffic.
"""

from __future__ import annotations

import asyncio
import time
from typing import Optional, Sequence

from repro import faults as _faults
from repro.obs.trace import trace_count
from repro.runner import pool as pool_mod
from repro.runner.executor import RunnerConfig, run_jobs
from repro.runner.job import CompileJob, JobResult

#: sentinel that tells the dispatcher to finish up
_STOP = object()


def _swallow_result(fut: "asyncio.Future") -> None:
    """Detach a future: consume its outcome so nothing is logged."""
    if not fut.cancelled():
        fut.exception()


class ServiceOverloaded(RuntimeError):
    """Shed at the front door: full queue or an open circuit breaker."""

    def __init__(self, reason: str, retry_after_s: float) -> None:
        super().__init__(reason)
        self.retry_after_s = retry_after_s


class DeadlineExceeded(RuntimeError):
    """A submit request ran past its deadline; the jobs keep compiling.

    Carries the request's job keys so the client can poll
    ``GET /jobs/<key>`` -- the work is *not* cancelled (other coalesced
    requests may be waiting on the same futures) and will land in the
    cache when it finishes.
    """

    def __init__(self, keys: Sequence[str]) -> None:
        super().__init__(f"deadline exceeded; {len(keys)} job(s) still "
                         f"compiling")
        self.keys = list(keys)


def result_to_wire(result: JobResult) -> dict:
    """JSON-shaped response record for one settled job."""
    record = result.to_record()
    record["cached"] = result.cached
    return record


class SweepService:
    """Schedule-compilation-as-a-service over the sweep runner."""

    def __init__(self, cache: object = None, *, n_workers: int = 1,
                 batch_window_s: float = 0.005, batch_max: int = 64,
                 chunk_size: Optional[int] = None,
                 request_deadline_s: Optional[float] = None,
                 max_queue_depth: int = 1024,
                 breaker_threshold: int = 5,
                 breaker_cooldown_s: float = 30.0,
                 job_deadline_s: Optional[float] =
                 pool_mod.DEFAULT_JOB_DEADLINE_S,
                 max_retries: int = pool_mod.DEFAULT_MAX_RETRIES) -> None:
        self.cache = cache
        self.n_workers = n_workers
        self.batch_window_s = batch_window_s
        self.batch_max = batch_max
        self.chunk_size = chunk_size
        self.request_deadline_s = request_deadline_s
        self.max_queue_depth = max_queue_depth
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.job_deadline_s = job_deadline_s
        self.max_retries = max_retries
        self._inflight: dict[str, asyncio.Future] = {}
        self._queue: Optional[asyncio.Queue] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self.t_started = time.monotonic()
        # --------------------------------------------- breaker state
        self._consec_batch_failures = 0
        self._breaker_open_until: Optional[float] = None
        # ------------------------------------------------ counters
        self.c_requests = 0          # submit() calls
        self.c_jobs = 0              # job specs received
        self.c_dedup_inflight = 0    # coalesced onto a live compile
        self.c_cache_hits = 0        # served straight from the cache
        self.c_compiled = 0          # jobs that actually compiled
        self.c_batches = 0           # dispatcher batches executed
        self.c_batch_jobs = 0        # jobs across all batches
        self.submit_s = 0.0          # cumulative submit latency
        self.c_shed = 0              # requests shed on queue depth
        self.c_breaker_rejected = 0  # requests failed fast by the breaker
        self.c_breaker_trips = 0     # closed/half-open -> open transitions
        self.c_batch_failures = 0    # batches that failed wholesale
        self.c_deadline_exceeded = 0  # requests answered 504
        self.c_cache_errors = 0      # lookups degraded to misses

    # ------------------------------------------------------------ lifecycle

    async def start(self) -> None:
        """Bind to the running event loop and start the dispatcher."""
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue()
        self._dispatcher = self._loop.create_task(self._dispatch())

    async def stop(self, drain: bool = True) -> None:
        """Shut down: drain in-flight jobs, flush state, retire pools.

        With ``drain`` (the SIGTERM path) every queued and in-flight job
        completes and its waiters are answered before the pools retire;
        without it, queued jobs are failed fast with CancelledError.
        """
        if self._queue is None:
            return
        if not drain:
            while not self._queue.empty():
                item = self._queue.get_nowait()
                if item is not _STOP:
                    job, fut = item
                    if not fut.done():
                        fut.cancel()
                    self._inflight.pop(job.key, None)
        await self._queue.put(_STOP)
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        if self._inflight:  # pragma: no cover - defensive
            await asyncio.gather(*self._inflight.values(),
                                 return_exceptions=True)
        # retire the persistent worker pools without killing mid-task
        await asyncio.get_running_loop().run_in_executor(
            None, lambda: pool_mod.close_all_sessions(graceful=True))
        self._queue = None

    # ------------------------------------------------------------ serving

    def breaker_state(self) -> str:
        """``"closed"`` (normal) / ``"open"`` (failing fast) /
        ``"half-open"`` (cooldown over; next batch is the probe)."""
        if self._breaker_open_until is None:
            return "closed"
        if time.monotonic() < self._breaker_open_until:
            return "open"
        return "half-open"

    def _admit(self) -> None:
        """Front-door admission control: breaker, then queue depth."""
        if self.breaker_state() == "open":
            self.c_breaker_rejected += 1
            trace_count("service.breaker_rejected")
            retry_after = max(0.0,
                              self._breaker_open_until - time.monotonic())
            raise ServiceOverloaded(
                f"circuit breaker open after "
                f"{self._consec_batch_failures} consecutive batch "
                f"failures", retry_after_s=retry_after)
        if self._queue.qsize() >= self.max_queue_depth:
            self.c_shed += 1
            trace_count("service.shed")
            raise ServiceOverloaded(
                f"dispatch queue depth {self._queue.qsize()} at the "
                f"{self.max_queue_depth} bound", retry_after_s=1.0)

    def _cache_get(self, key: str) -> Optional[JobResult]:
        """A lookup that degrades cache I/O failure to a miss."""
        if self.cache is None:
            return None
        try:
            return self.cache.get(key)
        except Exception:
            self.c_cache_errors += 1
            trace_count("service.cache_errors")
            return None

    async def submit(self, jobs: Sequence[CompileJob],
                     deadline_s: Optional[float] = None
                     ) -> list[JobResult]:
        """Compile *jobs* (deduped against in-flight work and the cache),
        returning results in request order.

        Raises :class:`ServiceOverloaded` when admission control sheds
        the request, and :class:`DeadlineExceeded` when results do not
        settle within *deadline_s* (default: the service-wide
        ``request_deadline_s``) -- the compile itself keeps running for
        coalesced waiters and the cache.
        """
        assert self._queue is not None, "SweepService.start() not awaited"
        t0 = time.perf_counter()
        self.c_requests += 1
        self._admit()
        futures: list[asyncio.Future] = []
        for job in jobs:
            key = job.key
            self.c_jobs += 1
            fut = self._inflight.get(key)
            if fut is not None:
                self.c_dedup_inflight += 1
                futures.append(fut)
                continue
            hit = self._cache_get(key)
            if hit is not None:
                self.c_cache_hits += 1
                done: asyncio.Future = self._loop.create_future()
                done.set_result(hit)
                futures.append(done)
                continue
            fut = self._loop.create_future()
            self._inflight[key] = fut
            futures.append(fut)
            await self._queue.put((job, fut))
        if deadline_s is None:
            deadline_s = self.request_deadline_s
        gathered = asyncio.gather(*futures)
        if deadline_s is None:
            results = list(await gathered)
        else:
            try:
                # shield: a timed-out request must not cancel futures
                # other coalesced requests are still awaiting
                results = list(await asyncio.wait_for(
                    asyncio.shield(gathered), deadline_s))
            except asyncio.TimeoutError:
                self.c_deadline_exceeded += 1
                trace_count("service.deadline_exceeded")
                # the gather keeps running detached; swallow its
                # eventual result so it never logs "never retrieved"
                gathered.add_done_callback(_swallow_result)
                raise DeadlineExceeded([job.key for job in jobs]) \
                    from None
        self.submit_s += time.perf_counter() - t0
        return results

    def status(self, key: str) -> tuple[str, Optional[dict]]:
        """``("done", record)`` / ``("pending", None)`` /
        ``("unknown", None)`` for one fingerprint key."""
        if key in self._inflight:
            return "pending", None
        if self.cache is not None:
            hit = self.cache.peek(key)
            if hit is not None:
                return "done", result_to_wire(hit)
        return "unknown", None

    # ---------------------------------------------------------- dispatcher

    async def _dispatch(self) -> None:
        """Single consumer: drain the queue into micro-batches."""
        stopping = False
        while not stopping:
            item = await self._queue.get()
            if item is _STOP:
                break
            batch = [item]
            deadline = self._loop.time() + self.batch_window_s
            while len(batch) < self.batch_max:
                remaining = deadline - self._loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(),
                                                 remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is _STOP:
                    stopping = True
                    break
                batch.append(nxt)
            await self._run_batch(batch)

    async def _run_batch(self, batch: list) -> None:
        jobs = [job for job, _ in batch]
        config = RunnerConfig(n_workers=self.n_workers, cache=self.cache,
                              chunk_size=self.chunk_size,
                              job_deadline_s=self.job_deadline_s,
                              max_retries=self.max_retries)
        try:
            _faults.fault_point("service.batch", jobs[0].key)
            results = await self._loop.run_in_executor(
                None, run_jobs, jobs, config)
        except Exception as exc:
            # run_jobs contains per-job failures; landing here means the
            # dispatch machinery itself broke (or a fault was injected)
            # -- fail this batch's waiters and feed the breaker
            self.c_batch_failures += 1
            self._consec_batch_failures += 1
            trace_count("service.batch_failures")
            half_open_probe_failed = self._breaker_open_until is not None
            if self.breaker_threshold > 0 and (
                    half_open_probe_failed or
                    self._consec_batch_failures >= self.breaker_threshold):
                self._breaker_open_until = (time.monotonic() +
                                            self.breaker_cooldown_s)
                self.c_breaker_trips += 1
                trace_count("service.breaker_trips")
            for job, fut in batch:
                self._inflight.pop(job.key, None)
                if not fut.done():
                    fut.set_exception(exc)
            return
        # any completed batch -- including the half-open probe -- closes
        # the breaker and resets the consecutive-failure streak
        self._consec_batch_failures = 0
        self._breaker_open_until = None
        self.c_batches += 1
        self.c_batch_jobs += len(batch)
        self.c_compiled += sum(1 for r in results if not r.cached)
        for (job, fut), result in zip(batch, results):
            self._inflight.pop(job.key, None)
            if not fut.done():
                fut.set_result(result)

    # ------------------------------------------------------------- metrics

    def metrics(self) -> dict:
        """One JSON-shaped snapshot: service, cache, pool, arena and
        tracing counters (the source of both ``/metrics.json`` and the
        Prometheus ``/metrics`` exposition)."""
        import repro
        from repro.kernels import backend_info
        from repro.obs.trace import trace_snapshot
        from repro.sched import arena_counters

        return {
            "uptime_s": round(time.monotonic() - self.t_started, 3),
            "version": repro.__version__,
            "kernels": backend_info(),
            "service": {
                "requests": self.c_requests,
                "jobs": self.c_jobs,
                "dedup_inflight": self.c_dedup_inflight,
                "served_from_cache": self.c_cache_hits,
                "compiled": self.c_compiled,
                "batches": self.c_batches,
                "batch_jobs": self.c_batch_jobs,
                "inflight": len(self._inflight),
                "queue_depth": (self._queue.qsize()
                                if self._queue is not None else 0),
                "submit_s": round(self.submit_s, 6),
                "n_workers": self.n_workers,
                "shed": self.c_shed,
                "breaker_rejected": self.c_breaker_rejected,
                "breaker_trips": self.c_breaker_trips,
                "breaker_state": self.breaker_state(),
                "batch_failures": self.c_batch_failures,
                "deadline_exceeded": self.c_deadline_exceeded,
                "cache_errors": self.c_cache_errors,
            },
            "cache": (self.cache.stats()
                      if self.cache is not None else None),
            "pool": pool_mod.session_counters(),
            "arena": arena_counters(),
            "trace": trace_snapshot(),
            "faults": {
                "enabled": _faults.faults_enabled(),
                "injected": _faults.fault_counters(),
            },
        }

"""Asyncio HTTP/1.1 front door for the sweep service.

A deliberately minimal server on ``asyncio.start_server`` -- stdlib
only, no frameworks -- speaking just enough HTTP/1.1 (request line,
headers, ``Content-Length`` bodies, keep-alive) for the four routes:

* ``POST /jobs``        -- compile job specs (see :mod:`.jobspec`);
  responds with the JSON results once every job in the request settles
* ``GET /jobs/<key>``   -- poll one fingerprint: 200 done / 202 pending
  / 404 unknown (the done record carries the per-stage trace summary on
  ``extras["trace"]`` when tracing is enabled)
* ``GET /healthz``      -- liveness probe: version, uptime, worker count
* ``GET /metrics``      -- Prometheus text exposition (HELP/TYPE lines,
  ``_total`` counters, per-stage latency histograms) over service +
  cache + pool + arena + tracing counters
* ``GET /metrics.json`` -- the same snapshot, JSON-shaped

:func:`serve` is the blocking daemon entry point (the CLI's ``serve``
subcommand): it installs SIGTERM/SIGINT handlers that stop accepting,
drain in-flight jobs, flush the cache shards and retire the worker pools
before exiting.  :class:`ServerHandle`/:func:`start_in_thread` run the
same server on a background thread for tests, benchmarks and the CI
smoke job.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import logging
import math
import signal
import sys
import threading
from typing import Optional, TextIO

from repro import faults as _faults

from .engine import (DeadlineExceeded, ServiceOverloaded, SweepService,
                     result_to_wire)
from .jobspec import JobSpecError, parse_jobs

logger = logging.getLogger("repro.service.daemon")

#: request body cap -- a sweep of thousands of specs fits comfortably;
#: anything bigger is a client bug, not a workload
MAX_BODY_BYTES = 16 * 1024 * 1024

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed",
            413: "Payload Too Large", 500: "Internal Server Error",
            503: "Service Unavailable", 504: "Gateway Timeout"}


def _response(status: int, payload: object, *, keep_alive: bool = True,
              headers: Optional[dict] = None) -> bytes:
    """Serialise one response; a ``str`` payload goes out as Prometheus
    text exposition, anything else as JSON."""
    if isinstance(payload, str):
        body = payload.encode("utf-8")
        content_type = "text/plain; version=0.0.4; charset=utf-8"
    else:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        content_type = "application/json"
    extra = "".join(f"{name}: {value}\r\n"
                    for name, value in (headers or {}).items())
    head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"{extra}"
            f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
            f"\r\n").encode("ascii")
    return head + body


async def _read_request(reader: asyncio.StreamReader
                        ) -> "Optional[tuple[str, str, dict, bytes]]":
    """``(method, path, headers, body)`` or None on a closed socket."""
    request_line = await reader.readline()
    if not request_line:
        return None
    try:
        method, target, _version = request_line.decode("ascii").split()
    except ValueError:
        raise JobSpecError("malformed request line")
    headers: dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    length = int(headers.get("content-length", "0") or "0")
    if length > MAX_BODY_BYTES:
        raise JobSpecError("request body too large")
    body = await reader.readexactly(length) if length else b""
    return method, target, headers, body


class _Http:
    """Connection handler bound to one :class:`SweepService`."""

    def __init__(self, service: SweepService) -> None:
        self.service = service
        #: live connection-handler tasks, cancelled at shutdown so idle
        #: keep-alive clients cannot pin the drained loop open
        self.connections: "set[asyncio.Task]" = set()
        #: the subset mid-request (read done, response not yet flushed);
        #: shutdown waits these out instead of cancelling them
        self.busy: "set[asyncio.Task]" = set()

    async def handle(self, reader: asyncio.StreamReader,
                     writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        self.connections.add(task)
        try:
            while True:
                try:
                    request = await _read_request(reader)
                except JobSpecError as exc:
                    writer.write(_response(400, {"error": str(exc)},
                                           keep_alive=False))
                    break
                except (asyncio.IncompleteReadError, ConnectionError):
                    break
                if request is None:
                    break
                method, target, headers, body = request
                self.busy.add(task)
                try:
                    status, payload, extra = await self._route(
                        method, target, body)
                    keep = headers.get("connection", "").lower() != "close"
                    writer.write(_response(status, payload,
                                           keep_alive=keep,
                                           headers=extra))
                    await writer.drain()
                finally:
                    self.busy.discard(task)
                if not keep:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.connections.discard(task)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _route(self, method: str, target: str, body: bytes
                     ) -> "tuple[int, dict | str, Optional[dict]]":
        """``(status, payload, extra_headers)`` for one request."""
        service = self.service
        if target == "/healthz" and method == "GET":
            import repro
            from repro.kernels import active_name
            return 200, {"status": "ok",
                         "version": repro.__version__,
                         "uptime_s": service.metrics()["uptime_s"],
                         "n_workers": service.n_workers,
                         "kernels": active_name(),
                         "breaker": service.breaker_state()}, None
        if target == "/metrics" and method == "GET":
            from repro.obs.report import prometheus_text
            return 200, prometheus_text(service.metrics()), None
        if target == "/metrics.json" and method == "GET":
            return 200, service.metrics(), None
        if target == "/jobs" and method == "POST":
            try:
                specs = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                return 400, {"error": f"request body is not JSON: "
                                      f"{exc}"}, None
            try:
                jobs = parse_jobs(specs)
            except JobSpecError as exc:
                return 400, {"error": str(exc)}, None
            try:
                # request-handling injection seam, keyed by the body
                # digest so a replay storms the same requests
                _faults.fault_point(
                    "daemon.request", hashlib.sha256(body).hexdigest())
                results = await service.submit(jobs)
            except ServiceOverloaded as exc:
                retry_after = max(1, math.ceil(exc.retry_after_s))
                return 503, {"error": str(exc),
                             "retry_after_s": exc.retry_after_s}, \
                    {"Retry-After": str(retry_after)}
            except DeadlineExceeded as exc:
                # the jobs keep compiling: hand back the keys so the
                # client polls GET /jobs/<key> instead of resubmitting
                return 504, {"error": str(exc), "status": "pending",
                             "keys": exc.keys}, None
            except asyncio.CancelledError:
                raise
            except Exception as exc:
                return 500, {"error": f"{type(exc).__name__}: "
                                      f"{exc}"}, None
            return 200, {"results": [result_to_wire(r)
                                     for r in results]}, None
        if target.startswith("/jobs/") and method == "GET":
            key = target[len("/jobs/"):]
            state, record = service.status(key)
            status = {"done": 200, "pending": 202}.get(state, 404)
            return status, {"key": key, "status": state,
                            "result": record}, None
        if target in ("/jobs", "/healthz", "/metrics",
                      "/metrics.json") or \
                target.startswith("/jobs/"):
            return 405, {"error": f"{method} not allowed on "
                                  f"{target}"}, None
        return 404, {"error": f"no route {target}"}, None


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

async def _serve(service: SweepService, host: str, port: int, *,
                 stop: asyncio.Event,
                 ready: "Optional[threading.Event]" = None,
                 bound: Optional[list] = None,
                 install_signals: bool = True,
                 log: TextIO = sys.stderr,
                 stage: Optional[dict] = None) -> None:
    # *stage* is a shared progress marker for the shutdown sequence:
    # ServerHandle.stop reads it to name where a stuck drain is wedged
    if stage is None:
        stage = {}
    stage["shutdown"] = "serving"
    await service.start()
    http = _Http(service)
    server = await asyncio.start_server(http.handle, host, port)
    actual_port = server.sockets[0].getsockname()[1]
    if bound is not None:
        bound.append(actual_port)
    if install_signals:
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, ValueError):  # pragma: no cover
                pass  # non-main thread / non-POSIX: rely on stop()
    print(f"repro-vliw service listening on http://{host}:{actual_port} "
          f"(workers={service.n_workers})", file=log, flush=True)
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
    finally:
        # stop accepting first, then drain what was already admitted
        stage["shutdown"] = "closing listener"
        server.close()
        await server.wait_closed()
        stage["shutdown"] = "draining service"
        await service.stop(drain=True)
        # let mid-request handlers flush their responses, then drop the
        # idle keep-alive connections that would otherwise pin the loop
        stage["shutdown"] = "flushing busy handlers"
        loop = asyncio.get_running_loop()
        deadline = loop.time() + 10.0
        while http.busy and loop.time() < deadline:
            await asyncio.sleep(0.02)
        stage["shutdown"] = "cancelling idle connections"
        for task in list(http.connections):
            task.cancel()
        if http.connections:
            await asyncio.gather(*http.connections,
                                 return_exceptions=True)
        if service.cache is not None and hasattr(service.cache, "gc") \
                and getattr(service.cache, "max_bytes", None) is not None:
            # final flush: compact shards down to budget before exit
            stage["shutdown"] = "compacting cache shards"
            service.cache.gc()
        stage["shutdown"] = "stopped"
        print("repro-vliw service drained and stopped", file=log,
              flush=True)


def serve(service: SweepService, host: str = "127.0.0.1",
          port: int = 8123) -> None:
    """Run the daemon until SIGTERM/SIGINT (the CLI ``serve`` command)."""
    async def main() -> None:
        await _serve(service, host, port, stop=asyncio.Event())

    asyncio.run(main())


class ServerHandle:
    """A daemon running on a background thread (tests/benchmarks/CI)."""

    def __init__(self, service: SweepService, host: str,
                 thread: threading.Thread, port: int,
                 loop: asyncio.AbstractEventLoop,
                 stop_event: asyncio.Event,
                 stage: Optional[dict] = None) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._thread = thread
        self._loop = loop
        self._stop_event = stop_event
        self._stage = stage if stage is not None else {}

    @property
    def address(self) -> tuple[str, int]:
        return self.host, self.port

    def stop(self, timeout: float = 30.0) -> bool:
        """Graceful shutdown: drain, flush, retire; join the thread.

        Returns True when the daemon thread actually stopped.  A join
        that times out is *not* silent success: the stuck shutdown
        stage (drain, handler flush, shard compaction...) is logged so
        a wedged daemon in a test run or CI job names its suspect.
        """
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout)
            if self._thread.is_alive():
                logger.warning(
                    "sweep-service thread still alive %.1fs after stop "
                    "(stuck at stage: %s); abandoning the join -- the "
                    "daemon thread may still hold its port", timeout,
                    self._stage.get("shutdown", "serving"))
                return False
        return True


def start_in_thread(service: SweepService, host: str = "127.0.0.1",
                    port: int = 0, log: TextIO = sys.stderr
                    ) -> ServerHandle:
    """Start the daemon on a fresh thread; returns once it is accepting.

    ``port=0`` binds an ephemeral port (read it off the handle).  The
    server thread owns its own event loop; ``handle.stop()`` performs
    the same graceful drain as SIGTERM on the blocking daemon.
    """
    ready = threading.Event()
    holder: dict = {}
    bound: list = []
    stage: dict = {}

    def run() -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        stop = asyncio.Event()
        holder["loop"] = loop
        holder["stop"] = stop
        try:
            loop.run_until_complete(_serve(
                service, host, port, stop=stop, ready=ready, bound=bound,
                install_signals=False, log=log, stage=stage))
        finally:
            loop.close()

    thread = threading.Thread(target=run, name="repro-sweep-service",
                              daemon=True)
    thread.start()
    if not ready.wait(timeout=30.0):  # pragma: no cover - startup hang
        raise RuntimeError("sweep service failed to start within 30s")
    return ServerHandle(service, host, thread, bound[0],
                        holder["loop"], holder["stop"], stage)

"""Iterative Modulo Scheduling (Rau, 1996) for single-cluster machines.

The algorithm, as used by the paper's experimental framework:

1. ``II = MII``; compute height-based priorities.
2. Repeatedly pick the highest-priority unscheduled op.  Its *earliest
   start* is forced by already-scheduled predecessors::

       Estart = max(0, max_p sigma(p) + lat(p->op) - d(p->op) * II)

3. Search the II-wide window ``[Estart, Estart + II - 1]`` for a row with a
   free FU; place the op in the first one (placing later than
   ``Estart + II - 1`` is pointless -- rows repeat modulo II).
4. If no row is free, *force* the op at ``max(Estart, last_time + 1)``
   (guaranteeing forward progress on re-schedules), evicting whoever holds
   the FU row, and unschedule any op whose dependence the forced placement
   violates.
5. Each placement costs one unit of budget (``budget_ratio * n_ops``); when
   the budget is exhausted, give up on this II and retry at ``II + 1``.

The implementation validates its own output before returning it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.ddg import Ddg
from repro.ir.validate import validate_ddg
from repro.kernels import active as _kernel_backend
from repro.machine.machine import Machine

from .arena import SchedArena, global_arena
from .iisearch import DEFAULT_II_SEARCH, search_ii
from .mii import mii_report
from .mrt import PackedMRT
from .priority import priority_order_idx
from .schedule import ModuloSchedule, ScheduleStats, SchedulingError

#: Default Rau budget multiplier (the 1996 paper finds 3-6 sufficient).
DEFAULT_BUDGET_RATIO = 6


@dataclass
class ImsConfig:
    """Tunables of the IMS search."""

    budget_ratio: int = DEFAULT_BUDGET_RATIO
    max_ii: Optional[int] = None      # default: mii + n_ops + sum latency
    validate_input: bool = True
    validate_output: bool = True
    ii_search: str = DEFAULT_II_SEARCH

    def budget_for(self, n_ops: int) -> int:
        return max(1, self.budget_ratio * n_ops)

    def ii_limit(self, ddg: Ddg, start_ii: int) -> int:
        if self.max_ii is not None:
            return self.max_ii
        # n_ops * max-latency cycles is enough for a fully serial schedule
        return start_ii + ddg.n_ops + ddg.sum_latency() + 1


def try_schedule_at_ii(ddg: Ddg, machine: Machine, ii: int, *,
                       budget: int,
                       stats: Optional[ScheduleStats] = None,
                       arena: Optional[SchedArena] = None,
                       ) -> Optional[dict[int, int]]:
    """One IMS attempt at a fixed II; returns ``sigma`` or ``None``.

    Runs entirely on the packed core: op indices from
    :meth:`~repro.ir.ddg.Ddg.arrays`, CSR edge walks for Estart and
    violation drops, and a :class:`~repro.sched.mrt.PackedMRT` keyed by
    integer pool ids.  Decisions (and therefore the returned sigma) are
    identical to the historical edge-object implementation -- pinned by
    the golden-schedule equivalence tests.  With an *arena* the
    reservation table is borrowed from its pool instead of allocated.
    """
    arr = ddg.arrays()
    n = arr.n
    order = priority_order_idx(arr, ii)
    pos = [0] * n
    for rank, i in enumerate(order):
        pos[i] = rank
    cursor = 0
    if arena is not None:
        arena.begin_attempt()
        mrt = arena.take_mrt(ii, machine.fus.pool_caps)
    else:
        mrt = PackedMRT(ii, machine.fus.pool_caps)
    ids = arr.ids
    index = arr.index
    pool = arr.pool
    in_ptr, in_src = arr.in_ptr, arr.in_src
    in_lat, in_dist = arr.in_lat, arr.in_dist
    out_ptr, out_dst = arr.out_ptr, arr.out_dst
    out_lat, out_dist = arr.out_lat, arr.out_dist
    sig = [-1] * n          # issue time per op index (-1 = unscheduled)
    last_time = [-1] * n
    unscheduled = set(order)
    # wide-fan-in ops take the kernel backend's gathered earliest-start;
    # narrow ones keep the inline CSR walk (identical results)
    backend = _kernel_backend()
    arrival_min = backend.arrival_batch_min
    backend_estart = backend.estart
    # table hoists: the full-row mask list and caps array are mutated in
    # place (never reassigned) during an attempt, so the inlined
    # first_free below -- same mask rotation as PackedMRT.first_free --
    # reads them through loop-invariant locals
    full = mrt._full
    caps = mrt.caps
    counts = mrt._counts
    rows = mrt._rows
    usage = mrt._usage
    where = mrt._where
    all_full = (1 << ii) - 1
    mrt_remove = mrt.remove
    mrt_evict = mrt.evict_for

    while unscheduled:
        if budget <= 0:
            return None
        budget -= 1
        # ready pick: first op of `order` still unscheduled (the cursor
        # only rewinds on evictions, so the scan is O(1) amortised)
        while order[cursor] not in unscheduled:
            cursor += 1
        i = order[cursor]
        unscheduled.discard(i)

        if in_ptr[i + 1] - in_ptr[i] >= arrival_min:
            est = backend_estart(arr, i, sig, ii)
        else:
            est = 0
            for j in range(in_ptr[i], in_ptr[i + 1]):
                t = sig[in_src[j]]
                if t >= 0:
                    cand = t + in_lat[j] - in_dist[j] * ii
                    if cand > est:
                        est = cand

        # inlined PackedMRT.first_free (one probe per placement, the
        # attempt's hottest expression)
        p_i = pool[i]
        if caps[p_i] <= 0:
            placed_at = -1
        else:
            mask = full[p_i]
            if not mask:
                placed_at = est
            elif mask == all_full:
                placed_at = -1
            else:
                r = est % ii
                if r:
                    mask = ((mask >> r) | (mask << (ii - r))) & all_full
                fr = ~mask & all_full
                placed_at = est + (fr & -fr).bit_length() - 1
        if placed_at < 0:
            # forced placement with eviction
            placed_at = est
            prev = last_time[i]
            if prev >= 0 and placed_at <= prev:
                placed_at = prev + 1
            evicted = mrt_evict(p_i, placed_at)
            if stats is not None:
                stats.evictions += len(evicted)
            for victim in evicted:
                v = index[victim]
                sig[v] = -1
                unscheduled.add(v)
                if pos[v] < cursor:
                    cursor = pos[v]

        # inlined PackedMRT.place (validity is guaranteed here: the
        # probe above found a free unit, or evict_for just made room)
        op_id = ids[i]
        row = placed_at % ii
        slot = p_i * ii + row
        rows[slot].append(op_id)
        cnt = counts[slot] + 1
        counts[slot] = cnt
        if cnt >= caps[p_i]:
            full[p_i] |= 1 << row
        usage[p_i] += 1
        mrt._load += 1
        mrt._mut += 1
        where[op_id] = (p_i, placed_at)
        sig[i] = placed_at
        last_time[i] = placed_at
        if stats is not None:
            stats.attempts += 1

        # drop scheduled ops whose dependence the new placement violates
        t = placed_at
        for j in range(out_ptr[i], out_ptr[i + 1]):
            d = out_dst[j]
            ts = sig[d]
            if ts >= 0 and d != i and ts + out_dist[j] * ii \
                    < t + out_lat[j]:
                sig[d] = -1
                mrt_remove(ids[d])
                unscheduled.add(d)
                if pos[d] < cursor:
                    cursor = pos[d]
        for j in range(in_ptr[i], in_ptr[i + 1]):
            s = in_src[j]
            tp = sig[s]
            if tp >= 0 and s != i and t + in_dist[j] * ii \
                    < tp + in_lat[j]:
                sig[s] = -1
                mrt_remove(ids[s])
                unscheduled.add(s)
                if pos[s] < cursor:
                    cursor = pos[s]

    return {ids[i]: sig[i] for i in range(n)}


def modulo_schedule(ddg: Ddg, machine: Machine, *,
                    config: Optional[ImsConfig] = None,
                    start_ii: Optional[int] = None,
                    ii_search: Optional[str] = None) -> ModuloSchedule:
    """Schedule *ddg* on a single-cluster *machine* with IMS.

    Raises :class:`SchedulingError` if no II up to the limit admits a
    schedule (in practice only malformed inputs do).  The machine's latency
    model, if any, is applied first.  ``ii_search`` overrides the
    config's II search mode (see :mod:`repro.sched.iisearch`).
    """
    cfg = config or ImsConfig()
    ddg = machine.retime(ddg)
    if cfg.validate_input:
        validate_ddg(ddg)
    if not machine.can_execute(ddg):
        raise SchedulingError(
            f"machine {machine.name} lacks FU classes for {ddg.name!r}")

    report = mii_report(ddg, machine)
    first_ii = max(report.mii, start_ii or 1)
    stats = ScheduleStats(mii=report.mii, res_mii=report.res,
                          rec_mii=report.rec)
    limit = cfg.ii_limit(ddg, first_ii)
    arena = global_arena()

    def probe(ii: int) -> Optional[dict[int, int]]:
        stats.iis_tried += 1
        stats.budget = cfg.budget_for(ddg.n_ops)
        return try_schedule_at_ii(ddg, machine, ii, budget=stats.budget,
                                  stats=stats, arena=arena)

    found = search_ii(probe, first_ii, limit,
                      mode=ii_search or cfg.ii_search)
    if found is None:
        raise SchedulingError(
            f"no schedule for {ddg.name!r} on {machine.name} "
            f"with II <= {limit}")
    ii, sigma = found
    # normalise: shift so the earliest issue is cycle >= 0 (IMS never
    # goes negative, but keep the invariant explicit)
    shift = min(sigma.values())
    if shift:
        sigma = {o: t - shift for o, t in sigma.items()}
    sched = ModuloSchedule(
        ddg=ddg, ii=ii, sigma=sigma, machine_name=machine.name,
        stats=stats)
    if cfg.validate_output:
        sched.validate(machine.fus.pool_caps)
    return sched

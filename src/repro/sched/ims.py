"""Iterative Modulo Scheduling (Rau, 1996) for single-cluster machines.

The algorithm, as used by the paper's experimental framework:

1. ``II = MII``; compute height-based priorities.
2. Repeatedly pick the highest-priority unscheduled op.  Its *earliest
   start* is forced by already-scheduled predecessors::

       Estart = max(0, max_p sigma(p) + lat(p->op) - d(p->op) * II)

3. Search the II-wide window ``[Estart, Estart + II - 1]`` for a row with a
   free FU; place the op in the first one (placing later than
   ``Estart + II - 1`` is pointless -- rows repeat modulo II).
4. If no row is free, *force* the op at ``max(Estart, last_time + 1)``
   (guaranteeing forward progress on re-schedules), evicting whoever holds
   the FU row, and unschedule any op whose dependence the forced placement
   violates.
5. Each placement costs one unit of budget (``budget_ratio * n_ops``); when
   the budget is exhausted, give up on this II and retry at ``II + 1``.

The implementation validates its own output before returning it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.ir.ddg import Ddg
from repro.ir.validate import validate_ddg
from repro.machine.machine import Machine

from .mii import mii_report
from .mrt import ModuloReservationTable
from .priority import priority_order
from .schedule import ModuloSchedule, ScheduleStats, SchedulingError

#: Default Rau budget multiplier (the 1996 paper finds 3-6 sufficient).
DEFAULT_BUDGET_RATIO = 6


@dataclass
class ImsConfig:
    """Tunables of the IMS search."""

    budget_ratio: int = DEFAULT_BUDGET_RATIO
    max_ii: Optional[int] = None      # default: mii + n_ops + sum latency
    validate_input: bool = True
    validate_output: bool = True

    def budget_for(self, n_ops: int) -> int:
        return max(1, self.budget_ratio * n_ops)

    def ii_limit(self, ddg: Ddg, start_ii: int) -> int:
        if self.max_ii is not None:
            return self.max_ii
        # n_ops * max-latency cycles is enough for a fully serial schedule
        return start_ii + ddg.n_ops + ddg.sum_latency() + 1


def _estart(ddg: Ddg, sigma: dict[int, int], op_id: int, ii: int) -> int:
    est = 0
    for e in ddg.in_edges(op_id):
        t = sigma.get(e.src)
        if t is None:
            continue
        est = max(est, t + e.latency - e.distance * ii)
    return est


def _unschedule_violations(ddg: Ddg, sigma: dict[int, int],
                           mrt: ModuloReservationTable,
                           op_id: int, ii: int) -> int:
    """After (force-)placing *op_id*, drop scheduled ops whose dependence
    with it is now violated.  Returns how many were dropped."""
    t = sigma[op_id]
    dropped = 0
    for e in ddg.out_edges(op_id):
        ts = sigma.get(e.dst)
        if ts is not None and e.dst != op_id:
            if ts + e.distance * ii < t + e.latency:
                del sigma[e.dst]
                mrt.remove(e.dst)
                dropped += 1
    for e in ddg.in_edges(op_id):
        tp = sigma.get(e.src)
        if tp is not None and e.src != op_id and e.src in sigma:
            if t + e.distance * ii < tp + e.latency:
                del sigma[e.src]
                mrt.remove(e.src)
                dropped += 1
    return dropped


def try_schedule_at_ii(ddg: Ddg, machine: Machine, ii: int, *,
                       budget: int,
                       stats: Optional[ScheduleStats] = None,
                       ) -> Optional[dict[int, int]]:
    """One IMS attempt at a fixed II; returns ``sigma`` or ``None``."""
    order = priority_order(ddg, ii)
    pos = {o: i for i, o in enumerate(order)}
    cursor = 0
    mrt = ModuloReservationTable(ii, machine.fus.as_dict())
    sigma: dict[int, int] = {}
    last_time: dict[int, int] = {}
    unscheduled = set(order)

    def readd(ops) -> None:
        """Re-activate evicted ops, rewinding the ready cursor."""
        nonlocal cursor
        for o in ops:
            unscheduled.add(o)
            if pos[o] < cursor:
                cursor = pos[o]

    while unscheduled:
        if budget <= 0:
            return None
        budget -= 1
        # ready pick: first op of `order` still unscheduled (the cursor
        # only rewinds on evictions, so the scan is O(1) amortised)
        while order[cursor] not in unscheduled:
            cursor += 1
        op_id = order[cursor]
        unscheduled.discard(op_id)
        op = ddg.op(op_id)
        est = _estart(ddg, sigma, op_id, ii)

        placed_at: Optional[int] = None
        for t in range(est, est + ii):
            if mrt.can_place(op.fu_type, t):
                placed_at = t
                break

        if placed_at is None:
            # forced placement with eviction
            placed_at = est
            prev = last_time.get(op_id)
            if prev is not None and placed_at <= prev:
                placed_at = prev + 1
            evicted = mrt.evict_for(op.fu_type, placed_at)
            for victim in evicted:
                del sigma[victim]
            if stats is not None:
                stats.evictions += len(evicted)
            readd(evicted)

        mrt.place(op_id, op.fu_type, placed_at)
        sigma[op_id] = placed_at
        last_time[op_id] = placed_at
        if stats is not None:
            stats.attempts += 1

        before = set(sigma)
        _unschedule_violations(ddg, sigma, mrt, op_id, ii)
        readd(before - set(sigma))

    return sigma


def modulo_schedule(ddg: Ddg, machine: Machine, *,
                    config: Optional[ImsConfig] = None,
                    start_ii: Optional[int] = None) -> ModuloSchedule:
    """Schedule *ddg* on a single-cluster *machine* with IMS.

    Raises :class:`SchedulingError` if no II up to the limit admits a
    schedule (in practice only malformed inputs do).  The machine's latency
    model, if any, is applied first.
    """
    cfg = config or ImsConfig()
    ddg = machine.retime(ddg)
    if cfg.validate_input:
        validate_ddg(ddg)
    if not machine.can_execute(ddg):
        raise SchedulingError(
            f"machine {machine.name} lacks FU classes for {ddg.name!r}")

    report = mii_report(ddg, machine)
    first_ii = max(report.mii, start_ii or 1)
    stats = ScheduleStats(mii=report.mii, res_mii=report.res,
                          rec_mii=report.rec)
    limit = cfg.ii_limit(ddg, first_ii)

    for ii in range(first_ii, limit + 1):
        stats.iis_tried += 1
        stats.budget = cfg.budget_for(ddg.n_ops)
        sigma = try_schedule_at_ii(ddg, machine, ii,
                                   budget=stats.budget, stats=stats)
        if sigma is None:
            continue
        # normalise: shift so the earliest issue is cycle >= 0 (IMS never
        # goes negative, but keep the invariant explicit)
        shift = min(sigma.values())
        if shift:
            sigma = {o: t - shift for o, t in sigma.items()}
        sched = ModuloSchedule(
            ddg=ddg, ii=ii, sigma=sigma, machine_name=machine.name,
            stats=stats)
        if cfg.validate_output:
            sched.validate(machine.fus.as_dict())
        return sched

    raise SchedulingError(
        f"no schedule for {ddg.name!r} on {machine.name} with II <= {limit}")

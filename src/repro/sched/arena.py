"""Scheduling arenas: preallocated, generation-stamped attempt state.

Every II attempt used to build its scratch state from nothing: a fresh
:class:`~repro.sched.mrt.PackedMRT` per cluster (one count vector plus
``N_POOLS * II`` occupant lists each), a fresh ring-adjacency matrix, and
fresh per-op mirrors.  On the paper sweeps -- dozens of loops x machines
x candidate IIs -- that allocation churn dominates the *control* hot
path the way edge objects once dominated the data hot path.

A :class:`SchedArena` owns those buffers across attempts, loops and jobs:

* **MRT pool** -- ``take_mrts(k, ii, caps)`` hands back *k* tables reset
  in O(touched slots) (see :meth:`PackedMRT.reset`); the pool grows to
  the widest attempt ever seen (the loop's *shape class*) and then stops
  allocating.
* **Generation stamps** -- :meth:`begin_attempt` bumps the arena
  generation and recycles every table handed out for the previous
  attempt.  A borrowed table is only valid for the generation it was
  taken in, which is why arena-backed state must never escape the II
  driver that owns the arena (drivers detach plain dicts on success).
* **Topology cache** -- the ring adjacency matrix and cluster list are
  pure functions of the cluster count; they are computed once per ring
  size and shared by every attempt.
* **Counters** -- ``hits`` (buffer reuses), ``allocs`` (new buffers),
  ``resets`` (attempt begins) feed the perf telemetry
  (``ARENA_COUNTERS.json`` in CI) so arena effectiveness is observable,
  not assumed.
* **Backend-native buffers** -- pooled tables carry whatever scratch the
  active kernel backend (:mod:`repro.kernels`) hangs off them (e.g. the
  numpy backend's zero-copy int32 count-vector views), so the vectorised
  paths stay allocation-free across attempts exactly like the packed
  buffers themselves; ``counters()`` records which backend the process
  ran so the CI artifact attributes the numbers correctly.

The module-global arena (:func:`global_arena`) is what the II drivers
use by default; worker processes each get their own copy-on-fork
instance, so sweep workers reuse arenas across jobs for free.  The
low-level ``try_*`` entry points keep ``arena=None`` defaults -- unit
tests that poke at attempt state get fresh, unshared buffers.
"""

from __future__ import annotations

from repro.kernels import active_name as _kernel_name
from repro.machine.cluster import ClusteredMachine

from .mrt import PackedMRT


class SchedArena:
    """Reusable scratch buffers for scheduling attempts (one per process
    in practice; not thread-safe, like the engines themselves)."""

    __slots__ = ("generation", "resets", "hits", "allocs",
                 "_mrts", "_mrts_out", "_adjacency")

    def __init__(self) -> None:
        self.generation = 0
        self.resets = 0          # attempts begun
        self.hits = 0            # buffers served from the pool
        self.allocs = 0          # buffers newly allocated
        self._mrts: list[PackedMRT] = []
        self._mrts_out = 0       # tables handed out this generation
        #: n_clusters -> (adjacency matrix, adjacency bitmasks, cluster
        #: list); ring topology is a pure function of the cluster count.
        self._adjacency: dict[
            int, tuple[list[list[bool]], list[int], list[int]]] = {}

    # ---------------------------------------------------------- attempts

    def begin_attempt(self) -> int:
        """Start a new attempt: recycle all borrowed buffers and bump the
        generation stamp.  Returns the new generation."""
        self.generation += 1
        self.resets += 1
        self._mrts_out = 0
        return self.generation

    def take_mrts(self, k: int, ii: int,
                  capacities: dict) -> list[PackedMRT]:
        """Borrow *k* empty reservation tables at *ii* for this attempt.

        Tables stay owned by the arena: they are recycled wholesale at the
        next :meth:`begin_attempt`, so callers must not keep them past the
        attempt that borrowed them.
        """
        pool = self._mrts
        start = self._mrts_out
        end = start + k
        self.hits += min(len(pool), end) - start
        while len(pool) < end:
            pool.append(PackedMRT(ii, capacities))
            self.allocs += 1
        self._mrts_out = end
        return [pool[i].reset(ii, capacities) for i in range(start, end)]

    def take_mrt(self, ii: int, capacities: dict) -> PackedMRT:
        return self.take_mrts(1, ii, capacities)[0]

    # ---------------------------------------------------------- topology

    def ring_topology(self, cm: ClusteredMachine
                      ) -> tuple[list[list[bool]], list[int], list[int]]:
        """``(adjacency, adj_masks, all_clusters)`` for *cm*'s ring,
        cached by cluster count (ring adjacency depends on nothing else).
        ``adj_masks[c]`` has bit *b* set iff *c* and *b* are adjacent."""
        n = cm.n_clusters
        cached = self._adjacency.get(n)
        if cached is None:
            adj = [[cm.are_adjacent(a, b) for b in range(n)]
                   for a in range(n)]
            masks = [sum(1 << b for b in range(n) if row[b])
                     for row in adj]
            cached = (adj, masks, list(range(n)))
            self._adjacency[n] = cached
            self.allocs += 1
        else:
            self.hits += 1
        return cached

    # ---------------------------------------------------------- telemetry

    def counters(self) -> dict:
        """Counters for telemetry records and the CI artifact."""
        return {"generation": self.generation, "resets": self.resets,
                "hits": self.hits, "allocs": self.allocs,
                "pooled_mrts": len(self._mrts),
                "kernels": _kernel_name()}


#: Process-wide arena used by the II drivers.  Fork-based sweep workers
#: inherit a snapshot and then grow their own copy, so arena reuse inside
#: each worker needs no extra plumbing.
_GLOBAL_ARENA = SchedArena()


def global_arena() -> SchedArena:
    """The process-wide scheduling arena."""
    return _GLOBAL_ARENA


def arena_counters() -> dict:
    """Counters of the process-wide arena (telemetry surface)."""
    return _GLOBAL_ARENA.counters()

"""Lower bounds on the initiation interval (MII).

``MII = max(ResMII, RecMII)`` (Rau, *Iterative Modulo Scheduling*, 1996):

* **ResMII** -- resource bound: some FU class must issue ``n_t`` ops every
  II cycles on ``f_t`` units, so ``II >= ceil(n_t / f_t)``.
* **RecMII** -- recurrence bound: every dependence cycle *c* must satisfy
  ``II * distance(c) >= latency(c)``, so ``II >= max_c lat(c)/dist(c)``.

RecMII is computed exactly by binary search over integer II with a
Bellman-Ford positive-cycle test on edge weights ``lat - II * dist`` (a
positive cycle means some recurrence cannot fit in II cycles).  The
fractional bound :func:`max_cycle_ratio` (used by the unroll heuristic,
since unrolling cannot beat it) uses the same test over rational II.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from repro.ir.ddg import Ddg
from repro.ir.operations import FuType
from repro.kernels import active as _kernel_backend


class _HasCapacity(Protocol):  # Machine or ClusteredMachine
    def capacity(self, fu_type: FuType) -> int: ...


def res_mii(ddg: Ddg, machine: _HasCapacity) -> int:
    """Resource-constrained lower bound on II."""
    bound = 1
    for fu_type, demand in ddg.fu_demand().items():
        cap = machine.capacity(fu_type)
        if cap <= 0:
            if demand > 0:
                raise ValueError(
                    f"loop {ddg.name!r} needs {fu_type.value} units the "
                    f"machine does not have")
            continue
        bound = max(bound, -(-demand // cap))
    return bound


def _edge_list(ddg: Ddg) -> list[tuple[int, int, int, int]]:
    """(src, dst, latency, distance) for every edge (all kinds order)."""
    return [(e.src, e.dst, e.latency, e.distance) for e in ddg.edges()]


def _cycle_edges(ddg: Ddg) -> tuple[int, list[tuple[int, int, int, int]]]:
    """Node count + index-mapped edges of the *cycle-restricted* subgraph.

    A positive cycle can only use edges inside one strongly connected
    component, so the binary searches below run their Bellman-Ford passes
    on the packed recurrence subgraph of
    :class:`~repro.ir.ddgarrays.DdgArrays` -- usually a few ops -- rather
    than the whole loop body.
    """
    arr = ddg.arrays()
    return arr.cyc_n, arr.cyc_edges


def _positive_cycle(n: int, edges: list[tuple[int, int, int, int]],
                    ii: float) -> bool:
    """Bellman-Ford longest-path over index-mapped edges: does any cycle
    have ``sum(lat) - ii * sum(dist) > eps``?  Runs on the active kernel
    backend (:mod:`repro.kernels`); decision-identical across backends.
    Bisections build one tester via ``cycle_tester`` instead of calling
    this per probe."""
    return _kernel_backend().positive_cycle(n, edges, ii)


def _has_positive_cycle(nodes: list[int],
                        edges: list[tuple[int, int, int, int]],
                        ii: float) -> bool:
    """Positive-cycle test over op-id-keyed edges (indexes, then runs
    :func:`_positive_cycle`)."""
    idx = {node: i for i, node in enumerate(nodes)}
    es = [(idx[s], idx[d], lat, dd) for s, d, lat, dd in edges]
    return _positive_cycle(len(nodes), es, ii)


def rec_mii(ddg: Ddg) -> int:
    """Recurrence-constrained lower bound on II (exact, integer).

    Memoised on the DDG's structural cache: schedulers, the pipeline and
    the II drivers all ask for the same bound on the same (immutable
    while scheduling) graph, and any mutation invalidates the cache.
    """
    cached = ddg._edge_cache.get("rec_mii")
    if cached is not None:
        return cached
    n, edges = _cycle_edges(ddg)
    if not edges:
        ddg._edge_cache["rec_mii"] = 1
        return 1
    # one tester serves every probe of the bisection (backends hoist
    # their per-graph setup into the closure)
    positive = _kernel_backend().cycle_tester(n, edges)
    # at II > sum of latencies only a zero-distance cycle can stay positive,
    # and such a loop is unschedulable at any II
    if positive(ddg.sum_latency() + 1.0):
        raise ValueError(
            f"loop {ddg.name!r} has a zero-distance dependence cycle")
    lo, hi = 1, max(1, ddg.sum_latency())
    if positive(lo):
        while lo < hi:
            mid = (lo + hi) // 2
            if positive(mid):
                lo = mid + 1
            else:
                hi = mid
    ddg._edge_cache["rec_mii"] = lo
    return lo


def max_cycle_ratio(ddg: Ddg, *, tol: float = 1e-6) -> float:
    """Exact recurrence bound ``max_c lat(c)/dist(c)`` as a float.

    Returns 0.0 for acyclic loops.  Binary search with the positive-cycle
    test down to an interval no wider than *tol*, then the interval
    **midpoint**: the result is within ``tol / 2`` of the true maximum
    ratio (returning the upper bisection bound, as this function once
    did, biases the estimate high by up to a full *tol*).
    """
    cache_key = ("max_cycle_ratio", tol)
    cached = ddg._edge_cache.get(cache_key)
    if cached is not None:
        return cached
    n, edges = _cycle_edges(ddg)
    if not edges:
        return 0.0
    positive = _kernel_backend().cycle_tester(n, edges)
    if not positive(0.0 + 1e-9):
        # even at ii ~ 0 nothing is positive -> no cycles with latency
        ddg._edge_cache[cache_key] = 0.0
        return 0.0
    # the true ratio r satisfies rec_mii - 1 < r <= rec_mii (RecMII is its
    # ceiling), so the bisection starts on a unit-wide interval
    rec = rec_mii(ddg)
    lo, hi = float(rec - 1), float(rec)
    while hi - lo > tol:
        mid = (lo + hi) / 2
        if positive(mid):
            lo = mid
        else:
            hi = mid
    result = (lo + hi) / 2
    ddg._edge_cache[cache_key] = result
    return result


@dataclass(frozen=True)
class MiiReport:
    """Both bounds plus the binding one."""

    res: int
    rec: int

    @property
    def mii(self) -> int:
        return max(self.res, self.rec)

    @property
    def resource_constrained(self) -> bool:
        """Paper Fig. 9 filter: the machine, not the recurrences, limits
        the loop (``ResMII >= RecMII``)."""
        return self.res >= self.rec


def mii_report(ddg: Ddg, machine: _HasCapacity) -> MiiReport:
    return MiiReport(res=res_mii(ddg, machine), rec=rec_mii(ddg))


def mii(ddg: Ddg, machine: _HasCapacity) -> int:
    """``max(ResMII, RecMII)``."""
    return mii_report(ddg, machine).mii


def theoretical_ipc_bound(ddg: Ddg, machine: _HasCapacity) -> float:
    """Best achievable kernel IPC: ``n_ops / MII``."""
    return ddg.n_ops / mii(ddg, machine)

"""Lower bounds on the initiation interval (MII).

``MII = max(ResMII, RecMII)`` (Rau, *Iterative Modulo Scheduling*, 1996):

* **ResMII** -- resource bound: some FU class must issue ``n_t`` ops every
  II cycles on ``f_t`` units, so ``II >= ceil(n_t / f_t)``.
* **RecMII** -- recurrence bound: every dependence cycle *c* must satisfy
  ``II * distance(c) >= latency(c)``, so ``II >= max_c lat(c)/dist(c)``.

RecMII is computed exactly by binary search over integer II with a
Bellman-Ford positive-cycle test on edge weights ``lat - II * dist`` (a
positive cycle means some recurrence cannot fit in II cycles).  The
fractional bound :func:`max_cycle_ratio` (used by the unroll heuristic,
since unrolling cannot beat it) uses the same test over rational II.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Protocol

from repro.ir.ddg import Ddg
from repro.ir.operations import FuType


class _HasCapacity(Protocol):  # Machine or ClusteredMachine
    def capacity(self, fu_type: FuType) -> int: ...


def res_mii(ddg: Ddg, machine: _HasCapacity) -> int:
    """Resource-constrained lower bound on II."""
    bound = 1
    for fu_type, demand in ddg.fu_demand().items():
        cap = machine.capacity(fu_type)
        if cap <= 0:
            if demand > 0:
                raise ValueError(
                    f"loop {ddg.name!r} needs {fu_type.value} units the "
                    f"machine does not have")
            continue
        bound = max(bound, -(-demand // cap))
    return bound


def _edge_list(ddg: Ddg) -> list[tuple[int, int, int, int]]:
    """(src, dst, latency, distance) for every edge (all kinds order)."""
    return [(e.src, e.dst, e.latency, e.distance) for e in ddg.edges()]


def _has_positive_cycle(nodes: list[int],
                        edges: list[tuple[int, int, int, int]],
                        ii: float) -> bool:
    """Bellman-Ford longest-path: does any cycle have
    ``sum(lat) - ii * sum(dist) > eps``?"""
    eps = 1e-9
    dist = {n: 0.0 for n in nodes}
    for it in range(len(nodes)):
        changed = False
        for src, dst, lat, d in edges:
            w = lat - ii * d
            if dist[src] + w > dist[dst] + eps:
                dist[dst] = dist[src] + w
                changed = True
        if not changed:
            return False
    return True  # still relaxing after |V| passes -> positive cycle


def rec_mii(ddg: Ddg) -> int:
    """Recurrence-constrained lower bound on II (exact, integer)."""
    edges = _edge_list(ddg)
    if not edges:
        return 1
    nodes = ddg.op_ids
    # at II > sum of latencies only a zero-distance cycle can stay positive,
    # and such a loop is unschedulable at any II
    if _has_positive_cycle(nodes, edges, ddg.sum_latency() + 1.0):
        raise ValueError(
            f"loop {ddg.name!r} has a zero-distance dependence cycle")
    lo, hi = 1, max(1, ddg.sum_latency())
    if not _has_positive_cycle(nodes, edges, lo):
        return lo
    while lo < hi:
        mid = (lo + hi) // 2
        if _has_positive_cycle(nodes, edges, mid):
            lo = mid + 1
        else:
            hi = mid
    return lo


def max_cycle_ratio(ddg: Ddg, *, tol: float = 1e-6) -> float:
    """Exact recurrence bound ``max_c lat(c)/dist(c)`` as a float.

    Returns 0.0 for acyclic loops.  Binary search with the positive-cycle
    test; the result is within *tol* of the true maximum ratio.
    """
    edges = _edge_list(ddg)
    if not edges:
        return 0.0
    nodes = ddg.op_ids
    hi = float(max(1, ddg.sum_latency()))
    if not _has_positive_cycle(nodes, edges, 0.0 + 1e-9):
        # even at ii ~ 0 nothing is positive -> no cycles with latency
        return 0.0
    lo = 0.0
    while hi - lo > tol:
        mid = (lo + hi) / 2
        if _has_positive_cycle(nodes, edges, mid):
            lo = mid
        else:
            hi = mid
    return hi


@dataclass(frozen=True)
class MiiReport:
    """Both bounds plus the binding one."""

    res: int
    rec: int

    @property
    def mii(self) -> int:
        return max(self.res, self.rec)

    @property
    def resource_constrained(self) -> bool:
        """Paper Fig. 9 filter: the machine, not the recurrences, limits
        the loop (``ResMII >= RecMII``)."""
        return self.res >= self.rec


def mii_report(ddg: Ddg, machine: _HasCapacity) -> MiiReport:
    return MiiReport(res=res_mii(ddg, machine), rec=rec_mii(ddg))


def mii(ddg: Ddg, machine: _HasCapacity) -> int:
    """``max(ResMII, RecMII)``."""
    return mii_report(ddg, machine).mii


def theoretical_ipc_bound(ddg: Ddg, machine: _HasCapacity) -> float:
    """Best achievable kernel IPC: ``n_ops / MII``."""
    return ddg.n_ops / mii(ddg, machine)

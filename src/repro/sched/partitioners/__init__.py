"""Pluggable cluster-partitioning engines.

The partitioner is a seam exactly like the single-cluster scheduler
registry (:mod:`repro.sched.strategies`): every engine attempts to place
a loop's ops in time *and* space at one fixed II, the II search in
:func:`repro.sched.partition.partitioned_schedule` is engine-agnostic,
and engines are looked up by name
(``PartitionConfig(partitioner="agglomerative")``, ``--partitioner`` on
the CLI, ``repro-vliw partitioners`` to list them).

Engines shipped here:

* ``"affinity"`` (default) -- the paper's heuristic: most scheduled DATA
  neighbours, then earliest slot, then lightest load.
* ``"balance"`` -- least-loaded cluster first.
* ``"first"``   -- earliest slot, lowest cluster index (naive baseline).
* ``"random"``  -- uniformly random feasible candidate (seeded).
* ``"agglomerative"`` -- two-phase: merge affinity-weighted subgraphs
  under per-cluster ResMII balance, lay the groups around the ring, then
  slot-search with every op pinned to its cluster.

Adding an engine is a self-registering subclass::

    from repro.sched.partitioners import Partitioner, register_partitioner

    @register_partitioner
    class MyPartitioner(Partitioner):
        name = "mine"
        description = "my engine"
        def try_at_ii(self, ddg, cm, ii, *, budget, **kw):
            ...
"""

from .base import Partitioner, PartitionState
from .registry import (available_partitioners, check_partitioner,
                       get_partitioner, partitioner_descriptions,
                       register_partitioner)
from .slotsearch import (AffinityPartitioner, BalancePartitioner,
                         FirstFitPartitioner, RandomPartitioner,
                         SlotSearchPartitioner)
from .agglomerative import (AgglomerativePartitioner,
                            agglomerative_assignment)

#: The engine used when nothing else is asked for.
DEFAULT_PARTITIONER = "affinity"

__all__ = [
    "Partitioner", "PartitionState",
    "available_partitioners", "check_partitioner", "get_partitioner",
    "partitioner_descriptions", "register_partitioner",
    "SlotSearchPartitioner", "AffinityPartitioner", "BalancePartitioner",
    "FirstFitPartitioner", "RandomPartitioner",
    "AgglomerativePartitioner", "agglomerative_assignment",
    "DEFAULT_PARTITIONER",
]

"""The slot-search partitioning engine family (paper Section 4).

One shared search loop -- partitioned IMS: every op is placed in the best
(cluster, slot) candidate, with forced placement, eviction and
deadlock-aging when the ring constraint or the MRTs refuse -- and one
thin subclass per cluster-choice heuristic (the engines compared in
ablation A2):

* ``"affinity"`` (default) -- prefer the cluster holding the most
  scheduled DATA neighbours, then earliest slot, then lightest load.
* ``"balance"``  -- prefer the least-loaded cluster, then earliest slot.
* ``"first"``    -- earliest slot, lowest cluster index (naive baseline).
* ``"random"``   -- uniformly random feasible candidate (seeded).

The inner loop is the hottest code in the clustered experiments, so the
search keeps flat state (:class:`~repro.sched.partitioners.base.
PartitionState`), walks the priority order with an index cursor (the
ready-op pick is O(1) amortised instead of an O(n) scan per placement),
and computes the predecessor arrival terms once per placement round
instead of once per candidate cluster.
"""

from __future__ import annotations

import random as _random
from typing import Optional

from repro.ir.ddg import Ddg
from repro.machine.cluster import ClusteredMachine

from ..priority import priority_order
from ..schedule import ScheduleStats
from .base import Partitioner, PartitionState
from .registry import register_partitioner


class SlotSearchPartitioner(Partitioner):
    """Shared search loop; subclasses supply the candidate ranking."""

    def candidate_key(self, aff: int, t: int, load: int, c: int,
                      rng: _random.Random) -> tuple:
        """Ranking key of one feasible (cluster, slot) candidate; the
        minimum key wins.  ``aff`` counts scheduled DATA neighbours on
        cluster ``c``, ``t`` is the earliest free slot there, ``load``
        the cluster's current reservation count."""
        raise NotImplementedError

    def try_at_ii(self, ddg: Ddg, cm: ClusteredMachine, ii: int, *,
                  budget: int,
                  pinned: Optional[dict[int, int]] = None,
                  relax_adjacency: bool = False,
                  stats: Optional[ScheduleStats] = None,
                  rng: Optional[_random.Random] = None,
                  ) -> Optional[PartitionState]:
        pinned = pinned or {}
        rng = rng or _random.Random(0)
        order = priority_order(ddg, ii)
        pos = {o: i for i, o in enumerate(order)}
        state = PartitionState(ddg, cm, ii)
        unscheduled = set(order)
        cursor = 0
        xlat = state.xlat
        key_fn = self.candidate_key
        # aging: repeated adjacency deadlocks rotate through cluster
        # choices (a deterministic heuristic would otherwise ping-pong
        # forever between two mutually-exclusive placements)
        deadlocks: dict[int, int] = {}

        def drop(victim: int) -> None:
            """Evict one op; re-adding may rewind the ready cursor."""
            nonlocal cursor
            state.unschedule(victim)
            unscheduled.add(victim)
            p = pos[victim]
            if p < cursor:
                cursor = p

        while unscheduled:
            if budget <= 0:
                return None
            budget -= 1
            # ready pick: first op of `order` still unscheduled.  The
            # cursor only moves forward here; drop() rewinds it when an
            # eviction re-activates an earlier op.
            while order[cursor] not in unscheduled:
                cursor += 1
            op_id = order[cursor]
            unscheduled.discard(op_id)
            op = ddg.op(op_id)

            nbr_clusters = state.scheduled_data_neighbours(op_id)
            allowed = state.allowed_clusters(op_id, pinned,
                                             relax_adjacency, nbr_clusters)
            aff_count: dict[int, int] = {}
            for nc in nbr_clusters.values():
                aff_count[nc] = aff_count.get(nc, 0) + 1
            arrivals = state.pred_arrivals(op_id)
            uniform_est: Optional[int] = None
            if not xlat or all(sc < 0 for _, sc in arrivals):
                uniform_est = PartitionState.estart_from(arrivals, 0, 0)

            # ---- normal placement: best (cluster, slot) candidate ------
            best: Optional[tuple[tuple, int, int]] = None  # key, c, slot
            mrts = state.mrts
            fu_type = op.fu_type
            for c in allowed:
                est = (uniform_est if uniform_est is not None
                       else PartitionState.estart_from(arrivals, c, xlat))
                mrt = mrts[c]
                for t in range(est, est + ii):
                    if mrt.can_place(fu_type, t):
                        key = key_fn(aff_count.get(c, 0), t, mrt.load(),
                                     c, rng)
                        if best is None or key < best[0]:
                            best = (key, c, t)
                        break  # earliest slot in this cluster is enough

            if best is not None:
                _, cluster, t = best
            else:
                # ---- forced placement ---------------------------------
                if allowed:
                    # adjacency satisfiable but no free slot: evict on
                    # the cluster with the best affinity
                    cluster = min(
                        allowed,
                        key=lambda c: (-aff_count.get(c, 0),
                                       mrts[c].load(), c))
                else:
                    # adjacency deadlock: rank clusters by violation
                    # count and rotate through the ranking as the same op
                    # deadlocks again (aging); after a full rotation,
                    # clear the whole data neighbourhood to re-seed the
                    # region
                    k = deadlocks.get(op_id, 0)
                    deadlocks[op_id] = k + 1
                    adj = state.adj
                    ranked = sorted(
                        state.all_clusters,
                        key=lambda c: (
                            sum(1 for nc in nbr_clusters.values()
                                if not adj[c][nc]),
                            mrts[c].load(), c))
                    cluster = ranked[k % len(ranked)]
                    wide = k >= len(ranked)
                    for nbr, nc in sorted(nbr_clusters.items()):
                        if wide or not adj[cluster][nc]:
                            drop(nbr)
                            if stats is not None:
                                stats.evictions += 1
                t = PartitionState.estart_from(arrivals, cluster, xlat)
                prev = state.last_time.get(op_id)
                if prev is not None and t <= prev:
                    t = prev + 1
                # every victim leaves through drop() -> unschedule so
                # MRT, sigma/cluster_of and the cursor stay consistent
                victims = mrts[cluster].conflicts(fu_type, t)
                for victim in victims:
                    drop(victim)
                if stats is not None:
                    stats.evictions += len(victims)

            mrts[cluster].place(op_id, fu_type, t)
            state.sigma[op_id] = t
            state.cluster_of[op_id] = cluster
            state.last_time[op_id] = t
            if stats is not None:
                stats.attempts += 1

            # ---- drop ops whose dependence the new placement violates --
            sigma = state.sigma
            for e in state.out_e[op_id]:
                ts = sigma.get(e.dst)
                if (ts is not None and e.dst != op_id
                        and ts + e.distance * ii < t + e.latency):
                    drop(e.dst)
            for e in state.in_e[op_id]:
                tp = sigma.get(e.src)
                if (tp is not None and e.src != op_id
                        and t + e.distance * ii < tp + e.latency):
                    drop(e.src)

        return state


@register_partitioner
class AffinityPartitioner(SlotSearchPartitioner):
    name = "affinity"
    description = ("most scheduled DATA neighbours first, then earliest "
                   "slot, then lightest load (paper default)")

    def candidate_key(self, aff, t, load, c, rng):
        return (-aff, t, load, c)


@register_partitioner
class BalancePartitioner(SlotSearchPartitioner):
    name = "balance"
    description = "least-loaded cluster first, then earliest slot"

    def candidate_key(self, aff, t, load, c, rng):
        return (load, t, -aff, c)


@register_partitioner
class FirstFitPartitioner(SlotSearchPartitioner):
    name = "first"
    description = "earliest slot, lowest cluster index (naive baseline)"

    def candidate_key(self, aff, t, load, c, rng):
        return (t, c)


@register_partitioner
class RandomPartitioner(SlotSearchPartitioner):
    name = "random"
    description = "uniformly random feasible candidate (seeded)"

    def candidate_key(self, aff, t, load, c, rng):
        return (rng.random(),)

"""The slot-search partitioning engine family (paper Section 4).

One shared search loop -- partitioned IMS: every op is placed in the best
(cluster, slot) candidate, with forced placement, eviction and
deadlock-aging when the ring constraint or the MRTs refuse -- and one
thin subclass per cluster-choice heuristic (the engines compared in
ablation A2):

* ``"affinity"`` (default) -- prefer the cluster holding the most
  scheduled DATA neighbours, then earliest slot, then lightest load.
* ``"balance"``  -- prefer the least-loaded cluster, then earliest slot.
* ``"first"``    -- earliest slot, lowest cluster index (naive baseline).
* ``"random"``   -- uniformly random feasible candidate (seeded).

The inner loop is the hottest code in the clustered experiments, so the
search keeps flat state (:class:`~repro.sched.partitioners.base.
PartitionState`), walks the priority order with an index cursor (the
ready-op pick is O(1) amortised instead of an O(n) scan per placement),
and computes the predecessor arrival terms once per placement round
instead of once per candidate cluster.
"""

from __future__ import annotations

import random as _random
from typing import Callable, Optional

from repro.ir.ddg import Ddg
from repro.kernels import active as _kernel_backend
from repro.machine.cluster import ClusteredMachine

from ..arena import SchedArena
from ..priority import priority_order_idx
from ..schedule import ScheduleStats
from .base import Partitioner, PartitionState
from .registry import register_partitioner


def _batched_probe(first_free_batch: Callable, mrts: list,
                   allowed: list[int], p_i: int,
                   arrivals: list[tuple[int, int]],
                   uniform_est: Optional[int],
                   xlat: int) -> tuple[list[int], list[int]]:
    """One bulk ``first_free`` probe over all candidate clusters.

    Lives outside ``try_at_ii`` on purpose: the two lists built here are
    deliberate, amortised over ``probe_batch_min``-or-more clusters per
    round (the R001 hot-loop-allocation gate keeps the scalar path under
    the floor allocation-free, which is where per-round garbage would
    actually hurt).
    """
    estart_from = PartitionState.estart_from
    ests = [uniform_est if uniform_est is not None
            else estart_from(arrivals, c, xlat) for c in allowed]
    return ests, first_free_batch([mrts[c] for c in allowed], p_i, ests)


class SlotSearchPartitioner(Partitioner):
    """Shared search loop; subclasses supply the candidate ranking."""

    def candidate_key(self, aff: int, t: int, load: int, c: int,
                      rng: _random.Random) -> tuple:
        """Ranking key of one feasible (cluster, slot) candidate; the
        minimum key wins.  ``aff`` counts scheduled DATA neighbours on
        cluster ``c``, ``t`` is the earliest free slot there, ``load``
        the cluster's current reservation count."""
        raise NotImplementedError

    def try_at_ii(self, ddg: Ddg, cm: ClusteredMachine, ii: int, *,
                  budget: int,
                  pinned: Optional[dict[int, int]] = None,
                  relax_adjacency: bool = False,
                  stats: Optional[ScheduleStats] = None,
                  rng: Optional[_random.Random] = None,
                  arena: Optional[SchedArena] = None,
                  ) -> Optional[PartitionState]:
        rng = rng or _random.Random(0)
        state = PartitionState(ddg, cm, ii, arena=arena)
        arr = state.arr
        index = arr.index
        pinned_idx = ({index[o]: c for o, c in pinned.items()}
                      if pinned else {})
        order = priority_order_idx(arr, ii)
        n = arr.n
        pos = [0] * n
        for rank, i in enumerate(order):
            pos[i] = rank
        unscheduled = set(order)
        cursor = 0
        xlat = state.xlat
        key_fn = self.candidate_key
        estart_from = PartitionState.estart_from
        pool = arr.pool
        sig = state.sig
        cl = state.cl
        adj_mask = state.adj_mask
        all_clusters = state.all_clusters
        last_time = [-1] * n
        in_ptr, in_src = arr.in_ptr, arr.in_src
        in_lat, in_dist = arr.in_lat, arr.in_dist
        out_ptr, out_dst = arr.out_ptr, arr.out_dst
        out_lat, out_dist = arr.out_lat, arr.out_dist
        nbr_ptr, nbr_arr = arr.nbr_ptr, arr.nbr
        in_data = arr.in_data
        # table hoists for the inlined per-candidate first_free below:
        # every cluster's full-row mask list is mutated in place (never
        # reassigned) during an attempt, and the ring's clusters share
        # one capacity vector, so the probes read loop-invariant locals
        mrts = state.mrts
        full_l = [m._full for m in mrts]
        counts_l = [m._counts for m in mrts]
        rows_l = [m._rows for m in mrts]
        usage_l = [m._usage for m in mrts]
        where_l = [m._where for m in mrts]
        caps0 = mrts[0].caps
        all_full = (1 << ii) - 1
        ids = arr.ids
        sigma_d = state.sigma
        cluster_d = state.cluster_of
        lastt_d = state.last_time
        # kernel backend hooks: wide rounds (many predecessor edges /
        # many candidate clusters) take the batched primitives; narrow
        # ones keep the inline loops below the backend's floors --
        # decisions are identical on either side (see repro.kernels)
        backend = _kernel_backend()
        arrival_min = backend.arrival_batch_min
        probe_min = backend.probe_batch_min
        pred_arrivals_round = backend.pred_arrivals_round
        first_free_batch = backend.first_free_batch
        # aging: repeated adjacency deadlocks rotate through cluster
        # choices (a deterministic heuristic would otherwise ping-pong
        # forever between two mutually-exclusive placements)
        deadlocks: dict[int, int] = {}

        def drop(victim: int) -> None:
            """Evict one op index; re-adding may rewind the cursor."""
            nonlocal cursor
            state.unschedule_idx(victim)
            unscheduled.add(victim)
            p = pos[victim]
            if p < cursor:
                cursor = p

        while unscheduled:
            if budget <= 0:
                return None
            budget -= 1
            # ready pick: first op of `order` still unscheduled.  The
            # cursor only moves forward here; drop() rewinds it when an
            # eviction re-activates an earlier op.
            while order[cursor] not in unscheduled:
                cursor += 1
            i = order[cursor]
            unscheduled.discard(i)

            # inlined scheduled_nbr_clusters_idx / allowed_from_nbrs /
            # pred_arrivals_idx (the three hottest per-round queries;
            # the methods on PartitionState stay the public forms)
            nbr_clusters: dict[int, int] = {}
            aff_count: dict[int, int] = {}
            need = 0
            for j in range(nbr_ptr[i], nbr_ptr[i + 1]):
                x = nbr_arr[j]
                c = cl[x]
                if c >= 0:
                    nbr_clusters[x] = c
                    need |= 1 << c
                    aff_count[c] = aff_count.get(c, 0) + 1
            if i in pinned_idx:
                allowed = [pinned_idx[i]]
            elif relax_adjacency or not need:
                allowed = all_clusters
            else:
                allowed = [c for c in all_clusters
                           if adj_mask[c] & need == need]
            if in_ptr[i + 1] - in_ptr[i] >= arrival_min:
                arrivals, uniform, uniform_est = pred_arrivals_round(
                    arr, i, sig, cl, ii, xlat)
            else:
                arrivals: list[tuple[int, int]] = []
                uniform = True
                for j in range(in_ptr[i], in_ptr[i + 1]):
                    s = in_src[j]
                    t = sig[s]
                    if t < 0:
                        continue
                    base = t + in_lat[j] - in_dist[j] * ii
                    if xlat and in_data[j]:
                        arrivals.append((base, cl[s]))
                        uniform = False
                    else:
                        arrivals.append((base, -1))
                uniform_est = None
                if uniform:
                    est0 = 0
                    for base, _sc in arrivals:
                        if base > est0:
                            est0 = base
                    uniform_est = est0

            # ---- normal placement: best (cluster, slot) candidate ------
            best: Optional[tuple[tuple, int, int]] = None  # key, c, slot
            p_i = pool[i]
            if len(allowed) >= probe_min:
                _, slots = _batched_probe(first_free_batch, mrts,
                                          allowed, p_i, arrivals,
                                          uniform_est, xlat)
                for c, t in zip(allowed, slots):
                    if t >= 0:
                        key = key_fn(aff_count.get(c, 0), t,
                                     mrts[c].load(), c, rng)
                        if best is None or key < best[0]:
                            best = (key, c, t)
            elif caps0[p_i] > 0:
                # inlined PackedMRT.first_free / load(): one probe per
                # candidate cluster is the search's hottest expression
                # (with no unit of this pool anywhere, every probe would
                # return -1 -- same outcome as skipping the loop)
                for c in allowed:
                    est = (uniform_est if uniform_est is not None
                           else estart_from(arrivals, c, xlat))
                    mask = full_l[c][p_i]
                    if mask:
                        if mask == all_full:
                            continue
                        r = est % ii
                        if r:
                            mask = ((mask >> r) | (mask << (ii - r))) \
                                & all_full
                        fr = ~mask & all_full
                        t = est + (fr & -fr).bit_length() - 1
                    else:
                        t = est
                    key = key_fn(aff_count.get(c, 0), t, mrts[c]._load,
                                 c, rng)
                    if best is None or key < best[0]:
                        best = (key, c, t)

            if best is not None:
                _, cluster, t = best
            else:
                # ---- forced placement ---------------------------------
                if allowed:
                    # adjacency satisfiable but no free slot: evict on
                    # the cluster with the best affinity
                    cluster = min(
                        allowed,
                        key=lambda c: (-aff_count.get(c, 0),
                                       mrts[c].load(), c))
                else:
                    # adjacency deadlock: rank clusters by violation
                    # count and rotate through the ranking as the same op
                    # deadlocks again (aging); after a full rotation,
                    # clear the whole data neighbourhood to re-seed the
                    # region
                    k = deadlocks.get(i, 0)
                    deadlocks[i] = k + 1
                    adj = state.adj
                    ranked = sorted(
                        state.all_clusters,
                        key=lambda c: (
                            sum(1 for nc in nbr_clusters.values()
                                if not adj[c][nc]),
                            mrts[c].load(), c))
                    cluster = ranked[k % len(ranked)]
                    wide = k >= len(ranked)
                    for nbr in sorted(nbr_clusters):
                        if wide or not adj[cluster][nbr_clusters[nbr]]:
                            drop(nbr)
                            if stats is not None:
                                stats.evictions += 1
                t = estart_from(arrivals, cluster, xlat)
                prev = last_time[i]
                if prev >= 0 and t <= prev:
                    t = prev + 1
                # every victim leaves through drop() -> unschedule so
                # MRT, sigma/cluster_of and the cursor stay consistent
                victims = mrts[cluster].conflicts(p_i, t)
                for victim in victims:
                    drop(index[victim])
                if stats is not None:
                    stats.evictions += len(victims)

            # inlined PartitionState.place_idx + PackedMRT.place (room is
            # guaranteed: the probe found a free slot or the forced path
            # just dropped the conflicting occupants)
            oid = ids[i]
            mrt = mrts[cluster]
            row = t % ii
            slot = p_i * ii + row
            rows_l[cluster][slot].append(oid)
            cnt = counts_l[cluster][slot] + 1
            counts_l[cluster][slot] = cnt
            if cnt >= caps0[p_i]:
                full_l[cluster][p_i] |= 1 << row
            usage_l[cluster][p_i] += 1
            mrt._load += 1
            mrt._mut += 1
            where_l[cluster][oid] = (p_i, t)
            sig[i] = t
            cl[i] = cluster
            sigma_d[oid] = t
            cluster_d[oid] = cluster
            lastt_d[oid] = t
            last_time[i] = t
            if stats is not None:
                stats.attempts += 1

            # ---- drop ops whose dependence the new placement violates --
            for j in range(out_ptr[i], out_ptr[i + 1]):
                d = out_dst[j]
                ts = sig[d]
                if ts >= 0 and d != i and ts + out_dist[j] * ii \
                        < t + out_lat[j]:
                    drop(d)
            for j in range(in_ptr[i], in_ptr[i + 1]):
                s = in_src[j]
                tp = sig[s]
                if tp >= 0 and s != i and t + in_dist[j] * ii \
                        < tp + in_lat[j]:
                    drop(s)

        return state


@register_partitioner
class AffinityPartitioner(SlotSearchPartitioner):
    name = "affinity"
    description = ("most scheduled DATA neighbours first, then earliest "
                   "slot, then lightest load (paper default)")

    def candidate_key(self, aff: int, t: int, load: int, c: int,
                      rng: _random.Random) -> tuple:
        return (-aff, t, load, c)


@register_partitioner
class BalancePartitioner(SlotSearchPartitioner):
    name = "balance"
    description = "least-loaded cluster first, then earliest slot"

    def candidate_key(self, aff: int, t: int, load: int, c: int,
                      rng: _random.Random) -> tuple:
        return (load, t, -aff, c)


@register_partitioner
class FirstFitPartitioner(SlotSearchPartitioner):
    name = "first"
    description = "earliest slot, lowest cluster index (naive baseline)"

    def candidate_key(self, aff: int, t: int, load: int, c: int,
                      rng: _random.Random) -> tuple:
        return (t, c)


@register_partitioner
class RandomPartitioner(SlotSearchPartitioner):
    name = "random"
    description = "uniformly random feasible candidate (seeded)"
    # draws from the shared seeded stream on every candidate: probe
    # results depend on probe order, so the II driver pins this engine
    # to the linear walk (see Partitioner.stochastic)
    stochastic = True

    def candidate_key(self, aff: int, t: int, load: int, c: int,
                      rng: _random.Random) -> tuple:
        return (rng.random(),)

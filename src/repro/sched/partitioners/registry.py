"""Partitioner registry: name -> engine class.

The registry is the single seam through which the pipeline, the CLI and
the tests discover cluster-partitioning engines, mirroring the scheduler
registry (:mod:`repro.sched.strategies.registry`).  Registering is
declarative::

    @register_partitioner
    class MyPartitioner(Partitioner):
        name = "mine"
        description = "..."
        def try_at_ii(self, ddg, cm, ii, *, budget, ...): ...

Names are unique; registering a duplicate raises so two engines can never
silently shadow each other (cache keys embed the name, so aliasing would
poison cached results).
"""

from __future__ import annotations

from typing import Type

from .base import Partitioner

_REGISTRY: dict[str, Type[Partitioner]] = {}


def register_partitioner(cls: Type[Partitioner]) -> Type[Partitioner]:
    """Class decorator: add *cls* to the registry under ``cls.name``."""
    name = getattr(cls, "name", "")
    if not name:
        raise ValueError(f"{cls.__name__} must set a non-empty `name`")
    if name in _REGISTRY:
        raise ValueError(
            f"partitioner {name!r} already registered "
            f"({_REGISTRY[name].__name__}); names must be unique")
    _REGISTRY[name] = cls
    return cls


def available_partitioners() -> tuple[str, ...]:
    """Registered engine names, sorted (stable for tests and docs)."""
    return tuple(sorted(_REGISTRY))


def check_partitioner(name: str) -> str:
    """Validate an engine name (raises ``KeyError`` listing the
    registered engines); returns it unchanged -- the partitioner twin
    of :func:`repro.sched.strategies.check_scheduler`.
    """
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown partitioner {name!r}; available: "
            f"{', '.join(available_partitioners())}")
    return name


def get_partitioner(name: str, **kwargs: object) -> Partitioner:
    """Instantiate the engine registered under *name*.

    ``kwargs`` are forwarded to the engine constructor; raises
    ``KeyError`` naming the available engines on an unknown name, so a
    typo'd ``--partitioner`` never surfaces as a bare failure deep inside
    scheduling.
    """
    return _REGISTRY[check_partitioner(name)](**kwargs)


def partitioner_descriptions() -> dict[str, str]:
    """name -> one-line description (the ``partitioners`` CLI listing)."""
    return {name: _REGISTRY[name].description
            for name in available_partitioners()}

"""The cluster-partitioner contract.

A *partitioner* is one engine that attempts to place every op of a loop
DDG both *in time* (a modulo row) and *in space* (a ring cluster) at one
fixed II.  The surrounding II search, normalisation and validation live
in :func:`repro.sched.partition.partitioned_schedule`, which is
engine-agnostic: it asks the registry for an engine by name and calls
:meth:`Partitioner.try_at_ii` per candidate II.

Engines register themselves with
:func:`~repro.sched.partitioners.registry.register_partitioner` and are
looked up by name (``PartitionConfig(partitioner="agglomerative")``,
``PipelineOptions(partitioner=...)``, ``--partitioner`` on the CLI).

The mutable search state (:class:`PartitionState`) is shared by all
engines: it owns the per-cluster modulo reservation tables, the sigma and
cluster maps, and the flat caches the inner loop depends on.  Every
eviction MUST go through :meth:`PartitionState.unschedule` so the MRT,
``sigma``/``cluster_of`` maps and the ready-scan cursor can never drift
apart (the forced-placement path once bypassed it with raw ``del``s).
"""

from __future__ import annotations

import abc
import random as _random
from typing import TYPE_CHECKING, ClassVar, Optional

from repro.ir.ddg import Ddg, DepKind
from repro.machine.cluster import ClusteredMachine

from ..mrt import ModuloReservationTable
from ..schedule import ScheduleStats

if TYPE_CHECKING:  # pragma: no cover
    pass


class PartitionState:
    """Mutable search state for one II attempt on a clustered machine."""

    def __init__(self, ddg: Ddg, cm: ClusteredMachine, ii: int) -> None:
        self.ddg = ddg
        self.cm = cm
        self.ii = ii
        self.sigma: dict[int, int] = {}
        self.cluster_of: dict[int, int] = {}
        self.last_time: dict[int, int] = {}
        self.mrts = [
            ModuloReservationTable(ii, cm.cluster.fus.as_dict())
            for _ in range(cm.n_clusters)
        ]
        n = cm.n_clusters
        # flat caches -- the inner loop runs millions of times
        self.adj = [[cm.are_adjacent(a, b) for b in range(n)]
                    for a in range(n)]
        self.in_e = {o: ddg.in_edges(o) for o in ddg.op_ids}
        self.out_e = {o: ddg.out_edges(o) for o in ddg.op_ids}
        self.data_nbrs = {o: ddg.neighbors_data(o) for o in ddg.op_ids}
        self.all_clusters = list(range(n))
        self.xlat = cm.inter_cluster_latency

    def unschedule(self, op_id: int) -> None:
        """THE eviction path: MRT slot, sigma and cluster assignment are
        always released together (never ``del`` the maps directly)."""
        self.mrts[self.cluster_of[op_id]].remove(op_id)
        del self.sigma[op_id]
        del self.cluster_of[op_id]

    def pred_arrivals(self, op_id: int) -> list[tuple[int, int]]:
        """Scheduled-predecessor arrival terms for one placement round.

        Returns ``(base, src_cluster)`` per scheduled in-edge, where
        ``base = sigma(src) + latency - distance * II`` and
        ``src_cluster`` is -1 when no inter-cluster penalty can apply
        (zero ring latency or a non-DATA edge).  Computing this once per
        round turns the per-cluster estart into a max over a short list
        instead of a fresh edge walk per candidate cluster.
        """
        sigma = self.sigma
        cluster_of = self.cluster_of
        ii = self.ii
        xlat = self.xlat
        out: list[tuple[int, int]] = []
        for e in self.in_e[op_id]:
            t = sigma.get(e.src)
            if t is None:
                continue
            base = t + e.latency - e.distance * ii
            sc = (cluster_of[e.src]
                  if xlat and e.kind is DepKind.DATA else -1)
            out.append((base, sc))
        return out

    @staticmethod
    def estart_from(arrivals: list[tuple[int, int]], cluster: int,
                    xlat: int) -> int:
        """Earliest start on *cluster* given cached :meth:`pred_arrivals`."""
        est = 0
        for base, sc in arrivals:
            if sc >= 0 and sc != cluster:
                base += xlat
            if base > est:
                est = base
        return est

    def estart(self, op_id: int, cluster: int) -> int:
        """Earliest start of *op_id* on *cluster* (uncached form)."""
        return self.estart_from(self.pred_arrivals(op_id), cluster,
                                self.xlat)

    def scheduled_data_neighbours(self, op_id: int) -> dict[int, int]:
        """Scheduled DATA-neighbour op -> its cluster."""
        cluster_of = self.cluster_of
        return {nbr: cluster_of[nbr] for nbr in self.data_nbrs[op_id]
                if nbr in cluster_of}

    def allowed_clusters(self, op_id: int,
                         pinned: dict[int, int],
                         relax_adjacency: bool,
                         nbr_clusters: Optional[dict[int, int]] = None
                         ) -> list[int]:
        if op_id in pinned:
            return [pinned[op_id]]
        if relax_adjacency:
            return self.all_clusters
        if nbr_clusters is None:
            nbr_clusters = self.scheduled_data_neighbours(op_id)
        if not nbr_clusters:
            return self.all_clusters
        adj = self.adj
        clusters = set(nbr_clusters.values())
        return [c for c in self.all_clusters
                if all(adj[c][nc] for nc in clusters)]

    def affinity(self, op_id: int, cluster: int) -> int:
        return sum(1 for c in
                   self.scheduled_data_neighbours(op_id).values()
                   if c == cluster)


class Partitioner(abc.ABC):
    """Base class of all cluster-partitioning engines.

    Subclasses set ``name`` (the registry key) and ``description`` (one
    line for ``repro-vliw partitioners``) and implement :meth:`try_at_ii`.
    """

    #: Registry key; also the value of ``PartitionConfig.partitioner``.
    name: ClassVar[str] = ""
    #: One-line summary shown by ``repro-vliw partitioners``.
    description: ClassVar[str] = ""

    @abc.abstractmethod
    def try_at_ii(self, ddg: Ddg, cm: ClusteredMachine, ii: int, *,
                  budget: int,
                  pinned: Optional[dict[int, int]] = None,
                  relax_adjacency: bool = False,
                  stats: Optional[ScheduleStats] = None,
                  rng: Optional[_random.Random] = None,
                  ) -> Optional[PartitionState]:
        """One partitioned-scheduling attempt at a fixed II.

        Returns the final :class:`PartitionState` (``sigma`` +
        ``cluster_of``) or ``None`` when the placement budget runs out.
        ``pinned`` fixes some ops' clusters; ``relax_adjacency`` disables
        the ring constraint (the MOVE pipeline's first pass).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<partitioner {self.name!r}>"

"""The cluster-partitioner contract.

A *partitioner* is one engine that attempts to place every op of a loop
DDG both *in time* (a modulo row) and *in space* (a ring cluster) at one
fixed II.  The surrounding II search, normalisation and validation live
in :func:`repro.sched.partition.partitioned_schedule`, which is
engine-agnostic: it asks the registry for an engine by name and calls
:meth:`Partitioner.try_at_ii` per candidate II.

Engines register themselves with
:func:`~repro.sched.partitioners.registry.register_partitioner` and are
looked up by name (``PartitionConfig(partitioner="agglomerative")``,
``PipelineOptions(partitioner=...)``, ``--partitioner`` on the CLI).

The mutable search state (:class:`PartitionState`) is shared by all
engines: it owns the per-cluster modulo reservation tables, the sigma and
cluster maps, and the flat caches the inner loop depends on.  Every
eviction MUST go through :meth:`PartitionState.unschedule` so the MRT,
``sigma``/``cluster_of`` maps and the ready-scan cursor can never drift
apart (the forced-placement path once bypassed it with raw ``del``s).
"""

from __future__ import annotations

import abc
import random as _random
from typing import TYPE_CHECKING, ClassVar, Optional

from repro.ir.ddg import Ddg
from repro.machine.cluster import ClusteredMachine

from ..arena import SchedArena
from ..mrt import PackedMRT
from ..schedule import ScheduleStats

if TYPE_CHECKING:  # pragma: no cover
    pass


class PartitionState:
    """Mutable search state for one II attempt on a clustered machine.

    Built on the packed core: per-cluster
    :class:`~repro.sched.mrt.PackedMRT` tables and the loop's
    :class:`~repro.ir.ddgarrays.DdgArrays` lowering.  The engine inner
    loops work in op-*index* space through ``sig``/``cl`` (flat lists,
    -1 = unscheduled) and the ``*_idx`` methods; the public ``sigma`` /
    ``cluster_of`` / ``last_time`` dicts stay keyed by op id (drivers,
    tests and the MOVE pipeline consume those) and are maintained in
    lock-step by :meth:`place_idx` / :meth:`unschedule`.

    With an *arena* the reservation tables and ring topology come from
    the arena's pools (reset in O(touched) between attempts) instead of
    being rebuilt; such a state is only valid until the arena's next
    ``begin_attempt`` and must not outlive the II driver that owns the
    arena -- the driver detaches the plain result dicts on success.
    """

    def __init__(self, ddg: Ddg, cm: ClusteredMachine, ii: int,
                 arena: Optional[SchedArena] = None) -> None:
        self.ddg = ddg
        self.cm = cm
        self.ii = ii
        self.arr = arr = ddg.arrays()
        self.sigma: dict[int, int] = {}
        self.cluster_of: dict[int, int] = {}
        self.last_time: dict[int, int] = {}
        caps = cm.cluster.fus.pool_caps
        n = cm.n_clusters
        if arena is not None:
            arena.begin_attempt()
            self.mrts = arena.take_mrts(n, ii, caps)
            self.adj, self.adj_mask, self.all_clusters = \
                arena.ring_topology(cm)
        else:
            self.mrts = [PackedMRT(ii, caps) for _ in range(n)]
            self.adj = [[cm.are_adjacent(a, b) for b in range(n)]
                        for a in range(n)]
            self.adj_mask = [sum(1 << b for b in range(n) if row[b])
                             for row in self.adj]
            self.all_clusters = list(range(n))
        self.xlat = cm.inter_cluster_latency
        # packed mirrors of sigma / cluster_of, indexed by op index
        self.sig = [-1] * arr.n
        self.cl = [-1] * arr.n

    # ------------------------------------------------------- mutation

    def place_idx(self, i: int, cluster: int, t: int) -> None:
        """Place op index *i* on *cluster* at time *t* (all bookkeeping:
        MRT slot, packed mirrors, public dicts, last placement time)."""
        op_id = self.arr.ids[i]
        self.mrts[cluster].place(op_id, self.arr.pool[i], t)
        self.sig[i] = t
        self.cl[i] = cluster
        self.sigma[op_id] = t
        self.cluster_of[op_id] = cluster
        self.last_time[op_id] = t

    def unschedule_idx(self, i: int) -> None:
        """THE eviction path: MRT slot, packed mirrors and public maps
        are always released together."""
        op_id = self.arr.ids[i]
        self.mrts[self.cl[i]].remove(op_id)
        self.sig[i] = -1
        self.cl[i] = -1
        del self.sigma[op_id]
        del self.cluster_of[op_id]

    def unschedule(self, op_id: int) -> None:
        """Id-keyed form of :meth:`unschedule_idx` (public surface)."""
        self.unschedule_idx(self.arr.index[op_id])

    # -------------------------------------------------------- queries

    def pred_arrivals_idx(self, i: int) -> list[tuple[int, int]]:
        """Scheduled-predecessor arrival terms for one placement round.

        Returns ``(base, src_cluster)`` per scheduled in-edge, where
        ``base = sigma(src) + latency - distance * II`` and
        ``src_cluster`` is -1 when no inter-cluster penalty can apply
        (zero ring latency or a non-DATA edge).  Computing this once per
        round turns the per-cluster estart into a max over a short list
        instead of a fresh edge walk per candidate cluster.
        """
        arr = self.arr
        sig = self.sig
        cl = self.cl
        ii = self.ii
        xlat = self.xlat
        in_src, in_lat = arr.in_src, arr.in_lat
        in_dist, in_data = arr.in_dist, arr.in_data
        out: list[tuple[int, int]] = []
        ptr = arr.in_ptr
        for j in range(ptr[i], ptr[i + 1]):
            s = in_src[j]
            t = sig[s]
            if t < 0:
                continue
            base = t + in_lat[j] - in_dist[j] * ii
            sc = cl[s] if xlat and in_data[j] else -1
            out.append((base, sc))
        return out

    @staticmethod
    def estart_from(arrivals: list[tuple[int, int]], cluster: int,
                    xlat: int) -> int:
        """Earliest start on *cluster* given cached arrival terms."""
        est = 0
        for base, sc in arrivals:
            if sc >= 0 and sc != cluster:
                base += xlat
            if base > est:
                est = base
        return est

    def estart(self, op_id: int, cluster: int) -> int:
        """Earliest start of *op_id* on *cluster* (uncached form)."""
        return self.estart_from(
            self.pred_arrivals_idx(self.arr.index[op_id]), cluster,
            self.xlat)

    def scheduled_nbr_clusters_idx(self, i: int) -> dict[int, int]:
        """Scheduled DATA-neighbour op *index* -> its cluster."""
        arr = self.arr
        cl = self.cl
        ptr = arr.nbr_ptr
        nbr = arr.nbr
        out: dict[int, int] = {}
        for j in range(ptr[i], ptr[i + 1]):
            x = nbr[j]
            c = cl[x]
            if c >= 0:
                out[x] = c
        return out

    def scheduled_data_neighbours(self, op_id: int) -> dict[int, int]:
        """Scheduled DATA-neighbour op id -> its cluster."""
        ids = self.arr.ids
        return {ids[x]: c for x, c in self.scheduled_nbr_clusters_idx(
            self.arr.index[op_id]).items()}

    def allowed_from_nbrs(self, nbr_clusters: dict[int, int]) -> list[int]:
        """Clusters adjacent to every scheduled DATA neighbour (bitmask
        intersection over the cached ring topology)."""
        if not nbr_clusters:
            return self.all_clusters
        need = 0
        for nc in nbr_clusters.values():
            need |= 1 << nc
        masks = self.adj_mask
        return [c for c in self.all_clusters
                if masks[c] & need == need]

    def allowed_clusters(self, op_id: int,
                         pinned: dict[int, int],
                         relax_adjacency: bool,
                         nbr_clusters: Optional[dict[int, int]] = None
                         ) -> list[int]:
        if op_id in pinned:
            return [pinned[op_id]]
        if relax_adjacency:
            return self.all_clusters
        if nbr_clusters is None:
            nbr_clusters = self.scheduled_data_neighbours(op_id)
        return self.allowed_from_nbrs(nbr_clusters)

    def affinity(self, op_id: int, cluster: int) -> int:
        return sum(1 for c in
                   self.scheduled_data_neighbours(op_id).values()
                   if c == cluster)


class Partitioner(abc.ABC):
    """Base class of all cluster-partitioning engines.

    Subclasses set ``name`` (the registry key) and ``description`` (one
    line for ``repro-vliw partitioners``) and implement :meth:`try_at_ii`.
    """

    #: Registry key; also the value of ``PartitionConfig.partitioner``.
    name: ClassVar[str] = ""
    #: One-line summary shown by ``repro-vliw partitioners``.
    description: ClassVar[str] = ""
    #: True when attempts consume shared randomness (the ``random``
    #: engine): probe outcomes then depend on the *sequence* of IIs
    #: probed, so the II driver must keep the sequential linear walk --
    #: adaptive bracketing would visit different IIs and desynchronise
    #: the stream, breaking linear/adaptive schedule parity.
    stochastic: ClassVar[bool] = False

    @abc.abstractmethod
    def try_at_ii(self, ddg: Ddg, cm: ClusteredMachine, ii: int, *,
                  budget: int,
                  pinned: Optional[dict[int, int]] = None,
                  relax_adjacency: bool = False,
                  stats: Optional[ScheduleStats] = None,
                  rng: Optional[_random.Random] = None,
                  arena: Optional[SchedArena] = None,
                  ) -> Optional[PartitionState]:
        """One partitioned-scheduling attempt at a fixed II.

        Returns the final :class:`PartitionState` (``sigma`` +
        ``cluster_of``) or ``None`` when the placement budget runs out.
        ``pinned`` fixes some ops' clusters; ``relax_adjacency`` disables
        the ring constraint (the MOVE pipeline's first pass).  With an
        *arena* the attempt state borrows the arena's pooled buffers;
        the returned state is then only valid until the arena's next
        attempt begins (II drivers consume it immediately).
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<partitioner {self.name!r}>"

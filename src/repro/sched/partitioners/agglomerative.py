"""Two-phase agglomerative partitioning (in the spirit of Aletà et al.).

Phase 1 decides *space* before *time*: ops are merged bottom-up into
exactly ``n_clusters`` groups by descending DATA-affinity (the number of
values flowing between two groups), subject to per-cluster ResMII
balance -- a merge is refused while a group's local resource bound
``max_p ceil(demand_p / cap_p)`` would exceed the balanced share of the
machine.  The groups are then laid out around the ring so that heavily
communicating groups sit on adjacent clusters, and a bounded repair pass
moves individual ops until every DATA edge connects adjacent clusters.

Phase 2 reuses the slot-search engine with every op *pinned* to its
pre-assigned cluster: the search only has to solve the modulo-time
problem, which removes the space/time thrash that costs the greedy
heuristics evictions on ring-spanning recurrences.

When phase 1 cannot produce an adjacency-legal assignment (or the pinned
search exhausts its budget at this II), the engine falls back to the
plain affinity search so it stays total: ``agglomerative`` never fails
where ``affinity`` would succeed.
"""

from __future__ import annotations

import random as _random
from typing import Optional

from repro.ir.ddg import Ddg
from repro.machine.cluster import ClusteredMachine
from repro.machine.resources import pool_for

from ..arena import SchedArena
from ..schedule import ScheduleStats
from .base import PartitionState
from .registry import register_partitioner
from .slotsearch import SlotSearchPartitioner

#: Repair passes over adjacency-violating ops before giving up on the
#: pre-assignment (each pass may move every violating op once).
_REPAIR_PASSES = 4


def _local_res_mii(demand: dict, caps: dict) -> int:
    """Per-cluster resource bound of one group's FU demand."""
    bound = 0
    for pool, d in demand.items():
        cap = caps.get(pool, 0)
        if cap <= 0:
            return 1 << 30  # group needs units this cluster lacks
        bound = max(bound, -(-d // cap))
    return bound


def agglomerative_assignment(ddg: Ddg, cm: ClusteredMachine,
                             ii: int) -> Optional[dict[int, int]]:
    """Affinity-driven pre-assignment op -> cluster, or ``None``.

    Returns a *complete, adjacency-legal* cluster map (every DATA edge
    spans at most one ring hop) or ``None`` when no such map is found
    within the repair budget; callers fall back to the free search.
    """
    n = cm.n_clusters
    ops = ddg.op_ids
    if n <= 1 or len(ops) <= n:
        return None
    caps = {pool: c for pool, c in cm.cluster.fus.as_dict().items()
            if c > 0}
    pool_of = {o: pool_for(ddg.op(o).fu_type) for o in ops}

    # ---- phase 1a: agglomerative merge under ResMII balance ------------
    group_of = {o: i for i, o in enumerate(ops)}
    members: dict[int, list[int]] = {
        g: [o] for o, g in group_of.items()}
    demand: dict[int, dict] = {
        group_of[o]: {pool_of[o]: 1} for o in ops}
    weight: dict[tuple[int, int], int] = {}
    for e in ddg.data_edges():
        if e.src == e.dst:
            continue
        a, b = group_of[e.src], group_of[e.dst]
        key = (a, b) if a < b else (b, a)
        weight[key] = weight.get(key, 0) + 1

    # balanced per-cluster share; +1 slack keeps odd demands mergeable
    total: dict = {}
    for o in ops:
        total[pool_of[o]] = total.get(pool_of[o], 0) + 1
    balance_limit = max(
        (-(-d // (n * caps.get(pool, 1))) for pool, d in total.items()),
        default=1) + 1

    def merged_demand(a: int, b: int) -> dict:
        out = dict(demand[a])
        for pool, d in demand[b].items():
            out[pool] = out.get(pool, 0) + d
        return out

    def merge(a: int, b: int) -> None:
        members[a].extend(members[b])
        demand[a] = merged_demand(a, b)
        for o in members[b]:
            group_of[o] = a
        del members[b], demand[b]
        for (x, y), w in list(weight.items()):
            if b in (x, y):
                del weight[(x, y)]
                other = y if x == b else x
                if other == a:
                    continue
                key = (a, other) if a < other else (other, a)
                weight[key] = weight.get(key, 0) + w

    while len(members) > n:
        # best affinity-weighted merge that keeps the balance bound
        candidate: Optional[tuple[int, int]] = None
        for (a, b), w in sorted(weight.items(),
                                key=lambda kv: (-kv[1], kv[0])):
            if _local_res_mii(merged_demand(a, b), caps) <= balance_limit:
                candidate = (a, b)
                break
        if candidate is None:
            # forced merge: the pair whose union stays lightest
            gids = sorted(members)
            candidate = min(
                ((a, b) for i, a in enumerate(gids) for b in gids[i + 1:]),
                key=lambda ab: (_local_res_mii(merged_demand(*ab), caps),
                                len(members[ab[0]]) + len(members[ab[1]]),
                                ab))
        merge(*candidate)

    # ---- phase 1b: lay the groups out around the ring ------------------
    gids = sorted(members)

    def w_of(a: int, b: int) -> int:
        return weight.get((a, b) if a < b else (b, a), 0)

    if len(gids) == 1:
        path = list(gids)
    else:
        seed = max(((a, b) for i, a in enumerate(gids)
                    for b in gids[i + 1:]),
                   key=lambda ab: (w_of(*ab), -ab[0] - ab[1]))
        path = [seed[0], seed[1]]
        placed = set(path)
        while len(path) < len(gids):
            rest = [g for g in gids if g not in placed]
            head_best = max(rest, key=lambda g: (w_of(path[0], g), -g))
            tail_best = max(rest, key=lambda g: (w_of(path[-1], g), -g))
            if w_of(path[0], head_best) > w_of(path[-1], tail_best):
                path.insert(0, head_best)
                placed.add(head_best)
            else:
                path.append(tail_best)
                placed.add(tail_best)

    cluster_of = {o: path.index(g) for o, g in group_of.items()}

    # ---- phase 1c: adjacency repair ------------------------------------
    adj = [[cm.are_adjacent(a, b) for b in range(n)] for a in range(n)]
    nbrs = {o: sorted(ddg.neighbors_data(o)) for o in ops}

    def violations(o: int, c: int) -> int:
        return sum(1 for x in nbrs[o] if not adj[c][cluster_of[x]])

    for _ in range(_REPAIR_PASSES):
        broken = sorted(o for o in ops if violations(o, cluster_of[o]))
        if not broken:
            return cluster_of
        moved = False
        for o in broken:
            cur = violations(o, cluster_of[o])
            if not cur:
                continue  # an earlier move already fixed this op
            best_c = min(range(n), key=lambda c: (violations(o, c), c))
            if violations(o, best_c) < cur:
                cluster_of[o] = best_c
                moved = True
        if not moved:
            break
    if any(violations(o, cluster_of[o]) for o in ops):
        return None
    return cluster_of


@register_partitioner
class AgglomerativePartitioner(SlotSearchPartitioner):
    name = "agglomerative"
    description = ("two-phase: affinity-weighted agglomerative "
                   "pre-assignment under ResMII balance, slot search "
                   "with clusters pinned")

    # the pinned phase (and the fallback) rank candidates like affinity
    def candidate_key(self, aff: int, t: int, load: int, c: int,
                      rng: _random.Random) -> tuple:
        return (-aff, t, load, c)

    def try_at_ii(self, ddg: Ddg, cm: ClusteredMachine, ii: int, *,
                  budget: int,
                  pinned: Optional[dict[int, int]] = None,
                  relax_adjacency: bool = False,
                  stats: Optional[ScheduleStats] = None,
                  rng: Optional[_random.Random] = None,
                  arena: Optional[SchedArena] = None,
                  ) -> Optional[PartitionState]:
        if not pinned and not relax_adjacency:
            pins = agglomerative_assignment(ddg, cm, ii)
            if pins is not None:
                # split the allowance so this engine's total per-II work
                # stays bounded by `budget` like every other engine's
                pinned_budget = max(1, budget // 2)
                state = super().try_at_ii(
                    ddg, cm, ii, budget=pinned_budget, pinned=pins,
                    relax_adjacency=relax_adjacency, stats=stats, rng=rng,
                    arena=arena)
                if state is not None:
                    return state
                budget -= pinned_budget
                if budget <= 0:
                    return None
        return super().try_at_ii(
            ddg, cm, ii, budget=budget, pinned=pinned,
            relax_adjacency=relax_adjacency, stats=stats, rng=rng,
            arena=arena)

"""Partitioned modulo scheduling for clustered machines (Section 4).

The paper's partitioner extends IMS with cluster assignment: every op is
placed both *in time* (a modulo row, per IMS) and *in space* (a cluster).
The ring topology allows a value to flow only to an adjacent cluster, so an
op's feasible clusters are constrained by where its already-scheduled DATA
neighbours live; conflicts trigger the same forced-placement/eviction
machinery as plain IMS ("a backtracking process to unschedule conflicting
operations") and, when the budget runs out, an II increase -- the quantity
Fig. 6 reports.

*How* the space/time search picks clusters is a pluggable seam: the
engines live in :mod:`repro.sched.partitioners` (``affinity``,
``balance``, ``first``, ``random``, ``agglomerative``) and are selected
by name through ``PartitionConfig.partitioner``.  This module owns the
engine-agnostic II search (:func:`partitioned_schedule`) and the MOVE
extension.

:func:`schedule_with_moves` implements the paper's proposed future-work fix
(evaluated as ablation A3): a relaxed scheduling pass assigns clusters
ignoring adjacency, explicit MOVE ops are materialised along ring paths for
every edge spanning more than one hop, and a second constrained pass
schedules the augmented DDG with every op pinned to its cluster.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Optional

from repro.ir.ddg import Ddg, DepKind
from repro.ir.operations import Opcode
from repro.ir.validate import validate_ddg
from repro.machine.cluster import ClusteredMachine
from repro.obs import trace as _trace

from .arena import global_arena
from .iisearch import DEFAULT_II_SEARCH, search_ii
from .mii import mii_report
from .partitioners import (DEFAULT_PARTITIONER, PartitionState,
                           get_partitioner)
from .schedule import ModuloSchedule, ScheduleStats, SchedulingError

#: Historical alias -- partitioner names are an open registry now, not a
#: closed Literal; kept so old annotations keep importing.
PartitionStrategy = str


@dataclass
class PartitionConfig:
    """Tunables of the partitioned search.

    ``partitioner`` names the cluster-partitioning engine from the
    :mod:`repro.sched.partitioners` registry; ``strategy`` is the
    pre-registry spelling, kept as an init-time alias that overrides
    ``partitioner`` when given.  It is reset to ``None`` after folding,
    so ``dataclasses.replace(cfg, partitioner=...)`` selects the new
    engine instead of reviving the alias.
    """

    budget_ratio: int = 6
    max_ii: Optional[int] = None
    partitioner: str = DEFAULT_PARTITIONER
    strategy: Optional[str] = None
    validate_input: bool = True
    validate_output: bool = True
    seed: int = 0
    ii_search: str = DEFAULT_II_SEARCH

    def __post_init__(self) -> None:
        if self.strategy is not None:
            self.partitioner = self.strategy
            self.strategy = None

    def budget_for(self, n_ops: int) -> int:
        return max(1, self.budget_ratio * n_ops)

    def ii_limit(self, ddg: Ddg, start_ii: int) -> int:
        if self.max_ii is not None:
            return self.max_ii
        return start_ii + ddg.n_ops + ddg.sum_latency() + 1


def try_partition_at_ii(ddg: Ddg, cm: ClusteredMachine, ii: int, *,
                        budget: int,
                        strategy: str = DEFAULT_PARTITIONER,
                        pinned: Optional[dict[int, int]] = None,
                        relax_adjacency: bool = False,
                        stats: Optional[ScheduleStats] = None,
                        rng: Optional[_random.Random] = None,
                        ) -> Optional[PartitionState]:
    """One partitioned attempt at a fixed II under the named engine.

    Kept as the historical single-call surface; the engine objects in
    :mod:`repro.sched.partitioners` are the extensible form.  Returns the
    final :class:`~repro.sched.partitioners.PartitionState` or ``None``
    when the budget runs out; raises ``KeyError`` naming the registered
    engines on an unknown name.
    """
    return get_partitioner(strategy).try_at_ii(
        ddg, cm, ii, budget=budget, pinned=pinned,
        relax_adjacency=relax_adjacency, stats=stats, rng=rng)


def partitioned_schedule(ddg: Ddg, cm: ClusteredMachine, *,
                         config: Optional[PartitionConfig] = None,
                         start_ii: Optional[int] = None,
                         pinned: Optional[dict[int, int]] = None,
                         relax_adjacency: bool = False) -> ModuloSchedule:
    """Schedule *ddg* on a clustered machine.

    Raises :class:`SchedulingError` when no II up to the limit works and
    ``KeyError`` (naming the registered engines) on an unknown
    ``config.partitioner``.  ``pinned`` fixes some ops' clusters (used by
    the MOVE pipeline); ``relax_adjacency`` disables the ring constraint
    (internal use and upper-bound studies).
    """
    cfg = config or PartitionConfig()
    engine = get_partitioner(cfg.partitioner)
    ddg = cm.cluster.retime(ddg)
    if cfg.validate_input:
        validate_ddg(ddg)

    report = mii_report(ddg, cm)
    first_ii = max(report.mii, start_ii or 1)
    stats = ScheduleStats(mii=report.mii, res_mii=report.res,
                          rec_mii=report.rec)
    limit = cfg.ii_limit(ddg, first_ii)
    rng = _random.Random(cfg.seed)
    arena = global_arena()

    def probe(ii: int) -> Optional[PartitionState]:
        stats.iis_tried += 1
        stats.budget = cfg.budget_for(ddg.n_ops)
        if _trace.tracing_enabled():
            # placement-round / eviction accounting per attempt: the
            # engine accumulates onto *stats*, so the counter deltas
            # across one try_at_ii call are this attempt's rounds
            placed0, evicted0 = stats.attempts, stats.evictions
            state = engine.try_at_ii(
                ddg, cm, ii, budget=stats.budget, pinned=pinned,
                relax_adjacency=relax_adjacency, stats=stats, rng=rng,
                arena=arena)
            _trace.trace_count("partition.placements",
                               stats.attempts - placed0)
            _trace.trace_count("partition.evictions",
                               stats.evictions - evicted0)
            return state
        return engine.try_at_ii(
            ddg, cm, ii, budget=stats.budget, pinned=pinned,
            relax_adjacency=relax_adjacency, stats=stats, rng=rng,
            arena=arena)

    # stochastic engines consume one seeded stream across probes, so
    # only the sequential walk gives reproducible (and linear-identical)
    # results; deterministic engines honour the configured mode
    mode = "linear" if engine.stochastic else cfg.ii_search
    found = search_ii(probe, first_ii, limit, mode=mode)
    if found is None:
        raise SchedulingError(
            f"no partitioned schedule for {ddg.name!r} on {cm.name} "
            f"with II <= {limit} ({cfg.partitioner!r} partitioner)")
    ii, state = found
    # normalise off the packed state; the state dies here, so its
    # cluster map transfers without a copy (the dicts are per-state,
    # never arena-pooled)
    shift = min(state.sigma.values())
    sigma = {o: t - shift for o, t in state.sigma.items()}
    sched = ModuloSchedule(
        ddg=ddg, ii=ii, sigma=sigma, cluster_of=state.cluster_of,
        n_clusters=cm.n_clusters, machine_name=cm.name, stats=stats)
    if cfg.validate_output:
        sched.validate(
            cm.cluster.fus.pool_caps,
            adjacency=None if relax_adjacency else cm)
    return sched


# ---------------------------------------------------------------------------
# MOVE extension (the paper's future work; ablation A3)
# ---------------------------------------------------------------------------

@dataclass
class MoveScheduleResult:
    """Outcome of :func:`schedule_with_moves`."""

    schedule: ModuloSchedule
    n_moves: int
    ddg: Ddg = field(repr=False, default=None)  # the move-augmented DDG


def insert_moves(ddg: Ddg, cm: ClusteredMachine,
                 cluster_of: dict[int, int]) -> tuple[Ddg, dict[int, int]]:
    """Materialise MOVE chains for DATA edges spanning > 1 ring hop.

    Returns the augmented DDG and the cluster pin map covering *all* ops
    (originals keep their assignment; moves sit on the intermediate
    clusters of the shortest ring path).  Loop-carried distance stays on
    the final move->consumer edge so iteration semantics are unchanged.
    """
    out = ddg.copy()
    pins: dict[int, int] = dict(cluster_of)
    n_moves = 0
    for e in list(ddg.data_edges()):
        ca, cb = cluster_of[e.src], cluster_of[e.dst]
        if cm.are_adjacent(ca, cb):
            continue
        path = cm.hop_path(ca, cb)
        out.remove_edge(e)
        prev = e.src
        for hop_cluster in path[1:-1]:
            mv = out.add_operation(
                Opcode.MOVE,
                name=f"{ddg.op(e.src).name}.mv{n_moves}",
                origin=e.src,
                unroll_index=ddg.op(e.src).unroll_index)
            out.add_dependence(prev, mv.op_id, distance=0,
                               kind=DepKind.DATA)
            pins[mv.op_id] = hop_cluster
            prev = mv.op_id
            n_moves += 1
        out.add_dependence(prev, e.dst, distance=e.distance,
                           kind=DepKind.DATA)
    return out, pins


def schedule_with_moves(ddg: Ddg, cm: ClusteredMachine, *,
                        config: Optional[PartitionConfig] = None,
                        start_ii: Optional[int] = None
                        ) -> MoveScheduleResult:
    """Two-pass scheduling with explicit inter-cluster MOVE ops.

    Pass 1 assigns clusters with the ring constraint relaxed (pure
    affinity/balance partitioning); pass 2 inserts MOVE chains on every
    non-adjacent edge and re-schedules with all ops pinned, enforcing the
    ring constraint.  The strict ring-only schedule is also attempted and
    the better of the two is returned (moves cost copy-unit slots and
    lengthen paths, so they should only be paid when the ring constraint
    actually binds).  The final schedule is always fully ring-legal.
    """
    cfg = config or PartitionConfig()

    strict: Optional[ModuloSchedule] = None
    try:
        strict = partitioned_schedule(ddg, cm, config=cfg,
                                      start_ii=start_ii)
    except SchedulingError:
        pass

    relaxed = partitioned_schedule(
        ddg, cm, config=cfg, start_ii=start_ii, relax_adjacency=True)
    moved, pins = insert_moves(relaxed.ddg, cm, relaxed.cluster_of)
    n_moves = moved.n_ops - relaxed.ddg.n_ops
    if n_moves == 0:
        # relaxed pass was already ring-legal
        relaxed.validate(cm.cluster.fus.pool_caps, adjacency=cm)
        via_moves = MoveScheduleResult(relaxed, 0, relaxed.ddg)
    else:
        try:
            final = partitioned_schedule(
                moved, cm, config=cfg, start_ii=start_ii, pinned=pins)
            via_moves = MoveScheduleResult(final, n_moves, moved)
        except SchedulingError:
            if strict is None:
                raise
            via_moves = None

    if via_moves is None:
        return MoveScheduleResult(strict, 0, ddg)
    if strict is not None and strict.ii <= via_moves.schedule.ii:
        return MoveScheduleResult(strict, 0, ddg)
    return via_moves

"""Partitioned modulo scheduling for clustered machines (Section 4).

The paper's partitioner extends IMS with cluster assignment: every op is
placed both *in time* (a modulo row, per IMS) and *in space* (a cluster).
The ring topology allows a value to flow only to an adjacent cluster, so an
op's feasible clusters are constrained by where its already-scheduled DATA
neighbours live; conflicts trigger the same forced-placement/eviction
machinery as plain IMS ("a backtracking process to unschedule conflicting
operations") and, when the budget runs out, an II increase -- the quantity
Fig. 6 reports.

Cluster-choice strategies (ablation A2):

* ``"affinity"`` (default) -- prefer the cluster holding the most scheduled
  DATA neighbours, then earliest slot, then lightest load.
* ``"balance"``  -- prefer the least-loaded cluster, then earliest slot.
* ``"first"``    -- earliest slot, lowest cluster index (naive baseline).
* ``"random"``   -- uniformly random feasible candidate (seeded).

:func:`schedule_with_moves` implements the paper's proposed future-work fix
(evaluated as ablation A3): a relaxed scheduling pass assigns clusters
ignoring adjacency, explicit MOVE ops are materialised along ring paths for
every edge spanning more than one hop, and a second constrained pass
schedules the augmented DDG with every op pinned to its cluster.
"""

from __future__ import annotations

import random as _random
from dataclasses import dataclass, field
from typing import Literal, Optional

from repro.ir.ddg import Ddg, DepKind
from repro.ir.operations import Opcode
from repro.ir.validate import validate_ddg
from repro.machine.cluster import ClusteredMachine

from .mii import mii_report
from .mrt import ModuloReservationTable
from .priority import priority_order
from .schedule import ModuloSchedule, ScheduleStats, SchedulingError

PartitionStrategy = Literal["affinity", "balance", "first", "random"]


@dataclass
class PartitionConfig:
    """Tunables of the partitioned search."""

    budget_ratio: int = 6
    max_ii: Optional[int] = None
    strategy: PartitionStrategy = "affinity"
    validate_input: bool = True
    validate_output: bool = True
    seed: int = 0

    def budget_for(self, n_ops: int) -> int:
        return max(1, self.budget_ratio * n_ops)

    def ii_limit(self, ddg: Ddg, start_ii: int) -> int:
        if self.max_ii is not None:
            return self.max_ii
        return start_ii + ddg.n_ops + ddg.sum_latency() + 1


class _State:
    """Mutable search state for one II attempt."""

    def __init__(self, ddg: Ddg, cm: ClusteredMachine, ii: int) -> None:
        self.ddg = ddg
        self.cm = cm
        self.ii = ii
        self.sigma: dict[int, int] = {}
        self.cluster_of: dict[int, int] = {}
        self.last_time: dict[int, int] = {}
        self.mrts = [
            ModuloReservationTable(ii, cm.cluster.fus.as_dict())
            for _ in range(cm.n_clusters)
        ]
        n = cm.n_clusters
        # flat caches -- the inner loop runs millions of times
        self.adj = [[cm.are_adjacent(a, b) for b in range(n)]
                    for a in range(n)]
        self.in_e = {o: ddg.in_edges(o) for o in ddg.op_ids}
        self.data_nbrs = {o: ddg.neighbors_data(o) for o in ddg.op_ids}
        self.all_clusters = list(range(n))

    def unschedule(self, op_id: int) -> None:
        self.mrts[self.cluster_of[op_id]].remove(op_id)
        del self.sigma[op_id]
        del self.cluster_of[op_id]

    def estart(self, op_id: int, cluster: int) -> int:
        xlat = self.cm.inter_cluster_latency
        est = 0
        sigma = self.sigma
        ii = self.ii
        for e in self.in_e[op_id]:
            t = sigma.get(e.src)
            if t is None:
                continue
            extra = 0
            if (xlat and e.kind is DepKind.DATA
                    and self.cluster_of[e.src] != cluster):
                extra = xlat
            cand = t + e.latency + extra - e.distance * ii
            if cand > est:
                est = cand
        return est

    def scheduled_data_neighbours(self, op_id: int) -> dict[int, int]:
        """Scheduled DATA-neighbour op -> its cluster."""
        cluster_of = self.cluster_of
        return {nbr: cluster_of[nbr] for nbr in self.data_nbrs[op_id]
                if nbr in cluster_of}

    def allowed_clusters(self, op_id: int,
                         pinned: dict[int, int],
                         relax_adjacency: bool) -> list[int]:
        if op_id in pinned:
            return [pinned[op_id]]
        if relax_adjacency:
            return self.all_clusters
        nbrs = self.scheduled_data_neighbours(op_id)
        if not nbrs:
            return self.all_clusters
        adj = self.adj
        clusters = set(nbrs.values())
        return [c for c in self.all_clusters
                if all(adj[c][nc] for nc in clusters)]

    def affinity(self, op_id: int, cluster: int) -> int:
        return sum(1 for c in
                   self.scheduled_data_neighbours(op_id).values()
                   if c == cluster)


def try_partition_at_ii(ddg: Ddg, cm: ClusteredMachine, ii: int, *,
                        budget: int,
                        strategy: PartitionStrategy = "affinity",
                        pinned: Optional[dict[int, int]] = None,
                        relax_adjacency: bool = False,
                        stats: Optional[ScheduleStats] = None,
                        rng: Optional[_random.Random] = None,
                        ) -> Optional[_State]:
    """One partitioned-IMS attempt at a fixed II.

    Returns the final :class:`_State` (``sigma`` + ``cluster_of``) or
    ``None`` when the budget runs out.
    """
    if strategy not in ("affinity", "balance", "first", "random"):
        raise ValueError(f"unknown strategy {strategy!r}")
    pinned = pinned or {}
    rng = rng or _random.Random(0)
    order = priority_order(ddg, ii)
    state = _State(ddg, cm, ii)
    unscheduled = set(order)
    # aging: repeated adjacency deadlocks rotate through cluster choices
    # (a deterministic heuristic would otherwise ping-pong forever between
    # two mutually-exclusive placements)
    deadlocks: dict[int, int] = {}

    while unscheduled:
        if budget <= 0:
            return None
        budget -= 1
        op_id = next(o for o in order if o in unscheduled)
        unscheduled.discard(op_id)
        op = ddg.op(op_id)

        allowed = state.allowed_clusters(op_id, pinned, relax_adjacency)
        nbr_clusters = state.scheduled_data_neighbours(op_id)
        aff_count: dict[int, int] = {}
        for nc in nbr_clusters.values():
            aff_count[nc] = aff_count.get(nc, 0) + 1
        uniform_est = (state.estart(op_id, 0)
                       if cm.inter_cluster_latency == 0 else None)

        # ---- normal placement: best (cluster, slot) candidate ----------
        best: Optional[tuple[tuple, int, int]] = None  # key, cluster, slot
        for c in allowed:
            est = (uniform_est if uniform_est is not None
                   else state.estart(op_id, c))
            for t in range(est, est + ii):
                if state.mrts[c].can_place(op.fu_type, t):
                    aff = aff_count.get(c, 0)
                    load = state.mrts[c].load()
                    if strategy == "affinity":
                        key = (-aff, t, load, c)
                    elif strategy == "balance":
                        key = (load, t, -aff, c)
                    elif strategy == "first":
                        key = (t, c)
                    else:  # random
                        key = (rng.random(),)
                    if best is None or key < best[0]:
                        best = (key, c, t)
                    break  # earliest slot in this cluster is enough

        if best is not None:
            _, cluster, t = best
        else:
            # ---- forced placement -------------------------------------
            if allowed:
                # adjacency satisfiable but no free slot: evict on the
                # cluster with the best affinity
                cluster = min(
                    allowed,
                    key=lambda c: (-aff_count.get(c, 0),
                                   state.mrts[c].load(), c))
            else:
                # adjacency deadlock: rank clusters by violation count and
                # rotate through the ranking as the same op deadlocks
                # again (aging); after a full rotation, clear the whole
                # data neighbourhood to re-seed the region
                k = deadlocks.get(op_id, 0)
                deadlocks[op_id] = k + 1
                adj = state.adj
                ranked = sorted(
                    state.all_clusters,
                    key=lambda c: (
                        sum(1 for nc in nbr_clusters.values()
                            if not adj[c][nc]),
                        state.mrts[c].load(), c))
                cluster = ranked[k % len(ranked)]
                wide = k >= len(ranked)
                for nbr, nc in sorted(nbr_clusters.items()):
                    if wide or not state.adj[cluster][nc]:
                        state.unschedule(nbr)
                        unscheduled.add(nbr)
                        if stats is not None:
                            stats.evictions += 1
            t = state.estart(op_id, cluster)
            prev = state.last_time.get(op_id)
            if prev is not None and t <= prev:
                t = prev + 1
            evicted = state.mrts[cluster].evict_for(op.fu_type, t)
            for victim in evicted:
                del state.sigma[victim]
                del state.cluster_of[victim]
            unscheduled.update(evicted)
            if stats is not None:
                stats.evictions += len(evicted)

        state.mrts[cluster].place(op_id, op.fu_type, t)
        state.sigma[op_id] = t
        state.cluster_of[op_id] = cluster
        state.last_time[op_id] = t
        if stats is not None:
            stats.attempts += 1

        # ---- drop ops whose dependence the new placement violates ------
        for e in ddg.out_edges(op_id):
            ts = state.sigma.get(e.dst)
            if (ts is not None and e.dst != op_id
                    and ts + e.distance * ii < t + e.latency):
                state.unschedule(e.dst)
                unscheduled.add(e.dst)
        for e in ddg.in_edges(op_id):
            tp = state.sigma.get(e.src)
            if (tp is not None and e.src != op_id
                    and t + e.distance * ii < tp + e.latency):
                state.unschedule(e.src)
                unscheduled.add(e.src)

    return state


def partitioned_schedule(ddg: Ddg, cm: ClusteredMachine, *,
                         config: Optional[PartitionConfig] = None,
                         start_ii: Optional[int] = None,
                         pinned: Optional[dict[int, int]] = None,
                         relax_adjacency: bool = False) -> ModuloSchedule:
    """Schedule *ddg* on a clustered machine.

    Raises :class:`SchedulingError` when no II up to the limit works.
    ``pinned`` fixes some ops' clusters (used by the MOVE pipeline);
    ``relax_adjacency`` disables the ring constraint (internal use and
    upper-bound studies).
    """
    cfg = config or PartitionConfig()
    ddg = cm.cluster.retime(ddg)
    if cfg.validate_input:
        validate_ddg(ddg)

    report = mii_report(ddg, cm)
    first_ii = max(report.mii, start_ii or 1)
    stats = ScheduleStats(mii=report.mii, res_mii=report.res,
                          rec_mii=report.rec)
    limit = cfg.ii_limit(ddg, first_ii)
    rng = _random.Random(cfg.seed)

    for ii in range(first_ii, limit + 1):
        stats.iis_tried += 1
        stats.budget = cfg.budget_for(ddg.n_ops)
        state = try_partition_at_ii(
            ddg, cm, ii, budget=stats.budget, strategy=cfg.strategy,
            pinned=pinned, relax_adjacency=relax_adjacency, stats=stats,
            rng=rng)
        if state is None:
            continue
        shift = min(state.sigma.values())
        sigma = {o: t - shift for o, t in state.sigma.items()}
        sched = ModuloSchedule(
            ddg=ddg, ii=ii, sigma=sigma, cluster_of=dict(state.cluster_of),
            n_clusters=cm.n_clusters, machine_name=cm.name, stats=stats)
        if cfg.validate_output:
            sched.validate(
                cm.cluster.fus.as_dict(),
                adjacency=None if relax_adjacency else cm)
        return sched

    raise SchedulingError(
        f"no partitioned schedule for {ddg.name!r} on {cm.name} "
        f"with II <= {limit}")


# ---------------------------------------------------------------------------
# MOVE extension (the paper's future work; ablation A3)
# ---------------------------------------------------------------------------

@dataclass
class MoveScheduleResult:
    """Outcome of :func:`schedule_with_moves`."""

    schedule: ModuloSchedule
    n_moves: int
    ddg: Ddg = field(repr=False, default=None)  # the move-augmented DDG


def insert_moves(ddg: Ddg, cm: ClusteredMachine,
                 cluster_of: dict[int, int]) -> tuple[Ddg, dict[int, int]]:
    """Materialise MOVE chains for DATA edges spanning > 1 ring hop.

    Returns the augmented DDG and the cluster pin map covering *all* ops
    (originals keep their assignment; moves sit on the intermediate
    clusters of the shortest ring path).  Loop-carried distance stays on
    the final move->consumer edge so iteration semantics are unchanged.
    """
    out = ddg.copy()
    pins: dict[int, int] = dict(cluster_of)
    n_moves = 0
    for e in list(ddg.data_edges()):
        ca, cb = cluster_of[e.src], cluster_of[e.dst]
        if cm.are_adjacent(ca, cb):
            continue
        path = cm.hop_path(ca, cb)
        out.remove_edge(e)
        prev = e.src
        for hop_cluster in path[1:-1]:
            mv = out.add_operation(
                Opcode.MOVE,
                name=f"{ddg.op(e.src).name}.mv{n_moves}",
                origin=e.src,
                unroll_index=ddg.op(e.src).unroll_index)
            out.add_dependence(prev, mv.op_id, distance=0,
                               kind=DepKind.DATA)
            pins[mv.op_id] = hop_cluster
            prev = mv.op_id
            n_moves += 1
        out.add_dependence(prev, e.dst, distance=e.distance,
                           kind=DepKind.DATA)
    return out, pins


def schedule_with_moves(ddg: Ddg, cm: ClusteredMachine, *,
                        config: Optional[PartitionConfig] = None,
                        start_ii: Optional[int] = None
                        ) -> MoveScheduleResult:
    """Two-pass scheduling with explicit inter-cluster MOVE ops.

    Pass 1 assigns clusters with the ring constraint relaxed (pure
    affinity/balance partitioning); pass 2 inserts MOVE chains on every
    non-adjacent edge and re-schedules with all ops pinned, enforcing the
    ring constraint.  The strict ring-only schedule is also attempted and
    the better of the two is returned (moves cost copy-unit slots and
    lengthen paths, so they should only be paid when the ring constraint
    actually binds).  The final schedule is always fully ring-legal.
    """
    cfg = config or PartitionConfig()

    strict: Optional[ModuloSchedule] = None
    try:
        strict = partitioned_schedule(ddg, cm, config=cfg,
                                      start_ii=start_ii)
    except SchedulingError:
        pass

    relaxed = partitioned_schedule(
        ddg, cm, config=cfg, start_ii=start_ii, relax_adjacency=True)
    moved, pins = insert_moves(relaxed.ddg, cm, relaxed.cluster_of)
    n_moves = moved.n_ops - relaxed.ddg.n_ops
    if n_moves == 0:
        # relaxed pass was already ring-legal
        relaxed.validate(cm.cluster.fus.as_dict(), adjacency=cm)
        via_moves = MoveScheduleResult(relaxed, 0, relaxed.ddg)
    else:
        try:
            final = partitioned_schedule(
                moved, cm, config=cfg, start_ii=start_ii, pinned=pins)
            via_moves = MoveScheduleResult(final, n_moves, moved)
        except SchedulingError:
            if strict is None:
                raise
            via_moves = None

    if via_moves is None:
        return MoveScheduleResult(strict, 0, ddg)
    if strict is not None and strict.ii <= via_moves.schedule.ii:
        return MoveScheduleResult(strict, 0, ddg)
    return via_moves

"""Modulo schedule result objects.

A :class:`ModuloSchedule` binds a loop DDG to issue times (``sigma``) and --
for clustered machines -- cluster assignments.  It knows how to re-derive
everything downstream analyses need: stage count, kernel occupancy, static
IPC, per-edge lifetimes, and it can *audit itself* against the dependence
and resource constraints (:meth:`validate`), which every scheduler test
exercises.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

from repro.ir.ddg import Ddg, DepEdge, DepKind
from repro.ir.operations import FuType
from repro.kernels import active as _kernel_backend

from repro.machine.resources import HARDWARE_POOLS, POOL_IDS, pool_for


class SchedulingError(RuntimeError):
    """Raised when no schedule is found within the II / budget limits."""


class ScheduleValidationError(AssertionError):
    """Raised by :meth:`ModuloSchedule.validate` on a broken schedule."""


@dataclass
class ScheduleStats:
    """Bookkeeping of the search that produced a schedule."""

    mii: int = 0
    res_mii: int = 0
    rec_mii: int = 0
    attempts: int = 0          # placements performed (incl. re-placements)
    evictions: int = 0
    iis_tried: int = 0
    budget: int = 0


@dataclass
class ModuloSchedule:
    """An accepted modulo schedule.

    ``sigma[op_id]`` is the issue cycle of iteration 0; iteration *k*
    issues at ``sigma[op_id] + k * ii``.  ``cluster_of[op_id]`` is 0 for
    single-cluster machines.
    """

    ddg: Ddg
    ii: int
    sigma: dict[int, int]
    cluster_of: dict[int, int] = field(default_factory=dict)
    n_clusters: int = 1
    machine_name: str = ""
    stats: ScheduleStats = field(default_factory=ScheduleStats)

    def __post_init__(self) -> None:
        if self.ii < 1:
            raise ValueError("II must be >= 1")
        if not self.cluster_of:
            self.cluster_of = {o: 0 for o in self.sigma}

    # ----------------------------------------------------------- queries

    def time_of(self, op_id: int) -> int:
        return self.sigma[op_id]

    def row_of(self, op_id: int) -> int:
        return self.sigma[op_id] % self.ii

    def stage_of(self, op_id: int) -> int:
        return self.sigma[op_id] // self.ii

    @property
    def max_time(self) -> int:
        return max(self.sigma.values(), default=0)

    @property
    def stage_count(self) -> int:
        """Number of pipeline stages (iterations concurrently in flight).

        ``SC = floor(max issue time / II) + 1`` -- determines prologue and
        epilogue length: total cycles for N iterations are
        ``(N + SC - 1) * II``.
        """
        return self.max_time // self.ii + 1

    @property
    def n_ops(self) -> int:
        return len(self.sigma)

    def static_ipc(self) -> float:
        """Kernel operations issued per cycle (paper's IPC_static)."""
        return self.n_ops / self.ii

    def cycles_for(self, iterations: int, *,
                   unroll_factor: int = 1) -> int:
        """Execution cycles for *iterations* original iterations, including
        prologue and epilogue (paper's dynamic model).

        If the scheduled body is an unrolled loop covering ``unroll_factor``
        original iterations per kernel iteration, the kernel runs
        ``ceil(iterations / unroll_factor)`` times.
        """
        if iterations < 1:
            raise ValueError("iterations must be >= 1")
        if unroll_factor < 1:
            raise ValueError("unroll_factor must be >= 1")
        kernel_iters = -(-iterations // unroll_factor)
        return (kernel_iters + self.stage_count - 1) * self.ii

    def dynamic_ipc(self, iterations: Optional[int] = None, *,
                    unroll_factor: int = 1,
                    useful_ops_per_iteration: Optional[int] = None) -> float:
        """Operations per cycle over a whole loop execution
        (paper's IPC_dynamic; prologue/epilogue drag included).

        ``useful_ops_per_iteration`` lets callers count only source ops
        (excluding compiler-inserted copies) or count unrolled bodies per
        original iteration; defaults to this DDG's op count per kernel
        iteration.
        """
        iterations = iterations or self.ddg.trip_count
        kernel_iters = -(-iterations // unroll_factor)
        ops = (useful_ops_per_iteration * iterations
               if useful_ops_per_iteration is not None
               else self.n_ops * kernel_iters)
        return ops / self.cycles_for(iterations, unroll_factor=unroll_factor)

    # ------------------------------------------------------ lifetimes

    def value_write_time(self, op_id: int) -> int:
        """Cycle the op's result enters its register/queue (iteration 0)."""
        return self.sigma[op_id] + self.ddg.op(op_id).latency

    def value_read_time(self, edge: DepEdge) -> int:
        """Cycle the consumer of *edge* reads the iteration-0 value."""
        return self.sigma[edge.dst] + edge.distance * self.ii

    def edge_slack(self, edge: DepEdge) -> int:
        """Cycles between value availability and consumption (>= 0 iff the
        dependence is honoured)."""
        return (self.sigma[edge.dst] + edge.distance * self.ii
                - self.sigma[edge.src] - edge.latency)

    # ----------------------------------------------------- validation

    def validate(self, capacities: "Union[dict[FuType, int], Sequence[int], None]" = None,
                 *, adjacency: Optional[object] = None) -> None:
        """Audit the schedule; raise :class:`ScheduleValidationError`.

        Checks: every op scheduled exactly once at time >= 0; every
        dependence satisfied; (optionally) per-cluster modulo resource
        limits given per-cluster pool *capacities* (a FuType-keyed dict
        or a pre-packed per-pool-id vector such as ``FuSet.pool_caps``);
        (optionally, clustered)
        every DATA edge connects ring-adjacent clusters, given the
        :class:`~repro.machine.cluster.ClusteredMachine` as *adjacency*.
        """
        problems: list[str] = []
        ddg = self.ddg
        arr = ddg.arrays()
        ids = arr.ids
        sigma = self.sigma
        ii = self.ii
        # packed sigma mirror; -1 marks unscheduled ops
        sig = [-1] * arr.n
        for i, o in enumerate(ids):
            t = sigma.get(o)
            if t is None:
                problems.append(f"op {o} unscheduled")
            elif t < 0:
                problems.append(f"op {o} at negative time")
            else:
                sig[i] = t
        known = arr.index
        for extra in sigma:
            if extra not in known:
                problems.append(f"sigma has unknown op {extra}")

        # fast boolean audits on the kernel backend first: a clean,
        # fully-scheduled schedule (the overwhelmingly common case --
        # every scheduler output is validated) skips the per-edge
        # diagnostic loops entirely; any problem falls through to them
        # so the error text is identical on every backend
        backend = _kernel_backend()
        clean = not problems
        if clean and not backend.dependence_clean(arr, sig, ii):
            clean = False
        if not clean:
            for s, d, lat, dist in zip(arr.e_src, arr.e_dst, arr.e_lat,
                                       arr.e_dist):
                ts, td = sig[s], sig[d]
                if ts < 0 or td < 0:
                    continue
                if td + dist * ii - ts - lat < 0:
                    problems.append(
                        f"dependence violated: {ddg.op(ids[s]).name}"
                        f"@{ts} -> {ddg.op(ids[d]).name}"
                        f"@{td} (lat={lat}, d={dist}, II={ii})")

        if capacities is not None:
            cluster_of = self.cluster_of
            pool = arr.pool
            if isinstance(capacities, dict):
                caps = [0] * len(HARDWARE_POOLS)
                for p, n in capacities.items():
                    caps[POOL_IDS[pool_for(p)]] = n
            else:
                # pre-packed per-pool vector (FuSet.pool_caps)
                caps = capacities
            cl_list = [cluster_of.get(o, 0) for o in ids]
            if not backend.capacity_clean(pool, sig, cl_list, ii, caps):
                usage: dict[tuple[int, int, int], int] = {}
                for i, o in enumerate(ids):
                    t = sig[i]
                    if t < 0:
                        continue
                    key = (cl_list[i], pool[i], t % ii)
                    usage[key] = usage.get(key, 0) + 1
                for (cl, pid, row), n in sorted(
                        usage.items(),
                        key=lambda kv: (kv[0][0],
                                        HARDWARE_POOLS[kv[0][1]].name,
                                        kv[0][2])):
                    if n > caps[pid]:
                        problems.append(
                            f"cluster {cl}: {n} ops on "
                            f"{HARDWARE_POOLS[pid].value} at row "
                            f"{row} (capacity {caps[pid]})")

        if adjacency is not None:
            cluster_of = self.cluster_of
            cl = [cluster_of.get(o, 0) for o in ids]
            for i in range(arr.n):
                ca = cl[i]
                for j in range(arr.out_ptr[i], arr.out_ptr[i + 1]):
                    if not arr.out_data[j]:
                        continue
                    cb = cl[arr.out_dst[j]]
                    if not adjacency.are_adjacent(ca, cb):
                        problems.append(
                            f"DATA edge {ddg.op(ids[i]).name}(cl{ca}) -> "
                            f"{ddg.op(ids[arr.out_dst[j]]).name}(cl{cb}) "
                            f"spans non-adjacent clusters")

        if problems:
            raise ScheduleValidationError(
                f"schedule of {self.ddg.name!r} invalid:\n  "
                + "\n  ".join(problems))

    # -------------------------------------------------------- rendering

    def render(self) -> str:
        """Kernel table: one line per modulo row."""
        by_row: dict[int, list[str]] = {r: [] for r in range(self.ii)}
        for op_id in sorted(self.sigma, key=lambda o: (self.row_of(o), o)):
            op = self.ddg.op(op_id)
            tag = (f"{op.name}@s{self.stage_of(op_id)}"
                   + (f"/c{self.cluster_of[op_id]}"
                      if self.n_clusters > 1 else ""))
            by_row[self.row_of(op_id)].append(tag)
        lines = [f"II={self.ii} SC={self.stage_count} "
                 f"ops={self.n_ops} machine={self.machine_name}"]
        for row in range(self.ii):
            lines.append(f"  [{row:3d}] " + "  ".join(by_row[row]))
        return "\n".join(lines)

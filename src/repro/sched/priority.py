"""Scheduling priority: height-based ordering (Rau's IMS).

The height of an op at a given II is the longest-path slack it imposes on
the rest of the loop::

    H(op) = max(0, max over out-edges e: H(dst(e)) + lat(e) - d(e) * II)

Loop-carried edges participate with their ``-d * II`` credit; at any
``II >= RecMII`` no positive cycle exists, so the fixed point is finite and
a Bellman-Ford style relaxation converges in at most ``|V|`` passes.

Ops are scheduled highest-height first (ties broken by op id for
determinism).  The relaxation runs on the packed edge arrays of
:class:`~repro.ir.ddgarrays.DdgArrays` -- one flat pass per iteration, no
edge objects.
"""

from __future__ import annotations

from repro.ir.ddg import Ddg
from repro.ir.ddgarrays import DdgArrays
from repro.kernels import active as _kernel_backend


def heights_list(arr: DdgArrays, ii: int) -> list[int]:
    """Height per op *index* at initiation interval *ii* (packed form).

    Raises ``ValueError`` if *ii* is below RecMII (a positive cycle makes
    heights diverge).  The relaxation runs on the active kernel backend
    (:mod:`repro.kernels`; the fixed point is unique, so backends agree
    bit-for-bit).  Memoised per (lowering, II) on ``arr.ii_cache``
    (every II driver probes the same points across machines); callers
    treat the returned list as immutable.
    """
    if ii < 1:
        raise ValueError("II must be >= 1")
    cached = arr.ii_cache.get(("heights", ii))
    if cached is not None:
        return cached
    h = _kernel_backend().heights(arr, ii)
    if h is None:
        raise ValueError(
            f"heights diverge at II={ii}: positive dependence cycle "
            f"(II below RecMII?)")
    arr.ii_cache[("heights", ii)] = h
    return h


def heights(ddg: Ddg, ii: int) -> dict[int, int]:
    """Height of every op (keyed by op id) at initiation interval *ii*."""
    arr = ddg.arrays()
    h = heights_list(arr, ii)
    return dict(zip(arr.ids, h))


def priority_order_idx(arr: DdgArrays, ii: int) -> list[int]:
    """Op *indices* in scheduling order: decreasing height, then
    increasing op id (ids ascend with index, so index breaks the tie).
    Memoised beside :func:`heights_list`; callers must not mutate the
    returned list."""
    cached = arr.ii_cache.get(("prio", ii))
    if cached is not None:
        return cached
    h = heights_list(arr, ii)
    order = sorted(range(arr.n), key=lambda i: (-h[i], i))
    arr.ii_cache[("prio", ii)] = order
    return order


def priority_order(ddg: Ddg, ii: int) -> list[int]:
    """Op ids in scheduling order: decreasing height, then increasing id."""
    arr = ddg.arrays()
    ids = arr.ids
    return [ids[i] for i in priority_order_idx(arr, ii)]


def highest_priority(unscheduled: set[int], order: list[int]) -> int:
    """First op of *order* present in *unscheduled*."""
    for op_id in order:
        if op_id in unscheduled:
            return op_id
    raise ValueError("no unscheduled op left")

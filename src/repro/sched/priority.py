"""Scheduling priority: height-based ordering (Rau's IMS).

The height of an op at a given II is the longest-path slack it imposes on
the rest of the loop::

    H(op) = max(0, max over out-edges e: H(dst(e)) + lat(e) - d(e) * II)

Loop-carried edges participate with their ``-d * II`` credit; at any
``II >= RecMII`` no positive cycle exists, so the fixed point is finite and
a Bellman-Ford style relaxation converges in at most ``|V|`` passes.

Ops are scheduled highest-height first (critical ops early), ties broken by
op id for determinism.
"""

from __future__ import annotations

from repro.ir.ddg import Ddg


def heights(ddg: Ddg, ii: int) -> dict[int, int]:
    """Height of every op at initiation interval *ii*.

    Raises ``ValueError`` if *ii* is below RecMII (a positive cycle makes
    heights diverge).
    """
    if ii < 1:
        raise ValueError("II must be >= 1")
    h = {op_id: 0 for op_id in ddg.op_ids}
    edges = [(e.src, e.dst, e.latency - e.distance * ii)
             for e in ddg.edges()]
    n = ddg.n_ops
    for iteration in range(n + 1):
        changed = False
        for src, dst, w in edges:
            cand = h[dst] + w
            if cand > h[src]:
                h[src] = cand
                changed = True
        if not changed:
            return h
    raise ValueError(
        f"heights diverge at II={ii}: positive dependence cycle "
        f"(II below RecMII?)")


def priority_order(ddg: Ddg, ii: int) -> list[int]:
    """Op ids in scheduling order: decreasing height, then increasing id."""
    h = heights(ddg, ii)
    return sorted(ddg.op_ids, key=lambda o: (-h[o], o))


def highest_priority(unscheduled: set[int], order: list[int]) -> int:
    """First op of *order* present in *unscheduled*."""
    for op_id in order:
        if op_id in unscheduled:
            return op_id
    raise ValueError("no unscheduled op left")

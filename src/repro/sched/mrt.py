"""Modulo reservation tables (MRTs).

An MRT tracks FU usage per ``cycle mod II`` row: in a modulo schedule, an
op issued at time *t* occupies one unit of its FU pool at row ``t % II`` in
*every* iteration, so two ops of the same pool may share a row only while
the pool has spare units.  FUs are fully pipelined (one reservation per
issue), the standard assumption of the paper's framework.

One MRT serves one cluster; a single-cluster machine uses exactly one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

from repro.ir.operations import FuType

from repro.machine.resources import pool_for


@dataclass(frozen=True)
class Placement:
    """Where an op currently sits in the table."""

    op_id: int
    pool: FuType
    time: int
    row: int


class ModuloReservationTable:
    """FU occupancy for one cluster at a fixed II."""

    def __init__(self, ii: int, capacities: dict[FuType, int]) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.ii = ii
        # hardware pools only (capacities keyed by pool)
        self._cap = {pool: n for pool, n in capacities.items() if n > 0}
        # occupancy[pool][row] -> list of op_ids (order = placement order)
        self._rows: dict[FuType, list[list[int]]] = {
            pool: [[] for _ in range(ii)] for pool in self._cap}
        self._where: dict[int, Placement] = {}

    # ------------------------------------------------------------ queries

    def capacity(self, fu_type: FuType) -> int:
        return self._cap.get(pool_for(fu_type), 0)

    def can_place(self, fu_type: FuType, time: int) -> bool:
        """Is there a free unit of the pool serving *fu_type* at ``time``?"""
        pool = pool_for(fu_type)
        cap = self._cap.get(pool, 0)
        if cap == 0:
            return False
        return len(self._rows[pool][time % self.ii]) < cap

    def occupants(self, fu_type: FuType, time: int) -> list[int]:
        """Ops currently holding the row serving *fu_type* at ``time``."""
        pool = pool_for(fu_type)
        if pool not in self._rows:
            return []
        return list(self._rows[pool][time % self.ii])

    def placement_of(self, op_id: int) -> Optional[Placement]:
        return self._where.get(op_id)

    def is_placed(self, op_id: int) -> bool:
        return op_id in self._where

    def usage(self, pool: FuType) -> int:
        """Total reservations currently held in a pool."""
        if pool not in self._rows:
            return 0
        return sum(len(r) for r in self._rows[pool])

    def load(self) -> int:
        """Total reservations across all pools (cluster load heuristic)."""
        return len(self._where)

    def __iter__(self) -> Iterator[Placement]:
        return iter(sorted(self._where.values(), key=lambda p: p.op_id))

    # ----------------------------------------------------------- mutation

    def place(self, op_id: int, fu_type: FuType, time: int) -> Placement:
        """Reserve a unit; raises if the op is already placed or no unit is
        free (callers must evict first -- see :meth:`evict_for`)."""
        if op_id in self._where:
            raise ValueError(f"op {op_id} already placed")
        if not self.can_place(fu_type, time):
            raise ValueError(
                f"no free {pool_for(fu_type).value} unit at row "
                f"{time % self.ii}")
        pool = pool_for(fu_type)
        row = time % self.ii
        self._rows[pool][row].append(op_id)
        placement = Placement(op_id, pool, time, row)
        self._where[op_id] = placement
        return placement

    def remove(self, op_id: int) -> None:
        placement = self._where.pop(op_id)
        self._rows[placement.pool][placement.row].remove(op_id)

    def conflicts(self, fu_type: FuType, time: int) -> list[int]:
        """The occupants a forced placement of *fu_type* at ``time`` must
        displace, newest-first -- :meth:`evict_for`'s victim selection
        without the removal, for callers whose eviction path owns more
        bookkeeping than the table (the partitioner routes every victim
        through ``PartitionState.unschedule``)."""
        pool = pool_for(fu_type)
        if self._cap.get(pool, 0) == 0:
            raise ValueError(f"machine has no {pool.value} units at all")
        occupants = self._rows[pool][time % self.ii]
        spare = len(occupants) - self._cap[pool] + 1
        if spare <= 0:
            return []
        return list(reversed(occupants[-spare:]))

    def evict_for(self, fu_type: FuType, time: int) -> list[int]:
        """Make room for one op of *fu_type* at ``time`` by evicting the
        most recently placed occupant (Rau's forced placement displaces
        conflicting ops; evicting the newest favours stability of older,
        higher-priority placements).  Returns evicted op ids -- exactly
        the :meth:`conflicts` set, so the two can never diverge."""
        victims = self.conflicts(fu_type, time)
        for victim in victims:
            self.remove(victim)
        return victims

    def clear(self) -> None:
        for pool in self._rows:
            self._rows[pool] = [[] for _ in range(self.ii)]
        self._where.clear()

    # ------------------------------------------------------------ display

    def render(self) -> str:
        """ASCII dump (rows x pools) used by examples/CLI."""
        pools = sorted(self._rows, key=lambda p: p.name)
        header = "row | " + " | ".join(
            f"{p.value}({self._cap[p]})" for p in pools)
        lines = [header, "-" * len(header)]
        for row in range(self.ii):
            cells = []
            for p in pools:
                cells.append(",".join(str(o) for o in self._rows[p][row])
                             or ".")
            lines.append(f"{row:3d} | " + " | ".join(cells))
        return "\n".join(lines)

"""Modulo reservation tables (MRTs).

An MRT tracks FU usage per ``cycle mod II`` row: in a modulo schedule, an
op issued at time *t* occupies one unit of its FU pool at row ``t % II`` in
*every* iteration, so two ops of the same pool may share a row only while
the pool has spare units.  FUs are fully pipelined (one reservation per
issue), the standard assumption of the paper's framework.

One MRT serves one cluster; a single-cluster machine uses exactly one.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass
from typing import Iterator, Optional, Sequence, Union

from repro.ir.operations import FuType

from repro.kernels import active as _kernel_backend
from repro.machine.resources import (HARDWARE_POOLS, N_POOLS, POOL_IDS,
                                     pool_for)


@dataclass(frozen=True)
class Placement:
    """Where an op currently sits in the table."""

    op_id: int
    pool: FuType
    time: int
    row: int


class ModuloReservationTable:
    """FU occupancy for one cluster at a fixed II."""

    def __init__(self, ii: int, capacities: dict[FuType, int]) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.ii = ii
        # hardware pools only (capacities keyed by pool)
        self._cap = {pool: n for pool, n in capacities.items() if n > 0}
        # occupancy[pool][row] -> list of op_ids (order = placement order)
        self._rows: dict[FuType, list[list[int]]] = {
            pool: [[] for _ in range(ii)] for pool in self._cap}
        self._where: dict[int, Placement] = {}
        # maintained counters: usage()/load() are hot-path queries (the
        # slot search ranks clusters by load on every candidate), so they
        # must never recount rows
        self._usage: dict[FuType, int] = {pool: 0 for pool in self._cap}
        self._load = 0

    # ------------------------------------------------------------ queries

    def capacity(self, fu_type: FuType) -> int:
        return self._cap.get(pool_for(fu_type), 0)

    def can_place(self, fu_type: FuType, time: int) -> bool:
        """Is there a free unit of the pool serving *fu_type* at ``time``?"""
        pool = pool_for(fu_type)
        cap = self._cap.get(pool, 0)
        if cap == 0:
            return False
        return len(self._rows[pool][time % self.ii]) < cap

    def occupants(self, fu_type: FuType, time: int) -> tuple[int, ...]:
        """Ops currently holding the row serving *fu_type* at ``time``."""
        pool = pool_for(fu_type)
        if pool not in self._rows:
            return ()
        return tuple(self._rows[pool][time % self.ii])

    def placement_of(self, op_id: int) -> Optional[Placement]:
        return self._where.get(op_id)

    def is_placed(self, op_id: int) -> bool:
        return op_id in self._where

    def usage(self, pool: FuType) -> int:
        """Total reservations currently held in a pool (maintained
        counter -- never recounts the rows)."""
        return self._usage.get(pool, 0)

    def load(self) -> int:
        """Total reservations across all pools (cluster load heuristic;
        maintained counter)."""
        return self._load

    def __iter__(self) -> Iterator[Placement]:
        return iter(sorted(self._where.values(), key=lambda p: p.op_id))

    # ----------------------------------------------------------- mutation

    def place(self, op_id: int, fu_type: FuType, time: int) -> Placement:
        """Reserve a unit; raises if the op is already placed or no unit is
        free (callers must evict first -- see :meth:`evict_for`)."""
        if op_id in self._where:
            raise ValueError(f"op {op_id} already placed")
        if not self.can_place(fu_type, time):
            raise ValueError(
                f"no free {pool_for(fu_type).value} unit at row "
                f"{time % self.ii}")
        pool = pool_for(fu_type)
        row = time % self.ii
        self._rows[pool][row].append(op_id)
        placement = Placement(op_id, pool, time, row)
        self._where[op_id] = placement
        self._usage[pool] += 1
        self._load += 1
        return placement

    def remove(self, op_id: int) -> None:
        placement = self._where.pop(op_id)
        self._rows[placement.pool][placement.row].remove(op_id)
        self._usage[placement.pool] -= 1
        self._load -= 1

    def conflicts(self, fu_type: FuType, time: int) -> list[int]:
        """The occupants a forced placement of *fu_type* at ``time`` must
        displace, newest-first -- :meth:`evict_for`'s victim selection
        without the removal, for callers whose eviction path owns more
        bookkeeping than the table (the partitioner routes every victim
        through ``PartitionState.unschedule``)."""
        pool = pool_for(fu_type)
        if self._cap.get(pool, 0) == 0:
            raise ValueError(f"machine has no {pool.value} units at all")
        occupants = self._rows[pool][time % self.ii]
        spare = len(occupants) - self._cap[pool] + 1
        if spare <= 0:
            return []
        return list(reversed(occupants[-spare:]))

    def evict_for(self, fu_type: FuType, time: int) -> list[int]:
        """Make room for one op of *fu_type* at ``time`` by evicting the
        most recently placed occupant (Rau's forced placement displaces
        conflicting ops; evicting the newest favours stability of older,
        higher-priority placements).  Returns evicted op ids -- exactly
        the :meth:`conflicts` set, so the two can never diverge."""
        victims = self.conflicts(fu_type, time)
        for victim in victims:
            self.remove(victim)
        return victims

    def clear(self) -> None:
        for pool in self._rows:
            self._rows[pool] = [[] for _ in range(self.ii)]
        self._where.clear()
        self._usage = {pool: 0 for pool in self._cap}
        self._load = 0

    # ------------------------------------------------------------ display

    def render(self) -> str:
        """ASCII dump (rows x pools) used by examples/CLI."""
        pools = sorted(self._rows, key=lambda p: p.name)
        header = "row | " + " | ".join(
            f"{p.value}({self._cap[p]})" for p in pools)
        lines = [header, "-" * len(header)]
        for row in range(self.ii):
            cells = []
            for p in pools:
                cells.append(",".join(str(o) for o in self._rows[p][row])
                             or ".")
            lines.append(f"{row:3d} | " + " | ".join(cells))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# Packed-array MRT: the schedulers' hot-path representation
# ---------------------------------------------------------------------------

#: Shared immutable empty-victims result -- ``conflicts()`` on a free row
#: must not allocate (it runs once per forced placement probe).
_NO_VICTIMS: tuple[int, ...] = ()


class PackedMRT:
    """FU occupancy for one cluster at a fixed II, packed into flat arrays.

    Semantically identical to :class:`ModuloReservationTable` (the property
    test in ``tests/sched/test_mrt_equiv.py`` drives both through random
    place/remove/evict sequences and requires exact agreement), but built
    for the scheduler inner loops:

    * pools are dense integer ids (:data:`repro.machine.resources.POOL_IDS`)
      so queries never hash enum members;
    * per-(pool, row) occupancy lives in one flat ``array('i')`` row-count
      vector -- ``can_place`` is two indexed loads and a compare;
    * ``usage()``/``load()`` are maintained counters, never a ``sum()``;
    * ``conflicts()`` is non-mutating and returns the shared empty tuple
      when the row has spare capacity (no allocation on the common path).

    Occupant op ids are kept per row (placement order) so forced-placement
    victim selection matches the legacy table exactly.

    The table is **arena-reusable**: :meth:`reset` tears the previous
    attempt down in O(touched slots) -- only rows that actually held an
    op are cleared -- and re-dimensions the same buffers for a new II, so
    a pooled instance (see :class:`repro.sched.arena.SchedArena`) never
    reallocates its count vector or its per-row occupant lists between
    attempts.
    """

    __slots__ = ("ii", "caps", "_counts", "_rows", "_usage", "_load",
                 "_where", "_full", "_mut", "_occ_memo", "_conf_memo",
                 "_npc")

    @staticmethod
    def _caps_array(capacities: Union[dict[FuType, int], Sequence[int]],
                    ) -> array:
        if isinstance(capacities, array):
            # pre-packed (FuSet.pool_caps); adopted as-is -- the caps
            # vector is never mutated in place, so tables may share it
            if len(capacities) != N_POOLS:
                raise ValueError(f"expected {N_POOLS} pool capacities")
            return capacities
        if isinstance(capacities, dict):
            caps = [0] * N_POOLS
            for pool, n in capacities.items():
                if n > 0:
                    caps[POOL_IDS[pool_for(pool)]] = n
        else:
            caps = list(capacities)
            if len(caps) != N_POOLS:
                raise ValueError(f"expected {N_POOLS} pool capacities")
        return array("i", caps)

    def __init__(self, ii: int,
                 capacities: Union[dict[FuType, int], Sequence[int]],
                 ) -> None:
        if ii < 1:
            raise ValueError("II must be >= 1")
        self.ii = ii
        self.caps = self._caps_array(capacities)
        self._counts = array("i", bytes(4 * N_POOLS * ii))
        self._rows: list[list[int]] = [[] for _ in range(N_POOLS * ii)]
        self._usage = array("i", bytes(4 * N_POOLS))
        self._load = 0
        self._where: dict[int, tuple[int, int]] = {}  # op -> (pool, time)
        # per-pool bitmask of *full* rows (bit r set iff row r is at
        # capacity).  Its lowest clear bit is the pool's low-water mark:
        # first_free() reads the answer off the mask instead of probing
        # the count vector row by row from the start slot.
        self._full = [0] * N_POOLS
        # mutation stamp + one-entry memos: occupants()/conflicts() on an
        # unchanged table return the previously built tuple instead of
        # rebuilding it (the forced-placement paths probe the same slot
        # more than once per eviction round)
        self._mut = 0
        self._occ_memo: Optional[tuple[int, int, tuple[int, ...]]] = None
        self._conf_memo: Optional[tuple[int, int, tuple[int, ...]]] = None
        # lazily built zero-copy NumPy int32 view of _counts (owned by
        # the numpy kernel backend; invalidated when _counts reallocates)
        self._npc = None

    # ------------------------------------------------------------ queries

    def capacity(self, pool: int) -> int:
        return self.caps[pool]

    def can_place(self, pool: int, time: int) -> bool:
        """Is there a free unit of integer pool *pool* at ``time``?"""
        return self._counts[pool * self.ii + time % self.ii] \
            < self.caps[pool]

    def first_free(self, pool: int, est: int) -> int:
        """Earliest ``t`` in ``[est, est + II)`` with a free unit, or -1.

        The II-wide window is exhaustive: rows repeat modulo II, so any
        later slot reuses a row already probed.  Answered from the pool's
        full-row mask: rotate the mask so ``est``'s row sits at bit 0 and
        take the lowest clear bit -- no per-row count probing (the
        property test in ``tests/sched/test_mrt.py`` pins this against
        the naive scan under random place/remove interleavings).
        """
        if self.caps[pool] <= 0:
            return -1
        mask = self._full[pool]
        if not mask:
            return est
        ii = self.ii
        all_full = (1 << ii) - 1
        if mask == all_full:
            return -1
        r = est % ii
        if r:
            mask = ((mask >> r) | (mask << (ii - r))) & all_full
        free = ~mask & all_full
        return est + (free & -free).bit_length() - 1

    def occupants(self, pool: int, time: int) -> tuple[int, ...]:
        slot = pool * self.ii + time % self.ii
        memo = self._occ_memo
        if memo is not None and memo[0] == slot and memo[1] == self._mut:
            return memo[2]
        row = self._rows[slot]
        result = tuple(row) if row else _NO_VICTIMS
        self._occ_memo = (slot, self._mut, result)
        return result

    def placement_of(self, op_id: int) -> Optional[Placement]:
        entry = self._where.get(op_id)
        if entry is None:
            return None
        pool, time = entry
        return Placement(op_id, HARDWARE_POOLS[pool], time, time % self.ii)

    def is_placed(self, op_id: int) -> bool:
        return op_id in self._where

    def usage(self, pool: int) -> int:
        """Reservations currently held in integer pool *pool*."""
        return self._usage[pool]

    def load(self) -> int:
        """Total reservations across all pools (maintained counter)."""
        return self._load

    def __iter__(self) -> Iterator[Placement]:
        for op_id in sorted(self._where):
            pool, time = self._where[op_id]
            yield Placement(op_id, HARDWARE_POOLS[pool], time,
                            time % self.ii)

    # ----------------------------------------------------------- mutation

    def place(self, op_id: int, pool: int, time: int) -> None:
        """Reserve a unit; raises if the op is already placed or no unit
        is free (callers must evict first)."""
        row = time % self.ii
        slot = pool * self.ii + row
        if op_id in self._where:
            raise ValueError(f"op {op_id} already placed")
        if self._counts[slot] >= self.caps[pool]:
            raise ValueError(
                f"no free {HARDWARE_POOLS[pool].value} unit at row "
                f"{time % self.ii}")
        self._rows[slot].append(op_id)
        self._counts[slot] += 1
        if self._counts[slot] >= self.caps[pool]:
            self._full[pool] |= 1 << row
        self._usage[pool] += 1
        self._load += 1
        self._mut += 1
        self._where[op_id] = (pool, time)

    def remove(self, op_id: int) -> None:
        pool, time = self._where.pop(op_id)
        row = time % self.ii
        slot = pool * self.ii + row
        self._rows[slot].remove(op_id)
        self._counts[slot] -= 1
        self._full[pool] &= ~(1 << row)
        self._usage[pool] -= 1
        self._load -= 1
        self._mut += 1

    def conflicts(self, pool: int, time: int) -> tuple[int, ...]:
        """Occupants a forced placement at ``time`` must displace,
        newest-first; the shared empty tuple when the row has room.
        Never mutates, never allocates on the no-conflict path."""
        cap = self.caps[pool]
        if cap == 0:
            raise ValueError(
                f"machine has no {HARDWARE_POOLS[pool].value} units at all")
        slot = pool * self.ii + time % self.ii
        occupants = self._rows[slot]
        spare = len(occupants) - cap + 1
        if spare <= 0:
            return _NO_VICTIMS
        memo = self._conf_memo
        if memo is not None and memo[0] == slot and memo[1] == self._mut:
            return memo[2]
        result = tuple(occupants[:-(spare + 1):-1])
        self._conf_memo = (slot, self._mut, result)
        return result

    def evict_for(self, pool: int, time: int) -> tuple[int, ...]:
        """Make room for one op at ``time`` by evicting the newest
        occupants; returns exactly the :meth:`conflicts` set."""
        victims = self.conflicts(pool, time)
        for victim in victims:
            self.remove(victim)
        return victims

    def reset(self, ii: Optional[int] = None,
              capacities: Union[dict[FuType, int], Sequence[int], None]
              = None) -> "PackedMRT":
        """Empty the table in O(touched) and re-dimension it in place.

        Only slots that actually held an op are cleared (the count vector
        and occupant lists are otherwise already zero/empty -- the class
        invariant ``counts[slot] == len(rows[slot])`` makes the occupied
        set derivable from ``_where``).  With *ii*/*capacities* given the
        same buffers serve the next attempt, growing geometrically only
        when a larger ``N_POOLS * II`` footprint is first seen.
        """
        if self._where:
            old_ii = self.ii
            counts = self._counts
            rows = self._rows
            if len(self._where) >= _kernel_backend().reset_bulk_min:
                # bulk teardown: one whole-vector sweep on the backend's
                # native view beats per-slot stores once enough slots
                # were touched (occupant lists still clear per slot)
                _kernel_backend().zero_counts(self)
                for pool, time in self._where.values():
                    rows[pool * old_ii + time % old_ii].clear()
            else:
                for pool, time in self._where.values():
                    slot = pool * old_ii + time % old_ii
                    if counts[slot]:
                        counts[slot] = 0
                        rows[slot].clear()
            self._where.clear()
            self._mut += 1
        for i in range(N_POOLS):
            self._usage[i] = 0
            self._full[i] = 0
        self._load = 0
        if capacities is not None:
            self.caps = self._caps_array(capacities)
        if ii is not None and ii != self.ii:
            if ii < 1:
                raise ValueError("II must be >= 1")
            self.ii = ii
            need = N_POOLS * ii
            if len(self._counts) < need:
                self._counts = array("i", bytes(4 * need))
                self._rows.extend([] for _ in
                                  range(need - len(self._rows)))
                self._npc = None  # view points at the old buffer
        return self

    def clear(self) -> None:
        self.reset()

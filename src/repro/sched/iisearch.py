"""The shared II search driver: linear walk or adaptive bracketing.

Every engine answers the same question per loop: the smallest initiation
interval, from MII up to a limit, at which one attempt succeeds.  The
historical walk probes ``MII, MII+1, MII+2, ...`` -- and since a *failed*
attempt is the expensive kind (IMS and the partitioners burn their whole
placement budget before giving up), a loop whose first feasible II sits
far above MII pays for every infeasible probe in between.

:func:`search_ii` centralises the walk for all registered schedulers and
partitioners.  Two modes:

* ``"linear"`` -- the historical walk, preserved verbatim behind the
  ``--ii-search linear`` flag.
* ``"adaptive"`` (default) -- three phases:

  1. **Near-MII window**: probe ``first_ii .. first_ii + near_window``
     linearly.  The paper's own observation (Fig. 6: II increases are
     "typically of one cycle only") makes this the common case, and over
     the window the probe sequence is *identical* to the linear walk --
     same probes, same order, same returned schedule -- which is what
     keeps the golden fixtures bit-for-bit unchanged.
  2. **Geometric overshoot**: past the window, double the step until an
     II is feasible (or the limit proves infeasible).
  3. **Bisection** down to the smallest feasible II inside the bracket,
     budget-aware: each probe spends one unit of ``probe_budget``, and
     exhausting it mid-bisection falls back to a linear scan of the
     remaining bracket from below -- the conservative walk the bracket
     was trying to avoid, never a worse answer.

Adaptive search assumes feasibility is monotone in II above the near-MII
window (the standard modulo-scheduling assumption; the regression suite
checks linear == adaptive over the full kernel corpus).  Probes are
deterministic functions of ``(loop, machine, II)``, so whichever mode
finds an II produces the identical schedule at that II.
"""

from __future__ import annotations

import time
from typing import Callable, Optional, TypeVar

from repro.obs import trace as _trace

T = TypeVar("T")

#: Search-mode names (the ``--ii-search`` CLI choices).
II_SEARCH_MODES = ("adaptive", "linear")

#: The default for every registered scheduler and partitioner.
DEFAULT_II_SEARCH = "adaptive"

#: Linear probes above ``first_ii`` before overshooting.  Covers the
#: paper's "increases of one cycle only" regime probe-for-probe
#: identically to the linear walk.
NEAR_WINDOW = 2

#: Bisection probe allowance; hitting it falls back to the linear scan.
DEFAULT_PROBE_BUDGET = 32


def check_ii_search(mode: str) -> str:
    """Validate a search-mode name (raises ``ValueError`` listing the
    known modes); returns it unchanged."""
    if mode not in II_SEARCH_MODES:
        raise ValueError(
            f"unknown II search mode {mode!r}; "
            f"known: {', '.join(II_SEARCH_MODES)}")
    return mode


def _traced_probe(probe: Callable[[int], Optional[T]],
                  ) -> Callable[[int], Optional[T]]:
    """Instrument one II attempt per call: span + accept/reject counts."""
    def run(ii: int) -> Optional[T]:
        t0 = time.perf_counter()
        result = probe(ii)
        _trace.trace_time("sched.ii_attempt",
                          time.perf_counter() - t0)
        _trace.trace_count("sched.ii_accepted" if result is not None
                           else "sched.ii_rejected")
        return result
    return run


def search_ii(probe: Callable[[int], Optional[T]],
              first_ii: int, limit: int, *,
              mode: str = DEFAULT_II_SEARCH,
              near_window: int = NEAR_WINDOW,
              probe_budget: int = DEFAULT_PROBE_BUDGET,
              ) -> Optional[tuple[int, T]]:
    """Find the smallest feasible II in ``[first_ii, limit]``.

    *probe* runs one attempt at a fixed II and returns the engine's
    result object (sigma / partition state) or ``None`` on failure; it is
    called at most once per II.  Returns ``(ii, result)`` for the chosen
    II or ``None`` when the range is exhausted (``limit < first_ii``
    included).
    """
    check_ii_search(mode)
    if limit < first_ii:
        return None
    if _trace.tracing_enabled():
        # wrap outside the walk so the disabled path costs one flag test
        # per *search*, never per probe
        probe = _traced_probe(probe)

    if mode == "linear":
        for ii in range(first_ii, limit + 1):
            result = probe(ii)
            if result is not None:
                return ii, result
        return None

    # ---- adaptive: near-MII window, identical to the linear walk -------
    window_top = min(first_ii + near_window, limit)
    for ii in range(first_ii, window_top + 1):
        result = probe(ii)
        if result is not None:
            return ii, result
    if window_top == limit:
        return None

    # ---- geometric overshoot: bracket the first feasible II ------------
    lo = window_top                    # highest II known infeasible
    step = 1
    hi = None                          # lowest II known feasible
    found: Optional[T] = None
    while hi is None:
        cand = min(lo + step, limit)
        result = probe(cand)
        probe_budget -= 1
        if result is not None:
            hi, found = cand, result
        elif cand == limit:
            return None
        else:
            lo = cand
            step *= 2

    # ---- bisection down to the smallest feasible II ---------------------
    while hi - lo > 1:
        if probe_budget <= 0:
            # budget exhausted mid-bisection: finish with the linear walk
            # over the remaining bracket, scanning from below so the
            # answer is never above what bisection would have chosen
            for ii in range(lo + 1, hi):
                result = probe(ii)
                if result is not None:
                    return ii, result
            return hi, found
        mid = (lo + hi) // 2
        result = probe(mid)
        probe_budget -= 1
        if result is not None:
            hi, found = mid, result
        else:
            lo = mid
    return hi, found

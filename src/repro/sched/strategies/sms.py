"""Swing Modulo Scheduling (Llosa, Gonzalez, Ayguade, Valero; PACT'96).

SMS is the near-backtrack-free alternative to IMS favoured by the paper's
co-author: instead of forcing placements and evicting conflicting ops, it
(1) orders the ops so that every op is placed while at least one of its
neighbours is already scheduled, and (2) *swings* the placement scan
towards those neighbours, which keeps value lifetimes short.  One pass is
made per candidate II; if any op finds no free modulo slot the II is bumped
and the whole attempt restarts -- there is no eviction loop, so the number
of placement attempts is essentially ``n_ops * IIs-tried``.

The three phases, as implemented here:

1. **Bounds** (:func:`time_bounds`): for a candidate II, longest-path
   earliest start ``E`` and latest start ``L`` of every op over edge
   weights ``lat - d * II`` (loop-carried edges give back ``d * II``
   cycles).  ``E + H`` (height) measures the criticality of the longest
   path through an op; ``L - E`` is its slack ("mobility").

2. **Ordering** (:func:`sms_order`): strongly connected components are
   ranked by the criticality of their most critical path (recurrence sets
   first -- they have the least scheduling freedom), each preceded by the
   nodes on DDG paths between already-ordered sets and the new set.  Each
   set is emitted by alternating top-down / bottom-up sweeps: the frontier
   of ops adjacent to the ordered prefix grows along the current
   direction, most critical ops first, and when it empties the direction
   *swings*.  The invariant: no op is ordered while having both
   unscheduled predecessors and unscheduled successors among the ordered
   prefix's neighbours -- which is what makes the bidirectional placement
   of phase 3 lifetime-minimising.

3. **Placement** (:func:`try_sms_at_ii`): ops are placed in order.  An op
   with only scheduled predecessors scans *forward* from its earliest
   feasible cycle (consuming its inputs as soon as they exist -- short
   producer-side lifetimes); one with only scheduled successors scans
   *backward* from its latest feasible cycle (producing just in time --
   short consumer-side lifetimes); one with both scans forward inside the
   ``[Estart, Lstart]`` window.  Each direction visits at most II slots
   (rows repeat modulo II); if none is free the II fails.

Single-cluster machines only: clustered machines go through the
partitioner (see DESIGN.md §6 -- the partitioner embeds IMS's
eviction machinery, which the space dimension genuinely needs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import networkx as nx

from repro.ir.ddg import Ddg
from repro.ir.validate import validate_ddg
from repro.kernels import active as _kernel_backend
from repro.machine.machine import Machine

from ..arena import SchedArena, global_arena
from ..iisearch import DEFAULT_II_SEARCH, search_ii
from ..mii import mii_report
from ..mrt import PackedMRT
from ..priority import heights_list
from ..schedule import ModuloSchedule, ScheduleStats, SchedulingError
from .base import SchedulerResult, SchedulerStrategy
from .registry import register_scheduler


@dataclass
class SmsConfig:
    """Tunables of the SMS search (mirrors :class:`ImsConfig`)."""

    max_ii: Optional[int] = None      # default: mii + n_ops + sum latency
    validate_input: bool = True
    validate_output: bool = True
    ii_search: str = DEFAULT_II_SEARCH

    def ii_limit(self, ddg: Ddg, start_ii: int) -> int:
        if self.max_ii is not None:
            return self.max_ii
        # n_ops * max-latency cycles is enough for a fully serial schedule
        return start_ii + ddg.n_ops + ddg.sum_latency() + 1


#: Longest-path analysis of one (ddg, II) pair: earliest starts, latest
#: starts, heights.  Computed once per candidate II and shared by the
#: ordering and placement phases.
_Analysis = tuple[dict[int, int], dict[int, int], dict[int, int]]


def _analyse(ddg: Ddg, ii: int) -> _Analysis:
    """``(E, L, H)`` at *ii*; raises ``ValueError`` below RecMII.

    Memoised per (lowering, II) -- the adaptive II driver and repeated
    sweeps probe the same points; consumers read the dicts only.
    """
    if ii < 1:
        raise ValueError("II must be >= 1")
    arr = ddg.arrays()
    cached = arr.ii_cache.get(("sms_analysis", ii))
    if cached is not None:
        return cached
    e_list = _kernel_backend().earliest_starts(arr, ii)
    if e_list is None:
        raise ValueError(
            f"earliest starts diverge at II={ii}: positive dependence "
            f"cycle (II below RecMII?)")
    h_list = heights_list(arr, ii)
    span = max(map(int.__add__, e_list, h_list), default=0)
    ids = arr.ids
    e_of = dict(zip(ids, e_list))
    l_of = {o: span - h for o, h in zip(ids, h_list)}
    h = dict(zip(ids, h_list))
    arr.ii_cache[("sms_analysis", ii)] = (e_of, l_of, h)
    return e_of, l_of, h


def time_bounds(ddg: Ddg, ii: int) -> tuple[dict[int, int], dict[int, int]]:
    """Earliest / latest start times ``(E, L)`` of every op at *ii*.

    ``E`` is the longest path into the op over weights ``lat - d * II``
    (clamped at 0); ``L = span - H`` where ``H`` is the height and
    ``span`` the length of the longest path in the graph, so ``L - E >= 0``
    is the op's mobility.  Raises ``ValueError`` below RecMII (positive
    cycle).
    """
    e_of, l_of, _ = _analyse(ddg, ii)
    return e_of, l_of


def _dependence_graph(ddg: Ddg) -> "nx.DiGraph":
    """Plain digraph of the DDG (all edge kinds, self-loops dropped)."""
    g = nx.DiGraph()
    g.add_nodes_from(ddg.op_ids)
    g.add_edges_from((e.src, e.dst) for e in ddg.edges()
                     if e.src != e.dst)
    return g


def _node_sets(ddg: Ddg, g: "nx.DiGraph",
               criticality: dict[int, int]) -> list[list[int]]:
    """SMS node sets: recurrence SCCs by decreasing criticality, each
    preceded by the nodes on paths between already-covered sets and the
    new one, then everything left."""
    sccs = [scc for scc in nx.strongly_connected_components(g)
            if len(scc) > 1]
    sccs.sort(key=lambda s: (-max(criticality[u] for u in s),
                             -len(s), min(s)))
    sets: list[list[int]] = []
    covered: set[int] = set()
    for scc in sccs:
        if covered:
            # nodes on any directed path between the covered region and
            # this recurrence (either direction), excluding both ends
            down = set()
            for u in covered:
                down.update(nx.descendants(g, u))
            up = set()
            for u in scc:
                up.update(nx.ancestors(g, u))
            between = (down & up) - covered - scc
            if not between:
                down_s = set()
                for u in scc:
                    down_s.update(nx.descendants(g, u))
                up_c = set()
                for u in covered:
                    up_c.update(nx.ancestors(g, u))
                between = (down_s & up_c) - covered - scc
            if between:
                sets.append(sorted(between))
                covered |= between
        sets.append(sorted(scc))
        covered |= scc
    rest = [u for u in ddg.op_ids if u not in covered]
    if rest:
        sets.append(sorted(rest))
    return sets


def sms_order(ddg: Ddg, ii: int, *,
              analysis: Optional[_Analysis] = None) -> list[int]:
    """The SMS scheduling order of *ddg* at candidate *ii*.

    Within each node set the order alternates top-down (following
    successors, highest height -- i.e. most critical -- first) and
    bottom-up (following predecessors, deepest first) sweeps, so every op
    except set seeds is ordered adjacent to the already-ordered prefix.
    """
    e_of, l_of, h = analysis or _analyse(ddg, ii)
    criticality = {u: e_of[u] + h[u] for u in ddg.op_ids}
    g = _dependence_graph(ddg)
    preds = {u: set(g.predecessors(u)) for u in g}
    succs = {u: set(g.successors(u)) for u in g}

    def seed_of(work: set[int]) -> int:
        return min(work, key=lambda u: (-criticality[u],
                                        l_of[u] - e_of[u], u))

    order: list[int] = []
    placed: set[int] = set()
    for node_set in _node_sets(ddg, g, criticality):
        work = set(node_set)
        frontier = {u for u in work if preds[u] & placed}
        direction = "down"
        if not frontier:
            frontier = {u for u in work if succs[u] & placed}
            direction = "up"
        if not frontier:
            frontier = {seed_of(work)}
            direction = "down"
        while work:
            if not frontier:
                # swing: prefer the opposite direction, fall back to the
                # same one, and re-seed only for disconnected regions
                flipped = "up" if direction == "down" else "down"
                for cand in (flipped, direction):
                    nbrs = preds if cand == "down" else succs
                    cand_frontier = {u for u in work
                                     if nbrs[u] & placed}
                    if cand_frontier:
                        direction, frontier = cand, cand_frontier
                        break
                else:
                    direction, frontier = "down", {seed_of(work)}
            while frontier:
                if direction == "down":
                    u = min(frontier, key=lambda v: (
                        -h[v], l_of[v] - e_of[v], v))
                    grow = succs
                else:
                    u = min(frontier, key=lambda v: (
                        -e_of[v], l_of[v] - e_of[v], v))
                    grow = preds
                order.append(u)
                placed.add(u)
                work.discard(u)
                frontier.discard(u)
                frontier |= grow[u] & work
    return order


def try_sms_at_ii(ddg: Ddg, machine: Machine, ii: int, *,
                  order: Optional[list[int]] = None,
                  analysis: Optional[_Analysis] = None,
                  stats: Optional[ScheduleStats] = None,
                  arena: Optional[SchedArena] = None,
                  ) -> Optional[dict[int, int]]:
    """One SMS pass at a fixed II; returns ``sigma`` or ``None``.

    No backtracking: the first op that finds no free slot in its (at most
    II-wide) feasible window fails the whole II.  Issue times may be
    negative (bottom-up placements); callers normalise.  With an *arena*
    the reservation table is borrowed from its pool; the sigma dict is
    only materialised on success (failed IIs allocate nothing op-sized).
    """
    if analysis is None:
        analysis = _analyse(ddg, ii)
    if order is None:
        order = sms_order(ddg, ii, analysis=analysis)
    e_of = analysis[0]
    arr = ddg.arrays()
    index = arr.index
    pool = arr.pool
    in_ptr, in_src = arr.in_ptr, arr.in_src
    in_lat, in_dist = arr.in_lat, arr.in_dist
    out_ptr, out_dst = arr.out_ptr, arr.out_dst
    out_lat, out_dist = arr.out_lat, arr.out_dist
    if arena is not None:
        arena.begin_attempt()
        mrt = arena.take_mrt(ii, machine.fus.pool_caps)
    else:
        mrt = PackedMRT(ii, machine.fus.pool_caps)
    # SMS times go negative (bottom-up placements), so the unscheduled
    # sentinel cannot be -1; track placement separately
    sig = [0] * arr.n
    placed = [False] * arr.n

    for op_id in order:
        i = index[op_id]
        est: Optional[int] = None
        lst: Optional[int] = None
        for j in range(in_ptr[i], in_ptr[i + 1]):
            s = in_src[j]
            if not placed[s]:
                continue
            cand = sig[s] + in_lat[j] - in_dist[j] * ii
            if est is None or cand > est:
                est = cand
        for j in range(out_ptr[i], out_ptr[i + 1]):
            d = out_dst[j]
            if not placed[d]:
                continue
            cand = sig[d] - out_lat[j] + out_dist[j] * ii
            if lst is None or cand < lst:
                lst = cand

        if est is not None and lst is not None:
            scan = range(est, min(lst, est + ii - 1) + 1)
        elif est is not None:
            scan = range(est, est + ii)
        elif lst is not None:
            scan = range(lst, lst - ii, -1)
        else:
            scan = range(e_of[op_id], e_of[op_id] + ii)

        placed_at: Optional[int] = None
        p_i = pool[i]
        for t in scan:
            if mrt.can_place(p_i, t):
                placed_at = t
                break
        if stats is not None:
            stats.attempts += 1
        if placed_at is None:
            return None
        mrt.place(op_id, p_i, placed_at)
        sig[i] = placed_at
        placed[i] = True
    # materialise sigma in placement order (matches the historical
    # incrementally-built dict exactly)
    return {op_id: sig[index[op_id]] for op_id in order}


def sms_schedule(ddg: Ddg, machine: Machine, *,
                 config: Optional[SmsConfig] = None,
                 start_ii: Optional[int] = None,
                 ii_search: Optional[str] = None) -> ModuloSchedule:
    """Schedule *ddg* on a single-cluster *machine* with SMS.

    Mirrors :func:`repro.sched.ims.modulo_schedule`: the machine's latency
    model is applied first, IIs are tried from MII upward (linear or
    adaptive per ``ii_search`` / the config) and :class:`SchedulingError`
    is raised when the limit is exceeded (in practice only malformed
    inputs get there -- at ``II = n_ops * max-latency`` a fully serial
    placement always fits).
    """
    cfg = config or SmsConfig()
    ddg = machine.retime(ddg)
    if cfg.validate_input:
        validate_ddg(ddg)
    if not machine.can_execute(ddg):
        raise SchedulingError(
            f"machine {machine.name} lacks FU classes for {ddg.name!r}")

    report = mii_report(ddg, machine)
    first_ii = max(report.mii, start_ii or 1)
    stats = ScheduleStats(mii=report.mii, res_mii=report.res,
                          rec_mii=report.rec)
    limit = cfg.ii_limit(ddg, first_ii)
    arena = global_arena()

    def probe(ii: int) -> Optional[dict[int, int]]:
        stats.iis_tried += 1
        return try_sms_at_ii(ddg, machine, ii, stats=stats, arena=arena)

    found = search_ii(probe, first_ii, limit,
                      mode=ii_search or cfg.ii_search)
    if found is None:
        raise SchedulingError(
            f"no SMS schedule for {ddg.name!r} on {machine.name} "
            f"with II <= {limit}")
    ii, sigma = found
    shift = min(sigma.values())
    if shift:
        sigma = {o: t - shift for o, t in sigma.items()}
    sched = ModuloSchedule(
        ddg=ddg, ii=ii, sigma=sigma, machine_name=machine.name,
        stats=stats)
    if cfg.validate_output:
        sched.validate(machine.fus.pool_caps)
    return sched


@register_scheduler
class SmsStrategy(SchedulerStrategy):
    """Swing modulo scheduling (Llosa et al. 1996)."""

    name = "sms"
    description = ("swing modulo scheduling (Llosa et al. 1996): "
                   "criticality ordering, bidirectional lifetime-"
                   "minimising placement, no backtracking")

    def __init__(self, config: Optional[SmsConfig] = None) -> None:
        self.config = config or SmsConfig()

    def schedule(self, ddg: Ddg, machine: Machine, *,
                 start_ii: Optional[int] = None,
                 ii_search: Optional[str] = None) -> SchedulerResult:
        sched = sms_schedule(ddg, machine, config=self.config,
                             start_ii=start_ii, ii_search=ii_search)
        return SchedulerResult(schedule=sched, scheduler=self.name)

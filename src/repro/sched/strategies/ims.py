"""The ``"ims"`` strategy: Rau's Iterative Modulo Scheduling.

The algorithm itself lives in :mod:`repro.sched.ims` (it predates the
strategy subsystem and is imported directly by older tests and the
partitioner); this module adapts it to the
:class:`~repro.sched.strategies.base.SchedulerStrategy` contract and
registers it as the default engine.
"""

from __future__ import annotations

from typing import Optional

from repro.ir.ddg import Ddg
from repro.machine.machine import Machine
from repro.sched.ims import ImsConfig, modulo_schedule

from .base import SchedulerResult, SchedulerStrategy
from .registry import register_scheduler


@register_scheduler
class ImsStrategy(SchedulerStrategy):
    """Iterative modulo scheduling (Rau 1996) -- the paper's engine."""

    name = "ims"
    description = ("iterative modulo scheduling (Rau 1996): height "
                   "priority, forced placement with eviction/backtracking")

    def __init__(self, config: Optional[ImsConfig] = None) -> None:
        self.config = config or ImsConfig()

    def schedule(self, ddg: Ddg, machine: Machine, *,
                 start_ii: Optional[int] = None,
                 ii_search: Optional[str] = None) -> SchedulerResult:
        sched = modulo_schedule(ddg, machine, config=self.config,
                                start_ii=start_ii, ii_search=ii_search)
        return SchedulerResult(schedule=sched, scheduler=self.name)

"""Scheduler registry: name -> engine class.

The registry is the single seam through which the pipeline, the CLI and
the tests discover scheduling engines.  Registering is declarative::

    @register_scheduler
    class MyStrategy(SchedulerStrategy):
        name = "mine"
        description = "..."
        def schedule(self, ddg, machine, *, start_ii=None): ...

Names are unique; registering a duplicate raises so two engines can never
silently shadow each other (cache keys embed the name, so aliasing would
poison cached results).
"""

from __future__ import annotations

from typing import Callable, Type

from .base import SchedulerStrategy

_REGISTRY: dict[str, Type[SchedulerStrategy]] = {}


def register_scheduler(
        cls: Type[SchedulerStrategy]) -> Type[SchedulerStrategy]:
    """Class decorator: add *cls* to the registry under ``cls.name``."""
    name = getattr(cls, "name", "")
    if not name:
        raise ValueError(f"{cls.__name__} must set a non-empty `name`")
    if name in _REGISTRY:
        raise ValueError(
            f"scheduler {name!r} already registered "
            f"({_REGISTRY[name].__name__}); names must be unique")
    _REGISTRY[name] = cls
    return cls


def available_schedulers() -> tuple[str, ...]:
    """Registered engine names, sorted (stable for tests and docs)."""
    return tuple(sorted(_REGISTRY))


def check_scheduler(name: str) -> str:
    """Validate an engine name (raises ``KeyError`` listing the
    registered engines); returns it unchanged.

    The shared validation seam: the pipeline calls it up front and the
    service calls it at the request boundary, so a typo'd engine name
    produces the same registry-listing message everywhere instead of a
    bare failure deep inside scheduling.
    """
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown scheduler {name!r}; available: "
            f"{', '.join(available_schedulers())}")
    return name


def get_scheduler(name: str, **kwargs: object) -> SchedulerStrategy:
    """Instantiate the engine registered under *name*.

    ``kwargs`` are forwarded to the strategy constructor (engine-specific
    config objects); raises ``KeyError`` with the available names on an
    unknown engine.
    """
    return _REGISTRY[check_scheduler(name)](**kwargs)


def scheduler_descriptions() -> dict[str, str]:
    """name -> one-line description (the ``schedulers`` CLI listing)."""
    return {name: _REGISTRY[name].description
            for name in available_schedulers()}

"""Pluggable scheduler strategies.

The scheduling engine is a seam: every engine consumes a (loop DDG,
single-cluster machine) pair and produces the same
:class:`~repro.sched.schedule.ModuloSchedule` object, so partitioning
baselines, queue allocation, codegen, the simulator and every experiment
driver run unchanged on top of any registered engine.  The registry is the
lookup surface used by ``PipelineOptions(scheduler=...)``, the CLI's
``--scheduler`` / ``schedulers`` commands and the registry-parameterised
invariant tests.

Engines shipped here:

* ``"ims"`` -- Rau's Iterative Modulo Scheduling (the default; the
  engine the paper's experiments used), via :mod:`repro.sched.ims`.
* ``"sms"`` -- Swing Modulo Scheduling (Llosa et al., PACT'96): the
  co-author's near-backtrack-free, lifetime-minimising engine.

Adding an engine is a self-registering subclass::

    from repro.sched.strategies import SchedulerStrategy, register_scheduler

    @register_scheduler
    class MyStrategy(SchedulerStrategy):
        name = "mine"
        description = "my engine"
        def schedule(self, ddg, machine, *, start_ii=None):
            ...
"""

from .base import SchedulerResult, SchedulerStrategy
from .ims import ImsStrategy
from .registry import (available_schedulers, check_scheduler,
                       get_scheduler, register_scheduler,
                       scheduler_descriptions)
from .sms import (SmsConfig, SmsStrategy, sms_order, sms_schedule,
                  time_bounds, try_sms_at_ii)

#: The engine used when nothing else is asked for.
DEFAULT_SCHEDULER = "ims"

__all__ = [
    "SchedulerResult", "SchedulerStrategy",
    "ImsStrategy", "SmsStrategy", "SmsConfig",
    "available_schedulers", "check_scheduler", "get_scheduler",
    "register_scheduler",
    "scheduler_descriptions",
    "sms_order", "sms_schedule", "time_bounds", "try_sms_at_ii",
    "DEFAULT_SCHEDULER",
]

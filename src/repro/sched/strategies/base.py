"""The scheduler-strategy contract.

A *scheduler strategy* is one engine that turns a (loop DDG, single-cluster
machine) pair into a :class:`~repro.sched.schedule.ModuloSchedule`.  Every
engine honours the same contract so the rest of the pipeline -- queue
allocation, partitioning baselines, codegen, the simulator and every
experiment driver -- is engine-agnostic:

* the returned schedule is **normalised** (earliest issue cycle is 0),
* it has been **validated** against the dependence and modulo-resource
  constraints of the machine (unless the engine's config opts out),
* its ``stats`` record the search effort (placements, evictions, IIs
  tried), which is what the scheduler-comparison experiment reports.

Engines register themselves with
:func:`~repro.sched.strategies.registry.register_scheduler` and are looked
up by name (``PipelineOptions(scheduler="sms")``, ``--scheduler`` on the
CLI).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, ClassVar, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.ddg import Ddg
    from repro.machine.machine import Machine
    from repro.sched.schedule import ModuloSchedule, ScheduleStats


@dataclass
class SchedulerResult:
    """What every scheduling engine returns.

    A thin, shared wrapper: the schedule itself plus the name of the
    engine that produced it, so downstream records (job results, compare
    tables) never have to guess which engine ran.
    """

    schedule: "ModuloSchedule"
    scheduler: str

    @property
    def ii(self) -> int:
        return self.schedule.ii

    @property
    def stats(self) -> "ScheduleStats":
        return self.schedule.stats


class SchedulerStrategy(abc.ABC):
    """Base class of all scheduling engines.

    Subclasses set ``name`` (the registry key) and ``description`` (one
    line for ``repro-vliw schedulers``) and implement :meth:`schedule`.
    """

    #: Registry key; also the value of ``PipelineOptions.scheduler``.
    name: ClassVar[str] = ""
    #: One-line summary shown by ``repro-vliw schedulers``.
    description: ClassVar[str] = ""

    @abc.abstractmethod
    def schedule(self, ddg: "Ddg", machine: "Machine", *,
                 start_ii: Optional[int] = None,
                 ii_search: Optional[str] = None) -> SchedulerResult:
        """Schedule *ddg* on a single-cluster *machine*.

        ``ii_search`` overrides the engine config's II search mode
        (``"adaptive"`` / ``"linear"``, see :mod:`repro.sched.iisearch`);
        ``None`` keeps the config's choice.  Raises
        :class:`~repro.sched.schedule.SchedulingError` when no II up to
        the engine's limit admits a schedule.
        """

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<scheduler {self.name!r}>"

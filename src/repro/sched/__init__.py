"""Modulo scheduling: MII bounds, pluggable single-cluster engines
(IMS, SMS), and the pluggable cluster-partitioner registry (affinity,
balance, first, random, agglomerative)."""

from .arena import SchedArena, arena_counters, global_arena
from .iisearch import (DEFAULT_II_SEARCH, II_SEARCH_MODES, check_ii_search,
                       search_ii)
from .ims import (DEFAULT_BUDGET_RATIO, ImsConfig, modulo_schedule,
                  try_schedule_at_ii)
from .strategies import (DEFAULT_SCHEDULER, SchedulerResult,
                         SchedulerStrategy, SmsConfig, available_schedulers,
                         get_scheduler, register_scheduler,
                         scheduler_descriptions, sms_schedule)
from .mii import (MiiReport, max_cycle_ratio, mii, mii_report, rec_mii,
                  res_mii, theoretical_ipc_bound)
from .mrt import ModuloReservationTable, Placement
from .partition import (MoveScheduleResult, PartitionConfig,
                        PartitionStrategy, insert_moves,
                        partitioned_schedule, schedule_with_moves,
                        try_partition_at_ii)
from .partitioners import (DEFAULT_PARTITIONER, Partitioner,
                           PartitionState, available_partitioners,
                           get_partitioner, partitioner_descriptions,
                           register_partitioner)
from .priority import heights, priority_order
from .schedule import (ModuloSchedule, ScheduleStats,
                       ScheduleValidationError, SchedulingError)

__all__ = [
    "SchedArena", "arena_counters", "global_arena",
    "DEFAULT_II_SEARCH", "II_SEARCH_MODES", "check_ii_search", "search_ii",
    "DEFAULT_BUDGET_RATIO", "ImsConfig", "modulo_schedule",
    "try_schedule_at_ii",
    "DEFAULT_SCHEDULER", "SchedulerResult", "SchedulerStrategy",
    "SmsConfig", "available_schedulers", "get_scheduler",
    "register_scheduler", "scheduler_descriptions", "sms_schedule",
    "MiiReport", "max_cycle_ratio", "mii", "mii_report", "rec_mii",
    "res_mii", "theoretical_ipc_bound",
    "ModuloReservationTable", "Placement",
    "MoveScheduleResult", "PartitionConfig", "PartitionStrategy",
    "insert_moves", "partitioned_schedule", "schedule_with_moves",
    "try_partition_at_ii",
    "DEFAULT_PARTITIONER", "Partitioner", "PartitionState",
    "available_partitioners", "get_partitioner",
    "partitioner_descriptions", "register_partitioner",
    "heights", "priority_order",
    "ModuloSchedule", "ScheduleStats", "ScheduleValidationError",
    "SchedulingError",
]

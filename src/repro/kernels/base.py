"""Kernel backend interface and the pure-Python reference implementation.

A *kernel backend* supplies the repo's hot primitives -- the inner loops
that execute once per edge, per row or per candidate during scheduling:

* the Bellman-Ford family (positive-cycle tests for RecMII /
  ``max_cycle_ratio``, height and earliest-start longest paths);
* the schedule audit (dependence and modulo-capacity checks of
  :meth:`repro.sched.schedule.ModuloSchedule.validate`);
* :class:`~repro.sched.mrt.PackedMRT` bulk operations (vectorised
  reset, batched ``can_place`` / ``first_free`` probes);
* the slot-search placement round (predecessor-arrival gather+max).

Two implementations exist: :class:`PythonBackend` (this module; plain
bytecode over ``array('i')``/lists -- always present, always the
fallback) and :class:`repro.kernels.npbackend.NumpyBackend` (whole-array
NumPy operations).  Backends are **decision-identical by contract**:
every primitive returns bit-identical results on both, so schedules,
golden fixtures and cache keys never depend on the selection (which is
why the backend is stamped into BENCH provenance and ``/metrics`` but
*not* into job fingerprints).

Batching floors (``*_batch_min`` / ``reset_bulk_min``) let a backend
decline tiny inputs: callers keep their inline scalar loops below the
floor and delegate above it.  The floors are pure performance tuning --
results are identical on either side -- so the reference backend simply
sets them to "never".

This module imports nothing from ``repro.ir``/``repro.sched`` (the
callers pass packed arrays in), so the kernel layer sits below every
scheduling layer and cannot create import cycles.
"""

from __future__ import annotations

import sys
from typing import Callable, Optional, Sequence

#: Floor value meaning "never take the batched path".
NEVER = sys.maxsize

#: Tolerance of the positive-cycle test.  Probe IIs are dyadic rationals
#: with small denominators (integers from the RecMII bisection, unit
#: -interval midpoints from ``max_cycle_ratio``), so every relaxation
#: value is exact in float64 and any true update exceeds ``EPS`` by
#: orders of magnitude -- the tolerance only guards exactly-zero cycles.
EPS = 1e-9


class KernelBackend:
    """Interface + pure-Python reference implementation of the hot
    primitives.  Subclasses override what they accelerate; semantics
    (including tie-breaks and divergence criteria) must match exactly.
    """

    name: str = "python"
    description: str = ("pure-Python loops over packed array('i')/list "
                        "state (always available; the reference "
                        "implementation every backend must match)")

    #: In-degree floor above which the slot-search / IMS earliest-start
    #: computation is delegated to :meth:`pred_arrivals_round` /
    #: :meth:`estart`.
    arrival_batch_min: int = NEVER
    #: Candidate-cluster floor above which the slot search batches its
    #: ``first_free`` probes through :meth:`first_free_batch`.
    probe_batch_min: int = NEVER
    #: Touched-placement floor above which ``PackedMRT.reset`` zeroes the
    #: whole count vector in one sweep instead of per touched slot.
    reset_bulk_min: int = NEVER

    # ------------------------------------------------------------ meta

    @classmethod
    def available(cls) -> bool:
        return True

    def info(self) -> dict:
        """Description record for ``repro-vliw kernels`` / telemetry."""
        return {"name": self.name, "description": self.description,
                "available": type(self).available()}

    # ----------------------------------------------- Bellman-Ford family

    def cycle_tester(self, n: int,
                     edges: Sequence[tuple[int, int, int, int]],
                     ) -> Callable[[float], bool]:
        """``test(ii) -> bool``: does any cycle of the index-mapped
        *edges* satisfy ``sum(lat) - ii * sum(dist) > EPS``?  The closure
        is created once per bisection (RecMII / ``max_cycle_ratio``) so
        backends can hoist per-graph setup out of the probe loop."""

        def test(ii: float) -> bool:
            weighted = [(s, d, lat - ii * dd) for s, d, lat, dd in edges]
            dist = [0.0] * n
            for _ in range(n):
                changed = False
                for s, d, w in weighted:
                    cand = dist[s] + w
                    if cand > dist[d] + EPS:
                        dist[d] = cand
                        changed = True
                if not changed:
                    return False
            return True  # still relaxing after |V| passes -> positive cycle

        return test

    def positive_cycle(self, n: int,
                       edges: Sequence[tuple[int, int, int, int]],
                       ii: float) -> bool:
        """One-shot positive-cycle test (see :meth:`cycle_tester`)."""
        return self.cycle_tester(n, edges)(ii)

    def heights(self, arr, ii: int) -> Optional[list]:
        """Height per op index at *ii* (Rau priority), or ``None`` if the
        relaxation still changes after ``n + 1`` passes (positive cycle).

        ``H(op) = max(0, max over out-edges: H(dst) + lat - d * II)`` --
        the unique least fixed point >= 0, so relaxation order cannot
        change the result.
        """
        h = [0] * arr.n
        e_src = arr.e_src
        e_dst = arr.e_dst
        w = [lat - dist * ii for lat, dist in zip(arr.e_lat, arr.e_dist)]
        for _ in range(arr.n + 1):
            changed = False
            for s, d, wt in zip(e_src, e_dst, w):
                cand = h[d] + wt
                if cand > h[s]:
                    h[s] = cand
                    changed = True
            if not changed:
                return h
        return None

    def earliest_starts(self, arr, ii: int) -> Optional[list]:
        """Longest-path earliest start per op index at *ii* (SMS bounds),
        or ``None`` on divergence.  Mirror image of :meth:`heights`
        (relaxes destinations from sources)."""
        e = [0] * arr.n
        e_src, e_dst = arr.e_src, arr.e_dst
        w = [lat - dist * ii for lat, dist in zip(arr.e_lat, arr.e_dist)]
        for _ in range(arr.n + 1):
            changed = False
            for src, dst, wt in zip(e_src, e_dst, w):
                cand = e[src] + wt
                if cand > e[dst]:
                    e[dst] = cand
                    changed = True
            if not changed:
                return e
        return None

    def zero_heights(self, arr) -> list:
        """Longest downstream path per op index over **distance-0** edges
        (the copy inserter's criticality weight).  The distance-0
        subgraph of any valid loop is acyclic, so ``n + 1`` passes always
        converge; integer max-plus relaxation from zero has a unique
        fixed point, so backends agree exactly."""
        h = [0] * arr.n
        zero = [(s, d, lat)
                for s, d, lat, dist in zip(arr.e_src, arr.e_dst,
                                           arr.e_lat, arr.e_dist)
                if dist == 0]
        for _ in range(arr.n + 1):
            changed = False
            for s, d, lat in zero:
                cand = h[d] + lat
                if cand > h[s]:
                    h[s] = cand
                    changed = True
            if not changed:
                break
        return h

    # ------------------------------------------------------ schedule audit

    def dependence_clean(self, arr, sig: Sequence[int], ii: int) -> bool:
        """Fast boolean dependence audit: every edge satisfied?

        Callers guarantee every entry of *sig* is ``>= 0`` (fully
        scheduled); on ``False`` they re-run the diagnostic loop that
        names the offending edges.
        """
        for s, d, lat, dd in zip(arr.e_src, arr.e_dst, arr.e_lat,
                                 arr.e_dist):
            if sig[d] + dd * ii - sig[s] - lat < 0:
                return False
        return True

    def capacity_clean(self, pool: Sequence[int], sig: Sequence[int],
                       cl: Sequence[int], ii: int,
                       caps: Sequence[int]) -> bool:
        """Fast boolean modulo-capacity audit: no (cluster, pool, row)
        over its capacity?  Entries with ``sig < 0`` are skipped (matches
        the diagnostic path)."""
        n_pools = len(caps)
        counts: dict[int, int] = {}
        for i, t in enumerate(sig):
            if t < 0:
                continue
            p = pool[i]
            key = (cl[i] * n_pools + p) * ii + t % ii
            c = counts.get(key, 0) + 1
            if c > caps[p]:
                return False
            counts[key] = c
        return True

    # ------------------------------------------------------------ MRT bulk

    def zero_counts(self, mrt) -> None:
        """Zero the MRT's whole row-count vector in one sweep (the bulk
        half of ``PackedMRT.reset``; occupant lists stay the caller's
        job)."""
        counts = mrt._counts
        for k in range(len(counts)):
            counts[k] = 0

    def can_place_batch(self, mrt, pool: int,
                        times: Sequence[int]) -> list:
        """``[mrt.can_place(pool, t) for t in times]`` as one bulk probe."""
        ii = mrt.ii
        cap = mrt.caps[pool]
        counts = mrt._counts
        base = pool * ii
        return [counts[base + t % ii] < cap for t in times]

    def first_free_batch(self, mrts: Sequence, pool: int,
                         ests: Sequence[int]) -> list:
        """``[m.first_free(pool, e) for m, e in zip(mrts, ests)]`` as one
        bulk probe across clusters (one est per table)."""
        return [m.first_free(pool, e) for m, e in zip(mrts, ests)]

    # ------------------------------------------------- slot-search round

    def pred_arrivals_round(self, arr, i: int, sig: Sequence[int],
                            cl: Sequence[int], ii: int, xlat: int,
                            ) -> tuple[list, bool, Optional[int]]:
        """``(arrivals, uniform, uniform_est)`` of one placement round:
        per scheduled predecessor edge ``(sig + lat - d * II, cluster)``
        with cluster ``-1`` when no cross-cluster copy latency applies.
        ``uniform_est`` is the shared earliest start when no term depends
        on the candidate cluster (``uniform``), else ``None``."""
        arrivals: list[tuple[int, int]] = []
        uniform = True
        in_src, in_lat = arr.in_src, arr.in_lat
        in_dist, in_data = arr.in_dist, arr.in_data
        for j in range(arr.in_ptr[i], arr.in_ptr[i + 1]):
            s = in_src[j]
            t = sig[s]
            if t < 0:
                continue
            base = t + in_lat[j] - in_dist[j] * ii
            if xlat and in_data[j]:
                arrivals.append((base, cl[s]))
                uniform = False
            else:
                arrivals.append((base, -1))
        if not uniform:
            return arrivals, False, None
        est0 = 0
        for base, _sc in arrivals:
            if base > est0:
                est0 = base
        return arrivals, True, est0

    def estart(self, arr, i: int, sig: Sequence[int], ii: int) -> int:
        """Single-cluster earliest start of op *i* given partial *sig*
        (IMS inner loop): ``max(0, max_p sig[p] + lat - d * II)``."""
        est = 0
        in_src, in_lat, in_dist = arr.in_src, arr.in_lat, arr.in_dist
        for j in range(arr.in_ptr[i], arr.in_ptr[i + 1]):
            t = sig[in_src[j]]
            if t >= 0:
                cand = t + in_lat[j] - in_dist[j] * ii
                if cand > est:
                    est = cand
        return est

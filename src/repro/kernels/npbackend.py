"""NumPy-vectorised kernel backend.

Each primitive replaces a per-element bytecode loop with whole-array
operations; results are bit-identical to the pure-Python reference
(:mod:`repro.kernels.base`) by construction:

* **Bellman-Ford family** -- the reference relaxes edges in place
  (Gauss-Seidel); this backend relaxes the whole edge list per pass
  (Jacobi) with a segmented ``maximum.reduceat``.  Both are monotone
  max-plus iterations from zero, so they converge to the same least
  fixed point, and every probe II is a dyadic rational with a small
  denominator, so all float arithmetic is exact -- the pass-``n`` "still
  changing" divergence verdict is therefore identical, not just close.
* **Audits / MRT bulk** -- pure gathers, ``bincount`` and comparisons;
  the zero-copy ``int32`` view onto ``PackedMRT``'s ``array('i')`` count
  vector (``np.frombuffer``) lets bulk resets and batched probes share
  the scalar path's memory, so the two can never disagree.
* **Batched ``first_free``** -- the per-pool full-row bitmasks are
  packed into a ``uint64`` lane per cluster and rotated/scanned with
  integer ops (IIs above 63 rows fall back to the scalar probe).

Tiny inputs delegate to the reference implementation (see the batching
floors) -- per-call ufunc overhead loses below a few dozen elements, and
delegation keeps parity trivially true on both sides of every floor.

Scratch buffers are cached per lowering on ``DdgArrays.ii_cache`` (the
same per-graph memo the heights/priority caches ride), so steady-state
sweeps run the NumPy path allocation-free; pooled ``PackedMRT``\\ s keep
their count-vector views across arena resets for the same reason.
"""

from __future__ import annotations

from array import array
from typing import Callable, Optional, Sequence

try:
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via REPRO_KERNELS=python
    _np = None

from .base import EPS, KernelBackend

#: ``array('i')`` must be 4 bytes for the zero-copy int32 view; on every
#: supported platform it is, but the bulk MRT paths re-check and fall
#: back rather than assume.
_I4 = array("i").itemsize == 4

#: ``ii_cache`` key of the per-lowering NumPy mirror/scratch bundle.
_CACHE_KEY = ("np_kernels",)


class _ArrMirror:
    """Per-lowering NumPy mirrors of the packed edge arrays, plus reusable
    relaxation scratch.  Lives on ``arr.ii_cache`` so it is built once per
    lowering and dropped with it."""

    __slots__ = ("e_src", "e_dst", "e_lat", "e_dist",
                 "seg_src_starts", "seg_src_ids",
                 "dst_order", "seg_dst_starts", "seg_dst_ids",
                 "in_src", "in_lat", "in_dist", "in_data",
                 "h", "cand",
                 "z_dst", "z_lat", "z_starts", "z_ids", "z_cand")

    def __init__(self, arr) -> None:
        np = _np
        self.e_src = np.asarray(arr.e_src, dtype=np.int64)
        self.e_dst = np.asarray(arr.e_dst, dtype=np.int64)
        self.e_lat = np.asarray(arr.e_lat, dtype=np.int64)
        self.e_dist = np.asarray(arr.e_dist, dtype=np.int64)
        # flat edges are built sorted by (src, dst), so source segments
        # are contiguous: maximum.reduceat gives the per-source max
        src = self.e_src
        if src.size:
            starts = np.flatnonzero(np.diff(src)) + 1
            self.seg_src_starts = np.concatenate(([0], starts))
            self.seg_src_ids = src[self.seg_src_starts]
            # destination segments need a stable sort first
            order = np.argsort(self.e_dst, kind="stable")
            dst_sorted = self.e_dst[order]
            dstarts = np.flatnonzero(np.diff(dst_sorted)) + 1
            self.dst_order = order
            self.seg_dst_starts = np.concatenate(([0], dstarts))
            self.seg_dst_ids = dst_sorted[self.seg_dst_starts]
        else:
            empty = np.empty(0, dtype=np.int64)
            self.seg_src_starts = self.seg_src_ids = empty
            self.dst_order = self.seg_dst_starts = self.seg_dst_ids = empty
        self.in_src = np.asarray(arr.in_src, dtype=np.int64)
        self.in_lat = np.asarray(arr.in_lat, dtype=np.int64)
        self.in_dist = np.asarray(arr.in_dist, dtype=np.int64)
        self.in_data = np.asarray(arr.in_data, dtype=np.bool_)
        self.h = np.empty(arr.n, dtype=np.int64)
        self.cand = np.empty(src.size, dtype=np.int64)
        # distance-0 sub-CSR for zero_heights, built on first use
        self.z_dst = None


def _mirror(arr) -> _ArrMirror:
    m = arr.ii_cache.get(_CACHE_KEY)
    if m is None:
        m = _ArrMirror(arr)
        arr.ii_cache[_CACHE_KEY] = m
    return m


def _counts_view(mrt):
    """Zero-copy int32 view of the MRT's count vector, cached on the
    table (pooled tables keep it across arena resets)."""
    view = mrt._npc
    if view is None or view.size != len(mrt._counts):
        view = _np.frombuffer(mrt._counts, dtype=_np.int32)
        mrt._npc = view
    return view


class NumpyBackend(KernelBackend):
    """Whole-array NumPy implementations of the hot primitives
    (decision-identical to :class:`~repro.kernels.pybackend.
    PythonBackend`; small inputs delegate to it)."""

    name = "numpy"
    description = ("NumPy-vectorised kernels: whole-array Bellman-Ford "
                   "relaxation, bincount audits, zero-copy int32 MRT "
                   "views, uint64 batched first_free probes")

    # batching floors: below these the reference loops win
    arrival_batch_min = 64
    probe_batch_min = 16
    reset_bulk_min = 48
    #: Edge-count floors for the relaxation / audit primitives.
    relax_batch_min = 128
    audit_batch_min = 64

    @classmethod
    def available(cls) -> bool:
        return _np is not None

    def info(self) -> dict:
        rec = super().info()
        rec["numpy"] = _np.__version__ if _np is not None else None
        return rec

    # ----------------------------------------------- Bellman-Ford family

    def cycle_tester(self, n: int,
                     edges: Sequence[tuple[int, int, int, int]],
                     ) -> Callable[[float], bool]:
        if len(edges) < self.relax_batch_min:
            return super().cycle_tester(n, edges)
        np = _np
        src = np.array([e[0] for e in edges], dtype=np.int64)
        dst = np.array([e[1] for e in edges], dtype=np.int64)
        lat = np.array([e[2] for e in edges], dtype=np.float64)
        dd = np.array([e[3] for e in edges], dtype=np.float64)
        order = np.argsort(dst, kind="stable")
        src_o = src[order]
        dst_sorted = dst[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(dst_sorted)) + 1))
        seg_dst = dst_sorted[starts]
        lat_o = lat[order]
        dd_o = dd[order]
        dist = np.empty(n, dtype=np.float64)
        cand = np.empty(len(edges), dtype=np.float64)
        w = np.empty(len(edges), dtype=np.float64)

        def test(ii: float) -> bool:
            np.multiply(dd_o, -ii, out=w)
            np.add(w, lat_o, out=w)
            dist.fill(0.0)
            for _ in range(n):
                np.add(dist[src_o], w, out=cand)
                seg = np.maximum.reduceat(cand, starts) if starts.size \
                    else cand[:0]
                cur = dist[seg_dst]
                upd = seg > cur + EPS
                if not upd.any():
                    return False
                dist[seg_dst[upd]] = seg[upd]
            return True

        return test

    def _relax(self, arr, ii: int, *, forward: bool) -> Optional[list]:
        """Shared Jacobi relaxation: heights (``forward=False``, relaxes
        sources from destinations) or earliest starts (``forward=True``).
        Returns the fixed point as a plain list, or ``None`` on
        divergence -- the same pass-``n+1`` criterion as the reference
        (all arithmetic is exact, see the module docstring)."""
        np = _np
        m = _mirror(arr)
        w = m.e_lat - m.e_dist * ii
        h = m.h
        h.fill(0)
        cand = m.cand
        if forward:
            gather, starts, seg_ids = m.e_src, m.seg_dst_starts, m.seg_dst_ids
            order = m.dst_order
            w = w[order]
            gather = gather[order]
        else:
            gather, starts, seg_ids = m.e_dst, m.seg_src_starts, m.seg_src_ids
        for _ in range(arr.n + 1):
            np.add(h[gather], w, out=cand)
            seg = np.maximum.reduceat(cand, starts)
            cur = h[seg_ids]
            upd = seg > cur
            if not upd.any():
                return h.tolist()
            h[seg_ids[upd]] = seg[upd]
        return None

    def heights(self, arr, ii: int) -> Optional[list]:
        if len(arr.e_src) < self.relax_batch_min:
            return super().heights(arr, ii)
        return self._relax(arr, ii, forward=False)

    def earliest_starts(self, arr, ii: int) -> Optional[list]:
        if len(arr.e_src) < self.relax_batch_min:
            return super().earliest_starts(arr, ii)
        return self._relax(arr, ii, forward=True)

    def zero_heights(self, arr) -> list:
        if len(arr.e_src) < self.relax_batch_min:
            return super().zero_heights(arr)
        np = _np
        m = _mirror(arr)
        if m.z_dst is None:
            # the flat edge list is (src, dst)-sorted, so the distance-0
            # subset keeps contiguous source segments
            zmask = m.e_dist == 0
            zsrc = m.e_src[zmask]
            m.z_dst = m.e_dst[zmask]
            m.z_lat = m.e_lat[zmask]
            if zsrc.size:
                m.z_starts = np.concatenate(
                    ([0], np.flatnonzero(np.diff(zsrc)) + 1))
                m.z_ids = zsrc[m.z_starts]
            else:
                m.z_starts = m.z_ids = zsrc
            m.z_cand = np.empty(zsrc.size, dtype=np.int64)
        h = m.h
        h.fill(0)
        if m.z_dst.size:
            z_dst, z_lat = m.z_dst, m.z_lat
            starts, seg_ids, cand = m.z_starts, m.z_ids, m.z_cand
            for _ in range(arr.n + 1):
                np.add(h[z_dst], z_lat, out=cand)
                seg = np.maximum.reduceat(cand, starts)
                upd = seg > h[seg_ids]
                if not upd.any():
                    break
                h[seg_ids[upd]] = seg[upd]
        return h.tolist()

    # ------------------------------------------------------ schedule audit

    def dependence_clean(self, arr, sig: Sequence[int], ii: int) -> bool:
        if len(arr.e_src) < self.audit_batch_min:
            return super().dependence_clean(arr, sig, ii)
        np = _np
        m = _mirror(arr)
        s = np.asarray(sig, dtype=np.int64)
        slack = s[m.e_dst] + m.e_dist * ii - s[m.e_src] - m.e_lat
        return not bool((slack < 0).any())

    def capacity_clean(self, pool: Sequence[int], sig: Sequence[int],
                       cl: Sequence[int], ii: int,
                       caps: Sequence[int]) -> bool:
        if len(sig) < self.audit_batch_min:
            return super().capacity_clean(pool, sig, cl, ii, caps)
        np = _np
        s = np.asarray(sig, dtype=np.int64)
        p = np.asarray(pool, dtype=np.int64)
        c = np.asarray(cl, dtype=np.int64)
        caps_np = np.asarray(caps, dtype=np.int64)
        placed = s >= 0
        if not placed.all():
            s, p, c = s[placed], p[placed], c[placed]
        if not s.size:
            return True
        n_pools = len(caps)
        keys = (c * n_pools + p) * ii + s % ii
        counts = np.bincount(keys)
        used = np.flatnonzero(counts)
        return not bool(
            (counts[used] > caps_np[(used // ii) % n_pools]).any())

    # ------------------------------------------------------------ MRT bulk

    def zero_counts(self, mrt) -> None:
        if not _I4:  # pragma: no cover - non-4-byte C int platform
            super().zero_counts(mrt)
            return
        _counts_view(mrt)[:] = 0

    def can_place_batch(self, mrt, pool: int,
                        times: Sequence[int]) -> list:
        if not _I4 or len(times) < self.probe_batch_min:
            return super().can_place_batch(mrt, pool, times)
        np = _np
        ii = mrt.ii
        idx = pool * ii + np.asarray(times, dtype=np.int64) % ii
        return (_counts_view(mrt)[idx] < mrt.caps[pool]).tolist()

    def first_free_batch(self, mrts: Sequence, pool: int,
                         ests: Sequence[int]) -> list:
        k = len(mrts)
        if k < self.probe_batch_min or not mrts or mrts[0].ii > 63:
            return super().first_free_batch(mrts, pool, ests)
        np = _np
        ii = mrts[0].ii
        all_full = np.uint64((1 << ii) - 1)
        masks = np.fromiter((m._full[pool] for m in mrts),
                            dtype=np.uint64, count=k)
        caps = np.fromiter((m.caps[pool] for m in mrts),
                           dtype=np.int64, count=k)
        est = np.asarray(ests, dtype=np.int64)
        r = (est % ii).astype(np.uint64)
        ii_u = np.uint64(ii)
        rot = ((masks >> r) | (masks << (ii_u - r))) & all_full
        free = ~rot & all_full
        lsb = free & (~free + np.uint64(1))
        # lsb is 0 or an exact power of two < 2**63: float64 log2 is exact
        bit = np.log2(np.maximum(lsb, np.uint64(1)).astype(
            np.float64)).astype(np.int64)
        out = np.where((caps <= 0) | (free == 0), -1, est + bit)
        return out.tolist()

    # ------------------------------------------------- slot-search round

    def pred_arrivals_round(self, arr, i: int, sig: Sequence[int],
                            cl: Sequence[int], ii: int, xlat: int,
                            ) -> tuple[list, bool, Optional[int]]:
        j0 = arr.in_ptr[i]
        j1 = arr.in_ptr[i + 1]
        if j1 - j0 < self.arrival_batch_min:
            return super().pred_arrivals_round(arr, i, sig, cl, ii, xlat)
        np = _np
        m = _mirror(arr)
        srcs = m.in_src[j0:j1]
        ts = np.fromiter((sig[s] for s in srcs.tolist()),
                         dtype=np.int64, count=j1 - j0)
        placed = ts >= 0
        if not placed.any():
            return [], True, 0
        base = ts + m.in_lat[j0:j1] - m.in_dist[j0:j1] * ii
        data = m.in_data[j0:j1] & placed if xlat else None
        if data is None or not bool(data.any()):
            est0 = int(base[placed].max())
            if est0 < 0:
                est0 = 0
            # a single cluster-free term carries the same maximum through
            # estart_from as the full list would
            return [(est0, -1)], True, est0
        # non-uniform: compress to one term per predecessor cluster plus
        # one cluster-free term -- estart_from takes maxima, so this is
        # decision-identical to the raw per-edge list
        arrivals: list[tuple[int, int]] = []
        plain = placed & ~data
        if bool(plain.any()):
            arrivals.append((int(base[plain].max()), -1))
        dsrc = srcs[data]
        dbase = base[data]
        clus = np.fromiter((cl[s] for s in dsrc.tolist()),
                           dtype=np.int64, count=dsrc.size)
        for c in np.unique(clus).tolist():
            arrivals.append((int(dbase[clus == c].max()), c))
        return arrivals, False, None

    def estart(self, arr, i: int, sig: Sequence[int], ii: int) -> int:
        j0 = arr.in_ptr[i]
        j1 = arr.in_ptr[i + 1]
        if j1 - j0 < self.arrival_batch_min:
            return super().estart(arr, i, sig, ii)
        np = _np
        m = _mirror(arr)
        srcs = m.in_src[j0:j1]
        ts = np.fromiter((sig[s] for s in srcs.tolist()),
                         dtype=np.int64, count=j1 - j0)
        placed = ts >= 0
        if not placed.any():
            return 0
        base = ts + m.in_lat[j0:j1] - m.in_dist[j0:j1] * ii
        est = int(base[placed].max())
        return est if est > 0 else 0

"""Kernel backend registry and selection.

The schedulers' hot primitives (Bellman-Ford relaxations, schedule
audits, MRT bulk operations, the slot-search placement round) are
implemented twice -- pure Python (:mod:`repro.kernels.pybackend`, always
available) and NumPy-vectorised (:mod:`repro.kernels.npbackend`) -- and
selected once per process:

* ``REPRO_KERNELS=python|numpy|auto`` (environment; default ``auto``);
* the ``--kernels`` CLI flag (calls :func:`set_backend` before work
  starts);
* ``auto`` resolves to ``numpy`` when NumPy imports, else ``python``.

Backends are decision-identical (see :mod:`repro.kernels.base`), so the
selection is **observability state, not cache state**: it is stamped
into BENCH provenance, ``/metrics`` and perf-history rows, and it must
never enter job fingerprints -- the same job key stands for the same
schedule under either backend.

Requesting ``numpy`` explicitly on a machine without NumPy raises;
``auto`` falls back silently (``repro-vliw kernels`` shows what it
resolved to).
"""

from __future__ import annotations

import os
from typing import Optional

from .base import KernelBackend
from .npbackend import NumpyBackend
from .pybackend import PythonBackend

__all__ = ["KernelBackend", "PythonBackend", "NumpyBackend",
           "BACKENDS", "ENV_VAR", "DEFAULT_CHOICE", "available_backends",
           "numpy_available", "resolve", "set_backend", "active",
           "active_name", "backend_info", "check_kernels"]

#: Environment variable consulted on first use (and by worker processes,
#: which inherit it).
ENV_VAR = "REPRO_KERNELS"

#: Registry of constructable backends, in fallback order.
BACKENDS: dict[str, type[KernelBackend]] = {
    PythonBackend.name: PythonBackend,
    NumpyBackend.name: NumpyBackend,
}

#: Accepted selector values (``auto`` is a selector, not a backend).
DEFAULT_CHOICE = "auto"
CHOICES = tuple(BACKENDS) + (DEFAULT_CHOICE,)

_active: Optional[KernelBackend] = None
_requested: Optional[str] = None  # the selector that produced _active


def numpy_available() -> bool:
    return NumpyBackend.available()


def available_backends() -> list[str]:
    """Backend names usable in this process, registry order."""
    return [name for name, cls in BACKENDS.items() if cls.available()]


def resolve(choice: str) -> str:
    """Map a selector (``python``/``numpy``/``auto``) to a backend name.

    ``auto`` prefers ``numpy`` when available.  Raises ``ValueError`` on
    unknown selectors and ``RuntimeError`` when an explicitly requested
    backend cannot run here -- a silent fallback would invalidate any
    benchmark that asked for it.
    """
    if choice == DEFAULT_CHOICE:
        return NumpyBackend.name if numpy_available() \
            else PythonBackend.name
    cls = BACKENDS.get(choice)
    if cls is None:
        raise ValueError(
            f"unknown kernel backend {choice!r} "
            f"(choices: {', '.join(CHOICES)})")
    if not cls.available():
        raise RuntimeError(
            f"kernel backend {choice!r} requested via {ENV_VAR} or "
            f"--kernels but is not importable here (NumPy missing?)")
    return choice


def set_backend(choice: str) -> KernelBackend:
    """Select the process-wide backend (CLI flag / tests).  Also exports
    ``REPRO_KERNELS`` so forked workers inherit the selection."""
    global _active, _requested
    name = resolve(choice)
    _active = BACKENDS[name]()
    _requested = choice
    os.environ[ENV_VAR] = choice
    return _active


def active() -> KernelBackend:
    """The process-wide backend, initialised from ``REPRO_KERNELS`` on
    first use."""
    global _active, _requested
    if _active is None:
        choice = os.environ.get(ENV_VAR, DEFAULT_CHOICE) or DEFAULT_CHOICE
        _active = BACKENDS[resolve(choice)]()
        _requested = choice
    return _active


def active_name() -> str:
    """Name of the active backend (telemetry / provenance surface)."""
    return active().name


def backend_info() -> dict:
    """Structured selection report (``repro-vliw kernels``, ``/metrics``,
    service health)."""
    act = active()
    return {
        "active": act.name,
        "requested": _requested or DEFAULT_CHOICE,
        "env": os.environ.get(ENV_VAR),
        "auto_resolves_to": (NumpyBackend.name if numpy_available()
                             else PythonBackend.name),
        "numpy_available": numpy_available(),
        "backends": [BACKENDS[name]().info() if BACKENDS[name].available()
                     else {"name": name, "available": False,
                           "description": BACKENDS[name].description}
                     for name in BACKENDS],
    }


def check_kernels() -> list[str]:
    """Static-gate style self-check: every registered backend that claims
    availability must construct and identify itself."""
    problems = []
    for name, cls in BACKENDS.items():
        if cls.name != name:
            problems.append(f"backend {name!r} reports name {cls.name!r}")
        if cls.available():
            try:
                cls()
            except Exception as exc:  # pragma: no cover - defensive
                problems.append(f"backend {name!r} failed to construct: "
                                f"{exc}")
    if PythonBackend.name not in BACKENDS:
        problems.append("python fallback backend missing from registry")
    return problems

"""The pure-Python kernel backend.

The reference implementation lives on :class:`~repro.kernels.base.
KernelBackend` itself (so accelerated backends can delegate per call
under their batching floors); this subclass only gives it a concrete
registry identity.
"""

from __future__ import annotations

from .base import KernelBackend


class PythonBackend(KernelBackend):
    """Plain bytecode over packed ``array('i')``/list state -- always
    available, always the fallback, and the semantics every accelerated
    backend must reproduce bit-for-bit."""

    name = "python"

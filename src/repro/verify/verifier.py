"""The static schedule verifier (DESIGN.md §5.9).

Given a :class:`~repro.sched.schedule.ModuloSchedule`, the machine it
claims to run on and (optionally) an override DDG, prove every schedule
invariant the paper defines and return a :class:`Verdict`:

1. **Structure** -- every DDG op scheduled exactly once at a
   non-negative time; no phantom ops; cluster assignments in range.
2. **Dependences** -- every edge satisfies
   ``sigma(dst) + dist*II - sigma(src) - latency >= 0``; crossing DATA
   edges additionally cover the inter-cluster bus latency.
3. **Resources** -- on every (cluster, FU pool, modulo row) the op count
   stays within the pool's unit count (the MRT re-derived from scratch).
4. **Topology** -- every DATA edge connects ring-adjacent clusters
   (hop count <= 1, re-derived from modular arithmetic).
5. **Queues** (QRF machines) -- lifetimes grouped per queue location,
   greedily packed under the locally re-implemented Q-compatibility
   closed form (Theorem 1.1); every queue's peak occupancy (prologue
   preloads included) must fit the per-queue position count, and --
   under ``enforce_queue_budget`` -- each location's queue count must
   fit the hardware budget.  The budget check is opt-in because the
   paper's Fig. 3/Fig. 7 methodology *measures* queue demand rather
   than failing schedules that exceed one budget point.

The verifier deliberately re-derives everything from public,
object-level APIs (edge dataclasses, ``FuSet.capacity``, modular ring
arithmetic) rather than the packed ``arrays()`` lowering the schedulers
use: it is the independent half of a translation-validation pair, so it
must not share representation bugs with the engines it checks.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.ir.ddg import Ddg, DepEdge, DepKind
from repro.machine.cluster import ClusteredMachine
from repro.machine.machine import Machine, QueueBudget
from repro.machine.resources import pool_for
from repro.sched.schedule import ModuloSchedule

from .verdict import Verdict, Violation, ViolationKind

AnyMachine = Union[Machine, ClusteredMachine]

#: Invariant families in proof order (structure first: a dependence
#: inequality over an unscheduled op is meaningless).
INVARIANT_FAMILIES = ("structure", "dependence", "resource", "topology",
                      "queues")


def verify_schedule(sched: ModuloSchedule, machine: AnyMachine, *,
                    ddg: Optional[Ddg] = None,
                    enforce_queue_budget: bool = False) -> Verdict:
    """Prove one schedule against its machine; never raises on a bad
    schedule -- the :class:`Verdict` carries the violations."""
    ddg = ddg if ddg is not None else sched.ddg
    clustered = isinstance(machine, ClusteredMachine)
    cluster_fus = machine.cluster.fus if clustered else machine.fus
    n_clusters = machine.n_clusters if clustered else 1
    xlat = machine.inter_cluster_latency if clustered else 0

    violations: list[Violation] = []
    proved: dict[str, int] = {}
    checked = ["structure", "dependence", "resource"]

    ok_ops = _check_structure(sched, ddg, n_clusters, violations, proved)
    _check_dependences(sched, ddg, ok_ops, xlat, violations, proved)
    _check_resources(sched, ddg, ok_ops, cluster_fus, violations, proved)
    if clustered:
        checked.append("topology")
        _check_topology(sched, ddg, ok_ops, n_clusters, violations,
                        proved)
    if machine.has_queues:
        checked.append("queues")
        _check_queues(sched, ddg, ok_ops, n_clusters,
                      machine.queue_budget, enforce_queue_budget,
                      violations, proved)

    return Verdict(
        loop=ddg.name,
        machine=getattr(machine, "name", str(machine)),
        ii=sched.ii, n_ops=ddg.n_ops,
        checked=tuple(checked), violations=tuple(violations),
        proved=proved)


# ---------------------------------------------------------------------------
# 1. structure
# ---------------------------------------------------------------------------

def _check_structure(sched: ModuloSchedule, ddg: Ddg, n_clusters: int,
                     out: list[Violation],
                     proved: dict[str, int]) -> set[int]:
    """Every op scheduled once, at t >= 0, on a real cluster.

    Returns the set of ops whose placement is sound; downstream checks
    only reason about those (a missing op is reported once, not once
    per incident edge).
    """
    ok: set[int] = set()
    passed = 0
    known = set(ddg.op_ids)
    for op_id in ddg.op_ids:
        t = sched.sigma.get(op_id)
        name = ddg.op(op_id).name
        if t is None:
            out.append(Violation(
                ViolationKind.UNSCHEDULED,
                f"op {name} (id {op_id}) has no issue time",
                ops=(op_id,)))
            continue
        if t < 0:
            out.append(Violation(
                ViolationKind.NEGATIVE_TIME,
                f"op {name} issues at cycle {t}",
                inequality=f"sigma({op_id}) = {t} >= 0",
                ops=(op_id,)))
            continue
        cl = sched.cluster_of.get(op_id, 0)
        if not 0 <= cl < n_clusters:
            out.append(Violation(
                ViolationKind.CLUSTER_RANGE,
                f"op {name} assigned to cluster {cl} of a "
                f"{n_clusters}-cluster machine",
                inequality=f"0 <= {cl} < {n_clusters}",
                ops=(op_id,)))
            continue
        ok.add(op_id)
        passed += 1
    for extra in sched.sigma:
        if extra not in known:
            out.append(Violation(
                ViolationKind.UNKNOWN_OP,
                f"sigma schedules op {extra}, which the DDG does not "
                f"contain", ops=(extra,)))
    proved["structure"] = passed
    return ok


# ---------------------------------------------------------------------------
# 2. dependences (+ bus latency on crossing edges)
# ---------------------------------------------------------------------------

def _edge_tag(ddg: Ddg, e: DepEdge) -> str:
    return (f"{ddg.op(e.src).name} -> {ddg.op(e.dst).name} "
            f"({e.kind.value}, lat={e.latency}, d={e.distance})")


def _check_dependences(sched: ModuloSchedule, ddg: Ddg, ok_ops: set[int],
                       xlat: int, out: list[Violation],
                       proved: dict[str, int]) -> None:
    sigma = sched.sigma
    cluster_of = sched.cluster_of
    ii = sched.ii
    passed = 0
    for e in ddg.edges():
        if e.src not in ok_ops or e.dst not in ok_ops:
            continue
        slack = sigma[e.dst] + e.distance * ii - sigma[e.src] - e.latency
        if slack < 0:
            out.append(Violation(
                ViolationKind.DEPENDENCE,
                f"dependence violated: {_edge_tag(ddg, e)} with "
                f"sigma {sigma[e.src]} -> {sigma[e.dst]} at II={ii}",
                inequality=(f"{sigma[e.dst]} + {e.distance}*{ii} - "
                            f"{sigma[e.src]} - {e.latency} = {slack} "
                            f">= 0"),
                ops=(e.src, e.dst)))
            continue
        if (xlat and e.kind is DepKind.DATA
                and cluster_of.get(e.src, 0) != cluster_of.get(e.dst, 0)
                and slack < xlat):
            out.append(Violation(
                ViolationKind.BUS_LATENCY,
                f"crossing edge {_edge_tag(ddg, e)} pays only {slack} "
                f"cycle(s) of the {xlat}-cycle inter-cluster bus",
                inequality=f"slack {slack} >= bus latency {xlat}",
                ops=(e.src, e.dst)))
            continue
        passed += 1
    proved["dependence"] = passed


# ---------------------------------------------------------------------------
# 3. resources (the MRT, re-derived)
# ---------------------------------------------------------------------------

def _check_resources(sched: ModuloSchedule, ddg: Ddg, ok_ops: set[int],
                     cluster_fus: object, out: list[Violation],
                     proved: dict[str, int]) -> None:
    ii = sched.ii
    usage: dict[tuple[int, str, int], list[int]] = {}
    for op_id in sorted(ok_ops):
        op = ddg.op(op_id)
        pool = pool_for(op.fu_type)
        key = (sched.cluster_of.get(op_id, 0), pool.value,
               sched.sigma[op_id] % ii)
        usage.setdefault(key, []).append(op_id)
    passed = 0
    for (cl, pool_name, row), ops in sorted(usage.items()):
        cap = cluster_fus.capacity(ddg.op(ops[0]).fu_type)  # type: ignore[attr-defined]
        if len(ops) > cap:
            out.append(Violation(
                ViolationKind.RESOURCE,
                f"cluster {cl}: {len(ops)} ops need the {pool_name} "
                f"pool on modulo row {row} "
                f"({', '.join(ddg.op(o).name for o in ops)})",
                inequality=f"{len(ops)} <= capacity {cap}",
                ops=tuple(ops)))
        else:
            passed += 1
    proved["resource"] = passed


# ---------------------------------------------------------------------------
# 4. ring topology
# ---------------------------------------------------------------------------

def _ring_hops(a: int, b: int, n: int) -> int:
    d = (a - b) % n
    return min(d, n - d)


def _check_topology(sched: ModuloSchedule, ddg: Ddg, ok_ops: set[int],
                    n_clusters: int, out: list[Violation],
                    proved: dict[str, int]) -> None:
    passed = 0
    for e in ddg.data_edges():
        if e.src not in ok_ops or e.dst not in ok_ops:
            continue
        ca = sched.cluster_of.get(e.src, 0)
        cb = sched.cluster_of.get(e.dst, 0)
        hops = _ring_hops(ca, cb, n_clusters)
        if hops > 1:
            out.append(Violation(
                ViolationKind.ADJACENCY,
                f"DATA edge {_edge_tag(ddg, e)} spans clusters "
                f"{ca} -> {cb}, {hops} ring hops apart",
                inequality=f"ring_hops({ca}, {cb}) = {hops} <= 1",
                ops=(e.src, e.dst)))
        else:
            passed += 1
    proved["topology"] = passed


# ---------------------------------------------------------------------------
# 5. queues
# ---------------------------------------------------------------------------

def _q_compatible(sa: int, la: int, sb: int, lb: int, ii: int) -> bool:
    """Theorem 1.1, strict closed form (re-implemented locally; see the
    module docstring for why this duplicates ``repro.regalloc.queues``)."""
    if la > lb:
        sa, la, sb, lb = sb, lb, sa, la
    delta = (sb - sa) % ii
    return delta != 0 and lb - la < ii - delta


def _queue_positions(queue: list[tuple[int, int, int, DepEdge]],
                     ii: int) -> int:
    """Peak occupancy of one queue over a whole execution, prologue
    preloads included (mirrors the semantics of
    ``repro.regalloc.lifetimes.required_positions``)."""
    if not queue:
        return 0
    horizon = max(s + ln for s, ln, _d, _e in queue) + 2 * ii
    events: list[tuple[int, int]] = []
    for start, length, distance, _e in queue:
        k = -distance
        while True:
            s, e = start + k * ii, start + length + k * ii
            if s > horizon:
                break
            s_clamped = max(s, -1) if k < 0 else s
            if e > s_clamped:
                events.append((s_clamped, +1))
                events.append((e, -1))
            k += 1
    events.sort()
    peak = cur = 0
    for _t, delta in events:
        cur += delta
        peak = max(peak, cur)
    return peak


def _check_queues(sched: ModuloSchedule, ddg: Ddg, ok_ops: set[int],
                  n_clusters: int, budget: QueueBudget,
                  enforce_budget: bool, out: list[Violation],
                  proved: dict[str, int]) -> None:
    ii = sched.ii
    sigma = sched.sigma
    # location key: ("private"|"ring_cw"|"ring_ccw", producer cluster)
    per_loc: dict[tuple[str, int], list[tuple[int, int, int, DepEdge]]] = {}
    for e in ddg.data_edges():
        if e.src not in ok_ops or e.dst not in ok_ops:
            continue
        start = sigma[e.src] + e.latency
        length = sigma[e.dst] + e.distance * ii - start
        if length < 0:
            continue  # already reported as a dependence violation
        ca = sched.cluster_of.get(e.src, 0)
        cb = sched.cluster_of.get(e.dst, 0)
        if ca == cb:
            loc = ("private", ca)
        elif (ca + 1) % n_clusters == cb:
            loc = ("ring_cw", ca)
        elif (ca - 1) % n_clusters == cb:
            loc = ("ring_ccw", ca)
        else:
            continue  # already reported as an adjacency violation
        per_loc.setdefault(loc, []).append((start, length, e.distance, e))

    limits = {"private": budget.private, "ring_cw": budget.ring_out_cw,
              "ring_ccw": budget.ring_out_ccw}
    passed = 0
    for (kind, cl), lifetimes in sorted(per_loc.items()):
        # deterministic greedy first-fit, as the hardware allocator packs
        lifetimes.sort(key=lambda lt: (lt[0], lt[1], lt[3].src,
                                       lt[3].dst, lt[3].key))
        queues: list[list[tuple[int, int, int, DepEdge]]] = []
        for lt in lifetimes:
            for q in queues:
                if all(_q_compatible(lt[0], lt[1], other[0], other[1], ii)
                       for other in q):
                    q.append(lt)
                    break
            else:
                queues.append([lt])
        for qi, q in enumerate(queues):
            # FIFO-sharing proof: pairwise Q-compatibility of the packing
            bad = False
            for i, a in enumerate(q):
                for b in q[i + 1:]:
                    if not _q_compatible(a[0], a[1], b[0], b[1], ii):
                        out.append(Violation(
                            ViolationKind.QUEUE_ORDER,
                            f"{kind}[{cl}] queue {qi}: lifetimes "
                            f"{a[3].src}->{a[3].dst} and "
                            f"{b[3].src}->{b[3].dst} cannot share a "
                            f"FIFO at II={ii}",
                            ops=(a[3].src, a[3].dst, b[3].src, b[3].dst)))
                        bad = True
            if bad:
                continue
            depth = _queue_positions(q, ii)
            if depth > budget.positions:
                out.append(Violation(
                    ViolationKind.QUEUE_DEPTH,
                    f"{kind}[{cl}] queue {qi} peaks at {depth} live "
                    f"values ({len(q)} lifetimes)",
                    inequality=(f"MaxLive {depth} <= positions "
                                f"{budget.positions}"),
                    ops=tuple(lt[3].src for lt in q)))
            else:
                passed += 1
        if enforce_budget and len(queues) > limits[kind]:
            out.append(Violation(
                ViolationKind.QUEUE_COUNT,
                f"{kind}[{cl}] needs {len(queues)} queues",
                inequality=(f"{len(queues)} <= {kind} budget "
                            f"{limits[kind]}")))
    proved["queues"] = passed

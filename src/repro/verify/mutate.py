"""Seeded schedule corruptions: the verifier's own test corpus.

Translation validation is only as good as its ability to *reject*: a
verifier that proves every golden schedule but also proves corrupted
ones proves nothing.  Each mutator here takes a valid
``(schedule, machine)`` pair and produces a deliberately broken variant
together with the :class:`~repro.verify.verdict.ViolationKind` the
verifier is required to name -- shift one sigma below an edge's slack,
reassign a cluster across the ring, drop a copy op, overload a modulo
row, shrink the queue depth below the measured peak.

Everything is deterministic in ``seed``; the golden-fixture mutation
tests and ``repro-vliw verify --mutations`` both run this corpus and
demand a 100% rejection rate.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Callable, Optional, Union

from repro.machine.cluster import ClusteredMachine
from repro.machine.machine import Machine
from repro.machine.resources import pool_for
from repro.sched.schedule import ModuloSchedule

from .verdict import ViolationKind

AnyMachine = Union[Machine, ClusteredMachine]


@dataclass
class AppliedMutation:
    """One corrupted schedule and the violation it must trigger."""

    name: str
    description: str
    #: at least one of these kinds must appear in the verdict
    expected: frozenset[ViolationKind]
    schedule: ModuloSchedule
    machine: AnyMachine


def _clone(sched: ModuloSchedule, **changes: object) -> ModuloSchedule:
    """Copy a schedule with fresh sigma/cluster maps (originals are
    never touched)."""
    base: dict[str, object] = {
        "sigma": dict(sched.sigma),
        "cluster_of": dict(sched.cluster_of),
    }
    base.update(changes)
    return dataclasses.replace(sched, **base)  # type: ignore[arg-type]


Mutator = Callable[[ModuloSchedule, AnyMachine, random.Random],
                   Optional[AppliedMutation]]


def _mut_shift_sigma(sched: ModuloSchedule, machine: AnyMachine,
                     rng: random.Random) -> Optional[AppliedMutation]:
    """Pull one consumer below its producer's latency window."""
    edges = [e for e in sched.ddg.edges()
             if e.src in sched.sigma and e.dst in sched.sigma]
    if not edges:
        return None
    e = edges[rng.randrange(len(edges))]
    slack = (sched.sigma[e.dst] + e.distance * sched.ii
             - sched.sigma[e.src] - e.latency)
    new_t = sched.sigma[e.dst] - (slack + 1)
    mutated = _clone(sched)
    mutated.sigma[e.dst] = new_t
    expected = (ViolationKind.DEPENDENCE if new_t >= 0
                else ViolationKind.NEGATIVE_TIME)
    return AppliedMutation(
        name="shift-sigma",
        description=(f"moved op {e.dst} from cycle {sched.sigma[e.dst]} "
                     f"to {new_t}, inside the {e.src}->{e.dst} latency "
                     f"window"),
        expected=frozenset({expected}),
        schedule=mutated, machine=machine)


def _mut_swap_cluster(sched: ModuloSchedule, machine: AnyMachine,
                      rng: random.Random) -> Optional[AppliedMutation]:
    """Reassign a consumer two ring hops away from its producer."""
    if not isinstance(machine, ClusteredMachine) or machine.n_clusters < 4:
        return None
    # self-edges (loop-carried recurrences) move both endpoints at once
    # and stay intra-cluster, so they cannot witness the corruption
    edges = [e for e in sched.ddg.data_edges()
             if e.src != e.dst
             and e.src in sched.sigma and e.dst in sched.sigma]
    if not edges:
        return None
    e = edges[rng.randrange(len(edges))]
    target = (sched.cluster_of[e.src] + 2) % machine.n_clusters
    mutated = _clone(sched)
    mutated.cluster_of[e.dst] = target
    return AppliedMutation(
        name="swap-cluster",
        description=(f"moved op {e.dst} to cluster {target}, two ring "
                     f"hops from its producer {e.src}"),
        expected=frozenset({ViolationKind.ADJACENCY}),
        schedule=mutated, machine=machine)


def _mut_drop_op(sched: ModuloSchedule, machine: AnyMachine,
                 rng: random.Random) -> Optional[AppliedMutation]:
    """Erase one op (a copy op when available) from the schedule."""
    scheduled = [o for o in sched.ddg.copy_ops() if o in sched.sigma] \
        or [o for o in sched.ddg.op_ids if o in sched.sigma]
    if not scheduled:
        return None
    victim = scheduled[rng.randrange(len(scheduled))]
    mutated = _clone(sched)
    del mutated.sigma[victim]
    mutated.cluster_of.pop(victim, None)
    return AppliedMutation(
        name="drop-op",
        description=f"dropped op {victim} "
                    f"({sched.ddg.op(victim).name}) from sigma",
        expected=frozenset({ViolationKind.UNSCHEDULED}),
        schedule=mutated, machine=machine)


def _mut_overload_row(sched: ModuloSchedule, machine: AnyMachine,
                      rng: random.Random) -> Optional[AppliedMutation]:
    """Force one extra op onto an already-full (cluster, pool, row)."""
    clustered = isinstance(machine, ClusteredMachine)
    fus = machine.cluster.fus if clustered else machine.fus
    usage: dict[tuple[int, object, int], list[int]] = {}
    for op_id, t in sched.sigma.items():
        if not sched.ddg.has_op(op_id) or t < 0:
            continue
        pool = pool_for(sched.ddg.op(op_id).fu_type)
        key = (sched.cluster_of.get(op_id, 0), pool, t % sched.ii)
        usage.setdefault(key, []).append(op_id)
    candidates = []
    for (cl, pool, row), ops in sorted(usage.items(),
                                       key=lambda kv: kv[0][2]):
        cap = fus.capacity(sched.ddg.op(ops[0]).fu_type)
        if len(ops) < cap:
            continue
        victims = [o for (c2, p2, r2), os2 in sorted(
                       usage.items(), key=lambda kv: kv[0][2])
                   if c2 == cl and p2 is pool and r2 != row
                   for o in os2]
        if victims:
            candidates.append((ops[0], victims))
    if not candidates:
        return None
    anchor, victims = candidates[rng.randrange(len(candidates))]
    victim = victims[rng.randrange(len(victims))]
    mutated = _clone(sched)
    mutated.sigma[victim] = sched.sigma[anchor]
    return AppliedMutation(
        name="overload-row",
        description=(f"moved op {victim} onto cycle "
                     f"{sched.sigma[anchor]}, overflowing a full "
                     f"modulo row"),
        expected=frozenset({ViolationKind.RESOURCE}),
        schedule=mutated, machine=machine)


def _mut_shrink_queue(sched: ModuloSchedule, machine: AnyMachine,
                      rng: random.Random) -> Optional[AppliedMutation]:
    """Shrink every queue's position count below the measured peak."""
    if not machine.has_queues:
        return None
    from repro.regalloc.queues import allocate_for_schedule

    clustered = isinstance(machine, ClusteredMachine)
    usage = allocate_for_schedule(sched,
                                 machine if clustered else None)
    depth = usage.max_depth
    if depth < 1:
        return None
    if clustered:
        shrunk: AnyMachine = dataclasses.replace(
            machine, cluster=dataclasses.replace(
                machine.cluster,
                queue_budget=dataclasses.replace(
                    machine.cluster.queue_budget, positions=depth - 1)))
    else:
        shrunk = dataclasses.replace(
            machine, queue_budget=dataclasses.replace(
                machine.queue_budget, positions=depth - 1))
    return AppliedMutation(
        name="shrink-queue",
        description=(f"shrank queue depth to {depth - 1} below the "
                     f"schedule's {depth}-deep peak"),
        expected=frozenset({ViolationKind.QUEUE_DEPTH}),
        schedule=_clone(sched), machine=shrunk)


#: The mutator catalogue, in reporting order.
MUTATORS: tuple[tuple[str, Mutator], ...] = (
    ("shift-sigma", _mut_shift_sigma),
    ("swap-cluster", _mut_swap_cluster),
    ("drop-op", _mut_drop_op),
    ("overload-row", _mut_overload_row),
    ("shrink-queue", _mut_shrink_queue),
)


def mutation_corpus(sched: ModuloSchedule, machine: AnyMachine, *,
                    seed: int = 0,
                    rounds: int = 1) -> list[AppliedMutation]:
    """All applicable corruptions of one valid schedule.

    Each registered mutator runs ``rounds`` times with per-(mutator,
    round) derived seeds, so the corpus is deterministic in ``seed``
    and grows linearly with ``rounds``.  Mutators that do not apply to
    this machine shape (e.g. cluster swaps on a single-cluster machine)
    are skipped.
    """
    out: list[AppliedMutation] = []
    for round_idx in range(rounds):
        for name, mutator in MUTATORS:
            rng = random.Random(f"{seed}:{round_idx}:{name}")
            applied = mutator(sched, machine, rng)
            if applied is not None:
                out.append(applied)
    return out

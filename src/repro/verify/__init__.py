"""Static schedule verification (translation validation for schedules).

The paper's partitioned modulo schedules are defined by algebraic
invariants -- dependence inequalities modulo II, per-cluster resource
capacity, ring adjacency of value crossings, queue occupancy bounds --
that can be *proved* for a concrete ``(ddg, machine, schedule)`` triple
without replaying the loop.  :func:`verify_schedule` is that proof: an
independent checker that re-derives every inequality from the schedule's
raw ``sigma`` / ``cluster_of`` maps and emits a structured
:class:`Verdict` naming the first violated one.

Unlike :meth:`repro.sched.schedule.ModuloSchedule.validate` (a scheduler
self-audit) and :mod:`repro.sim.reference` (dynamic replay), the
verifier shares no state with the engines: it walks the public DDG edge
objects, recomputes pool capacities from the machine description, and
re-implements the Q-compatibility closed form locally, so a bug in the
packed scheduling core cannot silently vouch for itself.

The seeded mutation corpus (:func:`mutation_corpus`) is the verifier's
own test: corrupt a proved schedule in a known way and the verdict must
name the matching invariant.
"""

from .verdict import (Verdict, VerificationError, Violation,
                      ViolationKind)
from .verifier import INVARIANT_FAMILIES, verify_schedule
from .mutate import AppliedMutation, MUTATORS, mutation_corpus

__all__ = [
    "AppliedMutation",
    "INVARIANT_FAMILIES",
    "MUTATORS",
    "Verdict",
    "VerificationError",
    "Violation",
    "ViolationKind",
    "mutation_corpus",
    "verify_schedule",
]

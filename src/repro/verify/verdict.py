"""Structured verification verdicts.

A :class:`Verdict` is the result of proving one schedule: either every
invariant holds (``ok``) or it carries the ordered list of
:class:`Violation` records, each naming the invariant family
(:class:`ViolationKind`), the concrete inequality that failed, and the
ops/edge involved.  Violations are ordered most-fundamental-first
(structure before dependences before resources before topology before
queues), so ``verdict.first`` is the root cause, not a knock-on effect.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Optional


class ViolationKind(enum.Enum):
    """Invariant families the verifier proves (DESIGN.md §5.9)."""

    #: an op of the DDG has no issue time in ``sigma``
    UNSCHEDULED = "unscheduled"
    #: ``sigma`` (or ``cluster_of``) names an op the DDG does not have
    UNKNOWN_OP = "unknown-op"
    #: an issue time is negative
    NEGATIVE_TIME = "negative-time"
    #: a cluster assignment is outside ``[0, n_clusters)``
    CLUSTER_RANGE = "cluster-range"
    #: ``sigma(dst) + dist*II - sigma(src) - latency < 0`` for some edge
    DEPENDENCE = "dependence"
    #: more ops than units on some (cluster, FU pool, modulo row)
    RESOURCE = "resource"
    #: a DATA edge spans non-adjacent ring clusters
    ADJACENCY = "adjacency"
    #: a crossing edge's slack does not cover the inter-cluster bus latency
    BUS_LATENCY = "bus-latency"
    #: two lifetimes sharing a queue violate FIFO order (Q-compatibility)
    QUEUE_ORDER = "queue-order"
    #: a queue's peak occupancy exceeds the per-queue position count
    QUEUE_DEPTH = "queue-depth"
    #: a location needs more queues than the hardware budget provides
    QUEUE_COUNT = "queue-count"


@dataclass(frozen=True)
class Violation:
    """One failed invariant, with the inequality that broke."""

    kind: ViolationKind
    message: str
    #: the concrete inequality, e.g. ``"3 + 1*4 - 0 - 6 = 1 >= 0"``
    inequality: str = ""
    #: op ids involved (producer first for edge violations)
    ops: tuple[int, ...] = ()

    def describe(self) -> str:
        tail = f"  [{self.inequality}]" if self.inequality else ""
        return f"{self.kind.value}: {self.message}{tail}"


@dataclass
class Verdict:
    """Outcome of verifying one ``(ddg, machine, schedule)`` triple."""

    loop: str
    machine: str
    ii: int
    n_ops: int
    #: invariant families actually checked (queues are skipped for
    #: conventional-RF machines, adjacency for single-cluster ones)
    checked: tuple[str, ...] = ()
    violations: tuple[Violation, ...] = ()
    #: per-family count of *passed* inequalities, for reporting
    proved: dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def first(self) -> Optional[Violation]:
        """The first (most fundamental) violated inequality, if any."""
        return self.violations[0] if self.violations else None

    def kinds(self) -> set[ViolationKind]:
        return {v.kind for v in self.violations}

    def to_json(self) -> dict[str, Any]:
        """JSON-shaped record (the CLI's ``verify --json`` output)."""
        return {
            "loop": self.loop,
            "machine": self.machine,
            "ii": self.ii,
            "n_ops": self.n_ops,
            "ok": self.ok,
            "checked": list(self.checked),
            "proved": dict(self.proved),
            "violations": [
                {"kind": v.kind.value, "message": v.message,
                 "inequality": v.inequality, "ops": list(v.ops)}
                for v in self.violations],
        }

    def describe(self) -> str:
        head = (f"{self.loop} on {self.machine} (II={self.ii}, "
                f"{self.n_ops} ops): ")
        if self.ok:
            total = sum(self.proved.values())
            return head + (f"PROVED ({total} inequalities over "
                           f"{', '.join(self.checked)})")
        lines = [head + f"{len(self.violations)} violation(s)"]
        lines += ["  " + v.describe() for v in self.violations]
        return "\n".join(lines)


class VerificationError(AssertionError):
    """Raised when a pipeline was asked to verify and the proof failed.

    Subclasses ``AssertionError`` alongside
    :class:`repro.sched.schedule.ScheduleValidationError`: a failed
    verdict on an engine-produced schedule is a compiler bug, never a
    workload property.
    """

    def __init__(self, verdict: Verdict) -> None:
        super().__init__(verdict.describe())
        self.verdict = verdict

"""Operation model for innermost-loop bodies.

The paper's machine executes four classes of operations, one per functional
unit type (Fig. 5a):

* ``L/S``  -- memory loads and stores,
* ``ADD``  -- additions, subtractions, comparisons and other 1-ALU ops,
* ``MUL``  -- multiplications, divisions and other long-latency arithmetic,
* ``COPY`` -- the dedicated copy unit introduced in Section 2 (one queue
  read, two queue writes),

plus ``MOVE`` for the future-work inter-cluster transfer extension evaluated
by ablation A3.

An :class:`Operation` is a node of the data-dependence graph: it has an
opcode, a latency (cycles until its result is available), and bookkeeping
about where it came from (unroll copy index, the fan-out tree that created a
copy op, ...).  Operations are value-producing unless their opcode is a
store/sink.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional


class FuType(enum.Enum):
    """Functional-unit classes of the paper's cluster (Fig. 5a)."""

    LS = "L/S"
    ADD = "ADD"
    MUL = "MUL"
    COPY = "COPY"
    MOVE = "MOVE"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FuType.{self.name}"


class Opcode(enum.Enum):
    """Abstract opcodes, grouped by the functional unit that executes them.

    The scheduler only cares about (fu_type, latency, produces_value); the
    simulator additionally interprets loads/stores/copies as token movement.
    Latencies follow the early-90s VLIW conventions used by Rau's and Llosa's
    papers (single-cycle ALU, 2-cycle loads, 2-cycle multiplies, long
    divides); they can be overridden per machine via a latency map.
    """

    LOAD = ("load", FuType.LS, 2, True)
    STORE = ("store", FuType.LS, 1, False)
    ADD = ("add", FuType.ADD, 1, True)
    SUB = ("sub", FuType.ADD, 1, True)
    CMP = ("cmp", FuType.ADD, 1, True)
    SHIFT = ("shift", FuType.ADD, 1, True)
    MUL = ("mul", FuType.MUL, 2, True)
    FMUL = ("fmul", FuType.MUL, 3, True)
    DIV = ("div", FuType.MUL, 8, True)
    COPY = ("copy", FuType.COPY, 1, True)
    MOVE = ("move", FuType.MOVE, 1, True)

    def __init__(self, mnemonic: str, fu_type: FuType, latency: int,
                 produces_value: bool) -> None:
        self.mnemonic = mnemonic
        self.fu_type = fu_type
        self.default_latency = latency
        self.produces_value = produces_value

    @classmethod
    def from_mnemonic(cls, name: str) -> "Opcode":
        """Look an opcode up by its mnemonic (``"add"``, ``"load"``, ...)."""
        for op in cls:
            if op.mnemonic == name:
                return op
        raise KeyError(f"unknown opcode mnemonic: {name!r}")


#: Opcodes that the synthetic workload generator may emit (no COPY/MOVE --
#: those are inserted by the compiler, never present in source DDGs).
SOURCE_OPCODES = (
    Opcode.LOAD, Opcode.STORE, Opcode.ADD, Opcode.SUB, Opcode.CMP,
    Opcode.SHIFT, Opcode.MUL, Opcode.FMUL, Opcode.DIV,
)


@dataclass(frozen=True)
class Operation:
    """A single operation of a loop body.

    Parameters
    ----------
    op_id:
        Unique id within its :class:`~repro.ir.ddg.Ddg`.  Ids are dense
        integers assigned by the graph; transforms (unrolling, copy
        insertion) allocate fresh ids.
    opcode:
        The abstract opcode.
    name:
        Optional human-readable label (kept through transforms, with
        suffixes like ``".u2"`` for unroll copy 2 or ``".cp0"`` for an
        inserted copy).
    latency:
        Result latency in cycles; defaults to the opcode's default latency.
        Must be >= 1 for value producers (a 0-latency producer would need a
        same-cycle read-after-write across FUs, which the machine model does
        not implement).
    unroll_index:
        Which unroll copy (0-based) this op belongs to; 0 for non-unrolled
        code.
    origin:
        Id of the source op this one was derived from (unroll replication or
        copy insertion); ``None`` for original ops.
    """

    op_id: int
    opcode: Opcode
    name: str = ""
    latency: int = -1  # -1 -> use opcode default (fixed in __post_init__)
    unroll_index: int = 0
    origin: Optional[int] = None

    def __post_init__(self) -> None:
        if self.latency < 0:
            object.__setattr__(self, "latency", self.opcode.default_latency)
        if self.latency < 1 and self.opcode.produces_value:
            raise ValueError(
                f"op {self.name or self.op_id}: producer latency must be >= 1,"
                f" got {self.latency}"
            )
        if self.latency < 0:
            raise ValueError("latency must be non-negative")
        if not self.name:
            object.__setattr__(
                self, "name", f"{self.opcode.mnemonic}{self.op_id}"
            )

    # -- convenience ------------------------------------------------------

    @property
    def fu_type(self) -> FuType:
        """Functional unit class that executes this op."""
        return self.opcode.fu_type

    @property
    def produces_value(self) -> bool:
        """True if the op writes a result value (into a register/queue)."""
        return self.opcode.produces_value

    @property
    def is_copy(self) -> bool:
        return self.opcode is Opcode.COPY

    @property
    def is_move(self) -> bool:
        return self.opcode is Opcode.MOVE

    @property
    def is_memory(self) -> bool:
        return self.opcode in (Opcode.LOAD, Opcode.STORE)

    def renamed(self, name: str) -> "Operation":
        """Return a copy of this op with a different display name."""
        return replace(self, name=name)

    def with_id(self, op_id: int, *, origin: Optional[int] = None,
                unroll_index: Optional[int] = None) -> "Operation":
        """Return a copy with a fresh id (used by graph transforms)."""
        return replace(
            self,
            op_id=op_id,
            origin=self.op_id if origin is None else origin,
            unroll_index=(
                self.unroll_index if unroll_index is None else unroll_index
            ),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}<{self.opcode.mnemonic}@{self.fu_type.value}>"


@dataclass(frozen=True)
class LatencyModel:
    """Per-machine override of opcode latencies.

    The paper never publishes its latency table; the defaults above follow
    the conventions of Rau (IMS, 1996) and Llosa et al.  A machine model may
    carry a :class:`LatencyModel` to re-time a DDG before scheduling.
    """

    overrides: dict[Opcode, int] = field(default_factory=dict)

    def latency_of(self, opcode: Opcode) -> int:
        return self.overrides.get(opcode, opcode.default_latency)

    def retime(self, op: Operation) -> Operation:
        """Return *op* with this model's latency applied."""
        lat = self.latency_of(op.opcode)
        if lat == op.latency:
            return op
        return replace(op, latency=lat)


#: Latency model matching the defaults (useful as an explicit sentinel).
DEFAULT_LATENCIES = LatencyModel()

#: A uniform single-cycle model, handy in tests where timing must be trivial.
UNIT_LATENCIES = LatencyModel(
    overrides={op: 1 for op in Opcode if op.produces_value}
    | {Opcode.STORE: 1}
)

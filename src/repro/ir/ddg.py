"""Data-dependence graphs (DDGs) for innermost loops.

A :class:`Ddg` is the unit of work of the whole library: one innermost loop
body, with operations as nodes and dependences as edges.  Edges carry

* ``latency``  -- cycles the consumer must wait after the producer issues,
* ``distance`` -- iteration distance (0 = intra-iteration, k > 0 = the value
  produced in iteration *i* is consumed in iteration *i + k*),
* ``kind``     -- :class:`DepKind`; only DATA edges move a value through a
  register/queue, MEM and SEQ edges merely order operations.

The class wraps a :class:`networkx.MultiDiGraph` (multiple parallel edges are
legal: an op may consume the same value twice, e.g. ``x * x``) but exposes a
typed API so that the rest of the library never touches raw networkx
attributes.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Iterator, Optional

import networkx as nx

from .operations import FuType, LatencyModel, Opcode, Operation

if TYPE_CHECKING:  # pragma: no cover
    from .ddgarrays import DdgArrays


class DepKind(enum.Enum):
    """Dependence classes.

    DATA edges are true flow dependences: the producer's value travels
    through a register (conventional RF) or queue (QRF) to the consumer.
    MEM edges order memory operations that may alias (store->load,
    store->store, load->store).  SEQ edges are scheduler-only ordering
    constraints.  Only DATA edges create lifetimes and queue traffic.
    """

    DATA = "data"
    MEM = "mem"
    SEQ = "seq"


@dataclass(frozen=True)
class DepEdge:
    """One dependence ``src -> dst``.

    ``latency`` defaults to the producer's latency for DATA edges and to 1
    for MEM/SEQ edges (a store must complete before an aliasing load of the
    next cycle).  ``key`` disambiguates parallel edges.
    """

    src: int
    dst: int
    latency: int
    distance: int
    kind: DepKind
    key: int = 0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise ValueError("dependence distance must be >= 0")
        if self.latency < 0:
            raise ValueError("dependence latency must be >= 0")

    @property
    def is_loop_carried(self) -> bool:
        return self.distance > 0

    @property
    def moves_value(self) -> bool:
        return self.kind is DepKind.DATA


def _graph_copy(g: nx.MultiDiGraph) -> nx.MultiDiGraph:
    """Structure-identical copy of *g* without per-edge ``add_edge``
    machinery.

    Produces the structure ``MultiDiGraph.copy()`` would -- same node
    order, node attribute dicts copied (``replace_operation`` mutates
    them in place), and each key dict shared between ``_succ[u][v]`` and
    ``_pred[v][u]`` the way networkx builds them -- but several times
    faster, which matters because the front-end transforms copy every
    loop body they rewrite.  Edge attribute dicts are *shared* with the
    source graph rather than copied: :class:`Ddg` exposes no edge-update
    API (rewrites remove and re-add), so they are immutable in
    practice."""
    out = nx.MultiDiGraph()
    out.graph.update(g.graph)
    node, succ, pred = out._node, out._succ, out._pred
    for nid, nd in g._node.items():
        node[nid] = nd.copy()
        succ[nid] = {}
        pred[nid] = {}
    for u, nbrs in g._succ.items():
        su = succ[u]
        for v, keydict in nbrs.items():
            kd = dict(keydict)
            su[v] = kd
            pred[v][u] = kd
    return out


class _BulkEdit:
    """Structural editor for the graph-rewriting front-end transforms.

    ``add_operation`` / ``add_dependence`` / ``remove_edge`` pay for
    validation, :class:`DepEdge` construction and a cache invalidation
    *per call*; the copy inserter and the unroller perform thousands of
    such calls per loop and dominated the sweep profiles.  This editor
    applies the same mutations directly to the underlying dicts while
    reproducing networkx's ``MultiDiGraph`` semantics exactly -- in
    particular ``new_edge_key``'s key assignment, on which the
    deterministic edge order (and therefore every golden schedule)
    depends.  Callers own the invariants the public API would have
    checked: endpoints exist, DATA sources produce values, op ids are
    fresh.  ``done()`` performs one deferred cache invalidation."""

    __slots__ = ("_ddg", "_node", "_succ", "_pred")

    def __init__(self, ddg: "Ddg") -> None:
        self._ddg = ddg
        g = ddg._g
        self._node = g._node
        self._succ = g._succ
        self._pred = g._pred

    def add_op(self, op: "Operation") -> None:
        """Insert a pre-built operation with a fresh, unused id."""
        oid = op.op_id
        self._node[oid] = {"op": op}
        self._succ[oid] = {}
        self._pred[oid] = {}

    def add_edge(self, u: int, v: int, latency: int, distance: int,
                 kind: DepKind) -> int:
        """Add one edge; returns the key ``MultiDiGraph.add_edge`` would
        have assigned (``new_edge_key`` semantics)."""
        dd = {"latency": latency, "distance": distance, "kind": kind}
        nbrs = self._succ[u]
        kd = nbrs.get(v)
        if kd is None:
            nbrs[v] = self._pred[v][u] = {0: dd}
            return 0
        key = len(kd)
        while key in kd:
            key += 1
        kd[key] = dd
        return key

    def remove_edge(self, u: int, v: int, key: int) -> None:
        """Remove the (u, v, key) edge, which must exist."""
        succ = self._succ
        kd = succ[u][v]
        del kd[key]
        if not kd:
            del succ[u][v]
            del self._pred[v][u]

    def done(self, next_id: Optional[int] = None) -> None:
        """Finish the edit: advance the id counter and invalidate the
        graph's caches once for the whole batch."""
        ddg = self._ddg
        if next_id is not None and next_id > ddg._next_id:
            ddg._next_id = next_id
        nx._clear_cache(ddg._g)
        ddg._bump()


class Ddg:
    """A data-dependence graph for one innermost loop.

    Parameters
    ----------
    name:
        Loop identifier (e.g. ``"daxpy"`` or ``"synth-0421"``).
    trip_count:
        Nominal iteration count used by the dynamic-IPC analysis; the paper
        weighs loops by execution time (Section 4), so the corpus assigns a
        heavy-tailed trip count to each loop.
    """

    def __init__(self, name: str = "loop", trip_count: int = 100) -> None:
        if trip_count < 1:
            raise ValueError("trip_count must be >= 1")
        self.name = name
        self.trip_count = trip_count
        self._g: nx.MultiDiGraph = nx.MultiDiGraph()
        self._next_id = 0
        # adjacency caches -- schedulers call in_edges/out_edges millions
        # of times on an immutable graph; invalidated on any mutation
        self._version = 0
        self._edge_cache: dict = {}

    def _bump(self) -> None:
        self._version += 1
        if self._edge_cache:
            self._edge_cache.clear()

    # ------------------------------------------------------------------ ops

    def add_operation(self, opcode: Opcode, *, name: str = "",
                      latency: int = -1, unroll_index: int = 0,
                      origin: Optional[int] = None) -> Operation:
        """Create and insert a fresh operation; returns it."""
        op = Operation(
            op_id=self._next_id, opcode=opcode, name=name, latency=latency,
            unroll_index=unroll_index, origin=origin,
        )
        self._g.add_node(op.op_id, op=op)
        self._next_id += 1
        self._bump()
        return op

    def insert_operation(self, op: Operation) -> Operation:
        """Insert a pre-built operation (id must be unused)."""
        if op.op_id in self._g:
            raise ValueError(f"op id {op.op_id} already present")
        self._g.add_node(op.op_id, op=op)
        self._next_id = max(self._next_id, op.op_id + 1)
        self._bump()
        return op

    def remove_operation(self, op_id: int) -> None:
        """Remove an op and all incident edges."""
        self._g.remove_node(op_id)
        self._bump()

    def op(self, op_id: int) -> Operation:
        """Look up an operation by id."""
        return self._g.nodes[op_id]["op"]

    def has_op(self, op_id: int) -> bool:
        return op_id in self._g

    def replace_operation(self, op: Operation) -> None:
        """Swap the node payload for an op with the same id."""
        if op.op_id not in self._g:
            raise KeyError(op.op_id)
        self._g.nodes[op.op_id]["op"] = op
        self._bump()

    @property
    def operations(self) -> list[Operation]:
        """All operations, ordered by id (deterministic)."""
        cached = self._edge_cache.get("ops")
        if cached is None:
            cached = [self._g.nodes[n]["op"] for n in sorted(self._g.nodes)]
            self._edge_cache["ops"] = cached
        return list(cached)

    @property
    def op_ids(self) -> list[int]:
        cached = self._edge_cache.get("op_ids")
        if cached is None:
            cached = sorted(self._g.nodes)
            self._edge_cache["op_ids"] = cached
        return list(cached)

    @property
    def n_ops(self) -> int:
        return self._g.number_of_nodes()

    @property
    def n_edges(self) -> int:
        return self._g.number_of_edges()

    def fu_demand(self) -> dict[FuType, int]:
        """Number of ops per FU class (input of ResMII; memoised)."""
        cached = self._edge_cache.get("fu_demand")
        if cached is None:
            cached = {}
            for op in self.operations:
                cached[op.fu_type] = cached.get(op.fu_type, 0) + 1
            self._edge_cache["fu_demand"] = cached
        return dict(cached)

    # ---------------------------------------------------------------- edges

    def add_dependence(self, src: int | Operation, dst: int | Operation, *,
                       distance: int = 0, kind: DepKind = DepKind.DATA,
                       latency: Optional[int] = None) -> DepEdge:
        """Add a dependence edge.

        DATA edges default their latency to the producer op's latency; MEM
        and SEQ edges default to 1.  A DATA edge requires the producer to be
        a value producer.
        """
        sid = src.op_id if isinstance(src, Operation) else src
        did = dst.op_id if isinstance(dst, Operation) else dst
        if sid not in self._g or did not in self._g:
            raise KeyError(f"edge endpoints {sid}->{did} not in graph")
        src_op = self.op(sid)
        if kind is DepKind.DATA and not src_op.produces_value:
            raise ValueError(
                f"DATA edge from non-producer {src_op.name}"
            )
        if latency is None:
            latency = src_op.latency if kind is DepKind.DATA else 1
        key = self._g.add_edge(sid, did, latency=latency,
                               distance=distance, kind=kind)
        self._bump()
        return DepEdge(sid, did, latency, distance, kind, key)

    def edges(self, kind: Optional[DepKind] = None) -> Iterator[DepEdge]:
        """Iterate all edges (optionally of a single kind), deterministic."""
        cache_key = ("edges", kind)
        cached = self._edge_cache.get(cache_key)
        if cached is None:
            if kind is None:
                cached = [
                    DepEdge(sid, did, attrs["latency"], attrs["distance"],
                            attrs["kind"], key)
                    for sid, did, key, attrs in sorted(
                        self._g.edges(keys=True, data=True))]
            else:
                cached = [e for e in self.edges() if e.kind is kind]
            self._edge_cache[cache_key] = cached
        return iter(cached)

    def data_edges(self) -> Iterator[DepEdge]:
        return self.edges(DepKind.DATA)

    def in_edges(self, op_id: int,
                 kind: Optional[DepKind] = None) -> list[DepEdge]:
        cache_key = ("in", op_id, kind)
        cached = self._edge_cache.get(cache_key)
        if cached is not None:
            return cached
        out = []
        for sid, did, key, attrs in sorted(
                self._g.in_edges(op_id, keys=True, data=True)):
            edge = DepEdge(sid, did, attrs["latency"], attrs["distance"],
                           attrs["kind"], key)
            if kind is None or edge.kind is kind:
                out.append(edge)
        self._edge_cache[cache_key] = out
        return out

    def out_edges(self, op_id: int,
                  kind: Optional[DepKind] = None) -> list[DepEdge]:
        cache_key = ("out", op_id, kind)
        cached = self._edge_cache.get(cache_key)
        if cached is not None:
            return cached
        out = []
        for sid, did, key, attrs in sorted(
                self._g.out_edges(op_id, keys=True, data=True)):
            edge = DepEdge(sid, did, attrs["latency"], attrs["distance"],
                           attrs["kind"], key)
            if kind is None or edge.kind is kind:
                out.append(edge)
        self._edge_cache[cache_key] = out
        return out

    def consumers(self, op_id: int) -> list[DepEdge]:
        """DATA out-edges of *op_id* (each is one queue lifetime)."""
        return self.out_edges(op_id, DepKind.DATA)

    def producers(self, op_id: int) -> list[DepEdge]:
        """DATA in-edges of *op_id*."""
        return self.in_edges(op_id, DepKind.DATA)

    def remove_edge(self, edge: DepEdge) -> None:
        self._g.remove_edge(edge.src, edge.dst, key=edge.key)
        self._bump()

    def fanout(self, op_id: int) -> int:
        """Number of DATA consumers of an op's value (drives copy trees)."""
        return len(self.consumers(op_id))

    def max_fanout(self) -> int:
        return max((self.fanout(o) for o in self.op_ids), default=0)

    # ----------------------------------------------------------- structure

    def neighbors_data(self, op_id: int) -> set[int]:
        """Ops connected to *op_id* by a DATA edge in either direction."""
        cache_key = ("nbr", op_id)
        cached = self._edge_cache.get(cache_key)
        if cached is not None:
            return cached
        out = {e.src for e in self.producers(op_id)}
        out |= {e.dst for e in self.consumers(op_id)}
        out.discard(op_id)
        self._edge_cache[cache_key] = out
        return out

    def acyclic_condensation(self) -> nx.DiGraph:
        """DAG over ops using only distance-0 edges (for height priority)."""
        dag = nx.DiGraph()
        dag.add_nodes_from(self._g.nodes)
        for e in self.edges():
            if e.distance == 0:
                # parallel edges collapse to max latency
                if dag.has_edge(e.src, e.dst):
                    dag[e.src][e.dst]["latency"] = max(
                        dag[e.src][e.dst]["latency"], e.latency)
                else:
                    dag.add_edge(e.src, e.dst, latency=e.latency)
        return dag

    def has_zero_distance_cycle(self) -> bool:
        """A cycle of distance-0 edges makes the loop unschedulable."""
        dag = self.acyclic_condensation()
        return not nx.is_directed_acyclic_graph(dag)

    def recurrence_ops(self) -> set[int]:
        """Ops participating in some dependence cycle (recurrence circuit).

        Used to report which loops are recurrence-bound (Figs. 8 vs 9).
        """
        plain = nx.DiGraph()
        plain.add_nodes_from(self._g.nodes)
        plain.add_edges_from((e.src, e.dst) for e in self.edges())
        out: set[int] = set()
        for scc in nx.strongly_connected_components(plain):
            if len(scc) > 1:
                out |= scc
            else:
                (node,) = scc
                if plain.has_edge(node, node):
                    out.add(node)
        return out

    def sum_latency(self) -> int:
        return sum(op.latency for op in self.operations)

    # -------------------------------------------------------------- copies

    def live_in_ops(self) -> list[int]:
        """Ops with no DATA producers (they read loop invariants/live-ins).

        The paper defers loop-invariant handling to future work; we model
        live-in operands as coming from a non-queue constant store, so such
        ops simply have fewer queue reads.
        """
        return [o for o in self.op_ids if not self.producers(o)]

    def copy_ops(self) -> list[int]:
        return [o for o in self.op_ids if self.op(o).is_copy]

    def source_ops(self) -> list[int]:
        """Ops that existed before compiler-inserted COPY/MOVE ops."""
        return [o for o in self.op_ids
                if not self.op(o).is_copy and not self.op(o).is_move]

    # ------------------------------------------------------------- utility

    def retimed(self, model: LatencyModel) -> "Ddg":
        """Return a copy of the graph with a different latency model.

        DATA edge latencies are recomputed from the (re-timed) producer
        latencies; MEM/SEQ latencies are preserved.
        """
        out = Ddg(self.name, self.trip_count)
        for op in self.operations:
            out.insert_operation(model.retime(op))
        for e in self.edges():
            lat = out.op(e.src).latency if e.kind is DepKind.DATA else e.latency
            out.add_dependence(e.src, e.dst, distance=e.distance,
                               kind=e.kind, latency=lat)
        return out

    def copy(self, name: Optional[str] = None) -> "Ddg":
        """Deep copy (ops are frozen dataclasses and shared; the graph
        structure -- including parallel-edge keys -- is copied wholesale
        rather than rebuilt edge by edge)."""
        out = Ddg(name or self.name, self.trip_count)
        out._g = _graph_copy(self._g)
        out._next_id = self._next_id
        return out

    def _bulk_edit(self) -> _BulkEdit:
        """Structural editor for hot graph transforms (see
        :class:`_BulkEdit`; callers must finish with ``done()``)."""
        return _BulkEdit(self)

    def _data_out_raw(self, op_id: int) -> list[tuple[int, int, int, int]]:
        """``(dst, key, latency, distance)`` per DATA out-edge of *op_id*
        in (dst, key) order -- the tuple form of :meth:`consumers`
        without :class:`DepEdge` construction (hot transforms only)."""
        out = []
        for dst, kd in self._g._succ[op_id].items():
            for key, dd in kd.items():
                if dd["kind"] is DepKind.DATA:
                    out.append((dst, key, dd["latency"], dd["distance"]))
        out.sort()
        return out

    def arrays(self) -> "DdgArrays":
        """Packed struct-of-arrays view (:class:`~repro.ir.ddgarrays.
        DdgArrays`) of this graph -- the schedulers' hot-path
        representation.  Built lazily, memoised on the structural cache:
        any mutation invalidates it and the next call rebuilds."""
        cached = self._edge_cache.get("arrays")
        if cached is None:
            from .ddgarrays import DdgArrays
            cached = DdgArrays(self)
            self._edge_cache["arrays"] = cached
        return cached

    def fresh_id(self) -> int:
        """Peek the id the next inserted op will get."""
        return self._next_id

    def __len__(self) -> int:
        return self.n_ops

    def __contains__(self, op_id: int) -> bool:
        return op_id in self._g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Ddg({self.name!r}, ops={self.n_ops}, "
                f"edges={self.n_edges}, trip={self.trip_count})")

    def summary(self) -> str:
        """Multi-line human-readable dump used by examples and the CLI."""
        lines = [f"loop {self.name}: {self.n_ops} ops, {self.n_edges} deps, "
                 f"trip_count={self.trip_count}"]
        for op in self.operations:
            cons = ", ".join(
                f"->{self.op(e.dst).name}"
                + (f"[d={e.distance}]" if e.distance else "")
                for e in self.out_edges(op.op_id))
            lines.append(f"  {op.name:>12} {op.opcode.mnemonic:<6}"
                         f" lat={op.latency} {cons}")
        return "\n".join(lines)


def merge_ddgs(name: str, parts: Iterable[Ddg],
               trip_count: Optional[int] = None) -> Ddg:
    """Disjoint union of several DDGs (used by tests and the generator)."""
    parts = list(parts)
    out = Ddg(name, trip_count or max((p.trip_count for p in parts),
                                      default=100))
    counter = itertools.count()
    for part in parts:
        remap: dict[int, int] = {}
        for op in part.operations:
            nid = next(counter)
            remap[op.op_id] = nid
            out.insert_operation(op.with_id(nid, origin=op.origin,
                                            unroll_index=op.unroll_index))
        for e in part.edges():
            out.add_dependence(remap[e.src], remap[e.dst],
                               distance=e.distance, kind=e.kind,
                               latency=e.latency)
    return out

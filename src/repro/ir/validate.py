"""Structural validation of loop DDGs.

Run before scheduling: catches malformed graphs early with readable errors
instead of deep scheduler failures.  Every workload generator and transform
output is validated in tests.
"""

from __future__ import annotations

from .ddg import Ddg, DepKind


class DdgValidationError(ValueError):
    """Raised when a DDG violates a structural invariant."""


def validate_ddg(ddg: Ddg, *, require_schedulable: bool = True,
                 max_copy_reads: int = 1,
                 max_copy_writes: int = 2) -> None:
    """Check structural invariants; raise :class:`DdgValidationError`.

    Invariants checked:

    1. every edge endpoint exists and self-DATA edges have distance >= 1;
    2. DATA edges start at value producers, with latency == producer latency;
    3. no zero-distance dependence cycle (otherwise no schedule exists);
    4. COPY ops read exactly ``max_copy_reads`` values and have at most
       ``max_copy_writes`` consumers (the hardware reads 1 queue, writes 2);
    5. MOVE ops have exactly one producer and one consumer;
    6. non-negative distances/latencies (enforced by dataclasses, re-checked).
    """
    problems: list[str] = []

    for e in ddg.edges():
        if not ddg.has_op(e.src) or not ddg.has_op(e.dst):
            problems.append(f"dangling edge {e.src}->{e.dst}")
            continue
        if e.src == e.dst and e.distance == 0:
            problems.append(
                f"zero-distance self edge on {ddg.op(e.src).name}")
        if e.kind is DepKind.DATA:
            src = ddg.op(e.src)
            if not src.produces_value:
                problems.append(
                    f"DATA edge from non-producer {src.name}")
            elif e.latency != src.latency:
                problems.append(
                    f"DATA edge {src.name}->{ddg.op(e.dst).name} latency "
                    f"{e.latency} != producer latency {src.latency}")

    if require_schedulable and ddg.has_zero_distance_cycle():
        problems.append("zero-distance dependence cycle (unschedulable)")

    for oid in ddg.op_ids:
        op = ddg.op(oid)
        if op.is_copy:
            n_reads = len(ddg.producers(oid))
            n_writes = ddg.fanout(oid)
            if n_reads != max_copy_reads:
                problems.append(
                    f"copy {op.name} reads {n_reads} values "
                    f"(hardware reads {max_copy_reads})")
            if n_writes > max_copy_writes:
                problems.append(
                    f"copy {op.name} feeds {n_writes} consumers "
                    f"(hardware writes {max_copy_writes})")
            if n_writes == 0:
                problems.append(f"copy {op.name} is dead")
        if op.is_move:
            if len(ddg.producers(oid)) != 1 or ddg.fanout(oid) != 1:
                problems.append(
                    f"move {op.name} must have exactly 1 producer and "
                    f"1 consumer")

    if problems:
        raise DdgValidationError(
            f"DDG {ddg.name!r} invalid:\n  " + "\n  ".join(problems))


def is_valid(ddg: Ddg, **kwargs) -> bool:
    """Boolean convenience wrapper around :func:`validate_ddg`."""
    try:
        validate_ddg(ddg, **kwargs)
        return True
    except DdgValidationError:
        return False

"""Structural validation of loop DDGs.

Run before scheduling: catches malformed graphs early with readable errors
instead of deep scheduler failures.  Every workload generator and transform
output is validated in tests.
"""

from __future__ import annotations

from repro.machine.resources import POOL_ID_FOR

from typing import TYPE_CHECKING

from .ddg import Ddg
from .operations import FuType

if TYPE_CHECKING:  # pragma: no cover
    from .ddgarrays import DdgArrays


class DdgValidationError(ValueError):
    """Raised when a DDG violates a structural invariant."""


def validate_ddg(ddg: Ddg, *, require_schedulable: bool = True,
                 max_copy_reads: int = 1,
                 max_copy_writes: int = 2) -> None:
    """Check structural invariants; raise :class:`DdgValidationError`.

    Invariants checked:

    1. every edge endpoint exists and self-DATA edges have distance >= 1;
    2. DATA edges start at value producers, with latency == producer latency;
    3. no zero-distance dependence cycle (otherwise no schedule exists);
    4. COPY ops read exactly ``max_copy_reads`` values and have at most
       ``max_copy_writes`` consumers (the hardware reads 1 queue, writes 2);
    5. MOVE ops have exactly one producer and one consumer;
    6. non-negative distances/latencies (enforced by dataclasses, re-checked).

    A *pass* is memoised on the DDG's structural cache (sweeps validate
    the same work graph once per machine; any mutation invalidates the
    stamp and the next call re-checks).  Failures are never cached.
    """
    memo_key = ("validated", require_schedulable, max_copy_reads,
                max_copy_writes)
    if ddg._edge_cache.get(memo_key):
        return
    problems: list[str] = []
    arr = ddg.arrays()
    ids = arr.ids
    latency = arr.latency
    produces = arr.produces

    # edge invariants on the flat CSR (out-edge order == Ddg.edges order)
    for i in range(arr.n):
        for j in range(arr.out_ptr[i], arr.out_ptr[i + 1]):
            d = arr.out_dst[j]
            if d == i and arr.out_dist[j] == 0:
                problems.append(
                    f"zero-distance self edge on {ddg.op(ids[i]).name}")
            if arr.out_data[j]:
                if not produces[i]:
                    problems.append(
                        f"DATA edge from non-producer "
                        f"{ddg.op(ids[i]).name}")
                elif arr.out_lat[j] != latency[i]:
                    problems.append(
                        f"DATA edge {ddg.op(ids[i]).name}->"
                        f"{ddg.op(ids[d]).name} latency {arr.out_lat[j]} "
                        f"!= producer latency {latency[i]}")

    if require_schedulable and _has_zero_distance_cycle(arr):
        problems.append("zero-distance dependence cycle (unschedulable)")

    # copy/move port discipline from the CSR DATA flags
    for i in range(arr.n):
        op = None
        pool = arr.pool[i]
        if pool != _COPY_POOL:
            continue
        op = ddg.op(ids[i])
        n_reads = sum(arr.in_data[j] for j in
                      range(arr.in_ptr[i], arr.in_ptr[i + 1]))
        n_writes = sum(arr.out_data[j] for j in
                       range(arr.out_ptr[i], arr.out_ptr[i + 1]))
        if op.is_copy:
            if n_reads != max_copy_reads:
                problems.append(
                    f"copy {op.name} reads {n_reads} values "
                    f"(hardware reads {max_copy_reads})")
            if n_writes > max_copy_writes:
                problems.append(
                    f"copy {op.name} feeds {n_writes} consumers "
                    f"(hardware writes {max_copy_writes})")
            if n_writes == 0:
                problems.append(f"copy {op.name} is dead")
        if op.is_move:
            if n_reads != 1 or n_writes != 1:
                problems.append(
                    f"move {op.name} must have exactly 1 producer and "
                    f"1 consumer")

    if problems:
        raise DdgValidationError(
            f"DDG {ddg.name!r} invalid:\n  " + "\n  ".join(problems))
    ddg._edge_cache[memo_key] = True


#: COPY and MOVE ops both map to the copy pool -- the only pool whose ops
#: carry port-discipline invariants.
_COPY_POOL = POOL_ID_FOR[FuType.COPY]


def _has_zero_distance_cycle(arr: "DdgArrays") -> bool:
    """Any cycle of distance-0 edges?  Restricted to the recurrence
    subgraph (a distance-0 cycle is a cycle, so all its edges live in
    ``cyc_edges``), then an iterative DFS 3-colouring."""
    n = arr.cyc_n
    if not n:
        return False
    succs: list[list[int]] = [[] for _ in range(n)]
    for s, d, _lat, dist in arr.cyc_edges:
        if dist == 0:
            if s == d:
                return True
            succs[s].append(d)
    state = [0] * n  # 0 = white, 1 = on stack, 2 = done
    for root in range(n):
        if state[root]:
            continue
        stack = [(root, 0)]
        state[root] = 1
        while stack:
            v, ptr = stack[-1]
            if ptr < len(succs[v]):
                stack[-1] = (v, ptr + 1)
                w = succs[v][ptr]
                if state[w] == 1:
                    return True
                if state[w] == 0:
                    state[w] = 1
                    stack.append((w, 0))
            else:
                state[v] = 2
                stack.pop()
    return False


def is_valid(ddg: Ddg, **kwargs: object) -> bool:
    """Boolean convenience wrapper around :func:`validate_ddg`."""
    try:
        validate_ddg(ddg, **kwargs)
        return True
    except DdgValidationError:
        return False

"""Copy-operation insertion (Section 2 of the paper).

A queue register file destroys a value on read, so a value consumed by
``n > 1`` operations must be written into ``n`` distinct queues.  Rather
than give every FU ``n`` write ports, the paper introduces a *copy
operation*, executed by a dedicated FU, that reads one queue and writes two
queues (Fig. 2).  A value with ``n`` consumers therefore needs a fan-out
tree of exactly ``n - 1`` copies: the producer writes one queue, each copy
consumes one tree edge and produces two.

Tree shape matters: every copy on the path producer -> consumer adds its
latency to that path, and a longer path through a recurrence circuit raises
RecMII.  Three strategies are provided (ablation A1):

* ``"chain"``    -- linear chain; consumer *i* sits behind *i* copies.
* ``"balanced"`` -- recursively split consumers in halves; all consumers at
  depth ~ ``ceil(log2 n)``.
* ``"slack"``    -- (default) Huffman tree weighted by consumer criticality:
  consumers on long downstream paths (low slack) get shallow positions.
  With equal weights this degenerates to ``balanced``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Literal, Optional

from repro.kernels import active as _kernel_backend

from .ddg import Ddg, DepKind
from .operations import Opcode, Operation

CopyStrategy = Literal["chain", "balanced", "slack"]


@dataclass
class CopyInsertionResult:
    """Outcome of :func:`insert_copies`."""

    ddg: Ddg
    n_copies: int
    #: copy depth (number of copies traversed) per rewritten (src, dst, key)
    #: original data edge.
    depth_by_edge: dict[tuple[int, int, int], int] = field(
        default_factory=dict)

    @property
    def max_depth(self) -> int:
        return max(self.depth_by_edge.values(), default=0)


# --------------------------------------------------------------------------
# criticality = height of the consumer in the distance-0 DAG (long paths
# below a consumer mean schedule pressure -> keep its copy path short).
# --------------------------------------------------------------------------

def _heights(ddg: Ddg) -> dict[int, int]:
    """Longest downstream path per op over distance-0 edges (runs on the
    active kernel backend; the distance-0 subgraph is acyclic for any
    valid loop, so the relaxation always converges)."""
    arr = ddg.arrays()
    return dict(zip(arr.ids, _kernel_backend().zero_heights(arr)))


# ----------------------------------------------------------- tree shaping

class _Leaf:
    """A consumer edge to be served by the fan-out tree.

    ``edge`` is the raw ``(dst, key, latency, distance)`` tuple of the
    original DATA edge (see :meth:`Ddg._data_out_raw`); the producer is
    implicit (one tree per producer)."""

    __slots__ = ("edge", "weight")

    def __init__(self, edge: tuple[int, int, int, int],
                 weight: float) -> None:
        self.edge = edge
        self.weight = weight


class _Node:
    """Internal tree node == one copy op; leaves == consumer edges."""

    __slots__ = ("left", "right")

    def __init__(self, left: "_Node | _Leaf",
                 right: "_Node | _Leaf") -> None:
        self.left = left
        self.right = right


def _tree_chain(leaves: list[_Leaf]) -> "_Node | _Leaf":
    # most critical consumer exits first (depth 1), the rest chain deeper
    ordered = sorted(leaves, key=lambda l: -l.weight)
    node: "_Node | _Leaf" = ordered[-1]
    for leaf in reversed(ordered[:-1]):
        node = _Node(leaf, node)
    return node


def _tree_balanced(leaves: list[_Leaf]) -> "_Node | _Leaf":
    if len(leaves) == 1:
        return leaves[0]
    mid = (len(leaves) + 1) // 2
    return _Node(_tree_balanced(leaves[:mid]), _tree_balanced(leaves[mid:]))


def _tree_huffman(leaves: list[_Leaf]) -> "_Node | _Leaf":
    # classic Huffman: repeatedly merge the two lightest subtrees, so heavy
    # (critical) leaves end up shallow.
    counter = itertools.count()
    heap: list[tuple[float, int, object]] = [
        (leaf.weight, next(counter), leaf) for leaf in leaves]
    heapq.heapify(heap)
    while len(heap) > 1:
        w1, _, t1 = heapq.heappop(heap)
        w2, _, t2 = heapq.heappop(heap)
        heapq.heappush(heap, (w1 + w2, next(counter), _Node(t2, t1)))
    return heap[0][2]


_BUILDERS = {
    "chain": _tree_chain,
    "balanced": _tree_balanced,
    "slack": _tree_huffman,
}


# ------------------------------------------------------------- transform

def insert_copies(ddg: Ddg, *, strategy: CopyStrategy = "slack",
                  copy_latency: int = 1) -> CopyInsertionResult:
    """Rewrite *ddg* so that every value has at most one consumer.

    Returns a new graph (the input is not modified) in which every original
    DATA edge from a producer with fan-out > 1 is re-routed through a tree
    of COPY ops.  Loop-carried distances stay on the final copy->consumer
    edge; producer->copy and copy->copy edges have distance 0, so the
    rewrite never changes which iteration consumes a value.

    MEM/SEQ edges and single-consumer values are untouched.
    """
    if strategy not in _BUILDERS:
        raise ValueError(f"unknown copy strategy {strategy!r}")
    out = ddg.copy()
    arr = ddg.arrays()
    index = arr.index
    # criticality inputs, all in packed (op-index) form
    heights = _kernel_backend().zero_heights(arr)
    scc = arr.scc_id
    scc_sizes = [0] * (max(scc) + 1 if scc else 0)
    for comp in scc:
        scc_sizes[comp] += 1
    has_self_cycle = {s for s, d in zip(arr.e_src, arr.e_dst) if s == d}
    n_copies = 0
    depth_by_edge: dict[tuple[int, int, int], int] = {}
    # the rewrite is thousands of edge mutations per loop: run them on
    # the bulk editor (same networkx semantics, one deferred cache
    # invalidation) instead of the per-call public API
    edit = out._bulk_edit()
    next_id = out.fresh_id()

    # snapshot every producer's consumer list up front: rewriting one
    # producer's fan-out never touches another producer's DATA out-edges
    consumers_of = {oid: ddg._data_out_raw(oid) for oid in ddg.op_ids}

    for oid in ddg.op_ids:
        consumers = consumers_of[oid]
        if len(consumers) <= 1:
            for dst, key, _lat, _dist in consumers:
                depth_by_edge[(oid, dst, key)] = 0
            continue

        # weight: edges on a recurrence circuit dominate (every copy on
        # their path raises RecMII directly); otherwise the consumer's
        # downstream height (+1 so weights > 0).
        i_src = index[oid]
        comp = scc[i_src]
        src_cyclic = scc_sizes[comp] > 1 or i_src in has_self_cycle
        leaves = []
        for cons in consumers:
            dst, _key, _lat, dist = cons
            if src_cyclic and scc[index[dst]] == comp:
                # scale by 1/distance: tighter recurrences are more
                # sensitive to added latency
                weight = 1e6 / max(1, dist)
            else:
                weight = float(heights[index[dst]] + 1)
            leaves.append(_Leaf(cons, weight))
        tree = _BUILDERS[strategy](leaves)

        for dst, key, _lat, _dist in consumers:
            edit.remove_edge(oid, dst, key)

        producer = ddg.op(oid)
        producer_lat = producer.latency
        cp_index = itertools.count()

        def materialise(node: "_Node | _Leaf", parent_id: int,
                        parent_lat: int, depth: int) -> None:
            nonlocal n_copies, next_id
            if isinstance(node, _Leaf):
                dst, key, _lat, dist = node.edge
                edit.add_edge(parent_id, dst, parent_lat, dist,
                              DepKind.DATA)
                depth_by_edge[(oid, dst, key)] = depth
                return
            cp_id = next_id
            next_id += 1
            edit.add_op(Operation(
                op_id=cp_id, opcode=Opcode.COPY,
                name=f"{producer.name}.cp{next(cp_index)}",
                latency=copy_latency, origin=oid,
                unroll_index=producer.unroll_index))
            n_copies += 1
            edit.add_edge(parent_id, cp_id, parent_lat, 0, DepKind.DATA)
            materialise(node.left, cp_id, copy_latency, depth + 1)
            materialise(node.right, cp_id, copy_latency, depth + 1)

        materialise(tree, oid, producer_lat, 0)

    edit.done(next_id)
    return CopyInsertionResult(out, n_copies, depth_by_edge)


def count_required_copies(ddg: Ddg) -> int:
    """Copies :func:`insert_copies` will create: ``sum(max(0, fanout-1))``."""
    return sum(max(0, ddg.fanout(o) - 1) for o in ddg.op_ids)


def strip_copies(ddg: Ddg) -> Ddg:
    """Inverse transform (short-circuit every copy op); used in tests.

    Every COPY node is removed and its incoming value edge is re-attached
    directly to its consumers, accumulating nothing (copies carry latency
    but the *logical* dataflow is identity).
    """
    out = ddg.copy()
    while True:
        copies = out.copy_ops()
        if not copies:
            return out
        cid = copies[0]
        (in_edge,) = out.producers(cid)
        consumers = out.consumers(cid)
        for e in consumers:
            out.remove_edge(e)
            # distance through a copy chain accumulates additively
            out.add_dependence(in_edge.src, e.dst,
                               distance=in_edge.distance + e.distance,
                               kind=DepKind.DATA)
        out.remove_edge(in_edge)
        out.remove_operation(cid)


def logical_dataflow(ddg: Ddg) -> set[tuple[int, int, int]]:
    """The copy-free dataflow relation ``{(producer, consumer, distance)}``.

    Two graphs with the same logical dataflow compute the same function;
    :func:`insert_copies` must preserve it (tested property).
    Multiplicity is ignored by the set; tests also compare sorted lists.
    """
    stripped = strip_copies(ddg)
    return {(e.src, e.dst, e.distance) for e in stripped.data_edges()}

"""Copy-operation insertion (Section 2 of the paper).

A queue register file destroys a value on read, so a value consumed by
``n > 1`` operations must be written into ``n`` distinct queues.  Rather
than give every FU ``n`` write ports, the paper introduces a *copy
operation*, executed by a dedicated FU, that reads one queue and writes two
queues (Fig. 2).  A value with ``n`` consumers therefore needs a fan-out
tree of exactly ``n - 1`` copies: the producer writes one queue, each copy
consumes one tree edge and produces two.

Tree shape matters: every copy on the path producer -> consumer adds its
latency to that path, and a longer path through a recurrence circuit raises
RecMII.  Three strategies are provided (ablation A1):

* ``"chain"``    -- linear chain; consumer *i* sits behind *i* copies.
* ``"balanced"`` -- recursively split consumers in halves; all consumers at
  depth ~ ``ceil(log2 n)``.
* ``"slack"``    -- (default) Huffman tree weighted by consumer criticality:
  consumers on long downstream paths (low slack) get shallow positions.
  With equal weights this degenerates to ``balanced``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Literal, Optional

from .ddg import Ddg, DepEdge, DepKind
from .operations import Opcode

CopyStrategy = Literal["chain", "balanced", "slack"]


@dataclass
class CopyInsertionResult:
    """Outcome of :func:`insert_copies`."""

    ddg: Ddg
    n_copies: int
    #: copy depth (number of copies traversed) per rewritten (src, dst, key)
    #: original data edge.
    depth_by_edge: dict[tuple[int, int, int], int] = field(
        default_factory=dict)

    @property
    def max_depth(self) -> int:
        return max(self.depth_by_edge.values(), default=0)


# --------------------------------------------------------------------------
# criticality = height of the consumer in the distance-0 DAG (long paths
# below a consumer mean schedule pressure -> keep its copy path short).
# --------------------------------------------------------------------------

def _heights(ddg: Ddg) -> dict[int, int]:
    """Longest downstream path per op over distance-0 edges (packed
    Bellman-Ford on the arrays view; the distance-0 subgraph is acyclic
    for any valid loop, so |V| passes always converge)."""
    arr = ddg.arrays()
    h = [0] * arr.n
    zero = [(s, d, lat)
            for s, d, lat, dist in zip(arr.e_src, arr.e_dst, arr.e_lat,
                                       arr.e_dist) if dist == 0]
    for _ in range(arr.n + 1):
        changed = False
        for s, d, lat in zero:
            cand = h[d] + lat
            if cand > h[s]:
                h[s] = cand
                changed = True
        if not changed:
            break
    return dict(zip(arr.ids, h))


def _scc_index(ddg: Ddg) -> dict[int, int]:
    """Strongly-connected-component id per op over the *full* edge set
    (loop-carried edges included): an edge inside an SCC lies on a
    recurrence circuit, and every copy on its path raises RecMII."""
    arr = ddg.arrays()
    return dict(zip(arr.ids, arr.scc_id))


# ----------------------------------------------------------- tree shaping

class _Leaf:
    """A consumer edge to be served by the fan-out tree."""

    __slots__ = ("edge", "weight")

    def __init__(self, edge: DepEdge, weight: float) -> None:
        self.edge = edge
        self.weight = weight


class _Node:
    """Internal tree node == one copy op; leaves == consumer edges."""

    __slots__ = ("left", "right")

    def __init__(self, left: "_Node | _Leaf",
                 right: "_Node | _Leaf") -> None:
        self.left = left
        self.right = right


def _tree_chain(leaves: list[_Leaf]) -> "_Node | _Leaf":
    # most critical consumer exits first (depth 1), the rest chain deeper
    ordered = sorted(leaves, key=lambda l: -l.weight)
    node: "_Node | _Leaf" = ordered[-1]
    for leaf in reversed(ordered[:-1]):
        node = _Node(leaf, node)
    return node


def _tree_balanced(leaves: list[_Leaf]) -> "_Node | _Leaf":
    if len(leaves) == 1:
        return leaves[0]
    mid = (len(leaves) + 1) // 2
    return _Node(_tree_balanced(leaves[:mid]), _tree_balanced(leaves[mid:]))


def _tree_huffman(leaves: list[_Leaf]) -> "_Node | _Leaf":
    # classic Huffman: repeatedly merge the two lightest subtrees, so heavy
    # (critical) leaves end up shallow.
    counter = itertools.count()
    heap: list[tuple[float, int, object]] = [
        (leaf.weight, next(counter), leaf) for leaf in leaves]
    heapq.heapify(heap)
    while len(heap) > 1:
        w1, _, t1 = heapq.heappop(heap)
        w2, _, t2 = heapq.heappop(heap)
        heapq.heappush(heap, (w1 + w2, next(counter), _Node(t2, t1)))
    return heap[0][2]


_BUILDERS = {
    "chain": _tree_chain,
    "balanced": _tree_balanced,
    "slack": _tree_huffman,
}


# ------------------------------------------------------------- transform

def insert_copies(ddg: Ddg, *, strategy: CopyStrategy = "slack",
                  copy_latency: int = 1) -> CopyInsertionResult:
    """Rewrite *ddg* so that every value has at most one consumer.

    Returns a new graph (the input is not modified) in which every original
    DATA edge from a producer with fan-out > 1 is re-routed through a tree
    of COPY ops.  Loop-carried distances stay on the final copy->consumer
    edge; producer->copy and copy->copy edges have distance 0, so the
    rewrite never changes which iteration consumes a value.

    MEM/SEQ edges and single-consumer values are untouched.
    """
    if strategy not in _BUILDERS:
        raise ValueError(f"unknown copy strategy {strategy!r}")
    out = ddg.copy()
    heights = _heights(ddg)
    scc = _scc_index(ddg)
    scc_sizes: dict[int, int] = {}
    for comp in scc.values():
        scc_sizes[comp] = scc_sizes.get(comp, 0) + 1
    arr = ddg.arrays()
    has_self_cycle = {arr.ids[s]
                      for s, d in zip(arr.e_src, arr.e_dst) if s == d}
    n_copies = 0
    depth_by_edge: dict[tuple[int, int, int], int] = {}

    # snapshot every producer's consumer list up front: rewriting one
    # producer's fan-out never touches another producer's DATA out-edges,
    # and querying `out` after each mutation would rebuild its edge cache
    # per producer
    consumers_of = {oid: out.consumers(oid) for oid in ddg.op_ids}

    for oid in ddg.op_ids:
        consumers = consumers_of[oid]
        if len(consumers) <= 1:
            for e in consumers:
                depth_by_edge[(e.src, e.dst, e.key)] = 0
            continue

        # weight: edges on a recurrence circuit dominate (every copy on
        # their path raises RecMII directly); otherwise the consumer's
        # downstream height (+1 so weights > 0).
        leaves = []
        for e in consumers:
            on_cycle = (scc[e.src] == scc[e.dst]
                        and (scc_sizes[scc[e.src]] > 1
                             or e.src in has_self_cycle))
            if on_cycle:
                # scale by 1/distance: tighter recurrences are more
                # sensitive to added latency
                weight = 1e6 / max(1, e.distance)
            else:
                weight = float(heights.get(e.dst, 0) + 1)
            leaves.append(_Leaf(e, weight))
        tree = _BUILDERS[strategy](leaves)

        for e in consumers:
            out.remove_edge(e)

        producer = out.op(oid)
        cp_index = itertools.count()

        def materialise(node: "_Node | _Leaf", parent_id: int,
                        depth: int) -> None:
            nonlocal n_copies
            if isinstance(node, _Leaf):
                e = node.edge
                out.add_dependence(parent_id, e.dst, distance=e.distance,
                                   kind=DepKind.DATA)
                depth_by_edge[(e.src, e.dst, e.key)] = depth
                return
            cp = out.add_operation(
                Opcode.COPY,
                name=f"{producer.name}.cp{next(cp_index)}",
                latency=copy_latency, origin=oid,
                unroll_index=producer.unroll_index)
            n_copies += 1
            out.add_dependence(parent_id, cp.op_id, distance=0,
                               kind=DepKind.DATA)
            materialise(node.left, cp.op_id, depth + 1)
            materialise(node.right, cp.op_id, depth + 1)

        materialise(tree, oid, 0)

    return CopyInsertionResult(out, n_copies, depth_by_edge)


def count_required_copies(ddg: Ddg) -> int:
    """Copies :func:`insert_copies` will create: ``sum(max(0, fanout-1))``."""
    return sum(max(0, ddg.fanout(o) - 1) for o in ddg.op_ids)


def strip_copies(ddg: Ddg) -> Ddg:
    """Inverse transform (short-circuit every copy op); used in tests.

    Every COPY node is removed and its incoming value edge is re-attached
    directly to its consumers, accumulating nothing (copies carry latency
    but the *logical* dataflow is identity).
    """
    out = ddg.copy()
    while True:
        copies = out.copy_ops()
        if not copies:
            return out
        cid = copies[0]
        (in_edge,) = out.producers(cid)
        consumers = out.consumers(cid)
        for e in consumers:
            out.remove_edge(e)
            # distance through a copy chain accumulates additively
            out.add_dependence(in_edge.src, e.dst,
                               distance=in_edge.distance + e.distance,
                               kind=DepKind.DATA)
        out.remove_edge(in_edge)
        out.remove_operation(cid)


def logical_dataflow(ddg: Ddg) -> set[tuple[int, int, int]]:
    """The copy-free dataflow relation ``{(producer, consumer, distance)}``.

    Two graphs with the same logical dataflow compute the same function;
    :func:`insert_copies` must preserve it (tested property).
    Multiplicity is ignored by the set; tests also compare sorted lists.
    """
    stripped = strip_copies(ddg)
    return {(e.src, e.dst, e.distance) for e in stripped.data_edges()}

"""Loop unrolling (Section 3 of the paper).

Unrolling replicates the loop body ``U`` times so that one kernel iteration
of the software pipeline executes ``U`` original iterations.  This recovers
the integer-rounding loss of the initiation interval: a loop with fractional
resource bound ``resfrac = 1.5`` on some FU class needs ``II = 2`` alone but
``II = 3`` for two iterations when unrolled twice -- an
``II_speedup = 2/1.5 = 1.33``.

Dependence re-mapping: original iteration ``i`` becomes kernel iteration
``i // U``, unroll copy ``i % U``.  An edge ``src -> dst`` with distance
``d`` therefore becomes, for every copy ``u``, an edge from copy ``u`` of
``src`` to copy ``(u + d) % U`` of ``dst`` with kernel distance
``(u + d) // U``.

The unroll-factor heuristic follows the spirit of Lavery & Hwu [13] (the
paper cites it without details): pick the smallest ``U`` minimising the
estimated per-original-iteration initiation interval

``II_est(U) = max(ceil(U * resfrac), U * recfrac) / U``

where ``recfrac`` is the exact maximum cycle ratio (recurrences gain nothing
from unrolling, so only the resource term improves).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from .ddg import Ddg
from .operations import FuType, Operation

if TYPE_CHECKING:  # pragma: no cover
    from repro.machine.machine import Machine


def _op_clone(op: Operation, op_id: int, u: int) -> Operation:
    """Replicate *op* as unroll copy *u* under a fresh id.

    Equivalent to ``dataclasses.replace(op, op_id=..., origin=op.op_id,
    unroll_index=u, name=...)`` but skips the field introspection and
    re-validation (the source op is already validated and none of the
    changed fields participate in validation) -- unrolling clones every
    op ``factor`` times, so this runs thousands of times per sweep."""
    new = object.__new__(Operation)
    d = new.__dict__
    d.update(op.__dict__)
    d["op_id"] = op_id
    d["origin"] = op.op_id
    d["unroll_index"] = u
    if u:
        d["name"] = f"{op.name}.u{u}"
    return new


def unroll(ddg: Ddg, factor: int, *, name: Optional[str] = None) -> Ddg:
    """Return *ddg* unrolled ``factor`` times.

    ``factor == 1`` returns a plain copy.  Op names get an ``.u<k>`` suffix
    for copies ``k >= 1``; ``unroll_index`` and ``origin`` record provenance.
    """
    if factor < 1:
        raise ValueError("unroll factor must be >= 1")
    if factor == 1:
        return ddg.copy(name or ddg.name)

    out = Ddg(name or f"{ddg.name}.x{factor}", ddg.trip_count)
    # body replication is factor * (ops + edges) mutations: run it on the
    # bulk editor (same networkx semantics as the per-call API, one
    # deferred cache invalidation)
    edit = out._bulk_edit()
    # id of copy u of original op o
    remap: dict[tuple[int, int], int] = {}
    next_id = 0
    for u in range(factor):
        for op in ddg.operations:
            edit.add_op(_op_clone(op, next_id, u))
            remap[(op.op_id, u)] = next_id
            next_id += 1

    for e in ddg.edges():
        src, dst, lat, dist, kind = (e.src, e.dst, e.latency, e.distance,
                                     e.kind)
        for u in range(factor):
            edit.add_edge(remap[(src, u)], remap[(dst, (u + dist) % factor)],
                          lat, (u + dist) // factor, kind)
    edit.done(next_id)
    return out


@dataclass(frozen=True)
class UnrollChoice:
    """Outcome of the unroll-factor heuristic."""

    factor: int
    estimated_ii_per_iteration: float
    res_frac: float
    rec_frac: float

    @property
    def expected_gain(self) -> float:
        """Estimated II_speedup over not unrolling."""
        base = max(math.ceil(self.res_frac), math.ceil(self.rec_frac), 1)
        return base / self.estimated_ii_per_iteration


def resource_fraction(ddg: Ddg, fu_counts: dict[FuType, int]) -> float:
    """Fractional resource bound ``max_t n_t / f_t`` (before ceiling)."""
    frac = 0.0
    for fu_type, demand in ddg.fu_demand().items():
        avail = fu_counts.get(fu_type, 0)
        if avail == 0:
            raise ValueError(f"machine has no {fu_type.value} unit but the "
                             f"loop needs {demand}")
        frac = max(frac, demand / avail)
    return frac


def select_unroll_factor(ddg: Ddg, fu_counts: dict[FuType, int], *,
                         max_factor: int = 8,
                         max_ops: int = 256) -> UnrollChoice:
    """Choose an unroll factor for *ddg* on a machine with *fu_counts*.

    Scans ``U = 1..max_factor`` (bounded so the unrolled body stays under
    *max_ops* operations), estimating the per-original-iteration II, and
    returns the smallest ``U`` achieving the minimum (ties favour less code
    growth).  A loop dominated by recurrences gets ``U = 1``.
    """
    from repro.sched.mii import max_cycle_ratio  # local: avoid import cycle

    if max_factor < 1:
        raise ValueError("max_factor must be >= 1")
    res_frac = resource_fraction(ddg, fu_counts)
    rec_frac = max_cycle_ratio(ddg)

    best_u, best_est = 1, float("inf")
    for u in range(1, max_factor + 1):
        if u > 1 and u * ddg.n_ops > max_ops:
            break
        est = max(math.ceil(u * res_frac - 1e-9), 1, math.ceil(
            u * rec_frac - 1e-9)) / u
        if est < best_est - 1e-12:
            best_u, best_est = u, est
    return UnrollChoice(best_u, best_est, res_frac, rec_frac)


def ii_speedup(ii_original: int, ii_unrolled: int, factor: int) -> float:
    """Paper Eq. (1), normalised per original iteration.

    ``II_speedup = II_original / (II_unrolled / U)`` -- the unrolled kernel
    initiates ``U`` original iterations every ``II_unrolled`` cycles.
    """
    if ii_original < 1 or ii_unrolled < 1 or factor < 1:
        raise ValueError("II values and factor must be >= 1")
    return ii_original / (ii_unrolled / factor)

"""Loop intermediate representation: operations, DDGs, and transforms."""

from .builder import LoopBuilder, chain
from .copyins import (CopyInsertionResult, count_required_copies,
                      insert_copies, logical_dataflow, strip_copies)
from .ddg import Ddg, DepEdge, DepKind, merge_ddgs
from .operations import (DEFAULT_LATENCIES, SOURCE_OPCODES, UNIT_LATENCIES,
                         FuType, LatencyModel, Opcode, Operation)
from .unroll import (UnrollChoice, ii_speedup, resource_fraction,
                     select_unroll_factor, unroll)
from .validate import DdgValidationError, is_valid, validate_ddg

__all__ = [
    "LoopBuilder", "chain",
    "CopyInsertionResult", "count_required_copies", "insert_copies",
    "logical_dataflow", "strip_copies",
    "Ddg", "DepEdge", "DepKind", "merge_ddgs",
    "DEFAULT_LATENCIES", "SOURCE_OPCODES", "UNIT_LATENCIES",
    "FuType", "LatencyModel", "Opcode", "Operation",
    "UnrollChoice", "ii_speedup", "resource_fraction",
    "select_unroll_factor", "unroll",
    "DdgValidationError", "is_valid", "validate_ddg",
]

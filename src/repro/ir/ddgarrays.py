"""Struct-of-arrays lowering of a :class:`~repro.ir.ddg.Ddg`.

The schedulers walk dependence edges millions of times per corpus sweep;
iterating :class:`~repro.ir.ddg.DepEdge` dataclasses (built from networkx
attribute dicts, hashed by enum kind) dominates their profiles.  A
:class:`DdgArrays` lowers one graph -- **once per loop** -- into flat
integer arrays the inner loops index directly:

* ``ids``/``index`` map dense op indices (0..n-1) to/from op ids;
* ``latency``/``pool`` are per-op int vectors (``pool`` is the integer
  hardware-pool id of :data:`repro.machine.resources.POOL_IDS`, so the
  reservation tables never hash :class:`~repro.ir.operations.FuType`);
* predecessor/successor edges in CSR form (``in_ptr``/``out_ptr`` index
  arrays plus parallel data arrays for endpoint, latency, distance and a
  DATA flag) in exactly ``Ddg.in_edges``/``Ddg.out_edges`` order;
* one flat edge list (``e_src``/``e_dst``/``e_lat``/``e_dist``) for the
  Bellman-Ford passes (heights, RecMII);
* a DATA-neighbourhood CSR (``nbr_ptr``/``nbr``) for cluster affinity;
* strongly-connected-component ids plus the *cycle-restricted* edge list
  ``cyc_edges`` over ``cyc_n`` compacted nodes: a positive dependence
  cycle can only use edges inside one SCC, so RecMII's repeated
  positive-cycle tests run on the (usually tiny) recurrence subgraph
  instead of the whole loop body.

Instances are immutable snapshots.  Obtain them through
:meth:`Ddg.arrays`, which memoises on the graph's structural cache --
any mutation invalidates, the next call rebuilds.
"""

from __future__ import annotations

from array import array
from typing import TYPE_CHECKING

from repro.machine.resources import POOL_ID_FOR

from .ddg import DepKind

if TYPE_CHECKING:  # pragma: no cover
    from .ddg import Ddg


class DdgArrays:
    """Immutable packed-array view of one loop DDG (see module doc)."""

    __slots__ = (
        "n", "ids", "index", "latency", "pool", "produces",
        "in_ptr", "in_src", "in_lat", "in_dist", "in_data",
        "out_ptr", "out_dst", "out_lat", "out_dist", "out_data",
        "e_src", "e_dst", "e_lat", "e_dist",
        "nbr_ptr", "nbr",
        "scc_id", "cyc_n", "cyc_edges",
        "ii_cache",
    )

    def __init__(self, ddg: "Ddg") -> None:
        #: per-II derived-analysis memo (heights, priority orders, SMS
        #: analyses -- all pure functions of (this lowering, II)).  II
        #: drivers re-probe the same (loop, II) points across machines
        #: and search modes; the memo rides the lowering, which itself
        #: rides the Ddg's structural cache, so any mutation drops both.
        self.ii_cache: dict = {}
        ids = ddg.op_ids
        n = len(ids)
        index = {o: i for i, o in enumerate(ids)}
        self.n = n
        self.ids = ids
        self.index = index
        ops = ddg.operations
        self.latency = [op.latency for op in ops]
        self.pool = [POOL_ID_FOR[op.fu_type] for op in ops]
        self.produces = [op.produces_value for op in ops]

        # one pass over the (src, dst, key)-sorted edge list buckets both
        # CSRs in Ddg.in_edges / Ddg.out_edges order.  Walk the raw
        # adjacency dicts instead of Ddg.edges(): ``index`` is monotone
        # in op id and (iu, iv, key) is unique, so sorting the packed
        # tuples reproduces the (src, dst, key) DepEdge order exactly
        # without building a DepEdge per edge.
        data = DepKind.DATA
        raw = []
        succ = ddg._g._succ
        for u, nbrs in succ.items():
            iu = index[u]
            for v, keydict in nbrs.items():
                iv = index[v]
                for key, dd in keydict.items():
                    raw.append((iu, iv, key, dd["latency"], dd["distance"],
                                1 if dd["kind"] is data else 0))
        raw.sort()
        edges = [(t[0], t[1], t[3], t[4], t[5]) for t in raw]
        m = len(edges)
        self.e_src = [e[0] for e in edges]
        self.e_dst = [e[1] for e in edges]
        self.e_lat = [e[2] for e in edges]
        self.e_dist = [e[3] for e in edges]

        out_ptr = array("i", bytes(4 * (n + 1)))
        for s, _d, _l, _dd, _k in edges:
            out_ptr[s + 1] += 1
        for i in range(n):
            out_ptr[i + 1] += out_ptr[i]
        self.out_ptr = out_ptr
        # edges are sorted by (src, dst, key): consecutive same-src runs
        # land in CSR order without a second sort
        self.out_dst = [e[1] for e in edges]
        self.out_lat = [e[2] for e in edges]
        self.out_dist = [e[3] for e in edges]
        self.out_data = [e[4] for e in edges]

        in_ptr = array("i", bytes(4 * (n + 1)))
        for _s, d, _l, _dd, _k in edges:
            in_ptr[d + 1] += 1
        for i in range(n):
            in_ptr[i + 1] += in_ptr[i]
        self.in_ptr = in_ptr
        fill = list(in_ptr[:n])
        in_src = [0] * m
        in_lat = [0] * m
        in_dist = [0] * m
        in_data = [0] * m
        for s, d, lat, dist, kind in edges:
            j = fill[d]
            fill[d] = j + 1
            in_src[j] = s
            in_lat[j] = lat
            in_dist[j] = dist
            in_data[j] = kind
        self.in_src = in_src
        self.in_lat = in_lat
        self.in_dist = in_dist
        self.in_data = in_data

        # DATA neighbourhood (either direction, deduplicated, ascending)
        nbr_sets: list[set[int]] = [set() for _ in range(n)]
        for s, d, _l, _dd, kind in edges:
            if kind and s != d:
                nbr_sets[s].add(d)
                nbr_sets[d].add(s)
        nbr_ptr = array("i", bytes(4 * (n + 1)))
        nbr: list[int] = []
        for i, ns in enumerate(nbr_sets):
            nbr.extend(sorted(ns))
            nbr_ptr[i + 1] = len(nbr)
        self.nbr_ptr = nbr_ptr
        self.nbr = nbr

        self.scc_id = _scc_ids(n, out_ptr, self.out_dst)
        self._build_cycle_edges(edges)

    def _build_cycle_edges(
            self,
            edges: list[tuple[int, int, int, int, int]]) -> None:
        """Compact the edges that can participate in a dependence cycle.

        An edge can only lie on a cycle when both endpoints share an SCC
        and that SCC is cyclic (more than one node, or a self-loop).
        Nodes of cyclic SCCs are renumbered 0..cyc_n-1.
        """
        scc = self.scc_id
        cyclic: set[int] = set()
        members: dict[int, int] = {}
        for c in scc:
            members[c] = members.get(c, 0) + 1
        for c, count in members.items():
            if count > 1:
                cyclic.add(c)
        for s, d, _l, _dd, _k in edges:
            if s == d:
                cyclic.add(scc[s])
        remap: dict[int, int] = {}
        for i in range(self.n):
            if scc[i] in cyclic:
                remap[i] = len(remap)
        self.cyc_n = len(remap)
        self.cyc_edges = [
            (remap[s], remap[d], lat, dist)
            for s, d, lat, dist, _k in edges
            if scc[s] == scc[d] and scc[s] in cyclic]


def _scc_ids(n: int, out_ptr: list[int],
             out_dst: list[int]) -> list[int]:
    """Strongly connected components over a CSR digraph (iterative
    Tarjan); returns a component id per node."""
    ids = [-1] * n
    low = [0] * n
    num = [0] * n
    on_stack = [False] * n
    stack: list[int] = []
    counter = 0
    n_comps = 0
    for root in range(n):
        if ids[root] != -1 or num[root]:
            continue
        work: list[tuple[int, int]] = [(root, out_ptr[root])]
        num[root] = low[root] = counter = counter + 1
        stack.append(root)
        on_stack[root] = True
        while work:
            v, ptr = work[-1]
            if ptr < out_ptr[v + 1]:
                work[-1] = (v, ptr + 1)
                w = out_dst[ptr]
                if not num[w]:
                    counter += 1
                    num[w] = low[w] = counter
                    stack.append(w)
                    on_stack[w] = True
                    work.append((w, out_ptr[w]))
                elif on_stack[w] and num[w] < low[v]:
                    low[v] = num[w]
            else:
                work.pop()
                if work:
                    parent = work[-1][0]
                    if low[v] < low[parent]:
                        low[parent] = low[v]
                if low[v] == num[v]:
                    while True:
                        w = stack.pop()
                        on_stack[w] = False
                        ids[w] = n_comps
                        if w == v:
                            break
                    n_comps += 1
    return ids

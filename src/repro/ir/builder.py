"""A tiny DSL for building loop DDGs by hand.

Used by the hand-written kernels in :mod:`repro.workloads.kernels`, the
examples, and many tests.  Example -- a daxpy body ``y[i] = a*x[i] + y[i]``::

    b = LoopBuilder("daxpy", trip_count=1000)
    x = b.load("x")
    y = b.load("y")
    ax = b.mul("ax", x)              # a is a loop invariant (live-in)
    s = b.add("s", ax, y)
    b.store("st", s)
    ddg = b.build()

Loop-carried dependences use :meth:`LoopBuilder.carry`::

    acc = b.add("acc", x)            # acc += x[i]
    b.carry(acc, acc, distance=1)    # acc consumed by itself next iteration
"""

from __future__ import annotations

from typing import Optional

from .ddg import Ddg, DepKind
from .operations import Opcode, Operation


class LoopBuilder:
    """Fluent construction of a :class:`~repro.ir.ddg.Ddg`."""

    def __init__(self, name: str = "loop", trip_count: int = 100) -> None:
        self._ddg = Ddg(name, trip_count)
        self._by_name: dict[str, Operation] = {}

    # ------------------------------------------------------------- opcodes

    def _emit(self, opcode: Opcode, name: str,
              *operands: "Operation | str",
              latency: int = -1) -> Operation:
        if name in self._by_name:
            raise ValueError(f"duplicate op name {name!r}")
        op = self._ddg.add_operation(opcode, name=name, latency=latency)
        self._by_name[name] = op
        for operand in operands:
            src = self._resolve(operand)
            self._ddg.add_dependence(src, op, distance=0, kind=DepKind.DATA)
        return op

    def _resolve(self, ref: "Operation | str") -> Operation:
        if isinstance(ref, Operation):
            return ref
        try:
            return self._by_name[ref]
        except KeyError:
            raise KeyError(f"unknown op name {ref!r}") from None

    def load(self, name: str, *operands: "Operation | str",
             latency: int = -1) -> Operation:
        """A load; operands (if any) feed address computation."""
        return self._emit(Opcode.LOAD, name, *operands, latency=latency)

    def store(self, name: str, *operands: "Operation | str",
              latency: int = -1) -> Operation:
        return self._emit(Opcode.STORE, name, *operands, latency=latency)

    def add(self, name: str, *operands: "Operation | str",
            latency: int = -1) -> Operation:
        return self._emit(Opcode.ADD, name, *operands, latency=latency)

    def sub(self, name: str, *operands: "Operation | str",
            latency: int = -1) -> Operation:
        return self._emit(Opcode.SUB, name, *operands, latency=latency)

    def cmp(self, name: str, *operands: "Operation | str",
            latency: int = -1) -> Operation:
        return self._emit(Opcode.CMP, name, *operands, latency=latency)

    def shift(self, name: str, *operands: "Operation | str",
              latency: int = -1) -> Operation:
        return self._emit(Opcode.SHIFT, name, *operands, latency=latency)

    def mul(self, name: str, *operands: "Operation | str",
            latency: int = -1) -> Operation:
        return self._emit(Opcode.MUL, name, *operands, latency=latency)

    def fmul(self, name: str, *operands: "Operation | str",
             latency: int = -1) -> Operation:
        return self._emit(Opcode.FMUL, name, *operands, latency=latency)

    def div(self, name: str, *operands: "Operation | str",
            latency: int = -1) -> Operation:
        return self._emit(Opcode.DIV, name, *operands, latency=latency)

    def op(self, mnemonic: str, name: str, *operands: "Operation | str",
           latency: int = -1) -> Operation:
        """Generic emit by mnemonic string."""
        return self._emit(Opcode.from_mnemonic(mnemonic), name, *operands,
                          latency=latency)

    # ------------------------------------------------------ dependences

    def carry(self, src: "Operation | str", dst: "Operation | str", *,
              distance: int = 1) -> None:
        """Loop-carried DATA dependence: value of *src* in iteration *i* is
        consumed by *dst* in iteration ``i + distance``."""
        if distance < 1:
            raise ValueError("carry distance must be >= 1")
        self._ddg.add_dependence(self._resolve(src), self._resolve(dst),
                                 distance=distance, kind=DepKind.DATA)

    def mem_order(self, src: "Operation | str", dst: "Operation | str", *,
                  distance: int = 0, latency: int = 1) -> None:
        """Memory ordering edge (store->load etc.); carries no value."""
        self._ddg.add_dependence(self._resolve(src), self._resolve(dst),
                                 distance=distance, kind=DepKind.MEM,
                                 latency=latency)

    def seq(self, src: "Operation | str", dst: "Operation | str", *,
            distance: int = 0, latency: int = 0) -> None:
        """Pure ordering edge with configurable latency."""
        self._ddg.add_dependence(self._resolve(src), self._resolve(dst),
                                 distance=distance, kind=DepKind.SEQ,
                                 latency=latency)

    # ----------------------------------------------------------- finish

    def get(self, name: str) -> Operation:
        return self._by_name[name]

    def build(self, validate: bool = True) -> Ddg:
        """Finish and (by default) validate the DDG."""
        if validate:
            from .validate import validate_ddg
            validate_ddg(self._ddg)
        return self._ddg


def chain(name: str, mnemonics: list[str], *, trip_count: int = 100,
          carry_distance: Optional[int] = None) -> Ddg:
    """Build a straight dependence chain, optionally closed into a
    recurrence of the given distance (a common test fixture)."""
    b = LoopBuilder(name, trip_count)
    prev: Optional[Operation] = None
    first: Optional[Operation] = None
    last_producer: Optional[Operation] = None
    for i, m in enumerate(mnemonics):
        cur = b.op(m, f"{m}{i}", *( [prev] if prev is not None else [] ))
        if first is None:
            first = cur
        if cur.produces_value:
            last_producer = cur
        prev = cur
    if carry_distance is not None and first is not None:
        if last_producer is None:
            raise ValueError("cannot close a recurrence without a producer")
        b.carry(last_producer, first, distance=carry_distance)
    return b.build()

"""Per-loop outcome records and aggregate metrics.

Definitions (DESIGN.md §5.5):

* static IPC  = ops issued per kernel cycle for one kernel iteration
  (``n_ops / II``; the paper's IPC_static);
* dynamic IPC = all issued ops over the full execution divided by total
  cycles including prologue/epilogue, *execution-weighted* over the loop
  set (``sum ops / sum cycles``; the paper's IPC_dynamic -- this is where
  "a few large loops account for a large share of the total execution
  time");
* II speedup  = per-original-iteration initiation rate gain of unrolling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence


@dataclass(frozen=True)
class LoopOutcome:
    """One (loop, machine, pipeline) compilation outcome."""

    loop: str
    machine: str
    n_source_ops: int         # ops of the original body (one iteration)
    n_body_ops: int           # ops actually scheduled (unrolled + copies)
    unroll_factor: int
    n_copies: int
    ii: int
    mii: int
    res_mii: int
    rec_mii: int
    stage_count: int
    trip_count: int
    total_queues: Optional[int] = None
    max_queue_depth: Optional[int] = None
    failed: bool = False
    #: infrastructure-error kind (``"TypeError: ..."``): the job did not
    #: fail to *schedule*, its execution blew up.  Always paired with
    #: ``failed=True``; such results are counted but never cached, so a
    #: transient fault costs one recompile, not a poisoned cache entry.
    error: Optional[str] = None

    @property
    def static_ipc(self) -> float:
        return self.n_body_ops / self.ii

    @property
    def kernel_iterations(self) -> int:
        return -(-self.trip_count // self.unroll_factor)

    @property
    def total_ops(self) -> int:
        return self.n_body_ops * self.kernel_iterations

    @property
    def total_cycles(self) -> int:
        return (self.kernel_iterations + self.stage_count - 1) * self.ii

    @property
    def dynamic_ipc(self) -> float:
        return self.total_ops / self.total_cycles

    @property
    def ii_per_iteration(self) -> float:
        """Initiation interval normalised per original iteration."""
        return self.ii / self.unroll_factor

    @property
    def achieved_mii(self) -> bool:
        return self.ii == self.mii


def fraction(flags: Iterable[bool]) -> float:
    """Fraction of true entries; 0.0 on empty input."""
    flags = list(flags)
    return sum(flags) / len(flags) if flags else 0.0


def mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile, q in [0, 100]."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(0, min(len(ordered) - 1,
                      round(q / 100 * (len(ordered) - 1))))
    return ordered[rank]


def mean_static_ipc(outcomes: Sequence[LoopOutcome]) -> float:
    """Unweighted mean of per-loop kernel IPC."""
    ok = [o for o in outcomes if not o.failed]
    return mean(o.static_ipc for o in ok)


def weighted_static_ipc(outcomes: Sequence[LoopOutcome]) -> float:
    """Execution-weighted kernel IPC (paper's static curve):
    total ops over total *kernel* cycles.  Weighted identically to
    :func:`weighted_dynamic_ipc` so that static >= dynamic holds for the
    aggregate exactly as it does per loop (the dynamic number only adds
    prologue/epilogue cycles to the denominator)."""
    ok = [o for o in outcomes if not o.failed]
    total_ops = sum(o.total_ops for o in ok)
    kernel_cycles = sum(o.ii * o.kernel_iterations for o in ok)
    return total_ops / kernel_cycles if kernel_cycles else 0.0


def weighted_dynamic_ipc(outcomes: Sequence[LoopOutcome]) -> float:
    """Execution-weighted dynamic IPC (paper's dynamic curve)."""
    ok = [o for o in outcomes if not o.failed]
    total_ops = sum(o.total_ops for o in ok)
    total_cycles = sum(o.total_cycles for o in ok)
    return total_ops / total_cycles if total_cycles else 0.0


def cumulative_within(values: Sequence[int],
                      buckets: Sequence[int]) -> dict[int, float]:
    """Fraction of values <= each bucket (Fig. 3's x-axis groups)."""
    out = {}
    for b in buckets:
        out[b] = fraction(v <= b for v in values)
    return out

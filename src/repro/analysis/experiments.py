"""Experiment drivers: one function per paper figure/table (+ ablations).

Every driver consumes a list of loop DDGs (the corpus or a subset), builds
one :class:`~repro.runner.job.CompileJob` per (loop, machine, pipeline
variant) point and executes the whole grid through
:func:`repro.runner.run_jobs`, then aggregates the ordered results into a
result object whose fields are the numbers the paper plots and whose
``render()`` reproduces the figure as an ASCII table.  DESIGN.md §4 maps
experiment ids (E1..E8, A1..A3) to these functions; EXPERIMENTS.md records
measured-vs-paper values.

All drivers accept ``runner=RunnerConfig(...)`` to fan the grid out over
worker processes and/or replay results from the content-addressed cache;
the default (``None``) is the historical serial, uncached behaviour, and
parallel runs are guaranteed to aggregate to identical tables because the
runner returns results in job order.  They also accept
``scheduler="ims"|"sms"`` to pick the single-cluster scheduling engine
(the CLI's ``--scheduler``); :func:`exp_scheduler_compare` runs the
engines head to head.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.ir.ddg import Ddg
from repro.machine.cluster import ClusteredMachine
from repro.machine.machine import Machine
from repro.machine.presets import (IPC_SWEEP_FUS, PAPER_CLUSTER_COUNTS,
                                   clustered_machine, paper_qrf_machines,
                                   qrf_machine)
from repro.runner import (CompileJob, PipelineOptions, RunnerConfig,
                          run_jobs, spill_spec, sweep)
# Re-exported for backwards compatibility: the pipeline moved into the
# runner subsystem so worker processes do not depend on this module.
from repro.runner.pipeline import (UNROLL_MAX_FACTOR, UNROLL_MAX_OPS,  # noqa: F401
                                   CompiledLoop, compile_loop)
from repro.sched.iisearch import DEFAULT_II_SEARCH
from repro.sched.mii import mii_report
from repro.sched.partitioners import DEFAULT_PARTITIONER
from repro.sched.strategies import DEFAULT_SCHEDULER

from .metrics import (LoopOutcome, cumulative_within, fraction, mean,
                      percentile, weighted_dynamic_ipc,
                      weighted_static_ipc)

__all__ = [
    "CompiledLoop", "compile_loop",
    "Fig3Result", "fig3_queue_requirements",
    "Sec2Result", "sec2_copy_impact",
    "Fig4Result", "fig4_unroll_speedup",
    "Fig6Result", "fig6_ii_variation",
    "Sec4Result", "sec4_cluster_queues",
    "IpcSweepResult", "ipc_sweep", "fig8_ipc", "fig9_ipc_rc",
    "CopyTreeAblation", "ablation_copy_tree",
    "PartitionAblation", "ablation_partition",
    "MovesAblation", "ablation_moves",
    "RegisterPressureResult", "register_pressure",
    "SpillBudgetResult", "spill_budget",
    "RingLatencyResult", "ring_latency_sensitivity",
    "HardwareCostResult", "hardware_cost",
    "SchedulerCompareResult", "exp_scheduler_compare",
    "PartitionerCompareResult", "exp_partitioner_compare",
]


def _pinned_first(registered: Sequence[str],
                  default: str) -> tuple[str, ...]:
    """*registered* with *default* pinned first (so it stays the
    comparison baseline no matter what else registers)."""
    return tuple(([default] if default in registered else [])
                 + [name for name in registered if name != default])


def _registered_partitioners() -> tuple[str, ...]:
    """Every registered partitioning engine, default engine first."""
    from repro.sched.partitioners import available_partitioners

    return _pinned_first(available_partitioners(), DEFAULT_PARTITIONER)


def _blocks(results, size: int, n_blocks: int):
    """Split an ordered result list into *n_blocks* consecutive blocks of
    *size*.  Passing the block count explicitly keeps empty loop lists
    graceful: ``size == 0`` yields one empty block per machine/variant, so
    aggregation degrades to the pre-runner drivers' empty-row behaviour
    instead of crashing."""
    return [results[k * size:(k + 1) * size] for k in range(n_blocks)]


# ---------------------------------------------------------------------------
# E1 -- Fig. 3: number of queues required (QRF + copy ops)
# ---------------------------------------------------------------------------

@dataclass
class Fig3Result:
    buckets: tuple[int, ...]
    #: machine name -> {bucket: fraction of loops needing <= bucket queues}
    by_machine: dict[str, dict[int, float]]
    queue_counts: dict[str, list[int]] = field(default_factory=dict)

    def render(self) -> str:
        lines = ["Fig. 3 -- loops schedulable within N queues "
                 "(QRF, copy ops inserted)", ""]
        header = "machine".ljust(14) + "".join(
            f"<={b:<5}" for b in self.buckets)
        lines.append(header)
        for name, row in self.by_machine.items():
            lines.append(name.ljust(14) + "".join(
                f"{row[b]*100:5.1f}% " for b in self.buckets))
        return "\n".join(lines)


def fig3_queue_requirements(
        loops: Sequence[Ddg],
        machines: Optional[Sequence[Machine]] = None,
        buckets: tuple[int, ...] = (4, 8, 16, 32),
        *, runner: Optional[RunnerConfig] = None,
        scheduler: str = DEFAULT_SCHEDULER,
        ii_search: str = DEFAULT_II_SEARCH) -> Fig3Result:
    machines = list(machines) if machines else paper_qrf_machines()
    results = run_jobs(
        sweep(loops, machines,
              [dict(copies=True, allocate=True, scheduler=scheduler, ii_search=ii_search)]),
        runner)
    by_machine: dict[str, dict[int, float]] = {}
    counts: dict[str, list[int]] = {}
    for m, block in zip(machines, _blocks(results, len(loops),
                                          len(machines))):
        totals = [r.outcome.total_queues for r in block
                  if not r.outcome.failed]
        by_machine[m.name] = cumulative_within(totals, buckets)
        counts[m.name] = totals
    return Fig3Result(buckets=buckets, by_machine=by_machine,
                      queue_counts=counts)


# ---------------------------------------------------------------------------
# E2 -- Section 2 text: impact of copy insertion on II / stage count
# ---------------------------------------------------------------------------

@dataclass
class Sec2Result:
    #: machine -> metrics
    same_ii: dict[str, float]
    same_sc: dict[str, float]
    ii_increase_by_1: dict[str, float]  # among changed loops
    mean_copies: dict[str, float]

    def render(self) -> str:
        lines = ["Section 2 -- copy-operation impact", "",
                 "machine".ljust(14) + "same-II  same-SC  "
                 "+1-cycle-of-changed  copies/loop"]
        for name in self.same_ii:
            lines.append(
                name.ljust(14)
                + f"{self.same_ii[name]*100:6.1f}%  "
                + f"{self.same_sc[name]*100:6.1f}%  "
                + f"{self.ii_increase_by_1[name]*100:12.1f}%        "
                + f"{self.mean_copies[name]:.1f}")
        return "\n".join(lines)


def sec2_copy_impact(loops: Sequence[Ddg],
                     machines: Optional[Sequence[Machine]] = None,
                     *, runner: Optional[RunnerConfig] = None,
                     scheduler: str = DEFAULT_SCHEDULER,
                     ii_search: str = DEFAULT_II_SEARCH) -> Sec2Result:
    machines = list(machines) if machines else paper_qrf_machines()
    results = run_jobs(
        sweep(loops, machines,
              [dict(copies=False, allocate=False, scheduler=scheduler, ii_search=ii_search),
               dict(copies=True, allocate=False, scheduler=scheduler, ii_search=ii_search)]),
        runner)
    same_ii: dict[str, float] = {}
    same_sc: dict[str, float] = {}
    plus1: dict[str, float] = {}
    mean_copies: dict[str, float] = {}
    variant_blocks = _blocks(results, len(loops), 2 * len(machines))
    for k, m in enumerate(machines):
        base_block, with_block = variant_blocks[2 * k], variant_blocks[2 * k + 1]
        flags_ii, flags_sc, increments, copies = [], [], [], []
        for base, with_c in zip(base_block, with_block):
            if base.outcome.failed or with_c.outcome.failed:
                continue
            flags_ii.append(with_c.outcome.ii == base.outcome.ii)
            flags_sc.append(
                with_c.outcome.stage_count == base.outcome.stage_count)
            if with_c.outcome.ii != base.outcome.ii:
                increments.append(
                    with_c.outcome.ii - base.outcome.ii == 1)
            copies.append(with_c.outcome.n_copies)
        same_ii[m.name] = fraction(flags_ii)
        same_sc[m.name] = fraction(flags_sc)
        plus1[m.name] = fraction(increments)
        mean_copies[m.name] = mean(copies)
    return Sec2Result(same_ii=same_ii, same_sc=same_sc,
                      ii_increase_by_1=plus1, mean_copies=mean_copies)


# ---------------------------------------------------------------------------
# E3/E4 -- Fig. 4: II speedup from unrolling (+ queue growth)
# ---------------------------------------------------------------------------

@dataclass
class Fig4Result:
    speedup_gt1: dict[str, float]
    mean_speedup: dict[str, float]
    queues_le_32: dict[str, float]      # with unrolling (Section 3 text)
    same_sc: dict[str, float]
    speedups: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        lines = ["Fig. 4 -- II speedup from loop unrolling", "",
                 "machine".ljust(14)
                 + "spd>1    mean-spd  <=32-queues  same-SC"]
        for name in self.speedup_gt1:
            lines.append(
                name.ljust(14)
                + f"{self.speedup_gt1[name]*100:5.1f}%   "
                + f"{self.mean_speedup[name]:7.2f}  "
                + f"{self.queues_le_32[name]*100:9.1f}%  "
                + f"{self.same_sc[name]*100:6.1f}%")
        return "\n".join(lines)


def fig4_unroll_speedup(loops: Sequence[Ddg],
                        machines: Optional[Sequence[Machine]] = None,
                        *, runner: Optional[RunnerConfig] = None,
                        scheduler: str = DEFAULT_SCHEDULER,
                        ii_search: str = DEFAULT_II_SEARCH) -> Fig4Result:
    machines = list(machines) if machines else paper_qrf_machines()
    results = run_jobs(
        sweep(loops, machines,
              [dict(copies=True, allocate=False, scheduler=scheduler, ii_search=ii_search),
               dict(do_unroll=True, copies=True, allocate=True,
                    scheduler=scheduler, ii_search=ii_search)]),
        runner)
    gt1: dict[str, float] = {}
    mean_spd: dict[str, float] = {}
    q32: dict[str, float] = {}
    same_sc: dict[str, float] = {}
    all_speedups: dict[str, list[float]] = {}
    variant_blocks = _blocks(results, len(loops), 2 * len(machines))
    for k, m in enumerate(machines):
        base_block, unrolled_block = (variant_blocks[2 * k],
                                      variant_blocks[2 * k + 1])
        speedups, fits, sc_flags = [], [], []
        for base, unrolled in zip(base_block, unrolled_block):
            if base.outcome.failed or unrolled.outcome.failed:
                continue
            speedups.append(base.outcome.ii
                            / unrolled.outcome.ii_per_iteration)
            fits.append((unrolled.outcome.total_queues or 0) <= 32)
            sc_flags.append(unrolled.outcome.stage_count
                            <= base.outcome.stage_count)
        gt1[m.name] = fraction(s > 1.0 + 1e-9 for s in speedups)
        mean_spd[m.name] = mean(speedups)
        q32[m.name] = fraction(fits)
        same_sc[m.name] = fraction(sc_flags)
        all_speedups[m.name] = speedups
    return Fig4Result(speedup_gt1=gt1, mean_speedup=mean_spd,
                      queues_le_32=q32, same_sc=same_sc,
                      speedups=all_speedups)


# ---------------------------------------------------------------------------
# E5 -- Fig. 6: II variation of clustered vs single-cluster machines
# ---------------------------------------------------------------------------

@dataclass
class Fig6Result:
    same_ii: dict[int, float]           # n_clusters -> fraction
    increase_by_1: dict[int, float]     # among changed loops
    mean_increase: dict[int, float]
    n_scheduled: dict[int, int]

    def render(self) -> str:
        lines = ["Fig. 6 -- loops keeping the single-cluster II", "",
                 "clusters  FUs   same-II   +1-of-changed  mean-increase"]
        for n, f in self.same_ii.items():
            lines.append(
                f"{n:8d}  {3*n:3d}   {f*100:6.1f}%   "
                f"{self.increase_by_1[n]*100:10.1f}%   "
                f"{self.mean_increase[n]:8.2f}")
        return "\n".join(lines)


def fig6_ii_variation(loops: Sequence[Ddg],
                      cluster_counts: Sequence[int] = PAPER_CLUSTER_COUNTS,
                      *, do_unroll: bool = True,
                      partitioner: str = DEFAULT_PARTITIONER,
                      use_moves: bool = False,
                      runner: Optional[RunnerConfig] = None,
                      scheduler: str = DEFAULT_SCHEDULER,
                      ii_search: str = DEFAULT_II_SEARCH) -> Fig6Result:
    cluster_counts = list(cluster_counts)
    cms = [clustered_machine(n) for n in cluster_counts]
    # wave 1: single-cluster baselines pick the unroll factor...
    single_results = run_jobs(
        sweep(loops, [cm.flattened() for cm in cms],
              [dict(do_unroll=do_unroll, copies=True, allocate=False,
                    scheduler=scheduler, ii_search=ii_search)]),
        runner)
    single_blocks = _blocks(single_results, len(loops), len(cms))
    # ...wave 2 compiles the clustered machine at that same factor
    clustered_jobs = [
        CompileJob(ddg, cm, PipelineOptions(
            unroll_factor=single.outcome.unroll_factor,
            copies=True, allocate=False,
            partitioner=partitioner, use_moves=use_moves,
            scheduler=scheduler, ii_search=ii_search))
        for cm, block in zip(cms, single_blocks)
        for ddg, single in zip(loops, block)]
    clustered_blocks = _blocks(run_jobs(clustered_jobs, runner),
                               len(loops), len(cms))

    same: dict[int, float] = {}
    plus1: dict[int, float] = {}
    mean_inc: dict[int, float] = {}
    counts: dict[int, int] = {}
    for n, singles, clusts in zip(cluster_counts, single_blocks,
                                  clustered_blocks):
        flags, incs = [], []
        n_ok = 0
        for single, clust in zip(singles, clusts):
            if single.outcome.failed or clust.outcome.failed:
                continue
            n_ok += 1
            flags.append(clust.outcome.ii == single.outcome.ii)
            if clust.outcome.ii != single.outcome.ii:
                incs.append(clust.outcome.ii - single.outcome.ii)
        same[n] = fraction(flags)
        plus1[n] = fraction(i == 1 for i in incs)
        mean_inc[n] = mean(incs)
        counts[n] = n_ok
    return Fig6Result(same_ii=same, increase_by_1=plus1,
                      mean_increase=mean_inc, n_scheduled=counts)


# ---------------------------------------------------------------------------
# E6 -- Section 4 text / Fig. 7: per-cluster queue budget
# ---------------------------------------------------------------------------

@dataclass
class Sec4Result:
    fits_budget: dict[int, float]       # n_clusters -> fraction
    p95_private: dict[int, int]
    p95_ring: dict[int, int]
    max_private: dict[int, int]
    max_ring: dict[int, int]

    def render(self) -> str:
        lines = ["Section 4 / Fig. 7 -- per-cluster queue requirements "
                 "(budget: 8 private + 8 per ring direction)", "",
                 "clusters  fits-8/8/8   p95-priv  p95-ring  "
                 "max-priv  max-ring"]
        for n in self.fits_budget:
            lines.append(
                f"{n:8d}  {self.fits_budget[n]*100:9.1f}%   "
                f"{self.p95_private[n]:8d}  {self.p95_ring[n]:8d}  "
                f"{self.max_private[n]:8d}  {self.max_ring[n]:8d}")
        return "\n".join(lines)


def sec4_cluster_queues(loops: Sequence[Ddg],
                        cluster_counts: Sequence[int] = PAPER_CLUSTER_COUNTS,
                        *, do_unroll: bool = True,
                        partitioner: str = DEFAULT_PARTITIONER,
                        runner: Optional[RunnerConfig] = None,
                        scheduler: str = DEFAULT_SCHEDULER,
                        ii_search: str = DEFAULT_II_SEARCH) -> Sec4Result:
    cluster_counts = list(cluster_counts)
    cms = [clustered_machine(n) for n in cluster_counts]
    results = run_jobs(
        sweep(loops, cms,
              [dict(do_unroll=do_unroll, copies=True, allocate=True,
                    partitioner=partitioner, scheduler=scheduler, ii_search=ii_search)],
              extras=("queue_locations",)),
        runner)
    fits: dict[int, float] = {}
    p95_priv: dict[int, int] = {}
    p95_ring: dict[int, int] = {}
    max_priv: dict[int, int] = {}
    max_ring: dict[int, int] = {}
    for n, cm, block in zip(cluster_counts, cms,
                            _blocks(results, len(loops),
                                    len(cms))):
        budget = cm.queue_budget
        flags, priv, ring = [], [], []
        for r in block:
            locations = r.extras.get("queue_locations")
            if r.outcome.failed or locations is None:
                continue
            flags.append(all(
                loc["n_queues"] <= (budget.private
                                    if loc["kind"] == "private"
                                    else budget.ring_out_cw)
                for loc in locations))
            for loc in locations:
                (priv if loc["kind"] == "private"
                 else ring).append(loc["n_queues"])
        fits[n] = fraction(flags)
        p95_priv[n] = int(percentile(priv, 95))
        p95_ring[n] = int(percentile(ring, 95))
        max_priv[n] = max(priv, default=0)
        max_ring[n] = max(ring, default=0)
    return Sec4Result(fits_budget=fits, p95_private=p95_priv,
                      p95_ring=p95_ring, max_private=max_priv,
                      max_ring=max_ring)


# ---------------------------------------------------------------------------
# E7/E8 -- Figs. 8-9: IPC sweep
# ---------------------------------------------------------------------------

@dataclass
class IpcSweepResult:
    title: str
    fus: tuple[int, ...]
    static_single: dict[int, float]
    dynamic_single: dict[int, float]
    static_clustered: dict[int, float]     # only at 12/15/18
    dynamic_clustered: dict[int, float]
    n_loops: dict[int, int]

    def render(self) -> str:
        lines = [self.title, "",
                 "FUs   static-S.Cluster  dynamic-S.Cluster  "
                 "static-Clustered  dynamic-Clustered  loops"]
        for n in self.fus:
            sc = self.static_clustered.get(n)
            dc = self.dynamic_clustered.get(n)
            lines.append(
                f"{n:3d}   {self.static_single[n]:15.2f}  "
                f"{self.dynamic_single[n]:16.2f}  "
                + (f"{sc:15.2f}  " if sc is not None else " " * 17)
                + (f"{dc:16.2f}  " if dc is not None else " " * 18)
                + f"{self.n_loops[n]:5d}")
        return "\n".join(lines)


def ipc_sweep(loops: Sequence[Ddg], *,
              fus: Sequence[int] = IPC_SWEEP_FUS,
              clustered_counts: Sequence[int] = PAPER_CLUSTER_COUNTS,
              resource_constrained_only: bool = False,
              do_unroll: bool = True,
              partitioner: str = DEFAULT_PARTITIONER,
              runner: Optional[RunnerConfig] = None,
              scheduler: str = DEFAULT_SCHEDULER,
              ii_search: str = DEFAULT_II_SEARCH,
              title: str = "Fig. 8 -- IPC, all loops") -> IpcSweepResult:
    """Shared driver of Figs. 8 and 9.

    ``resource_constrained_only`` filters, per FU point, the loops whose
    MII on that machine is resource-bound (Fig. 9's population).
    """
    clustered_by_fus = {3 * n: clustered_machine(n)
                        for n in clustered_counts}
    options = PipelineOptions(do_unroll=do_unroll, copies=True,
                              allocate=False, partitioner=partitioner,
                              scheduler=scheduler, ii_search=ii_search)
    jobs: list[CompileJob] = []
    spans: dict[int, tuple[int, int]] = {}       # n_fus -> (start, count)
    clustered_spans: dict[int, int] = {}          # n_fus -> start
    for n_fus in fus:
        m = qrf_machine(n_fus)
        population = list(loops)
        if resource_constrained_only:
            population = [l for l in loops
                          if mii_report(l, m).resource_constrained]
        spans[n_fus] = (len(jobs), len(population))
        jobs.extend(CompileJob(l, m, options) for l in population)
        cm = clustered_by_fus.get(n_fus)
        if cm is not None:
            clustered_spans[n_fus] = len(jobs)
            jobs.extend(CompileJob(l, cm, options) for l in population)
    results = run_jobs(jobs, runner)

    static_s: dict[int, float] = {}
    dynamic_s: dict[int, float] = {}
    static_c: dict[int, float] = {}
    dynamic_c: dict[int, float] = {}
    n_used: dict[int, int] = {}
    for n_fus in fus:
        start, count = spans[n_fus]
        outcomes = [r.outcome for r in results[start:start + count]]
        static_s[n_fus] = weighted_static_ipc(outcomes)
        dynamic_s[n_fus] = weighted_dynamic_ipc(outcomes)
        n_used[n_fus] = len([o for o in outcomes if not o.failed])
        if n_fus in clustered_spans:
            cstart = clustered_spans[n_fus]
            c_outcomes = [r.outcome
                          for r in results[cstart:cstart + count]]
            static_c[n_fus] = weighted_static_ipc(c_outcomes)
            dynamic_c[n_fus] = weighted_dynamic_ipc(c_outcomes)

    return IpcSweepResult(
        title=title, fus=tuple(fus),
        static_single=static_s, dynamic_single=dynamic_s,
        static_clustered=static_c, dynamic_clustered=dynamic_c,
        n_loops=n_used)


def fig8_ipc(loops: Sequence[Ddg], **kwargs) -> IpcSweepResult:
    kwargs.setdefault("title", "Fig. 8 -- IPC, all loops")
    return ipc_sweep(loops, resource_constrained_only=False, **kwargs)


def fig9_ipc_rc(loops: Sequence[Ddg], **kwargs) -> IpcSweepResult:
    kwargs.setdefault("title", "Fig. 9 -- IPC, resource-constrained loops")
    return ipc_sweep(loops, resource_constrained_only=True, **kwargs)


# ---------------------------------------------------------------------------
# A1 -- ablation: copy fan-out tree strategy
# ---------------------------------------------------------------------------

@dataclass
class CopyTreeAblation:
    #: strategy -> (same-II fraction vs no-copy baseline, mean max depth)
    same_ii: dict[str, float]
    mean_ii: dict[str, float]
    mean_queues: dict[str, float]

    def render(self) -> str:
        lines = ["Ablation A1 -- copy fan-out tree strategy", "",
                 "strategy   same-II    mean-II   mean-queues"]
        for s in self.same_ii:
            lines.append(f"{s:<9}  {self.same_ii[s]*100:6.1f}%  "
                         f"{self.mean_ii[s]:8.2f}  "
                         f"{self.mean_queues[s]:10.2f}")
        return "\n".join(lines)


def ablation_copy_tree(loops: Sequence[Ddg],
                       machine: Optional[Machine] = None,
                       strategies: Sequence[str] = ("chain", "balanced",
                                                    "slack"),
                       *, runner: Optional[RunnerConfig] = None,
                       scheduler: str = DEFAULT_SCHEDULER,
                       ii_search: str = DEFAULT_II_SEARCH) -> CopyTreeAblation:
    m = machine or qrf_machine(12)
    base_results = run_jobs(
        sweep(loops, [m],
              [dict(copies=False, allocate=False, scheduler=scheduler, ii_search=ii_search)]),
        runner)
    baselines: dict[str, int] = {
        ddg.name: r.outcome.ii
        for ddg, r in zip(loops, base_results) if not r.outcome.failed}
    ok_loops = [ddg for ddg in loops if ddg.name in baselines]
    strategy_results = run_jobs(
        sweep(ok_loops, [m],
              [dict(copies=True, copy_strategy=s, allocate=True,
                    scheduler=scheduler, ii_search=ii_search)
               for s in strategies]),
        runner)
    same: dict[str, float] = {}
    mean_ii: dict[str, float] = {}
    mean_q: dict[str, float] = {}
    for strat, block in zip(strategies,
                            _blocks(strategy_results, len(ok_loops),
                                    len(strategies))):
        flags, iis, queues = [], [], []
        for ddg, r in zip(ok_loops, block):
            if r.outcome.failed:
                continue
            flags.append(r.outcome.ii == baselines[ddg.name])
            iis.append(r.outcome.ii)
            queues.append(r.outcome.total_queues or 0)
        same[strat] = fraction(flags)
        mean_ii[strat] = mean(iis)
        mean_q[strat] = mean(queues)
    return CopyTreeAblation(same_ii=same, mean_ii=mean_ii,
                            mean_queues=mean_q)


# ---------------------------------------------------------------------------
# A2 -- ablation: cluster-choice strategy
# ---------------------------------------------------------------------------

@dataclass
class PartitionAblation:
    same_ii: dict[str, float]   # strategy -> fraction keeping flat II

    def render(self) -> str:
        lines = ["Ablation A2 -- partition heuristic "
                 "(fraction keeping single-cluster II)", "",
                 "engine          same-II"]
        for s, f in self.same_ii.items():
            lines.append(f"{s:<14}  {f*100:6.1f}%")
        return "\n".join(lines)


def ablation_partition(loops: Sequence[Ddg], n_clusters: int = 5,
                       strategies: Optional[Sequence[str]] = None,
                       *, runner: Optional[RunnerConfig] = None,
                       scheduler: str = DEFAULT_SCHEDULER,
                       ii_search: str = DEFAULT_II_SEARCH) -> PartitionAblation:
    """A2: Fig. 6's same-II fraction per registered partitioning engine
    (default: every engine in the registry, default engine first)."""
    same: dict[str, float] = {}
    for engine in strategies or _registered_partitioners():
        res = fig6_ii_variation(loops, cluster_counts=(n_clusters,),
                                partitioner=engine, runner=runner,
                                scheduler=scheduler, ii_search=ii_search)
        same[engine] = res.same_ii[n_clusters]
    return PartitionAblation(same_ii=same)


# ---------------------------------------------------------------------------
# A3 -- ablation: MOVE ops between non-adjacent clusters (future work)
# ---------------------------------------------------------------------------

@dataclass
class MovesAblation:
    without_moves: dict[int, float]   # n_clusters -> same-II fraction
    with_moves: dict[int, float]

    def render(self) -> str:
        lines = ["Ablation A3 -- explicit MOVE ops "
                 "(fraction keeping single-cluster II)", "",
                 "clusters   ring-only   with-moves"]
        for n in self.without_moves:
            lines.append(f"{n:8d}   {self.without_moves[n]*100:7.1f}%   "
                         f"{self.with_moves[n]*100:8.1f}%")
        return "\n".join(lines)


def ablation_moves(loops: Sequence[Ddg],
                   cluster_counts: Sequence[int] = (5, 6),
                   *, partitioner: str = DEFAULT_PARTITIONER,
                   runner: Optional[RunnerConfig] = None,
                   scheduler: str = DEFAULT_SCHEDULER,
                   ii_search: str = DEFAULT_II_SEARCH) -> MovesAblation:
    base = fig6_ii_variation(loops, cluster_counts=cluster_counts,
                             partitioner=partitioner,
                             runner=runner, scheduler=scheduler, ii_search=ii_search)
    moved = fig6_ii_variation(loops, cluster_counts=cluster_counts,
                              partitioner=partitioner,
                              use_moves=True, runner=runner,
                              scheduler=scheduler, ii_search=ii_search)
    return MovesAblation(without_moves=base.same_ii,
                         with_moves=moved.same_ii)


# ---------------------------------------------------------------------------
# S1 -- supplementary: register pressure, QRF vs conventional RF
# ---------------------------------------------------------------------------

@dataclass
class RegisterPressureResult:
    """Per-machine storage requirements of the corpus under the two
    register-file organisations the paper compares in its introduction.

    For each loop scheduled on the same machine width: queues needed by
    the QRF scheme (copy ops inserted) versus the conventional-RF MaxLive,
    rotating-file and modulo-variable-expansion register counts (no copy
    ops needed -- a CRF supports multi-read values natively).
    """

    mean_queues: dict[str, float]
    mean_max_live: dict[str, float]
    mean_rotating: dict[str, float]
    mean_mve_regs: dict[str, float]
    p95_queues: dict[str, int]
    p95_mve_regs: dict[str, int]
    mean_mve_unroll: dict[str, float]

    def render(self) -> str:
        lines = ["S1 -- register pressure: queue file vs conventional RF",
                 "",
                 "machine       queues(mean/p95)  MaxLive  rotating  "
                 "MVE-regs(mean/p95)  MVE-kernel-copies"]
        for name in self.mean_queues:
            lines.append(
                name.ljust(14)
                + f"{self.mean_queues[name]:6.1f}/{self.p95_queues[name]:<4d}"
                + f"     {self.mean_max_live[name]:7.1f}"
                + f"  {self.mean_rotating[name]:8.1f}"
                + f"  {self.mean_mve_regs[name]:8.1f}/"
                  f"{self.p95_mve_regs[name]:<4d}"
                + f"      {self.mean_mve_unroll[name]:6.2f}")
        return "\n".join(lines)


def register_pressure(loops: Sequence[Ddg],
                      machines: Optional[Sequence[Machine]] = None,
                      *, runner: Optional[RunnerConfig] = None,
                      scheduler: str = DEFAULT_SCHEDULER,
                      ii_search: str = DEFAULT_II_SEARCH) -> RegisterPressureResult:
    """Experiment S1: storage demand of QRF vs CRF on the same loops."""
    from repro.machine.machine import RfKind, make_machine

    machines = list(machines) if machines else paper_qrf_machines()
    jobs: list[CompileJob] = []
    for m in machines:
        crf = make_machine(m.n_fus, rf_kind=RfKind.CONVENTIONAL)
        jobs.extend(CompileJob(ddg, m, PipelineOptions(
            copies=True, allocate=True, scheduler=scheduler, ii_search=ii_search))
            for ddg in loops)
        jobs.extend(CompileJob(ddg, crf, PipelineOptions(
            copies=False, allocate=False, scheduler=scheduler, ii_search=ii_search,
            extras=("crf_registers",))) for ddg in loops)
    results = run_jobs(jobs, runner)

    mean_q: dict[str, float] = {}
    mean_ml: dict[str, float] = {}
    mean_rot: dict[str, float] = {}
    mean_mve: dict[str, float] = {}
    p95_q: dict[str, int] = {}
    p95_mve: dict[str, int] = {}
    mean_unroll: dict[str, float] = {}
    blocks = _blocks(results, len(loops), 2 * len(machines))
    for k, m in enumerate(machines):
        q_block, c_block = blocks[2 * k], blocks[2 * k + 1]
        queues, maxlive, rot, mve_regs, mve_unr = [], [], [], [], []
        for q_side, c_side in zip(q_block, c_block):
            regs = c_side.extras.get("crf_registers")
            if q_side.outcome.failed or c_side.outcome.failed or not regs:
                continue
            queues.append(q_side.outcome.total_queues)
            maxlive.append(regs["max_live"])
            rot.append(regs["rotating"])
            mve_regs.append(regs["mve_regs"])
            mve_unr.append(regs["mve_unroll"])
        mean_q[m.name] = mean(queues)
        mean_ml[m.name] = mean(maxlive)
        mean_rot[m.name] = mean(rot)
        mean_mve[m.name] = mean(mve_regs)
        p95_q[m.name] = int(percentile(queues, 95))
        p95_mve[m.name] = int(percentile(mve_regs, 95))
        mean_unroll[m.name] = mean(mve_unr)
    return RegisterPressureResult(
        mean_queues=mean_q, mean_max_live=mean_ml, mean_rotating=mean_rot,
        mean_mve_regs=mean_mve, p95_queues=p95_q, p95_mve_regs=p95_mve,
        mean_mve_unroll=mean_unroll)


# ---------------------------------------------------------------------------
# E6b -- spills under the Fig. 7 hardware budget
# ---------------------------------------------------------------------------

@dataclass
class SpillBudgetResult:
    """How much spill code finite queue files actually cost."""

    #: (private queues, positions) -> fraction of loops with zero spills
    no_spill_fraction: dict[tuple[int, int], float]
    #: (private queues, positions) -> mean spilled lifetimes per loop
    mean_spills: dict[tuple[int, int], float]

    def render(self) -> str:
        lines = ["E6b -- spill code under finite queue files "
                 "(single-cluster 12-FU machine)", "",
                 "queues  positions   spill-free   mean-spills/loop"]
        for (q, p), frac in self.no_spill_fraction.items():
            lines.append(f"{q:6d}  {p:9d}   {frac*100:9.1f}%   "
                         f"{self.mean_spills[(q, p)]:10.2f}")
        return "\n".join(lines)


def spill_budget(loops: Sequence[Ddg],
                 budgets: Sequence[tuple[int, int]] = ((4, 8), (8, 8),
                                                       (8, 16), (16, 16),
                                                       (32, 16)),
                 machine: Optional[Machine] = None,
                 *, runner: Optional[RunnerConfig] = None,
                 scheduler: str = DEFAULT_SCHEDULER,
                 ii_search: str = DEFAULT_II_SEARCH) -> SpillBudgetResult:
    """Experiment E6b: quantify the paper's "spill code will occasionally
    be required" across hardware budgets (queues x positions)."""
    m = machine or qrf_machine(12)
    spec = spill_spec(budgets)
    results = run_jobs(
        sweep(loops, [m],
              [dict(copies=True, allocate=False, scheduler=scheduler, ii_search=ii_search)],
              extras=(spec,)),
        runner)
    reports = [r.extras.get(spec) for r in results
               if not r.outcome.failed and r.extras.get(spec)]
    frac: dict[tuple[int, int], float] = {}
    spills: dict[tuple[int, int], float] = {}
    for q, p in budgets:
        cell = f"{q}x{p}"
        frac[(q, p)] = fraction(rep[cell]["fits"] for rep in reports)
        spills[(q, p)] = mean(rep[cell]["n_spilled"] for rep in reports)
    return SpillBudgetResult(no_spill_fraction=frac, mean_spills=spills)


# ---------------------------------------------------------------------------
# A4 -- sensitivity: inter-cluster communication latency
# ---------------------------------------------------------------------------

@dataclass
class RingLatencyResult:
    """Fig. 6's same-II fraction as a function of the extra cycles a
    value needs to cross to an adjacent cluster (the paper assumes 0)."""

    #: latency -> {n_clusters: fraction same II}
    same_ii: dict[int, dict[int, float]]

    def render(self) -> str:
        lines = ["A4 -- same-II fraction vs inter-cluster latency", "",
                 "xlat   " + "  ".join(f"{n}-clusters"
                                       for n in
                                       sorted(next(iter(
                                           self.same_ii.values()))))]
        for xlat, row in self.same_ii.items():
            lines.append(f"{xlat:4d}   " + "  ".join(
                f"{row[n]*100:9.1f}%" for n in sorted(row)))
        return "\n".join(lines)


def ring_latency_sensitivity(loops: Sequence[Ddg],
                             latencies: Sequence[int] = (0, 1, 2),
                             cluster_counts: Sequence[int] = (4, 6),
                             *, partitioner: str = DEFAULT_PARTITIONER,
                             runner: Optional[RunnerConfig] = None,
                             scheduler: str = DEFAULT_SCHEDULER,
                             ii_search: str = DEFAULT_II_SEARCH) -> RingLatencyResult:
    """Experiment A4: how sensitive is the partitioning result to the
    ring-queue forwarding latency?"""
    from repro.machine.cluster import make_clustered

    grid = [(xlat, make_clustered(n, inter_cluster_latency=xlat))
            for xlat in latencies for n in cluster_counts]
    single_results = run_jobs(
        sweep(loops, [cm.flattened() for _, cm in grid],
              [dict(do_unroll=True, copies=True, allocate=False,
                    scheduler=scheduler, ii_search=ii_search)]),
        runner)
    single_blocks = _blocks(single_results, len(loops), len(grid))
    clustered_jobs = [
        CompileJob(ddg, cm, PipelineOptions(
            unroll_factor=single.outcome.unroll_factor,
            copies=True, allocate=False, partitioner=partitioner,
            scheduler=scheduler, ii_search=ii_search))
        for (_, cm), block in zip(grid, single_blocks)
        for ddg, single in zip(loops, block)]
    clustered_blocks = _blocks(run_jobs(clustered_jobs, runner),
                               len(loops), len(grid))

    out: dict[int, dict[int, float]] = {}
    for (xlat, cm), singles, clusts in zip(grid, single_blocks,
                                           clustered_blocks):
        flags = []
        for single, clust in zip(singles, clusts):
            if single.outcome.failed or clust.outcome.failed:
                continue
            flags.append(clust.outcome.ii == single.outcome.ii)
        out.setdefault(xlat, {})[cm.n_clusters] = fraction(flags)
    return RingLatencyResult(same_ii=out)


# ---------------------------------------------------------------------------
# S2 -- supplementary: register-file hardware cost
# ---------------------------------------------------------------------------

@dataclass
class HardwareCostResult:
    """Area/delay comparison of RF organisations at equal machine width,
    with register counts taken from measured corpus demand (p95 rotating
    requirement) rather than guessed."""

    registers_used: dict[int, int]        # n_fus -> register count
    rows: dict[int, list]                 # n_fus -> [RfCost, ...]

    def render(self) -> str:
        lines = ["S2 -- register-file complexity "
                 "(area model: cells x ports^2; delay: 1 + 0.1/port)", ""]
        for n_fus, costs in self.rows.items():
            lines.append(f"{n_fus} FUs (corpus p95 register demand: "
                         f"{self.registers_used[n_fus]}):")
            for cost in costs:
                lines.append("  " + cost.render())
        return "\n".join(lines)


def hardware_cost(loops: Sequence[Ddg],
                  fu_sizes: Sequence[int] = (6, 12, 18),
                  *, runner: Optional[RunnerConfig] = None,
                  scheduler: str = DEFAULT_SCHEDULER,
                  ii_search: str = DEFAULT_II_SEARCH) -> HardwareCostResult:
    """Experiment S2: the paper's 36-port argument, quantified.

    For each width: measure the corpus's p95 rotating-register demand on
    the conventional machine, then price a monolithic RF of that size
    against the flat and clustered QRF banks of the Fig. 7 budget.
    """
    from repro.machine.cost import cost_comparison
    from repro.machine.cluster import make_clustered
    from repro.machine.machine import RfKind, make_machine

    crfs = [make_machine(n_fus, rf_kind=RfKind.CONVENTIONAL)
            for n_fus in fu_sizes]
    results = run_jobs(
        sweep(loops, crfs,
              [dict(copies=False, allocate=False, scheduler=scheduler, ii_search=ii_search)],
              extras=("crf_registers",)),
        runner)
    registers_used: dict[int, int] = {}
    rows: dict[int, list] = {}
    for n_fus, crf, block in zip(fu_sizes, crfs,
                                 _blocks(results, len(loops),
                                         len(crfs))):
        demand = [r.extras["crf_registers"]["rotating"] for r in block
                  if not r.outcome.failed and r.extras.get("crf_registers")]
        registers = max(8, int(percentile(demand, 95)))
        cm = make_clustered(max(1, n_fus // 3))
        registers_used[n_fus] = registers
        rows[n_fus] = cost_comparison(crf, cm, registers)
    return HardwareCostResult(registers_used=registers_used, rows=rows)


# ---------------------------------------------------------------------------
# SC -- scheduler comparison: every registered engine, head to head
# ---------------------------------------------------------------------------

@dataclass
class SchedulerCompareResult:
    """Head-to-head quality/effort comparison of scheduling engines.

    Every metric is keyed by ``(machine name, scheduler name)``.
    ``mii_match`` compares each engine against the *first* scheduler in
    ``schedulers`` (the baseline, normally ``"ims"``): among the loops
    where the baseline achieved II == MII, the fraction this engine
    achieved it too -- the headline "SMS loses (almost) nothing"
    statistic.
    """

    schedulers: tuple[str, ...]
    machines: tuple[str, ...]
    n_ok: dict[tuple[str, str], int]
    n_failed: dict[tuple[str, str], int]
    mii_rate: dict[tuple[str, str], float]       # fraction II == MII
    mean_ii_excess: dict[tuple[str, str], float]  # mean (II - MII)
    static_ipc: dict[tuple[str, str], float]
    dynamic_ipc: dict[tuple[str, str], float]
    mean_queues: dict[tuple[str, str], float]
    mean_max_live: dict[tuple[str, str], float]
    mean_attempts: dict[tuple[str, str], float]
    mean_evictions: dict[tuple[str, str], float]
    mii_match: dict[tuple[str, str], float]

    def render(self) -> str:
        lines = ["SC -- scheduler comparison "
                 f"(baseline: {self.schedulers[0]})", "",
                 "machine       engine  sched  II=MII  mean-II-MII  "
                 "IPC-dyn  queues  MaxLive  attempts  evicted  "
                 "vs-baseline"]
        for m in self.machines:
            for s in self.schedulers:
                key = (m, s)
                lines.append(
                    m.ljust(14)
                    + f"{s:<6}  {self.n_ok[key]:5d}  "
                    + f"{self.mii_rate[key]*100:5.1f}%  "
                    + f"{self.mean_ii_excess[key]:11.2f}  "
                    + f"{self.dynamic_ipc[key]:7.2f}  "
                    + f"{self.mean_queues[key]:6.1f}  "
                    + f"{self.mean_max_live[key]:7.1f}  "
                    + f"{self.mean_attempts[key]:8.1f}  "
                    + f"{self.mean_evictions[key]:7.1f}  "
                    + f"{self.mii_match[key]*100:10.1f}%")
        return "\n".join(lines)


def exp_scheduler_compare(loops: Sequence[Ddg],
                          machines: Optional[Sequence[Machine]] = None,
                          schedulers: Optional[Sequence[str]] = None,
                          *, runner: Optional[RunnerConfig] = None,
                          ii_search: str = DEFAULT_II_SEARCH
                          ) -> SchedulerCompareResult:
    """Experiment SC: sweep every engine over loops x machine presets.

    Reports, per (machine, engine): II-vs-MII quality, execution-weighted
    dynamic IPC, queue and conventional-register demand, and the engine's
    search effort (placement attempts, evictions).  Defaults: the paper's
    4/6/12-FU QRF presets and every registered engine, with the default
    engine pinned first so it stays the ``mii_match`` baseline no matter
    what else registers.
    """
    from repro.sched.strategies import (DEFAULT_SCHEDULER,
                                        available_schedulers)

    machines = list(machines) if machines else paper_qrf_machines()
    if schedulers:
        schedulers = tuple(schedulers)
    else:
        schedulers = _pinned_first(available_schedulers(),
                                   DEFAULT_SCHEDULER)
    extras = ("sched_stats", "crf_registers")
    results = run_jobs(
        sweep(loops, machines,
              [dict(copies=True, allocate=True, scheduler=s,
                    ii_search=ii_search, extras=extras)
               for s in schedulers]),
        runner)
    blocks = _blocks(results, len(loops), len(machines) * len(schedulers))

    n_ok: dict[tuple[str, str], int] = {}
    n_failed: dict[tuple[str, str], int] = {}
    mii_rate: dict[tuple[str, str], float] = {}
    mean_excess: dict[tuple[str, str], float] = {}
    static: dict[tuple[str, str], float] = {}
    dynamic: dict[tuple[str, str], float] = {}
    mean_q: dict[tuple[str, str], float] = {}
    mean_ml: dict[tuple[str, str], float] = {}
    mean_att: dict[tuple[str, str], float] = {}
    mean_evi: dict[tuple[str, str], float] = {}
    mii_match: dict[tuple[str, str], float] = {}

    for mi, m in enumerate(machines):
        per_engine = {s: blocks[mi * len(schedulers) + si]
                      for si, s in enumerate(schedulers)}
        base = per_engine[schedulers[0]]
        base_hit = {ddg.name for ddg, r in zip(loops, base)
                    if not r.outcome.failed
                    and r.outcome.ii == r.outcome.mii}
        for s in schedulers:
            block = per_engine[s]
            key = (m.name, s)
            ok = [r for r in block if not r.outcome.failed]
            n_ok[key] = len(ok)
            n_failed[key] = len(block) - len(ok)
            mii_rate[key] = fraction(
                r.outcome.ii == r.outcome.mii for r in ok)
            mean_excess[key] = mean(
                r.outcome.ii - r.outcome.mii for r in ok)
            outcomes = [r.outcome for r in block]
            static[key] = weighted_static_ipc(outcomes)
            dynamic[key] = weighted_dynamic_ipc(outcomes)
            mean_q[key] = mean(r.outcome.total_queues or 0 for r in ok)
            mean_ml[key] = mean(
                r.extras["crf_registers"]["max_live"] for r in ok
                if r.extras.get("crf_registers"))
            mean_att[key] = mean(
                r.extras["sched_stats"]["attempts"] for r in ok
                if r.extras.get("sched_stats"))
            mean_evi[key] = mean(
                r.extras["sched_stats"]["evictions"] for r in ok
                if r.extras.get("sched_stats"))
            # denominator: every loop the baseline hit; an engine that
            # fails outright on one of them counts as a non-match
            matched = [not r.outcome.failed
                       and r.outcome.ii == r.outcome.mii
                       for ddg, r in zip(loops, block)
                       if ddg.name in base_hit]
            mii_match[key] = fraction(matched)
    return SchedulerCompareResult(
        schedulers=tuple(schedulers),
        machines=tuple(m.name for m in machines),
        n_ok=n_ok, n_failed=n_failed, mii_rate=mii_rate,
        mean_ii_excess=mean_excess, static_ipc=static,
        dynamic_ipc=dynamic, mean_queues=mean_q, mean_max_live=mean_ml,
        mean_attempts=mean_att, mean_evictions=mean_evi,
        mii_match=mii_match)


# ---------------------------------------------------------------------------
# PC -- partitioner comparison: every registered engine, head to head
# ---------------------------------------------------------------------------

@dataclass
class PartitionerCompareResult:
    """Head-to-head quality/effort comparison of partitioning engines.

    Every metric is keyed by ``(n_clusters, partitioner name)``:
    II-versus-MII quality on the clustered machine, the engine's search
    effort (placement attempts and evictions -- the quantity the
    partitioned search's backtracking burns), and the spatial quality of
    the assignment (values crossing the ring, peak per-cluster MaxLive).
    """

    partitioners: tuple[str, ...]
    cluster_counts: tuple[int, ...]
    n_ok: dict[tuple[int, str], int]
    n_failed: dict[tuple[int, str], int]
    mii_rate: dict[tuple[int, str], float]        # fraction II == MII
    mean_ii_excess: dict[tuple[int, str], float]  # mean (II - MII)
    mean_attempts: dict[tuple[int, str], float]
    mean_evictions: dict[tuple[int, str], float]
    mean_inter_cluster: dict[tuple[int, str], float]  # ring-crossing values
    mean_cluster_live: dict[tuple[int, str], float]   # peak per-cluster MaxLive

    def render(self) -> str:
        lines = ["PC -- partitioner comparison "
                 f"(baseline: {self.partitioners[0]})", "",
                 "clusters  engine         sched  II=MII  mean-II-MII  "
                 "attempts  evicted  ring-copies  cluster-MaxLive"]
        for n in self.cluster_counts:
            for p in self.partitioners:
                key = (n, p)
                lines.append(
                    f"{n:8d}  {p:<13}  {self.n_ok[key]:5d}  "
                    + f"{self.mii_rate[key]*100:5.1f}%  "
                    + f"{self.mean_ii_excess[key]:11.2f}  "
                    + f"{self.mean_attempts[key]:8.1f}  "
                    + f"{self.mean_evictions[key]:7.1f}  "
                    + f"{self.mean_inter_cluster[key]:11.2f}  "
                    + f"{self.mean_cluster_live[key]:15.2f}")
        return "\n".join(lines)


def exp_partitioner_compare(loops: Sequence[Ddg],
                            cluster_counts: Sequence[int] = PAPER_CLUSTER_COUNTS,
                            partitioners: Optional[Sequence[str]] = None,
                            *, runner: Optional[RunnerConfig] = None,
                            scheduler: str = DEFAULT_SCHEDULER,
                            ii_search: str = DEFAULT_II_SEARCH
                            ) -> PartitionerCompareResult:
    """Experiment PC: sweep every partitioning engine over loops x rings.

    Reports, per (cluster count, engine): II-vs-MII quality, the search
    effort (placement attempts, evictions), the number of values that
    cross between clusters, and the peak per-cluster MaxLive -- the
    spatial-balance numbers that distinguish a good pre-assignment from a
    lucky greedy run.  Defaults: the paper's 4/5/6-cluster rings and
    every registered engine, default engine pinned first.
    """
    cluster_counts = list(cluster_counts)
    engines = (tuple(partitioners) if partitioners
               else _registered_partitioners())
    cms = [clustered_machine(n) for n in cluster_counts]
    extras = ("sched_stats", "cluster_stats")
    results = run_jobs(
        sweep(loops, cms,
              [dict(copies=True, allocate=False, partitioner=p,
                    scheduler=scheduler, ii_search=ii_search, extras=extras)
               for p in engines]),
        runner)
    blocks = _blocks(results, len(loops), len(cms) * len(engines))

    n_ok: dict[tuple[int, str], int] = {}
    n_failed: dict[tuple[int, str], int] = {}
    mii_rate: dict[tuple[int, str], float] = {}
    mean_excess: dict[tuple[int, str], float] = {}
    mean_att: dict[tuple[int, str], float] = {}
    mean_evi: dict[tuple[int, str], float] = {}
    mean_inter: dict[tuple[int, str], float] = {}
    mean_live: dict[tuple[int, str], float] = {}
    for ci, n in enumerate(cluster_counts):
        for pi, p in enumerate(engines):
            block = blocks[ci * len(engines) + pi]
            key = (n, p)
            ok = [r for r in block if not r.outcome.failed]
            n_ok[key] = len(ok)
            n_failed[key] = len(block) - len(ok)
            mii_rate[key] = fraction(
                r.outcome.ii == r.outcome.mii for r in ok)
            mean_excess[key] = mean(
                r.outcome.ii - r.outcome.mii for r in ok)
            mean_att[key] = mean(
                r.extras["sched_stats"]["attempts"] for r in ok
                if r.extras.get("sched_stats"))
            mean_evi[key] = mean(
                r.extras["sched_stats"]["evictions"] for r in ok
                if r.extras.get("sched_stats"))
            mean_inter[key] = mean(
                r.extras["cluster_stats"]["inter_cluster_edges"]
                for r in ok if r.extras.get("cluster_stats"))
            mean_live[key] = mean(
                r.extras["cluster_stats"]["max_cluster_live"]
                for r in ok if r.extras.get("cluster_stats"))
    return PartitionerCompareResult(
        partitioners=engines, cluster_counts=tuple(cluster_counts),
        n_ok=n_ok, n_failed=n_failed, mii_rate=mii_rate,
        mean_ii_excess=mean_excess, mean_attempts=mean_att,
        mean_evictions=mean_evi, mean_inter_cluster=mean_inter,
        mean_cluster_live=mean_live)

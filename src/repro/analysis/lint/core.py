"""Lint framework: findings, rules, the runner and the baseline diff.

A :class:`Finding` is identified for baseline purposes by its
*fingerprint* -- a hash of (rule, file, source line text), deliberately
not the line number, so unrelated edits that shift code up or down do
not invalidate the baseline.  The baseline stores a count per
fingerprint: a file may legitimately contain the same idiom twice, and
only occurrences *beyond* the recorded count are new.
"""

from __future__ import annotations

import ast
import hashlib
import json
import pathlib
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence

#: fingerprint -> allowed occurrence count
Baseline = dict[str, int]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str          # repo-relative, posix separators
    line: int
    message: str
    snippet: str = ""  # the stripped source line, for the fingerprint

    @property
    def fingerprint(self) -> str:
        """Line-drift-stable identity: hashes the source text, not the
        line number."""
        doc = f"{self.rule}|{self.path}|{self.snippet}"
        return hashlib.sha256(doc.encode("utf-8")).hexdigest()[:16]

    def describe(self) -> str:
        return (f"{self.path}:{self.line}: [{self.rule}] {self.message}"
                + (f"\n    {self.snippet}" if self.snippet else ""))


class Rule:
    """Base class for project lint rules.

    Subclasses set ``name`` (the ``R###-slug`` id) and ``description``,
    optionally narrow ``applies_to``, and implement ``check``.  Use
    :meth:`finding` to emit violations so fingerprints stay uniform.
    """

    name = ""
    description = ""

    def applies_to(self, path: str) -> bool:
        """Whether *path* (repo-relative posix) is in this rule's scope."""
        return True

    def check(self, tree: ast.AST, source_lines: Sequence[str],
              path: str) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, path: str, node: ast.AST, message: str,
                source_lines: Sequence[str]) -> Finding:
        line = getattr(node, "lineno", 0)
        snippet = (source_lines[line - 1].strip()
                   if 0 < line <= len(source_lines) else "")
        return Finding(rule=self.name, path=path, line=line,
                       message=message, snippet=snippet)


def _iter_sources(root: pathlib.Path,
                  paths: Optional[Sequence[str]]) -> Iterator[pathlib.Path]:
    if paths:
        for p in paths:
            target = (root / p) if not pathlib.Path(p).is_absolute() \
                else pathlib.Path(p)
            if target.is_dir():
                yield from sorted(target.rglob("*.py"))
            else:
                yield target
        return
    yield from sorted((root / "src").rglob("*.py"))


def run_lint(root: "pathlib.Path | str", *,
             rules: Optional[Sequence[Rule]] = None,
             paths: Optional[Sequence[str]] = None) -> list[Finding]:
    """Run *rules* (default: the full catalogue) over the tree at *root*.

    Files that fail to parse produce a synthetic ``parse-error`` finding
    rather than aborting the run: a broken file must fail the gate, not
    hide from it.
    """
    from .rules import ALL_RULES

    root = pathlib.Path(root)
    active = list(ALL_RULES) if rules is None else list(rules)
    findings: list[Finding] = []
    for source_path in _iter_sources(root, paths):
        rel = source_path.resolve().relative_to(root.resolve()).as_posix()
        try:
            source = source_path.read_text()
            tree = ast.parse(source, filename=rel)
        except (OSError, SyntaxError) as exc:
            findings.append(Finding(rule="parse-error", path=rel, line=1,
                                    message=str(exc)))
            continue
        source_lines = source.splitlines()
        for rule in active:
            if rule.applies_to(rel):
                findings.extend(rule.check(tree, source_lines, rel))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ---------------------------------------------------------------- baseline

def load_baseline(path: "pathlib.Path | str") -> Baseline:
    """Read a committed baseline; a missing file is an empty baseline."""
    try:
        doc = json.loads(pathlib.Path(path).read_text())
    except FileNotFoundError:
        return {}
    return {str(k): int(v) for k, v in doc.get("findings", {}).items()}


def write_baseline(path: "pathlib.Path | str",
                   findings: Iterable[Finding]) -> Baseline:
    """Persist the current findings as the new accepted debt."""
    counts = Counter(f.fingerprint for f in findings)
    doc = {
        "comment": "accepted lint debt -- regenerate with "
                   "`python -m repro.analysis.lint --update-baseline`; "
                   "keys are line-drift-stable finding fingerprints",
        "findings": dict(sorted(counts.items())),
    }
    pathlib.Path(path).write_text(json.dumps(doc, indent=2,
                                             sort_keys=True) + "\n")
    return dict(counts)


def new_findings(findings: Sequence[Finding],
                 baseline: Baseline) -> list[Finding]:
    """Occurrences beyond the baseline's per-fingerprint allowance.

    Within one fingerprint the earliest occurrences are considered
    covered, so the reported "new" ones are the later duplicates --
    arbitrary but deterministic.
    """
    remaining = dict(baseline)
    out = []
    for f in findings:
        allowance = remaining.get(f.fingerprint, 0)
        if allowance > 0:
            remaining[f.fingerprint] = allowance - 1
        else:
            out.append(f)
    return out

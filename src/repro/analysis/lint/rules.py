"""The project rule catalogue (DESIGN §5.9).

Each rule encodes one discipline this codebase actually relies on; the
docstrings say *why*, because a rule nobody can justify gets deleted at
the first false positive.  Rules are pure AST walks -- no imports of the
checked code -- so the linter can never be broken by the bug it is
trying to catch.
"""

from __future__ import annotations

import ast
from typing import Iterator, Sequence

from .core import Finding, Rule

#: the packed schedulers' placement loops: the per-candidate hot path
#: that earlier perf PRs rewrote onto preallocated arenas
HOT_FUNCTIONS = frozenset({
    "try_schedule_at_ii",   # ims.py
    "try_sms_at_ii",        # sms.py
    "try_at_ii",            # partitioners
    "first_free",           # mrt.py slot search
})

#: compile paths whose behaviour is captured by the job fingerprint:
#: wall-clock or unseeded randomness here silently breaks cache identity
DETERMINISTIC_PREFIXES = (
    "src/repro/ir/",
    "src/repro/sched/",
    "src/repro/regalloc/",
    "src/repro/machine/",
    "src/repro/workloads/",
    "src/repro/verify/",
    "src/repro/runner/fingerprint.py",
)

#: packages the strict typing gate covers (mirrors mypy.ini)
TYPED_PREFIXES = (
    "src/repro/ir/",
    "src/repro/sched/",
    "src/repro/runner/",
    "src/repro/service/",
    "src/repro/faults/",
)


def _in_loop_allocations(body: list[ast.stmt]) -> Iterator[ast.AST]:
    """Allocation expressions lexically inside for/while loops."""
    alloc_nodes = (ast.Dict, ast.List, ast.Set, ast.ListComp,
                   ast.DictComp, ast.SetComp)
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, (ast.For, ast.While)):
                for inner in ast.walk(node):
                    if isinstance(inner, alloc_nodes):
                        yield inner


class HotLoopAllocRule(Rule):
    """R001: no dict/list/set allocation inside the placement loops.

    ``try_schedule_at_ii`` and the slot searches run per candidate slot
    per II attempt; the arena refactors moved their state onto
    preallocated arrays, and a stray literal or comprehension inside the
    loop quietly reintroduces per-iteration garbage.
    """

    name = "R001-hot-loop-alloc"
    description = ("no dict/list/set literals or comprehensions inside "
                   "loops of the scheduler placement hot path")

    def check(self, tree: ast.AST, source_lines: Sequence[str],
              path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                    and node.name in HOT_FUNCTIONS):
                seen: set[int] = set()
                for alloc in _in_loop_allocations(node.body):
                    if id(alloc) in seen:
                        continue
                    seen.add(id(alloc))
                    yield self.finding(
                        path, alloc,
                        f"allocation inside the {node.name} placement "
                        f"loop (hoist it or use the arena)",
                        source_lines)


class NondeterminismRule(Rule):
    """R002: no wall-clock or unseeded randomness on fingerprinted paths.

    The result cache equates jobs by a content hash of (ddg, machine,
    options); anything the compile path reads from the clock or a global
    RNG is invisible to that hash, so two "identical" jobs could produce
    different records.  ``time.perf_counter`` (durations, never
    identity) and seeded ``random.Random(seed)`` instances are fine.
    """

    name = "R002-nondeterminism"
    description = ("no time.time/datetime.now/unseeded randomness in "
                   "deterministic fingerprinted compile paths")

    _WALL_CLOCK = {("time", "time"), ("time", "time_ns")}
    _DATETIME_ATTRS = {"now", "utcnow", "today"}
    _RANDOM_MODULES = {"random", "_random"}

    def applies_to(self, path: str) -> bool:
        return path.startswith(DETERMINISTIC_PREFIXES)

    def check(self, tree: ast.AST, source_lines: Sequence[str],
              path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            base = func.value
            base_name = base.id if isinstance(base, ast.Name) else None
            if (base_name, func.attr) in self._WALL_CLOCK:
                yield self.finding(path, node,
                                   "wall-clock read on a fingerprinted "
                                   "path (use time.perf_counter for "
                                   "durations)", source_lines)
            elif (func.attr in self._DATETIME_ATTRS
                  and "datetime" in ast.dump(base)):
                yield self.finding(path, node,
                                   "datetime read on a fingerprinted "
                                   "path", source_lines)
            elif base_name in self._RANDOM_MODULES:
                if func.attr == "SystemRandom":
                    yield self.finding(path, node,
                                       "OS-entropy randomness on a "
                                       "fingerprinted path", source_lines)
                elif func.attr == "Random":
                    if not node.args and not node.keywords:
                        yield self.finding(
                            path, node,
                            "unseeded random.Random() on a "
                            "fingerprinted path (pass a seed)",
                            source_lines)
                else:
                    yield self.finding(
                        path, node,
                        f"module-level random.{func.attr}() uses the "
                        f"global unseeded RNG (use a seeded "
                        f"random.Random instance)", source_lines)


def _is_write_call(node: ast.Call) -> bool:
    """open()/Path.open() with a writing mode, or Path.write_text/bytes."""
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr in ("write_text",
                                                         "write_bytes"):
        return True
    opens = (isinstance(func, ast.Name) and func.id == "open") or \
        (isinstance(func, ast.Attribute) and func.attr == "open")
    if not opens:
        return False
    mode = None
    if len(node.args) >= (2 if isinstance(func, ast.Name) else 1):
        mode = node.args[1 if isinstance(func, ast.Name) else 0]
    for kw in node.keywords:
        if kw.arg == "mode":
            mode = kw.value
    return (isinstance(mode, ast.Constant) and isinstance(mode.value, str)
            and any(c in mode.value for c in "wa+x"))


def _takes_shard_lock(item: ast.withitem) -> bool:
    expr = item.context_expr
    return (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Attribute)
            and expr.func.attr == "_shard_lock")


class ShardLockRule(Rule):
    """R003: every shard write of ``ShardedResultCache`` holds its flock.

    The sharded store is written concurrently by worker pools and the
    daemon; a write outside ``with self._shard_lock(shard):`` interleaves
    half-lines into the JSONL shard, which the loader then counts as
    corruption.  The in-memory ``_mutex`` is not enough -- it serialises
    one process, not the fleet.
    """

    name = "R003-shard-lock"
    description = ("writes to cache shards must happen under "
                   "`with self._shard_lock(...)`")

    def applies_to(self, path: str) -> bool:
        return path == "src/repro/runner/cache.py"

    def check(self, tree: ast.AST, source_lines: Sequence[str],
              path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (isinstance(node, ast.ClassDef)
                    and node.name == "ShardedResultCache"):
                yield from self._visit(node, False, path, source_lines)

    def _visit(self, node: ast.AST, locked: bool, path: str,
               source_lines: Sequence[str]) -> Iterator[Finding]:
        if isinstance(node, ast.With):
            locked = locked or any(_takes_shard_lock(i)
                                   for i in node.items)
        if (not locked and isinstance(node, ast.Call)
                and _is_write_call(node)):
            yield self.finding(path, node,
                               "shard write outside `with "
                               "self._shard_lock(...)`", source_lines)
        for child in ast.iter_child_nodes(node):
            yield from self._visit(child, locked, path, source_lines)


class BareExceptRule(Rule):
    """R004: no bare ``except:`` anywhere in the package.

    A bare except swallows ``KeyboardInterrupt``/``SystemExit`` -- in the
    asyncio daemon that turns Ctrl-C into a hung service, and everywhere
    else it hides the exception type the handler actually expected.
    """

    name = "R004-bare-except"
    description = "handlers must name an exception type"

    def check(self, tree: ast.AST, source_lines: Sequence[str],
              path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.finding(path, node,
                                   "bare `except:` (name the exception "
                                   "type, or `except Exception` at the "
                                   "service boundary)", source_lines)


class TracerDisciplineRule(Rule):
    """R005: tracer call sites go through the shared no-op span pattern.

    ``repro.obs.trace`` exports ``span()``/``job_capture()`` wrappers
    whose disabled path is a cached no-op; touching the ``_TRACER``
    singleton directly bypasses that (and the overhead accounting the
    perf observatory relies on), so only ``obs/trace.py`` itself may
    reference it.
    """

    name = "R005-tracer-discipline"
    description = ("only repro.obs.trace may touch the _TRACER "
                   "singleton; call sites use span()/job_capture()")

    def applies_to(self, path: str) -> bool:
        return path != "src/repro/obs/trace.py"

    def check(self, tree: ast.AST, source_lines: Sequence[str],
              path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            name = None
            if isinstance(node, ast.Attribute):
                name = node.attr
            elif isinstance(node, ast.Name):
                name = node.id
            if name == "_TRACER":
                yield self.finding(path, node,
                                   "direct _TRACER access (use the "
                                   "span()/job_capture() wrappers)",
                                   source_lines)


class UntypedDefRule(Rule):
    """R006: defs in the strictly-typed packages carry annotations.

    CI runs ``mypy --strict`` over these packages, but mypy is not in
    the local toolchain; this rule is the self-contained approximation
    that keeps annotation coverage honest between CI runs.  ``self``/
    ``cls`` and ``__init__`` return types follow mypy's conventions.
    """

    name = "R006-untyped-def"
    description = ("functions in ir/, sched/, runner/, service/ must "
                   "annotate every parameter and the return type")

    def applies_to(self, path: str) -> bool:
        return path.startswith(TYPED_PREFIXES)

    def check(self, tree: ast.AST, source_lines: Sequence[str],
              path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            args = node.args
            params = (args.posonlyargs + args.args + args.kwonlyargs
                      + ([args.vararg] if args.vararg else [])
                      + ([args.kwarg] if args.kwarg else []))
            missing = [a.arg for a in params
                       if a.annotation is None
                       and a.arg not in ("self", "cls")]
            wants_return = node.returns is None and node.name != "__init__"
            if missing:
                yield self.finding(
                    path, node,
                    f"def {node.name}: unannotated parameter(s) "
                    f"{', '.join(missing)}", source_lines)
            elif wants_return:
                yield self.finding(
                    path, node,
                    f"def {node.name}: missing return annotation",
                    source_lines)


#: the registry the runner, CLI and CI job iterate
ALL_RULES: tuple[Rule, ...] = (
    HotLoopAllocRule(),
    NondeterminismRule(),
    ShardLockRule(),
    BareExceptRule(),
    TracerDisciplineRule(),
    UntypedDefRule(),
)

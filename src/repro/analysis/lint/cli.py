"""Lint runner CLI: ``python -m repro.analysis.lint`` / ``repro-lint``.

Exit codes follow the repo convention: 0 = no new findings; 1 = new
findings vs the baseline; 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Optional, Sequence

from .core import load_baseline, new_findings, run_lint, write_baseline
from .rules import ALL_RULES

DEFAULT_BASELINE = "tools/lint-baseline.json"


def _repo_root(start: Optional[str]) -> pathlib.Path:
    """The repository root: --root, or the nearest ancestor of cwd that
    has a src/repro tree."""
    if start:
        return pathlib.Path(start)
    here = pathlib.Path.cwd()
    for candidate in (here, *here.parents):
        if (candidate / "src" / "repro").is_dir():
            return candidate
    return here


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-lint",
        description="project lint: repo-specific AST rules "
                    "(DESIGN §5.9)",
        epilog="exit codes: 0 = no new findings; 1 = new findings vs "
               "the baseline; 2 = usage error")
    p.add_argument("paths", nargs="*",
                   help="files or directories to lint "
                        "(default: src/, repo-relative)")
    p.add_argument("--root", default=None, metavar="DIR",
                   help="repository root (default: nearest ancestor "
                        "with a src/repro tree)")
    p.add_argument("--baseline", default=DEFAULT_BASELINE, metavar="FILE",
                   help=f"findings baseline, repo-relative "
                        f"(default {DEFAULT_BASELINE}); '' compares "
                        f"against an empty baseline")
    p.add_argument("--update-baseline", action="store_true",
                   help="rewrite the baseline to accept the current "
                        "findings as debt")
    p.add_argument("--list-rules", action="store_true",
                   help="list the rule catalogue and exit")
    p.add_argument("--json", action="store_true",
                   help="emit all findings (not just new ones) as JSON")
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name:<24} {rule.description}")
        return 0

    root = _repo_root(args.root)
    if not (root / "src").is_dir():
        print(f"repro-lint: no src/ under {root} (pass --root)",
              file=sys.stderr)
        return 2
    findings = run_lint(root, paths=args.paths or None)

    if args.json:
        print(json.dumps([{
            "rule": f.rule, "path": f.path, "line": f.line,
            "message": f.message, "fingerprint": f.fingerprint,
        } for f in findings], indent=2))

    baseline_path = root / args.baseline if args.baseline else None
    if args.update_baseline:
        if baseline_path is None:
            print("repro-lint: --update-baseline needs --baseline",
                  file=sys.stderr)
            return 2
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        write_baseline(baseline_path, findings)
        print(f"baseline: {len(findings)} finding(s) accepted -> "
              f"{baseline_path}")
        return 0

    baseline = load_baseline(baseline_path) if baseline_path else {}
    fresh = new_findings(findings, baseline)
    if not args.json:
        for f in fresh:
            print(f.describe())
    known = len(findings) - len(fresh)
    print(f"repro-lint: {len(findings)} finding(s), {known} in "
          f"baseline, {len(fresh)} new", file=sys.stderr)
    return 1 if fresh else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

"""Entry point for ``python -m repro.analysis.lint``."""

import sys

from .cli import main

sys.exit(main())

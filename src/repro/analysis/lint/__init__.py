"""Project lint: AST-walking analyzers for repo-specific disciplines.

The generic linters this repo could run know nothing about its actual
invariants -- that the packed schedulers must not allocate inside the
placement loop, that fingerprinted compile paths must stay free of
wall-clock and unseeded randomness, that every shard write of the
result cache happens under its flock, that the daemon never swallows
exceptions bare, that tracer call sites go through the shared no-op
span pattern.  Each of those is a one-screen AST rule, and this package
is the small framework that runs them (DESIGN §5.9).

Findings diff against a committed baseline (``tools/lint-baseline.json``)
so pre-existing debt is visible but only *new* findings fail the build:

    python -m repro.analysis.lint            # exit 1 on new findings
    python -m repro.analysis.lint --update-baseline

Adding a rule: subclass :class:`Rule` in ``rules.py``, give it a unique
``name``/``description``, implement ``check(tree, source, path)``, and
append it to ``ALL_RULES``.  The runner, the baseline diff, the CLI and
the tests pick it up from the registry.
"""

from .core import (Baseline, Finding, Rule, load_baseline, new_findings,
                   run_lint, write_baseline)
from .rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "Baseline",
    "Finding",
    "Rule",
    "load_baseline",
    "new_findings",
    "run_lint",
    "write_baseline",
]

"""ASCII rendering helpers: bar charts and experiment bundles.

The paper's figures are bar charts and line plots; in a terminal-only
environment we render them as labelled ASCII bars so a reader can eyeball
the same shapes.  ``full_report`` strings several experiments together --
that is what the CLI's ``report`` command and EXPERIMENTS.md use.
"""

from __future__ import annotations

from typing import Mapping, Sequence


def bar(value: float, scale: float = 1.0, width: int = 40,
        char: str = "#") -> str:
    """One horizontal bar; *value* in [0, scale]."""
    if scale <= 0:
        return ""
    n = int(round(max(0.0, min(1.0, value / scale)) * width))
    return char * n


def bar_chart(data: Mapping[str, float], *, scale: float | None = None,
              width: int = 40, fmt: str = "{:6.1f}") -> str:
    """Labelled horizontal bar chart."""
    if not data:
        return "(no data)"
    scale = scale if scale is not None else max(data.values()) or 1.0
    label_w = max(len(str(k)) for k in data)
    lines = []
    for key, value in data.items():
        lines.append(f"{str(key):<{label_w}} | "
                     f"{bar(value, scale, width)} {fmt.format(value)}")
    return "\n".join(lines)


def percent_chart(data: Mapping[str, float], **kwargs) -> str:
    """Bar chart of fractions rendered as percentages."""
    return bar_chart({k: v * 100 for k, v in data.items()},
                     scale=100.0, fmt="{:5.1f}%", **kwargs)


def series_table(x_label: str, xs: Sequence[int],
                 series: Mapping[str, Mapping[int, float]],
                 fmt: str = "{:8.2f}") -> str:
    """Multi-series table keyed by an integer x-axis (Figs. 8-9 style)."""
    names = list(series)
    header = f"{x_label:>5} " + " ".join(f"{n:>18}" for n in names)
    lines = [header]
    for x in xs:
        cells = []
        for n in names:
            v = series[n].get(x)
            cells.append(f"{fmt.format(v):>18}" if v is not None
                         else " " * 18)
        lines.append(f"{x:>5} " + " ".join(cells))
    return "\n".join(lines)


def full_report(loops, *, include_sweep: bool = False,
                runner=None) -> str:
    """Run the paper's headline experiments on *loops* and bundle the
    rendered outputs (the IPC sweep is optional -- it dominates runtime).

    *runner* is an optional :class:`repro.runner.RunnerConfig`; it is
    threaded through every driver, so ``--jobs N`` parallelises and the
    result cache accelerates the whole bundle.
    """
    from .experiments import (fig3_queue_requirements, fig4_unroll_speedup,
                              fig6_ii_variation, fig8_ipc, sec2_copy_impact,
                              sec4_cluster_queues)

    parts = [
        fig3_queue_requirements(loops, runner=runner).render(),
        sec2_copy_impact(loops, runner=runner).render(),
        fig4_unroll_speedup(loops, runner=runner).render(),
        fig6_ii_variation(loops, runner=runner).render(),
        sec4_cluster_queues(loops, runner=runner).render(),
    ]
    if include_sweep:
        parts.append(fig8_ipc(loops, runner=runner).render())
    sep = "\n\n" + "=" * 72 + "\n\n"
    return sep.join(parts)

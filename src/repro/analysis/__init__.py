"""Experiment drivers and metrics for every paper figure.

Exports resolve lazily (PEP 562): the experiment drivers import the
:mod:`repro.runner` subsystem, whose workers in turn import
:mod:`repro.analysis.metrics`, and lazy resolution keeps that mutual
reference acyclic no matter which side is imported first.
"""

import importlib

_EXPORTS = {
    "experiments": [
        "CompiledLoop", "CopyTreeAblation", "Fig3Result", "Fig4Result",
        "Fig6Result", "IpcSweepResult", "MovesAblation", "PartitionAblation",
        "Sec2Result", "Sec4Result", "HardwareCostResult", "hardware_cost",
        "ablation_copy_tree", "ablation_moves", "ablation_partition",
        "compile_loop", "fig3_queue_requirements", "fig4_unroll_speedup",
        "fig6_ii_variation", "fig8_ipc", "fig9_ipc_rc", "ipc_sweep",
        "sec2_copy_impact", "sec4_cluster_queues", "register_pressure",
        "RegisterPressureResult", "spill_budget", "SpillBudgetResult",
        "ring_latency_sensitivity", "RingLatencyResult",
    ],
    "metrics": [
        "LoopOutcome", "cumulative_within", "fraction", "mean",
        "mean_static_ipc", "percentile", "weighted_dynamic_ipc",
        "weighted_static_ipc",
    ],
    "report": [
        "bar_chart", "full_report", "percent_chart", "series_table",
    ],
}

_NAME_TO_MODULE = {name: module
                   for module, names in _EXPORTS.items()
                   for name in names}

__all__ = sorted(_NAME_TO_MODULE)


def __getattr__(name: str):
    module = _NAME_TO_MODULE.get(name)
    if module is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    value = getattr(importlib.import_module(f".{module}", __name__), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))

"""Experiment drivers and metrics for every paper figure."""

from .experiments import (CompiledLoop, CopyTreeAblation, Fig3Result,
                          Fig4Result, Fig6Result, IpcSweepResult,
                          MovesAblation, PartitionAblation, Sec2Result,
                          Sec4Result, HardwareCostResult, hardware_cost,
                          ablation_copy_tree, ablation_moves,
                          ablation_partition, compile_loop, fig3_queue_requirements,
                          fig4_unroll_speedup, fig6_ii_variation, fig8_ipc,
                          fig9_ipc_rc, ipc_sweep, sec2_copy_impact,
                          sec4_cluster_queues, register_pressure,
                          RegisterPressureResult, spill_budget,
                          SpillBudgetResult, ring_latency_sensitivity,
                          RingLatencyResult)
from .metrics import (LoopOutcome, cumulative_within, fraction, mean,
                      mean_static_ipc, percentile, weighted_dynamic_ipc,
                      weighted_static_ipc)
from .report import bar_chart, full_report, percent_chart, series_table

__all__ = [
    "CompiledLoop", "CopyTreeAblation", "Fig3Result", "Fig4Result",
    "Fig6Result", "IpcSweepResult", "MovesAblation", "PartitionAblation",
    "Sec2Result", "Sec4Result", "ablation_copy_tree", "ablation_moves",
    "ablation_partition", "compile_loop", "fig3_queue_requirements",
    "fig4_unroll_speedup", "fig6_ii_variation", "fig8_ipc", "fig9_ipc_rc",
    "ipc_sweep", "sec2_copy_impact", "sec4_cluster_queues",
    "HardwareCostResult", "hardware_cost",
    "register_pressure", "RegisterPressureResult", "spill_budget",
    "SpillBudgetResult", "ring_latency_sensitivity", "RingLatencyResult",
    "LoopOutcome", "cumulative_within", "fraction", "mean",
    "mean_static_ipc", "percentile", "weighted_dynamic_ipc",
    "bar_chart", "full_report", "percent_chart", "series_table",
]

"""Command-line interface: ``repro-vliw``.

Subcommands:

* ``repro-vliw corpus``             -- corpus summary statistics
* ``repro-vliw schedule <kernel>``  -- schedule one named kernel and dump
  the kernel table, queue allocation and a simulation report
* ``repro-vliw experiment <id>``    -- run one paper experiment
  (``experiment --list`` enumerates them)
* ``repro-vliw schedulers``         -- list the registered scheduling
  engines
* ``repro-vliw partitioners``       -- list the registered
  cluster-partitioning engines
* ``repro-vliw verify``             -- prove schedules with the static
  verifier (DESIGN §5.9): the full golden engine x kernel matrix by
  default, ``--mutations N`` to also demand the seeded corruption
  corpus is 100% rejected
* ``repro-vliw report``             -- the perf observatory: trend
  tables + HTML dashboard over the committed ``BENCH_*.json`` records
  and the bench history (``--check`` gates regressions, ``--append``
  grows the history; ``--experiments`` is the old experiment bundle)
* ``repro-vliw trace <kernel>``     -- compile one kernel with tracing
  on and print the per-stage time breakdown (``schedule --trace`` does
  the same after the normal schedule dump)
* ``repro-vliw bench``              -- run a named benchmark and gate it
  against ``benchmarks/baseline.json`` (the CI perf-smoke check, local)
* ``repro-vliw cache``              -- inspect (``stats``), compact
  (``gc --max-bytes``), migrate or clear the result cache
* ``repro-vliw serve``              -- run the sweep service daemon
  (``POST /jobs`` + Prometheus ``/metrics``; see DESIGN §5.7/§5.8)
* ``repro-vliw submit``             -- submit kernels to a running
  daemon over HTTP (smoke/testing client)

Experiment sweeps honour ``--jobs N`` (parallel workers; output is
byte-identical to the serial run), ``--no-cache`` and ``--cache-dir``,
plus the supervision knobs ``--job-deadline`` / ``--retries`` and the
chaos flag ``--faults SPEC`` (seeded fault injection, DESIGN §5.10);
``schedule`` and ``experiment`` take ``--scheduler`` to pick the
scheduling engine (default ``ims``), ``--partitioner`` to pick the
clustered engine (default ``affinity``) and ``--ii-search`` to pick the
II search mode (``adaptive`` default, ``linear`` for the historical
walk; both produce identical schedules).  Engine names are validated
against the registries before anything compiles, so a typo lists the
available names instead of failing mid-sweep.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.machine.presets import clustered_machine, qrf_machine
from repro.sched.iisearch import DEFAULT_II_SEARCH, II_SEARCH_MODES
from repro.sched.partitioners import (DEFAULT_PARTITIONER,
                                      available_partitioners,
                                      partitioner_descriptions)
from repro.sched.strategies import (DEFAULT_SCHEDULER, available_schedulers,
                                    scheduler_descriptions)
from repro.sim.checker import run_pipeline
from repro.workloads.corpus import bench_corpus, corpus_stats, paper_corpus
from repro.workloads.kernels import KERNELS, kernel

#: experiment id -> (one-line description, driver invocation).  The lambda
#: takes (loops, runner, scheduler, partitioner, ii_search) so
#: ``--scheduler``, ``--partitioner`` and ``--ii-search`` thread through
#: every driver; the compare experiments (``sc``, ``pc``) and the
#: partition ablation sweep all engines themselves.
EXPERIMENTS = {
    "fig3": ("Fig. 3: loops schedulable within N queues",
             lambda ex, l, r, s, p, i: ex.fig3_queue_requirements(
                 l, runner=r, scheduler=s, ii_search=i)),
    "sec2": ("Section 2: copy-insertion impact on II / stage count",
             lambda ex, l, r, s, p, i: ex.sec2_copy_impact(
                 l, runner=r, scheduler=s, ii_search=i)),
    "fig4": ("Fig. 4: II speedup from loop unrolling",
             lambda ex, l, r, s, p, i: ex.fig4_unroll_speedup(
                 l, runner=r, scheduler=s, ii_search=i)),
    "fig6": ("Fig. 6: clustered vs single-cluster II",
             lambda ex, l, r, s, p, i: ex.fig6_ii_variation(
                 l, runner=r, scheduler=s, partitioner=p, ii_search=i)),
    "sec4": ("Section 4 / Fig. 7: per-cluster queue budgets",
             lambda ex, l, r, s, p, i: ex.sec4_cluster_queues(
                 l, runner=r, scheduler=s, partitioner=p, ii_search=i)),
    "fig8": ("Fig. 8: IPC sweep, all loops",
             lambda ex, l, r, s, p, i: ex.fig8_ipc(
                 l, runner=r, scheduler=s, partitioner=p, ii_search=i)),
    "fig9": ("Fig. 9: IPC sweep, resource-constrained loops",
             lambda ex, l, r, s, p, i: ex.fig9_ipc_rc(
                 l, runner=r, scheduler=s, partitioner=p, ii_search=i)),
    "a1": ("ablation: copy fan-out tree strategy",
           lambda ex, l, r, s, p, i: ex.ablation_copy_tree(
               l, runner=r, scheduler=s, ii_search=i)),
    "a2": ("ablation: cluster-partition heuristic",
           lambda ex, l, r, s, p, i: ex.ablation_partition(
               l, runner=r, scheduler=s, ii_search=i)),
    "a3": ("ablation: explicit inter-cluster MOVE ops",
           lambda ex, l, r, s, p, i: ex.ablation_moves(
               l, runner=r, scheduler=s, partitioner=p, ii_search=i)),
    "a4": ("sensitivity: inter-cluster ring latency",
           lambda ex, l, r, s, p, i: ex.ring_latency_sensitivity(
               l, runner=r, scheduler=s, partitioner=p, ii_search=i)),
    "s1": ("supplementary: register pressure, QRF vs conventional RF",
           lambda ex, l, r, s, p, i: ex.register_pressure(
               l, runner=r, scheduler=s, ii_search=i)),
    "e6b": ("spill code under finite queue files",
            lambda ex, l, r, s, p, i: ex.spill_budget(
                l, runner=r, scheduler=s, ii_search=i)),
    "sc": ("scheduler comparison: all registered engines head to head",
           lambda ex, l, r, s, p, i: ex.exp_scheduler_compare(
               l, runner=r, ii_search=i)),
    "pc": ("partitioner comparison: all registered engines head to head",
           lambda ex, l, r, s, p, i: ex.exp_partitioner_compare(
               l, runner=r, scheduler=s, ii_search=i)),
}


def _loops(args) -> list:
    if args.full:
        return paper_corpus()
    return bench_corpus(args.sample)


def _runner(args):
    """Build the sweep-runner config from the CLI flags.

    Caching defaults on (keys are content hashes, so stale entries are
    unreachable); ``--no-cache`` disables it and ``--cache-dir`` (or
    ``$REPRO_CACHE_DIR``) relocates the store.  The backend is picked by
    layout: existing single-file caches stay legacy, new directories get
    the sharded concurrently-writable store (see ``repro-vliw cache``).
    """
    from repro.runner import RunnerConfig, open_cache

    cache = None if args.no_cache else open_cache(args.cache_dir)
    progress = None
    if args.jobs > 1 and sys.stderr.isatty():  # pragma: no cover
        def progress(done, total):
            print(f"\r{done}/{total} jobs", end="", file=sys.stderr,
                  flush=True)
    return RunnerConfig(n_workers=args.jobs, cache=cache,
                        progress=progress,
                        job_deadline_s=args.job_deadline or None,
                        max_retries=args.retries)


def cmd_corpus(args) -> int:
    loops = _loops(args)
    print(corpus_stats(loops).render())
    return 0


def _kernel_target(args) -> "Optional[tuple]":
    """Resolve the (ddg, machine) a ``schedule``/``trace`` invocation
    names, or None after printing the listing / an error (the caller
    returns ``args.exit_code``)."""
    if args.list:
        for name in sorted(KERNELS):
            print(f"{name:<12} {KERNELS[name]().n_ops:3d} ops")
        args.exit_code = 0
        return None
    if args.kernel is None:
        print(f"{args.command}: kernel name required (or --list)",
              file=sys.stderr)
        args.exit_code = 2
        return None
    if args.kernel not in KERNELS:
        print(f"unknown kernel {args.kernel!r}; available: "
              f"{', '.join(sorted(KERNELS))}", file=sys.stderr)
        args.exit_code = 2
        return None
    machine = (clustered_machine(args.clusters) if args.clusters
               else qrf_machine(args.fus))
    return kernel(args.kernel), machine


def cmd_schedule(args) -> int:
    target = _kernel_target(args)
    if target is None:
        return args.exit_code
    ddg, machine = target
    if args.trace:
        from repro.obs.trace import enable_tracing, reset_tracing
        enable_tracing()
        reset_tracing()
    import time
    t0 = time.perf_counter()
    res = run_pipeline(ddg, machine, unroll_factor=args.unroll,
                       iterations=args.iterations,
                       scheduler=args.scheduler,
                       partitioner=args.partitioner,
                       ii_search=args.ii_search)
    wall = time.perf_counter() - t0
    print(res.schedule.render())
    if args.asm:
        from repro.codegen.encode import render_assembly
        print()
        print(render_assembly(res.schedule, res.usage))
    print()
    for loc, alloc in res.usage.by_location.items():
        print(f"{loc.describe()}: {alloc.n_queues} queues, "
              f"max depth {alloc.max_depth}")
    print()
    sim = res.sim
    print(f"simulated {sim.iterations} iterations: {sim.cycles} cycles, "
          f"{sim.ops_executed} ops, {sim.reads_checked} reads verified, "
          f"dynamic IPC {sim.dynamic_ipc:.2f}")
    if args.trace:
        from repro.obs.trace import stage_breakdown, trace_snapshot
        print()
        print(stage_breakdown(trace_snapshot(), wall_s=wall))
    return 0


def cmd_trace(args) -> int:
    """Compile one kernel with tracing enabled and print the per-stage
    breakdown -- same knobs as ``schedule``, but the schedule dump is
    replaced by the time accounting."""
    import time

    from repro.obs.trace import (enable_tracing, reset_tracing,
                                 stage_breakdown, trace_snapshot)

    target = _kernel_target(args)
    if target is None:
        return args.exit_code
    ddg, machine = target
    enable_tracing()
    reset_tracing()
    t0 = time.perf_counter()
    res = run_pipeline(ddg, machine, unroll_factor=args.unroll,
                       iterations=args.iterations,
                       scheduler=args.scheduler,
                       partitioner=args.partitioner,
                       ii_search=args.ii_search)
    wall = time.perf_counter() - t0
    from repro.kernels import active_name
    print(f"{args.kernel}: II={res.schedule.ii} "
          f"stages={res.schedule.stage_count} "
          f"dynamic IPC {res.sim.dynamic_ipc:.2f} "
          f"(kernels={active_name()})")
    print()
    print(stage_breakdown(trace_snapshot(), wall_s=wall))
    return 0


def cmd_experiment(args) -> int:
    from repro.analysis import experiments as ex

    if args.list:
        for exp_id, (descr, _) in EXPERIMENTS.items():
            print(f"{exp_id:<6} {descr}")
        return 0
    if args.id is None:
        print("experiment: id required (or --list)", file=sys.stderr)
        return 2
    if args.id not in EXPERIMENTS:
        print(f"unknown experiment {args.id!r}; available: "
              f"{', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    _, drive = EXPERIMENTS[args.id]
    print(drive(ex, _loops(args), _runner(args), args.scheduler,
                args.partitioner, args.ii_search).render())
    return 0


def cmd_schedulers(args) -> int:
    for name, descr in scheduler_descriptions().items():
        default = "  (default)" if name == DEFAULT_SCHEDULER else ""
        print(f"{name:<6} {descr}{default}")
    return 0


def cmd_partitioners(args) -> int:
    for name, descr in partitioner_descriptions().items():
        default = "  (default)" if name == DEFAULT_PARTITIONER else ""
        print(f"{name:<14} {descr}{default}")
    return 0


def cmd_kernels(args) -> int:
    """List the compute-kernel backends (``repro.kernels``): which are
    importable here, what ``auto`` resolves to, and which one is active
    after the environment / ``--kernels`` flag is applied."""
    from repro import kernels as _k

    info = _k.backend_info()
    for row in info["backends"]:
        name = row["name"]
        marks = []
        if name == info["active"]:
            marks.append("active")
        if name == info["auto_resolves_to"]:
            marks.append("auto")
        avail = "" if row.get("available", True) else "  [unavailable]"
        tag = f"  ({', '.join(marks)})" if marks else ""
        print(f"{name:<8} {row['description']}{avail}{tag}")
    print(f"numpy importable: {'yes' if info['numpy_available'] else 'no'}")
    print(f"auto resolves to: {info['auto_resolves_to']}")
    env = info["env"]
    print(f"selection: {info['requested']}"
          + (f"  (REPRO_KERNELS={env})" if env else ""))
    return 0


def cmd_report(args) -> int:
    """The perf observatory (default) or the old experiment bundle.

    The default ingests the ``BENCH_*.json`` records beside the history
    file, prints the per-metric trend table (robust median+MAD gate with
    the fixed-ratio fallback on short history) and renders the static
    HTML dashboard.  ``--check`` exits 1 when any gated metric is
    flagged; ``--append`` folds the fresh records into the history
    *after* gating, so a run never vouches for itself.
    ``--experiments`` restores the previous behaviour (the headline
    experiment bundle, with ``--sweep`` for the slow IPC sweep).
    """
    if args.experiments:
        from repro.analysis.report import full_report

        print(full_report(_loops(args), include_sweep=args.sweep,
                          runner=_runner(args)))
        return 0

    import json
    import os
    import pathlib

    from repro.obs import (BenchHistory, render_dashboard,
                           rows_from_record, trend_stats, trend_table)

    records_dir = pathlib.Path(
        args.records or os.environ.get("REPRO_BENCH_DIR") or ".")
    records = []
    for path in sorted(records_dir.glob("BENCH_*.json")):
        try:
            records.append(json.loads(path.read_text()))
        except (OSError, ValueError):
            print(f"report: skipping unreadable record {path}",
                  file=sys.stderr)
    history = BenchHistory(args.history)
    stats = trend_stats(history, records)
    print(trend_table(stats))
    if args.html:
        out = pathlib.Path(args.html)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(render_dashboard(history, stats))
        print(f"\ndashboard -> {out}")
    if args.append:
        rows = [row for rec in records for row in rows_from_record(rec)]
        appended = history.append(rows)
        print(f"history: {appended} new row(s) -> {history.path}")
    if args.check and any(s.verdict in ("regression", "missing")
                          for s in stats):
        return 1
    return 0


def _bench_dir() -> "pathlib.Path":
    """The ``benchmarks/`` directory of the current checkout."""
    import pathlib

    return pathlib.Path.cwd() / "benchmarks"


def _load_telemetry(bench_dir):
    """Import ``benchmarks/telemetry.py`` (not a package) by path."""
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "repro_bench_telemetry", bench_dir / "telemetry.py")
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _run_benchmark(bench_file) -> int:
    """Run one benchmark file under pytest in a subprocess (separated out
    so tests can stub the expensive part)."""
    import os
    import pathlib
    import subprocess

    import repro

    env = dict(os.environ)
    pkg_root = str(pathlib.Path(repro.__file__).resolve().parent.parent)
    env["PYTHONPATH"] = os.pathsep.join(
        [pkg_root] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
    return subprocess.run(
        [sys.executable, "-m", "pytest", str(bench_file), "-q"],
        env=env).returncode


def cmd_bench(args) -> int:
    """Run a named benchmark and gate it against the committed baseline.

    ``repro-vliw bench fig6_partition`` is the CI perf-smoke job in one
    local command: it runs ``benchmarks/bench_<name>.py``, reads the
    ``BENCH_<name>.json`` telemetry the benchmark wrote, and compares it
    against ``benchmarks/baseline.json`` with the same tolerance the CI
    gate uses.  Run it from the repository root.
    """
    bench_dir = _bench_dir()
    if not bench_dir.is_dir():
        print(f"bench: no benchmarks/ directory under {bench_dir.parent} "
              f"(run from the repository root)", file=sys.stderr)
        return 2
    names = sorted(p.stem[len("bench_"):]
                   for p in bench_dir.glob("bench_*.py"))
    if args.list:
        for name in names:
            print(name)
        return 0
    if args.name is None:
        print("bench: benchmark name required (or --list)", file=sys.stderr)
        return 2
    if args.name not in names:
        print(f"unknown benchmark {args.name!r}; available: "
              f"{', '.join(names)}", file=sys.stderr)
        return 2

    import time

    telemetry = _load_telemetry(bench_dir)
    started = time.time()
    code = _run_benchmark(bench_dir / f"bench_{args.name}.py")
    if code != 0:
        print(f"bench: benchmark run failed (exit {code})",
              file=sys.stderr)
        return code

    record = telemetry.bench_dir() / f"BENCH_{args.name}.json"
    # records are committed at the repo root, so existence alone is not
    # proof of a run: demand a record written by *this* invocation
    if not record.exists() or record.stat().st_mtime < started - 1:
        print(f"bench: {record} was not (re)written by this run; "
              f"nothing to gate", file=sys.stderr)
        return 2
    baseline = telemetry.load_baseline(bench_dir / "baseline.json")
    if args.name not in baseline["benches"]:
        rec = telemetry.read_bench(record)
        print(f"{args.name}: {rec['wall_s']:.2f}s -- NOT GATED "
              f"(no entry in benchmarks/baseline.json; add one to gate "
              f"this benchmark)")
        return 0
    report, failures = telemetry.check_against_baseline(
        [record], baseline, tolerance=args.tolerance)
    print("baseline comparison:")
    for line in report:
        print(line)
    if failures:
        print(f"\n{len(failures)} perf regression(s) beyond "
              f"{args.tolerance:.2f}x", file=sys.stderr)
        return 1
    print("\nwithin budget")
    return 0


def cmd_cache(args) -> int:
    """Inspect or maintain the result cache, either layout.

    ``stats`` (the default action) prints entry/byte counts and -- for
    the sharded backend -- per-shard occupancy; ``gc`` compacts every
    shard (deduping superseded records) and, with ``--max-bytes``,
    evicts oldest-first down to the budget; ``migrate`` folds a legacy
    single-file store into shards; ``clear`` drops everything.
    """
    from repro.runner import open_cache

    cache = open_cache(args.cache_dir)
    action = args.action or ("clear" if args.clear else "stats")
    if action == "clear":
        n = len(cache)
        cache.clear()
        print(f"cleared {n} cached results from {cache.path}")
        return 0
    if action == "migrate":
        if not hasattr(cache, "migrate"):
            cache = open_cache(args.cache_dir, backend="sharded")
        moved = cache.migrate()
        print(f"migrated {moved} legacy results into {cache.shard_dir}")
        return 0
    if action == "gc":
        report = cache.gc(args.max_bytes)
        print(f"gc: {report['before_bytes']} -> {report['after_bytes']} "
              f"bytes, {report['evicted']} evicted, "
              f"{report['compacted_shards']} shard(s) compacted")
        return 0
    stats = cache.stats()
    print(f"cache: {cache.path}  [{stats['backend']}]")
    print(f"{stats['entries']} results, {stats['bytes']} bytes"
          + (f", {stats['corrupt']} corrupt lines skipped"
             if stats["corrupt"] else ""))
    print(f"hits {stats['hits']}  misses {stats['misses']}  "
          f"stores {stats['stores']}  evictions {stats['evictions']}  "
          f"compactions {stats['compactions']}")
    occupancy = stats.get("shard_occupancy")
    if occupancy is not None:
        shards = " ".join(f"{n:d}" for n in occupancy)
        print(f"shard occupancy ({stats['n_shards']} shards): {shards}")
    return 0


def cmd_serve(args) -> int:
    """Run the sweep service daemon until SIGTERM/SIGINT.

    The daemon shares the CLI cache knobs: ``--cache-dir`` /
    ``--no-cache`` pick the store (sharded for new directories, so the
    daemon and concurrent CLI sweeps can share it) and the global
    ``--jobs`` sets the compile worker count.  ``--max-cache-bytes``
    bounds the store; shards over budget are compacted and evicted as
    the service runs and once more on shutdown.

    Tracing is on by default (the daemon exists to be observed: the
    per-stage latency histograms feed ``GET /metrics``); ``--no-trace``
    turns it off for overhead-sensitive deployments.
    """
    from repro.runner import open_cache
    from repro.service import SweepService, serve

    if not args.no_trace:
        from repro.obs.trace import enable_tracing
        enable_tracing()
    cache = None if args.no_cache else open_cache(
        args.cache_dir, max_bytes=args.max_cache_bytes)
    service = SweepService(cache, n_workers=args.jobs,
                           batch_window_s=args.batch_window,
                           batch_max=args.batch_max,
                           request_deadline_s=args.request_deadline,
                           max_queue_depth=args.max_queue_depth,
                           breaker_threshold=args.breaker_threshold,
                           breaker_cooldown_s=args.breaker_cooldown,
                           job_deadline_s=args.job_deadline or None,
                           max_retries=args.retries)
    serve(service, host=args.host, port=args.port)
    return 0


def cmd_submit(args) -> int:
    """Submit kernels to a running daemon (the smoke-test client)."""
    import http.client
    import json

    from repro.service.jobspec import kernel_job_spec

    options = {}
    if args.scheduler != DEFAULT_SCHEDULER:
        options["scheduler"] = args.scheduler
    if args.partitioner != DEFAULT_PARTITIONER:
        options["partitioner"] = args.partitioner
    specs = [kernel_job_spec(k, n_fus=args.fus,
                             n_clusters=args.clusters or None,
                             options=options or None)
             for k in args.kernels]
    conn = http.client.HTTPConnection(args.host, args.port,
                                      timeout=args.timeout)
    try:
        conn.request("POST", "/jobs", json.dumps({"jobs": specs}),
                     {"Content-Type": "application/json"})
        response = conn.getresponse()
        body = json.loads(response.read())
        if response.status != 200:
            print(f"submit: HTTP {response.status}: "
                  f"{body.get('error', body)}", file=sys.stderr)
            return 1
        results = body["results"]
        for result in results:
            outcome = result["outcome"]
            tag = "cached " if result["cached"] else "compiled"
            print(f"{outcome['loop']:<10} {outcome['machine']:<14} "
                  f"[{tag}] II={outcome['ii']:<3d} "
                  f"stages={outcome['stage_count']}")
        if args.metrics_out:
            conn.request("GET", "/metrics.json")
            snapshot = conn.getresponse().read().decode("utf-8")
            import pathlib
            pathlib.Path(args.metrics_out).write_text(snapshot)
            print(f"metrics snapshot -> {args.metrics_out}")
        if args.expect_cached and not all(r["cached"] for r in results):
            fresh = [r["outcome"]["loop"] for r in results
                     if not r["cached"]]
            print(f"submit: expected every result cached, but these "
                  f"compiled: {', '.join(fresh)}", file=sys.stderr)
            return 1
    finally:
        conn.close()
    return 0


def cmd_verify(args) -> int:
    """Prove schedules with the static verifier (DESIGN §5.9).

    With no kernel arguments this proves the full golden matrix: every
    registered scheduler x kernel on the 12-FU QRF machine and every
    registered partitioner x kernel on the 4-cluster ring -- the same
    engine x kernel grid the golden-fixture tests replay dynamically.
    ``--mutations N`` additionally runs N rounds of the seeded
    corruption corpus against each proved schedule and demands a 100%
    rejection rate (a verifier that cannot reject proves nothing).

    Exit codes: 0 = every schedule proved (and every mutation
    rejected); 1 = a proof failed or a corruption survived; 2 = usage
    error.
    """
    import json

    from repro.ir.copyins import insert_copies
    from repro.sched.partition import PartitionConfig, partitioned_schedule
    from repro.sched.schedule import SchedulingError
    from repro.sched.strategies import get_scheduler
    from repro.verify import mutation_corpus, verify_schedule

    names = args.kernels or sorted(KERNELS)
    unknown = [k for k in names if k not in KERNELS]
    if unknown:
        print(f"verify: unknown kernel(s) {', '.join(unknown)}; "
              f"available: {', '.join(sorted(KERNELS))}", file=sys.stderr)
        return 2

    single = qrf_machine(args.fus)
    ring = clustered_machine(args.clusters)
    targets = []          # (label, machine, build)
    for kernel_name in names:
        for scheduler in available_schedulers():
            targets.append((
                f"{scheduler}/{kernel_name}", single,
                lambda w, s=scheduler, m=single: get_scheduler(s)
                .schedule(w, m).schedule))
        for partitioner in available_partitioners():
            targets.append((
                f"{partitioner}/{kernel_name}", ring,
                lambda w, p=partitioner, m=ring: partitioned_schedule(
                    w, m, config=PartitionConfig(partitioner=p))))

    proof_failures = mutation_misses = n_mutations = 0
    verdicts = []
    for label, machine, build in targets:
        kernel_name = label.rsplit("/", 1)[1]
        work = insert_copies(kernel(kernel_name)).ddg
        try:
            sched = build(work)
        except SchedulingError as exc:
            print(f"FAIL  {label}: did not schedule ({exc})",
                  file=sys.stderr)
            proof_failures += 1
            continue
        verdict = verify_schedule(sched, machine)
        verdicts.append(verdict)
        if not verdict.ok:
            proof_failures += 1
            print("FAIL  " + verdict.describe(), file=sys.stderr)
        elif not args.json:
            print("ok    " + verdict.describe())
        if verdict.ok and args.mutations:
            for mut in mutation_corpus(sched, machine, seed=args.seed,
                                       rounds=args.mutations):
                n_mutations += 1
                got = verify_schedule(mut.schedule, mut.machine).kinds()
                if not (got & mut.expected):
                    mutation_misses += 1
                    print(f"MISS  {label}: {mut.name} survived "
                          f"({mut.description}); expected "
                          f"{sorted(k.value for k in mut.expected)}, "
                          f"got {sorted(k.value for k in got)}",
                          file=sys.stderr)

    if args.json:
        print(json.dumps([v.to_json() for v in verdicts], indent=2))
    else:
        proved = sum(1 for v in verdicts if v.ok)
        line = (f"\nverify: {proved}/{len(targets)} schedules proved, "
                f"{sum(sum(v.proved.values()) for v in verdicts)} "
                f"inequalities checked")
        if args.mutations:
            line += (f"; {n_mutations - mutation_misses}/{n_mutations} "
                     f"corruptions rejected")
        print(line)
    return 1 if (proof_failures or mutation_misses) else 0


#: the shared failure-exit convention: 0 = success, 1 = the check the
#: command was asked to make failed, 2 = usage error.  ``verify``,
#: ``report --check`` and ``submit --expect-cached`` all follow it.
EXIT_CODES_HELP = ("exit codes: 0 = success; 1 = check failed; "
                   "2 = usage error")


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="repro-vliw",
        description=__doc__.splitlines()[0])
    p.add_argument("--sample", type=int, default=None,
                   help="corpus subsample size (default: bench default)")
    p.add_argument("--full", action="store_true",
                   help="use the full 1258-loop corpus")
    p.add_argument("--jobs", type=int, default=1, metavar="N",
                   help="worker processes for experiment sweeps "
                        "(default 1 = serial; results are identical)")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the content-addressed result cache")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="result cache location (default: $REPRO_CACHE_DIR "
                        "or ~/.cache/repro-vliw)")
    from repro.runner.pool import (DEFAULT_JOB_DEADLINE_S,
                                   DEFAULT_MAX_RETRIES)
    p.add_argument("--job-deadline", type=float, metavar="SECONDS",
                   default=DEFAULT_JOB_DEADLINE_S,
                   help="fan-out watchdog: respawn the workers when no "
                        "job settles for this long (default "
                        f"{DEFAULT_JOB_DEADLINE_S:g}; 0 disables the "
                        "watchdog)")
    p.add_argument("--retries", type=int, default=DEFAULT_MAX_RETRIES,
                   metavar="N",
                   help="failed dispatch rounds a job may ride before "
                        "it is quarantined to the serial path "
                        "(default 1; a job executes at most 1+N times)")
    p.add_argument("--faults", default=None, metavar="SPEC",
                   help="arm seeded fault injection, e.g. "
                        "'seed=7;pool.worker=crash:0.05;cache.put="
                        "torn:0.2' (equivalent to $REPRO_FAULTS; "
                        "chaos testing only)")
    from repro.kernels import CHOICES as KERNEL_BACKEND_CHOICES
    p.add_argument("--kernels", default=None, metavar="BACKEND",
                   choices=list(KERNEL_BACKEND_CHOICES),
                   dest="kernel_backend",
                   help="compute-kernel backend: "
                        f"{', '.join(KERNEL_BACKEND_CHOICES)} "
                        "(default: $REPRO_KERNELS or auto; results are "
                        "identical, only speed differs)")
    sub = p.add_subparsers(dest="command", required=True)

    sub.add_parser("corpus", help="corpus statistics")

    def kernel_flags(parser) -> None:
        """The kernel/machine/engine knobs shared by schedule + trace."""
        parser.add_argument("kernel", nargs="?", default=None,
                            help=f"one of: {', '.join(sorted(KERNELS))}")
        parser.add_argument("--list", action="store_true",
                            help="list the available kernels and exit")
        parser.add_argument("--fus", type=int, default=4,
                            help="single-cluster machine width "
                                 "(default 4)")
        parser.add_argument("--clusters", type=int, default=0,
                            help="use a clustered machine with N "
                                 "clusters")
        parser.add_argument("--unroll", type=int, default=1)
        parser.add_argument("--iterations", type=int, default=16)
        parser.add_argument("--scheduler", default=DEFAULT_SCHEDULER,
                            choices=available_schedulers(),
                            help="scheduling engine (see `repro-vliw "
                                 "schedulers`)")
        parser.add_argument("--partitioner", default=DEFAULT_PARTITIONER,
                            choices=available_partitioners(),
                            help="cluster-partitioning engine, used with "
                                 "--clusters (see `repro-vliw "
                                 "partitioners`)")
        parser.add_argument("--ii-search", default=DEFAULT_II_SEARCH,
                            choices=II_SEARCH_MODES,
                            help="II search mode: adaptive bracketing "
                                 "(default) or the historical linear "
                                 "walk -- identical schedules either "
                                 "way")

    ps = sub.add_parser("schedule", help="schedule one named kernel")
    kernel_flags(ps)
    ps.add_argument("--asm", action="store_true",
                    help="print the queue-addressed assembly listing")
    ps.add_argument("--trace", action="store_true",
                    help="compile with tracing on and print the "
                         "per-stage time breakdown after the report")

    pt = sub.add_parser(
        "trace", help="compile one kernel with tracing enabled and "
                      "print the per-stage time breakdown")
    kernel_flags(pt)

    pe = sub.add_parser("experiment", help="run one paper experiment")
    pe.add_argument("id", nargs="?", default=None,
                    help=f"one of: {', '.join(EXPERIMENTS)}")
    pe.add_argument("--list", action="store_true",
                    help="list the available experiments and exit")
    pe.add_argument("--scheduler", default=DEFAULT_SCHEDULER,
                    choices=available_schedulers(),
                    help="scheduling engine used by the sweep "
                         "(`sc` always compares all engines)")
    pe.add_argument("--partitioner", default=DEFAULT_PARTITIONER,
                    choices=available_partitioners(),
                    help="cluster-partitioning engine used by clustered "
                         "sweeps (`pc` and `a2` always compare all "
                         "engines)")
    pe.add_argument("--ii-search", default=DEFAULT_II_SEARCH,
                    choices=II_SEARCH_MODES,
                    help="II search mode used by every engine in the "
                         "sweep (adaptive default; linear preserves the "
                         "historical walk)")

    sub.add_parser("schedulers",
                   help="list the registered scheduling engines")
    sub.add_parser("kernels",
                   help="list the compute-kernel backends (python/numpy) "
                        "and show which one is active")
    sub.add_parser("partitioners",
                   help="list the registered cluster-partitioning engines")

    pf = sub.add_parser(
        "verify",
        help="prove schedules with the static verifier (golden "
             "engine x kernel matrix by default)",
        epilog=EXIT_CODES_HELP + " (1 = a proof failed or a seeded "
               "corruption survived)")
    pf.add_argument("kernels", nargs="*",
                    help="kernels to prove (default: all of "
                         f"{', '.join(sorted(KERNELS))})")
    pf.add_argument("--fus", type=int, default=12,
                    help="single-cluster machine width for the "
                         "scheduler matrix (default 12, the golden "
                         "fixtures' machine)")
    pf.add_argument("--clusters", type=int, default=4,
                    help="ring size for the partitioner matrix "
                         "(default 4, the golden fixtures' machine)")
    pf.add_argument("--mutations", type=int, default=0, metavar="N",
                    help="also run N rounds of the seeded corruption "
                         "corpus per schedule and require every one "
                         "rejected")
    pf.add_argument("--seed", type=int, default=0,
                    help="seed for the corruption corpus (default 0)")
    pf.add_argument("--json", action="store_true",
                    help="emit the verdicts as JSON instead of the "
                         "per-schedule lines")

    pr = sub.add_parser(
        "report", help="perf observatory: trend tables + HTML dashboard "
                       "over the BENCH_*.json records and bench history",
        epilog=EXIT_CODES_HELP + " (1 = --check found a regression)")
    pr.add_argument("--records", default=None, metavar="DIR",
                    help="directory holding the BENCH_*.json records "
                         "(default: $REPRO_BENCH_DIR or .)")
    pr.add_argument("--history", default="benchmarks/history.jsonl",
                    metavar="FILE",
                    help="bench-history JSONL file (default: "
                         "benchmarks/history.jsonl)")
    pr.add_argument("--html", default="benchmarks/results/dashboard.html",
                    metavar="FILE",
                    help="where to write the HTML dashboard "
                         "(default: benchmarks/results/dashboard.html; "
                         "'' skips it)")
    pr.add_argument("--check", action="store_true",
                    help="exit 1 when any gated metric regresses "
                         "against its history (the CI perf gate)")
    pr.add_argument("--append", action="store_true",
                    help="append the fresh records to the history file "
                         "after gating")
    pr.add_argument("--experiments", action="store_true",
                    help="print the headline experiment bundle instead "
                         "(the previous `report` behaviour)")
    pr.add_argument("--sweep", action="store_true",
                    help="include the (slow) IPC sweep "
                         "(with --experiments)")

    pb = sub.add_parser(
        "bench", help="run a named benchmark and gate it against "
                      "benchmarks/baseline.json")
    pb.add_argument("name", nargs="?", default=None,
                    help="benchmark name, e.g. fig6_partition "
                         "(see --list)")
    pb.add_argument("--list", action="store_true",
                    help="list the available benchmarks and exit")
    pb.add_argument("--tolerance", type=float, default=1.3,
                    help="allowed wall-time factor over the baseline "
                         "(default 1.3, the CI gate's)")

    pc = sub.add_parser(
        "cache", help="inspect or maintain the result cache")
    pc.add_argument("action", nargs="?", default=None,
                    choices=["stats", "gc", "migrate", "clear"],
                    help="stats (default): entries/bytes/shard "
                         "occupancy/hit counters; gc: compact shards "
                         "and evict to --max-bytes; migrate: fold a "
                         "legacy single-file store into shards; clear: "
                         "drop everything")
    pc.add_argument("--max-bytes", type=int, default=None, metavar="N",
                    help="byte budget for gc (oldest records evicted "
                         "per shard until the store fits)")
    pc.add_argument("--clear", action="store_true",
                    help="delete all cached results (same as the "
                         "'clear' action)")

    pv = sub.add_parser(
        "serve", help="run the sweep service daemon (POST /jobs, "
                      "GET /jobs/<key>, /healthz, /metrics)")
    pv.add_argument("--host", default="127.0.0.1")
    pv.add_argument("--port", type=int, default=8123)
    pv.add_argument("--batch-window", type=float, default=0.005,
                    metavar="SECONDS",
                    help="micro-batch collection window (default 5ms)")
    pv.add_argument("--batch-max", type=int, default=64, metavar="N",
                    help="max jobs per dispatcher batch (default 64)")
    pv.add_argument("--max-cache-bytes", type=int, default=None,
                    metavar="N",
                    help="size budget for the sharded result cache "
                         "(oldest entries evicted per shard)")
    pv.add_argument("--no-trace", action="store_true",
                    help="disable compile-stage tracing (on by default "
                         "so /metrics carries latency histograms)")
    pv.add_argument("--request-deadline", type=float, default=None,
                    metavar="SECONDS",
                    help="answer POST /jobs with 504 + the job keys "
                         "when results do not settle in time (default: "
                         "no deadline; the compile keeps running and "
                         "clients poll GET /jobs/<key>)")
    pv.add_argument("--max-queue-depth", type=int, default=1024,
                    metavar="N",
                    help="shed requests (503 + Retry-After) once the "
                         "dispatch queue holds N jobs (default 1024)")
    pv.add_argument("--breaker-threshold", type=int, default=5,
                    metavar="N",
                    help="consecutive batch failures that open the "
                         "circuit breaker (default 5; 0 disables it)")
    pv.add_argument("--breaker-cooldown", type=float, default=30.0,
                    metavar="SECONDS",
                    help="how long an open breaker fails fast before "
                         "half-opening to probe (default 30)")

    pm = sub.add_parser(
        "submit", help="submit kernels to a running daemon over HTTP",
        epilog=EXIT_CODES_HELP + " (1 = HTTP error, or --expect-cached "
               "saw a fresh compile)")
    pm.add_argument("kernels", nargs="+",
                    help=f"kernel names, e.g. {', '.join(sorted(KERNELS))}")
    pm.add_argument("--host", default="127.0.0.1")
    pm.add_argument("--port", type=int, default=8123)
    pm.add_argument("--fus", type=int, default=4,
                    help="single-cluster machine width (default 4)")
    pm.add_argument("--clusters", type=int, default=0,
                    help="use a clustered machine with N clusters")
    pm.add_argument("--scheduler", default=DEFAULT_SCHEDULER,
                    choices=available_schedulers())
    pm.add_argument("--partitioner", default=DEFAULT_PARTITIONER,
                    choices=available_partitioners())
    pm.add_argument("--timeout", type=float, default=120.0,
                    help="HTTP timeout in seconds (default 120)")
    pm.add_argument("--expect-cached", action="store_true",
                    help="fail unless every result was served from the "
                         "cache (the CI duplicate-submission check)")
    pm.add_argument("--metrics-out", default=None, metavar="FILE",
                    help="also fetch /metrics and write the snapshot "
                         "to FILE")
    return p


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.kernel_backend:
        from repro import kernels as _k

        try:
            _k.set_backend(args.kernel_backend)
        except (ValueError, RuntimeError) as exc:
            print(f"repro-vliw: --kernels: {exc}", file=sys.stderr)
            return 2
    if args.faults:
        from repro.faults import enable_faults

        try:
            enable_faults(args.faults)
        except ValueError as exc:
            print(f"repro-vliw: bad --faults spec: {exc}",
                  file=sys.stderr)
            return 2
    handler = {
        "corpus": cmd_corpus,
        "schedule": cmd_schedule,
        "trace": cmd_trace,
        "experiment": cmd_experiment,
        "schedulers": cmd_schedulers,
        "partitioners": cmd_partitioners,
        "kernels": cmd_kernels,
        "verify": cmd_verify,
        "report": cmd_report,
        "bench": cmd_bench,
        "cache": cmd_cache,
        "serve": cmd_serve,
        "submit": cmd_submit,
    }[args.command]
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
